//! The single source of truth for the `drfrlx` command-line surface.
//!
//! Every subcommand is one [`Subcommand`] row in [`SUBCOMMANDS`]; the
//! `--help` text ([`usage`]), the README's subcommand table
//! ([`readme_table`]) and the unknown-subcommand error ([`unknown`])
//! are all rendered from it, so a new subcommand (or a new flag in a
//! usage line) appears everywhere at once or nowhere — enforced by
//! `tests/cli_help.rs`.

/// One subcommand of the `drfrlx` binary.
pub struct Subcommand {
    /// The subcommand word itself (`check`, `conform`, ...).
    pub name: &'static str,
    /// Usage line(s), without the leading `drfrlx` (multi-line for
    /// subcommands whose flags wrap).
    pub usage: &'static str,
    /// One-line summary (the README table cell).
    pub summary: &'static str,
    /// Full help paragraph shown under the usage lines.
    pub help: &'static str,
}

/// Every `drfrlx` subcommand, in help order.
pub const SUBCOMMANDS: &[Subcommand] = &[
    Subcommand {
        name: "check",
        usage: "check <file.litmus> [--model drf0|drf1|drfrlx] [--threads N]\n\
                \x20                  [--max-execs N] [--reduction none|sleep|memo]\n\
                \x20                  [--stats] [--timeout-secs S] [--checkpoint FILE]\n\
                \x20                  [--resume FILE] [--chaos-seed S]",
        summary: "race-check a litmus program under the DRF models",
        help: "Stream SC executions through the race detectors (sleep-set\n\
               partial-order reduction, sharded across N worker threads) and\n\
               report illegal races. Exit status: 0 race-free, 2 racy, 3\n\
               inconclusive (a budget ran out before a verdict), 101 internal\n\
               error. Prints the explored/pruned execution counts per model;\n\
               the verdicts are identical at any --threads. --max-execs raises\n\
               or lowers the execution budget (default 250000). --reduction\n\
               picks the search-space pruning: `none` (exhaustive), `sleep`\n\
               (sleep-set partial-order reduction, the default) or `memo`\n\
               (sleep sets plus duplicate-state memoization — needed for\n\
               programs whose conflicting operations defeat sleep sets alone).\n\
               --stats prints the per-model reduction counters (explored /\n\
               sleep-set-pruned / memo-pruned / peak-table-size). The\n\
               resilience flags engage the fault-isolated sharded runner:\n\
               --timeout-secs arms a wall-clock watchdog, --checkpoint FILE\n\
               saves the completed shards, --resume FILE continues from such\n\
               a checkpoint (with --model pinned; the resumed report is\n\
               byte-identical to an uninterrupted run), and --chaos-seed\n\
               deterministically injects shard faults (testing only). Threads\n\
               default to all cores (or DRFRLX_THREADS).",
    },
    Subcommand {
        name: "explore",
        usage: "explore <file.litmus>",
        summary: "print a representative execution and its races",
        help: "Print a representative execution, its program/conflict graph\n\
               and every race found across executions.",
    },
    Subcommand {
        name: "machine",
        usage: "machine <file.litmus>",
        summary: "compare the relaxed machine's results against SC",
        help: "Run the system-centric relaxed machine and compare its\n\
               reachable memory results against SC.",
    },
    Subcommand {
        name: "infer",
        usage: "infer <file.litmus>",
        summary: "weaken atomic annotations as far as DRFrlx allows",
        help: "Weaken every atomic annotation as far as DRFrlx race-freedom\n\
               allows, and print the re-annotated program.",
    },
    Subcommand {
        name: "fmt",
        usage: "fmt <file.litmus>",
        summary: "re-emit a litmus program in canonical form",
        help: "Parse and re-emit the program in canonical form.",
    },
    Subcommand {
        name: "list",
        usage: "list",
        summary: "list the Table 3 workloads",
        help: "List the Table 3 workloads available to `simulate`.",
    },
    Subcommand {
        name: "configs",
        usage: "configs",
        summary: "print the protocol × model configuration matrix",
        help: "Print the protocol × model configuration matrix (the paper's six\n\
               plus the MESI-WB extension) and the Table 2 platform parameters.",
    },
    Subcommand {
        name: "simulate",
        usage: "simulate <workload> [--config GD0..MDR] [--protocol gpu|denovo|mesi-wb]\n\
                \x20                  [--platform integrated|discrete]",
        summary: "run one workload on the simulated system",
        help: "Run one workload on the simulated system and print the report.\n\
               --protocol overrides the configuration's coherence protocol,\n\
               keeping its consistency model (e.g. --config GDR --protocol\n\
               mesi-wb runs MDR).",
    },
    Subcommand {
        name: "trace",
        usage: "trace <workload> [--config GD0..MDR] [--protocol gpu|denovo|mesi-wb]\n\
                \x20              [--platform integrated|discrete]\n\
                \x20              [--events N] [--out FILE] [--diff CFG2]",
        summary: "cycle-level structured tracing and profiling",
        help: "Run one workload with cycle-level structured tracing and print a\n\
               per-component profile. --out writes a Chrome trace-event JSON\n\
               (load it at https://ui.perfetto.dev). --events caps the event\n\
               ring (default 65536; totals stay exact past the cap). --diff\n\
               runs a second configuration and prints a per-event comparison\n\
               (e.g. GD0 vs DD0 invalidation traffic, Table 4).",
    },
    Subcommand {
        name: "bench",
        usage: "bench <experiment-id>|all [--threads N] [--out DIR]\n\
                \x20                        [--perf FILE [--perf-baseline FILE]]",
        summary: "regenerate a registered paper artifact",
        help: "Regenerate a registered paper artifact (fig1, fig3, fig4,\n\
               table4, section6, sweeps, ablations, conform_matrix, ...) on\n\
               the parallel sweep engine; writes results/<id>.txt and\n\
               results/<id>.json. `bench list` prints the registry. Threads\n\
               default to all cores (or DRFRLX_THREADS); output dir defaults\n\
               to results/ (or DRFRLX_RESULTS). --perf records per-experiment\n\
               wall-clock as JSON; with --perf-baseline it joins a previous\n\
               --perf run into a before/after trajectory (the committed\n\
               BENCH_*.json).",
    },
    Subcommand {
        name: "conform",
        usage: "conform <test>|corpus|templates|<file.litmus> [--schedules K] [--seed S]\n\
                \x20       [--threads N] [--config GD0..MDR] [--model drf0|drf1|drfrlx]\n\
                \x20       [--protocol gpu|denovo|mesi-wb] [--timeout-secs S] [--chaos-seed S]\n\
                conform --fuzz N [--seed S] [--threads N] [--schedules K]\n\
                \x20       [--timeout-secs S] [--checkpoint FILE] [--resume FILE]\n\
                \x20       [--chaos-seed S]",
        summary: "check the simulator against the axiomatic oracle",
        help: "Compile a litmus test into a simulator kernel, run it across the\n\
               protocol × model matrix under K deterministically perturbed\n\
               schedules (default 128, rooted at --seed) and check every\n\
               observed outcome against the axiomatic SC oracle. Exit status:\n\
               0 sound, 2 on a soundness violation (observed ⊄ allowed), 3\n\
               inconclusive (oracle budget exhausted, run degraded or programs\n\
               skipped), 101 internal error; the witnessed fraction of the\n\
               allowed set is reported as coverage. `corpus` runs the whole\n\
               Table-1 use-case suite; `templates` runs the richer template\n\
               corpus (bounded polls, think delays, retry loops, scratch +\n\
               barrier histogram); a bare name runs that registry test; a path\n\
               runs a .litmus file. --config restricts to one configuration\n\
               (--protocol overrides its coherence protocol); --model keeps\n\
               only that column of the matrix. --fuzz generates N seeded\n\
               random programs, conformance-checks each (retrying oracle\n\
               overflows up a 1x/4x/16x budget ladder before recording the\n\
               seed as skipped in the summary), and delta-debugs any\n\
               disagreement down to a minimal reproducer. --timeout-secs arms\n\
               a wall-clock watchdog; --checkpoint/--resume save and continue\n\
               a fuzz campaign deterministically; --chaos-seed injects\n\
               deterministic faults (testing only). Verdicts are identical at\n\
               any --threads.",
    },
];

/// The assembled `--help`/usage text.
pub fn usage() -> String {
    let mut out =
        String::from("drfrlx — DRFrlx memory-model checker and CPU-GPU simulator\n\nUSAGE:\n");
    for s in SUBCOMMANDS {
        // A usage line starting with a space continues the previous
        // form; one starting with the subcommand word begins a new one.
        for line in s.usage.lines() {
            if line.starts_with(' ') {
                out.push_str("  ");
            } else {
                out.push_str("  drfrlx ");
            }
            out.push_str(line);
            out.push('\n');
        }
        for line in s.help.lines() {
            out.push_str("      ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// The README's subcommand table (markdown), one row per subcommand.
pub fn readme_table() -> String {
    let mut out = String::from("| subcommand | what it does |\n|---|---|\n");
    for s in SUBCOMMANDS {
        out.push_str(&format!("| `drfrlx {}` | {} |\n", s.name, s.summary));
    }
    out
}

/// Comma-separated subcommand names, in help order.
pub fn names() -> String {
    SUBCOMMANDS.iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
}

/// The unknown-subcommand error line.
pub fn unknown(cmd: &str) -> String {
    format!("unknown subcommand `{cmd}`; valid subcommands: {}", names())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_covers_every_subcommand_and_key_flags() {
        let u = usage();
        for s in SUBCOMMANDS {
            assert!(u.contains(&format!("drfrlx {}", s.name)), "usage lacks {}", s.name);
        }
        assert!(u.contains("--reduction none|sleep|memo"));
        assert!(u.contains("conform --fuzz N"));
    }

    #[test]
    fn unknown_error_lists_every_subcommand() {
        let e = unknown("bogus");
        assert!(e.contains("`bogus`"));
        for s in SUBCOMMANDS {
            assert!(e.contains(s.name), "unknown() lacks {}", s.name);
        }
    }
}
