//! # drfrlx — "Chasing Away RAts" (ISCA 2017), reproduced in Rust
//!
//! This workspace facade re-exports the two halves of the
//! reproduction:
//!
//! * **The DRFrlx memory model** ([`model`] = `drfrlx-core`,
//!   [`litmus`] = `drfrlx-litmus`): SC-centric semantics for relaxed
//!   atomics — unpaired, commutative, non-ordering, quantum and
//!   speculative — with an executable programmer-centric race detector
//!   (the paper's Listing 7) and a system-centric relaxed machine.
//! * **The evaluation platform** ([`sim`] = `hsim-*`,
//!   [`workloads`] = `drfrlx-workloads`): a deterministic cycle-level
//!   simulator of the paper's integrated CPU-GPU system — mesh NoC,
//!   private L1s + banked NUCA L2, GPU and DeNovo coherence, DRF0 /
//!   DRF1 / DRFrlx enforcement — plus every Table 3 workload.
//!
//! See `examples/` for runnable entry points, `crates/bench` for the
//! per-figure/table harnesses, and `EXPERIMENTS.md` for measured
//! results against the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The memory-model core (`drfrlx-core`).
pub mod model {
    pub use drfrlx_core::*;
}

/// The litmus corpus (`drfrlx-litmus`).
pub mod litmus {
    pub use drfrlx_litmus::*;
}

/// The simulator stack (`hsim-sys` and friends).
pub mod sim {
    pub use hsim_coherence as coherence;
    pub use hsim_energy as energy;
    pub use hsim_gpu as gpu;
    pub use hsim_mem as mem;
    pub use hsim_noc as noc;
    pub use hsim_sys::*;
    pub use hsim_trace as trace;
}

/// The evaluation workloads (`drfrlx-workloads`).
pub mod workloads {
    pub use drfrlx_workloads::*;
}

/// The experiment harness (`drfrlx-bench`): the registry of paper
/// artifacts behind `drfrlx bench <id>`.
pub mod bench {
    pub use drfrlx_bench::*;
}

/// The litmus→simulator conformance harness (`drfrlx-conform`):
/// compile litmus tests to kernels, compare simulated outcomes against
/// the axiomatic oracle, fuzz and shrink — behind `drfrlx conform`.
pub mod conform {
    pub use drfrlx_conform::*;
}

pub mod checkpoint;
pub mod cli;

pub use drfrlx_core::{check_program, CheckReport, MemoryModel, OpClass, Protocol, SystemConfig};
