//! Checkpoint files for `--checkpoint`/`--resume`.
//!
//! A checkpoint serializes the *completed* work of a resilient run —
//! the checker's per-shard records, or a fuzz campaign's tallies and
//! resume index — as a small JSON document (written with the same
//! dependency-free machinery as `drfrlx-bench::json`). Resuming
//! re-derives everything else: the shard plan is a pure function of
//! the program and options, and fuzz program `i` is a pure function
//! of `seed + i`, so a resumed run reproduces the uninterrupted
//! report exactly.
//!
//! Every checkpoint embeds a fingerprint of the program and the
//! options that shaped the run. A resume under different options
//! would silently merge incompatible work, so a fingerprint mismatch
//! is a hard error.

use crate::bench::json::{escape, parse_json, Json};
use crate::conform::{CampaignState, ConformOptions};
use crate::model::checker::{CheckOptions, CheckOutcome, FoundRace, ShardRecord};
use crate::model::emit::emit;
use crate::model::exec::EnumStats;
use crate::model::program::Program;
use crate::model::races::{Race, RaceKind};
use crate::MemoryModel;
use std::fmt::Write as _;

/// SplitMix64 finalizer — the workspace's standard bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fold `bytes` into a running fingerprint.
fn fold(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |h, &b| mix64(h ^ b as u64))
}

/// Fingerprint of a `drfrlx check` run: the canonical program text
/// plus every option that shapes the shard plan or the verdict.
/// Thread count is deliberately excluded — the plan and the merged
/// report are thread-invariant. So is the execution budget: a
/// completed shard record is fully explored whatever budget it ran
/// under, and resuming under a *larger* budget is the whole point.
pub fn check_fingerprint(p: &Program, model: MemoryModel, opts: &CheckOptions) -> u64 {
    let mut h = fold(0x5EED_C0DE, emit(p).as_bytes());
    h = fold(h, model.to_string().as_bytes());
    h = fold(h, format!("{:?}", opts.reduction).as_bytes());
    mix64(h ^ opts.early_exit as u64)
}

/// Fingerprint of a `drfrlx conform --fuzz` campaign: every option
/// that shapes per-program verdicts. The root seed lives in the
/// campaign state itself, and thread count is verdict-invariant.
pub fn fuzz_fingerprint(opts: &ConformOptions) -> u64 {
    let mut h = mix64(0xF0_22ED ^ opts.schedules as u64);
    for c in &opts.configs {
        h = fold(h, c.abbrev().as_bytes());
    }
    mix64(h ^ opts.limits.max_executions as u64)
}

fn kind_tag(k: RaceKind) -> &'static str {
    match k {
        RaceKind::Data => "data",
        RaceKind::Commutative => "commutative",
        RaceKind::NonOrdering => "non_ordering",
        RaceKind::Quantum => "quantum",
        RaceKind::Speculative => "speculative",
        RaceKind::OneSided => "one_sided",
    }
}

fn kind_from(tag: &str) -> Option<RaceKind> {
    Some(match tag {
        "data" => RaceKind::Data,
        "commutative" => RaceKind::Commutative,
        "non_ordering" => RaceKind::NonOrdering,
        "quantum" => RaceKind::Quantum,
        "speculative" => RaceKind::Speculative,
        "one_sided" => RaceKind::OneSided,
        _ => return None,
    })
}

/// Render a checker checkpoint: fingerprint + the completed shard
/// records of `outcome` (its `shards` field is exactly the payload
/// [`crate::model::checker::check_program_resilient`] resumes from).
pub fn render_check_checkpoint(
    p: &Program,
    model: MemoryModel,
    opts: &CheckOptions,
    outcome: &CheckOutcome,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"kind\":\"check\",\"fingerprint\":\"{:016x}\",\"program\":\"{}\",\
         \"model\":\"{}\",\"total_shards\":{},\"shards\":[",
        check_fingerprint(p, model, opts),
        escape(p.name()),
        model,
        outcome.total_shards
    );
    for (i, r) in outcome.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"index\":{},\"explored\":{},\"pruned\":{},\"memo_pruned\":{},\
             \"table_peak\":{},\"saturated\":{},\"races\":[",
            r.index,
            r.stats.explored,
            r.stats.pruned,
            r.stats.memo_pruned,
            r.stats.table_peak,
            r.saturated
        );
        for (j, f) in r.races.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let (kind, (at, ai), (bt, bi)) = f.key;
            let _ = write!(
                out,
                "{{\"exec_index\":{},\"kind\":\"{}\",\"ea\":{},\"eb\":{},\
                 \"a_tid\":{at},\"a_iid\":{ai},\"b_tid\":{bt},\"b_iid\":{bi},\
                 \"description\":\"{}\"}}",
                f.exec_index,
                kind_tag(kind),
                f.race.a,
                f.race.b,
                escape(&f.description)
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

fn usize_field(j: &Json, key: &str) -> Result<usize, String> {
    let n = j.get(key).and_then(Json::as_num).ok_or_else(|| format!("missing `{key}`"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("`{key}` is not an unsigned integer"));
    }
    Ok(n as usize)
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key).and_then(Json::as_str).ok_or_else(|| format!("missing `{key}`"))
}

fn arr_field<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    j.get(key).and_then(Json::as_arr).ok_or_else(|| format!("missing `{key}`"))
}

fn expect_fingerprint(j: &Json, kind: &str, fp: u64) -> Result<(), String> {
    if str_field(j, "kind")? != kind {
        return Err(format!("not a `{kind}` checkpoint"));
    }
    let want = format!("{fp:016x}");
    let got = str_field(j, "fingerprint")?;
    if got != want {
        return Err(format!(
            "checkpoint fingerprint {got} does not match this program and these \
             options ({want}); resume with the original --model/--max-execs/--reduction"
        ));
    }
    Ok(())
}

/// Parse a checker checkpoint back into the completed-shard records,
/// verifying it belongs to exactly this `(program, model, options)`.
///
/// # Errors
///
/// Malformed JSON, a missing field, or a fingerprint mismatch.
pub fn parse_check_checkpoint(
    text: &str,
    p: &Program,
    model: MemoryModel,
    opts: &CheckOptions,
) -> Result<Vec<ShardRecord>, String> {
    let j = parse_json(text)?;
    expect_fingerprint(&j, "check", check_fingerprint(p, model, opts))?;
    let mut shards = Vec::new();
    for s in arr_field(&j, "shards")? {
        let mut races = Vec::new();
        for f in arr_field(s, "races")? {
            let tag = str_field(f, "kind")?;
            let kind = kind_from(tag).ok_or_else(|| format!("unknown race kind `{tag}`"))?;
            let key = (
                kind,
                (usize_field(f, "a_tid")?, usize_field(f, "a_iid")?),
                (usize_field(f, "b_tid")?, usize_field(f, "b_iid")?),
            );
            races.push(FoundRace {
                exec_index: usize_field(f, "exec_index")?,
                race: Race { kind, a: usize_field(f, "ea")?, b: usize_field(f, "eb")? },
                key,
                description: str_field(f, "description")?.to_string(),
            });
        }
        shards.push(ShardRecord {
            index: usize_field(s, "index")?,
            stats: EnumStats {
                explored: usize_field(s, "explored")?,
                pruned: usize_field(s, "pruned")?,
                memo_pruned: usize_field(s, "memo_pruned")?,
                table_peak: usize_field(s, "table_peak")?,
            },
            saturated: s.get("saturated") == Some(&Json::Bool(true)),
            races,
        });
    }
    Ok(shards)
}

/// Render a fuzz-campaign checkpoint. Seeds are serialized as strings:
/// the JSON reader parses numbers as `f64`, which cannot hold every
/// `u64` seed exactly.
pub fn render_fuzz_checkpoint(opts: &ConformOptions, state: &CampaignState) -> String {
    let list =
        |seeds: &[u64]| seeds.iter().map(|s| format!("\"{s}\"")).collect::<Vec<_>>().join(",");
    format!(
        "{{\"kind\":\"conform-fuzz\",\"fingerprint\":\"{:016x}\",\"seed\":\"{}\",\
         \"total\":{},\"next_index\":{},\"sound\":{},\"violations\":[{}],\"skipped\":[{}]}}\n",
        fuzz_fingerprint(opts),
        state.seed,
        state.total,
        state.next_index,
        state.sound,
        list(&state.violations),
        list(&state.skipped)
    )
}

fn u64_str_field(j: &Json, key: &str) -> Result<u64, String> {
    str_field(j, key)?.parse().map_err(|_| format!("`{key}` is not a u64"))
}

fn u64_field(j: &Json, key: &str) -> Result<u64, String> {
    Ok(usize_field(j, key)? as u64)
}

fn seed_list(j: &Json, key: &str) -> Result<Vec<u64>, String> {
    arr_field(j, key)?
        .iter()
        .map(|s| {
            s.as_str()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("`{key}` holds a non-seed entry"))
        })
        .collect()
}

/// Parse a fuzz-campaign checkpoint, verifying it belongs to these
/// conformance options.
///
/// # Errors
///
/// Malformed JSON, a missing field, or a fingerprint mismatch.
pub fn parse_fuzz_checkpoint(text: &str, opts: &ConformOptions) -> Result<CampaignState, String> {
    let j = parse_json(text)?;
    expect_fingerprint(&j, "conform-fuzz", fuzz_fingerprint(opts))?;
    let state = CampaignState {
        seed: u64_str_field(&j, "seed")?,
        total: u64_field(&j, "total")?,
        next_index: u64_field(&j, "next_index")?,
        sound: u64_field(&j, "sound")?,
        violations: seed_list(&j, "violations")?,
        skipped: seed_list(&j, "skipped")?,
    };
    if state.next_index > state.total
        || state.sound + state.violations.len() as u64 + state.skipped.len() as u64
            != state.next_index
    {
        return Err("checkpoint tallies do not add up".to_string());
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::checker::{check_program_resilient, CheckResilience};
    use crate::OpClass;

    fn racy() -> Program {
        let mut p = Program::new("racy");
        for t in 0..3 {
            let mut th = p.thread();
            for i in 0..3 {
                th.store(OpClass::Data, "x", (t * 3 + i) as i64);
            }
        }
        p.build()
    }

    #[test]
    fn check_checkpoint_round_trips() {
        let p = racy();
        let opts = CheckOptions { early_exit: false, ..CheckOptions::default() };
        let out =
            check_program_resilient(&p, MemoryModel::Drfrlx, &opts, &CheckResilience::default());
        let text = render_check_checkpoint(&p, MemoryModel::Drfrlx, &opts, &out);
        let shards = parse_check_checkpoint(&text, &p, MemoryModel::Drfrlx, &opts).unwrap();
        assert_eq!(shards.len(), out.shards.len());
        for (a, b) in shards.iter().zip(&out.shards) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.saturated, b.saturated);
            assert_eq!(a.races.len(), b.races.len());
            for (x, y) in a.races.iter().zip(&b.races) {
                assert_eq!(x.key, y.key);
                assert_eq!(x.exec_index, y.exec_index);
                assert_eq!((x.race.kind, x.race.a, x.race.b), (y.race.kind, y.race.a, y.race.b));
                assert_eq!(x.description, y.description);
            }
        }
    }

    #[test]
    fn a_fingerprint_mismatch_is_rejected() {
        let p = racy();
        let opts = CheckOptions::default();
        let out =
            check_program_resilient(&p, MemoryModel::Drfrlx, &opts, &CheckResilience::default());
        let text = render_check_checkpoint(&p, MemoryModel::Drfrlx, &opts, &out);
        // Same file, different model: refused.
        let err = parse_check_checkpoint(&text, &p, MemoryModel::Drf0, &opts).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
        // A different execution budget is fine — resuming under a
        // larger one is the point of checkpointing.
        let mut tight = CheckOptions::default();
        tight.limits.max_executions = 7;
        assert!(parse_check_checkpoint(&text, &p, MemoryModel::Drfrlx, &tight).is_ok());
        // But a different reduction reshapes the plan: refused.
        let memo = CheckOptions {
            reduction: crate::model::exec::Reduction::Exhaustive,
            ..CheckOptions::default()
        };
        assert!(parse_check_checkpoint(&text, &p, MemoryModel::Drfrlx, &memo).is_err());
    }

    #[test]
    fn every_race_kind_round_trips() {
        for k in [
            RaceKind::Data,
            RaceKind::Commutative,
            RaceKind::NonOrdering,
            RaceKind::Quantum,
            RaceKind::Speculative,
            RaceKind::OneSided,
        ] {
            assert_eq!(kind_from(kind_tag(k)), Some(k));
        }
        assert_eq!(kind_from("bogus"), None);
    }

    #[test]
    fn fuzz_checkpoint_round_trips_with_u64_seeds() {
        let opts = ConformOptions::default();
        let state = CampaignState {
            seed: u64::MAX - 2,
            total: 10,
            next_index: 4,
            sound: 2,
            violations: vec![u64::MAX - 1],
            skipped: vec![u64::MAX],
        };
        let text = render_fuzz_checkpoint(&opts, &state);
        assert_eq!(parse_fuzz_checkpoint(&text, &opts).unwrap(), state);
        // Different schedule count: refused.
        let other = ConformOptions { schedules: 3, ..ConformOptions::default() };
        assert!(parse_fuzz_checkpoint(&text, &other).is_err());
    }

    #[test]
    fn inconsistent_tallies_are_rejected() {
        let opts = ConformOptions::default();
        let mut state = CampaignState::new(1, 5);
        state.next_index = 3; // but sound + violations + skipped == 0
        let text = render_fuzz_checkpoint(&opts, &state);
        assert!(parse_fuzz_checkpoint(&text, &opts).unwrap_err().contains("tallies"));
    }
}
