//! The `drfrlx` command-line tool: check, explore and simulate.
//!
//! ```console
//! $ drfrlx check litmus-tests/mp_paired.litmus
//! $ drfrlx check litmus-tests/mp_unpaired.litmus --model drf1
//! $ drfrlx explore litmus-tests/figure2a.litmus
//! $ drfrlx machine litmus-tests/sb_relaxed.litmus
//! $ drfrlx list
//! $ drfrlx simulate PR-2 --config DDR
//! $ drfrlx bench fig3 --threads 8
//! $ drfrlx bench all
//! $ drfrlx conform corpus
//! $ drfrlx conform --fuzz 500 --seed 1
//! ```
//!
//! The help text, README table and unknown-subcommand error are all
//! rendered from the one table in [`drfrlx::cli`].

use drfrlx::model::checker::{check_program_with, CheckOptions};
use drfrlx::model::emit::emit;
use drfrlx::model::exec::{enumerate_sc, EnumLimits, Reduction};
use drfrlx::model::infer::infer;
use drfrlx::model::parse::parse;
use drfrlx::model::pretty::{format_conflict_graph, format_execution};
use drfrlx::model::program::Program;
use drfrlx::model::races::analyze;
use drfrlx::model::syscentric::compare_with_sc;
use drfrlx::sim::{run_workload, SysParams};
use drfrlx::workloads::all_workloads;
use drfrlx::workloads::registry::extensions;
use drfrlx::{MemoryModel, Protocol, SystemConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("machine") => cmd_machine(&args[1..]),
        Some("infer") => cmd_infer(&args[1..]),
        Some("fmt") => cmd_fmt(&args[1..]),
        Some("list") => cmd_list(),
        Some("configs") => cmd_configs(),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("conform") => cmd_conform(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{}", drfrlx::cli::usage());
            return ExitCode::SUCCESS;
        }
        None => {
            eprintln!("{}", drfrlx::cli::usage());
            return ExitCode::from(2);
        }
        Some(other) => {
            eprintln!("{}", drfrlx::cli::unknown(other));
            eprintln!("\n{}", drfrlx::cli::usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(clean) if clean => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

type CmdResult = Result<bool, Box<dyn std::error::Error>>;

fn load_program(path: &str) -> Result<Program, Box<dyn std::error::Error>> {
    let src = std::fs::read_to_string(path)?;
    Ok(parse(&src)?)
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Create the directory an output file will land in, if it is missing.
fn create_parent_dirs(path: &std::path::Path) -> std::io::Result<()> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => std::fs::create_dir_all(dir),
        _ => Ok(()),
    }
}

fn cmd_check(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("check needs a .litmus file")?;
    let models: Vec<MemoryModel> = match flag_value(args, "--model") {
        None => MemoryModel::ALL.to_vec(),
        Some(m) => vec![match m.to_ascii_lowercase().as_str() {
            "drf0" => MemoryModel::Drf0,
            "drf1" => MemoryModel::Drf1,
            "drfrlx" => MemoryModel::Drfrlx,
            other => return Err(format!("unknown model `{other}`").into()),
        }],
    };
    let p = load_program(path)?;
    let threads = match flag_value(args, "--threads") {
        None => drfrlx::sim::default_threads(),
        Some(v) => v.parse().ok().filter(|&n| n > 0).ok_or("--threads needs a positive integer")?,
    };
    let mut limits = EnumLimits::default();
    if let Some(v) = flag_value(args, "--max-execs") {
        limits.max_executions =
            v.parse().ok().filter(|&n| n > 0).ok_or("--max-execs needs a positive integer")?;
    }
    let reduction = match flag_value(args, "--reduction") {
        None => Reduction::SleepSet,
        Some(v) => match v.to_ascii_lowercase().as_str() {
            "none" => Reduction::Exhaustive,
            "sleep" => Reduction::SleepSet,
            "memo" => Reduction::SleepSetMemo,
            other => return Err(format!("unknown reduction `{other}`").into()),
        },
    };
    let stats = args.iter().any(|a| a == "--stats");
    let opts = CheckOptions { limits, threads, reduction, ..CheckOptions::default() };
    let mut clean = true;
    for model in models {
        let report = check_program_with(&p, model, &opts)?;
        if report.is_race_free() {
            println!("{model}: race-free ({} SC executions)", report.executions);
        } else {
            clean = false;
            println!("{model}: RACY ({} SC executions)", report.executions);
            for f in &report.races {
                println!("  - {}", f.description);
            }
        }
        println!(
            "  executions: {} explored, {} pruned by partial-order reduction",
            report.executions, report.pruned
        );
        if stats {
            println!(
                "  stats: explored {}, sleep-set-pruned {}, memo-pruned {}, peak-table-size {}",
                report.executions, report.pruned, report.memo_pruned, report.table_peak
            );
        }
    }
    Ok(clean)
}

fn cmd_explore(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("explore needs a .litmus file")?;
    let p = load_program(path)?;
    let execs = enumerate_sc(&p, &EnumLimits::default())?;
    println!("{}: {} SC executions", p.name(), execs.len());
    let racy = execs.iter().find(|e| !analyze(e).is_race_free());
    let shown = racy.unwrap_or_else(|| execs.iter().max_by_key(|e| e.len()).expect("nonempty"));
    println!("\n{} execution:", if racy.is_some() { "racy" } else { "representative" });
    print!("{}", format_execution(&p, shown));
    print!("{}", format_conflict_graph(&p, shown));
    let mut any = false;
    for r in analyze(shown).races() {
        println!("  !! {} between e{} and e{}", r.kind, r.a, r.b);
        any = true;
    }
    if !any {
        println!("no illegal races in the shown execution");
    }
    Ok(racy.is_none())
}

fn cmd_machine(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("machine needs a .litmus file")?;
    let p = load_program(path)?;
    let cmp = compare_with_sc(&p, MemoryModel::Drfrlx, &EnumLimits::default())?;
    println!(
        "{}: {} relaxed memory results vs {} SC results",
        p.name(),
        cmp.relaxed_count,
        cmp.sc_count
    );
    if cmp.is_sc_only() {
        println!("every relaxed-machine result is an SC result");
    } else {
        println!("{} non-SC results reachable:", cmp.non_sc_results.len());
        for m in &cmp.non_sc_results {
            let pretty: Vec<String> =
                m.iter().map(|(l, v)| format!("{}={v}", p.loc_name(*l))).collect();
            println!("  {{ {} }}", pretty.join(", "));
        }
    }
    Ok(cmp.is_sc_only())
}

fn cmd_infer(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("infer needs a .litmus file")?;
    let p = load_program(path)?;
    let inf = infer(&p, &EnumLimits::default())?;
    if inf.changes.is_empty() {
        let racy = !drfrlx::check_program(&p, MemoryModel::Drfrlx).is_race_free();
        if racy {
            println!("// program is racy; nothing can be inferred");
            return Ok(false);
        }
        println!("// every annotation is already as weak as it can be");
    } else {
        for c in &inf.changes {
            println!("// t{}.i{}: {} -> {}", c.tid, c.iid, c.from, c.to);
        }
    }
    print!("{}", emit(&inf.program));
    Ok(true)
}

fn cmd_fmt(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("fmt needs a .litmus file")?;
    let p = load_program(path)?;
    print!("{}", emit(&p));
    Ok(true)
}

/// The `--config` abbreviation, with `--protocol` optionally
/// overriding the coherence protocol while keeping the model.
fn parse_config(
    args: &[String],
    default: &str,
) -> Result<SystemConfig, Box<dyn std::error::Error>> {
    let mut config = SystemConfig::from_abbrev(flag_value(args, "--config").unwrap_or(default))
        .ok_or("unknown config (use GD0..GDR, DD0..DDR or MD0..MDR)")?;
    if let Some(name) = flag_value(args, "--protocol") {
        config.protocol =
            Protocol::from_name(name).ok_or("unknown protocol (use gpu, denovo or mesi-wb)")?;
    }
    Ok(config)
}

fn cmd_configs() -> CmdResult {
    println!("protocol x model configuration matrix:");
    println!("{:12} {:>7} {:>7} {:>7}", "protocol", "DRF0", "DRF1", "DRFrlx");
    for protocol in Protocol::WITH_EXTENSIONS {
        print!("{:12}", protocol.to_string());
        for model in MemoryModel::ALL {
            print!(" {:>7}", SystemConfig { protocol, model }.abbrev());
        }
        println!();
    }
    println!("\n(the paper evaluates the GPU and DeNovo rows; MESI-WB is this");
    println!(" repo's writeback-baseline extension — see EXPERIMENTS.md)");
    for params in [SysParams::integrated(), SysParams::discrete_gpu()] {
        println!("\n{} platform (Table 2):", params.name);
        for (k, v) in params.table2_rows() {
            println!("  {k:18} {v}");
        }
    }
    Ok(true)
}

fn cmd_list() -> CmdResult {
    println!("{:8} {:6} scaled input", "name", "kind");
    for s in all_workloads().into_iter().chain(extensions()) {
        println!("{:8} {:6} {}", s.name, if s.micro { "micro" } else { "bench" }, s.scaled_input);
    }
    Ok(true)
}

fn cmd_bench(args: &[String]) -> CmdResult {
    use drfrlx::bench::timing::PerfReport;
    use drfrlx::bench::{find, registry, run_experiment, write_artifacts};

    let id = args.first().ok_or("bench needs an experiment id (see `drfrlx bench list`)")?;
    if id == "list" {
        println!("{:22} title", "id");
        for e in registry() {
            println!("{:22} {}", e.id(), e.title());
        }
        return Ok(true);
    }
    let threads = match flag_value(args, "--threads") {
        None => drfrlx::sim::default_threads(),
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--threads needs a positive integer")?,
    };
    let outdir = std::path::PathBuf::from(
        flag_value(args, "--out")
            .map(String::from)
            .or_else(|| std::env::var("DRFRLX_RESULTS").ok())
            .unwrap_or_else(|| "results".into()),
    );
    let experiments = if id == "all" {
        registry()
    } else {
        vec![find(id).ok_or_else(|| {
            let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
            format!("unknown experiment `{id}`; valid ids: all, {}", ids.join(", "))
        })?]
    };
    let mut perf = PerfReport::new(&format!("drfrlx bench {id} --threads {threads}"));
    for e in experiments {
        let t0 = std::time::Instant::now();
        let run = run_experiment(e.as_ref(), threads);
        perf.record(e.id(), t0.elapsed().as_secs_f64());
        print!("{}", run.text);
        let (txt, json) = write_artifacts(&outdir, e.id(), &run)?;
        eprintln!(
            "\n[{}: wrote {} and {}; threads={threads}]",
            e.id(),
            txt.display(),
            json.display()
        );
    }
    if let Some(perf_path) = flag_value(args, "--perf") {
        let rendered = match flag_value(args, "--perf-baseline") {
            Some(base_path) => {
                let text = std::fs::read_to_string(base_path)?;
                let before = PerfReport::parse(&text)
                    .ok_or_else(|| format!("`{base_path}` is not a perf report"))?;
                perf.to_json_vs(&before)
            }
            None => perf.to_json(),
        };
        create_parent_dirs(std::path::Path::new(perf_path))?;
        std::fs::write(perf_path, rendered)?;
        eprintln!(
            "[perf: {} experiments, {:.2}s total -> {perf_path}]",
            perf.entries.len(),
            perf.total_seconds()
        );
    }
    Ok(true)
}

fn cmd_conform(args: &[String]) -> CmdResult {
    use drfrlx::conform::{
        check_conformance, generate, is_unsound, render_corpus, run_corpus, run_template_corpus,
        shrink, ConformOptions,
    };
    use drfrlx::litmus::all_tests;

    let threads = match flag_value(args, "--threads") {
        None => drfrlx::sim::default_threads(),
        Some(v) => v.parse().ok().filter(|&n| n > 0).ok_or("--threads needs a positive integer")?,
    };
    let mut opts = ConformOptions { threads, ..ConformOptions::default() };
    if let Some(v) = flag_value(args, "--seed") {
        opts.seed = v.parse().map_err(|_| "--seed needs an unsigned integer")?;
    }
    if let Some(v) = flag_value(args, "--schedules") {
        opts.schedules =
            v.parse().ok().filter(|&n| n > 0).ok_or("--schedules needs a positive integer")?;
    }
    if args.iter().any(|a| a == "--config") {
        opts.configs = vec![parse_config(args, "GD0")?];
    } else {
        if let Some(name) = flag_value(args, "--protocol") {
            let p =
                Protocol::from_name(name).ok_or("unknown protocol (use gpu, denovo or mesi-wb)")?;
            opts.configs.retain(|c| c.protocol == p);
        }
        if let Some(m) = flag_value(args, "--model") {
            let model = match m.to_ascii_lowercase().as_str() {
                "drf0" => MemoryModel::Drf0,
                "drf1" => MemoryModel::Drf1,
                "drfrlx" => MemoryModel::Drfrlx,
                other => return Err(format!("unknown model `{other}`").into()),
            };
            opts.configs.retain(|c| c.model == model);
        }
    }

    let print_report = |r: &drfrlx::conform::ConformReport| {
        println!(
            "conform {}: {} allowed outcomes (SC oracle, {} executions explored)",
            r.name,
            r.allowed.len(),
            r.oracle_stats.explored
        );
        for v in &r.verdicts {
            println!(
                "  {}: observed {:>3}, violations {}",
                v.config,
                v.observed.len(),
                v.violations.len()
            );
            for o in &v.violations {
                println!("    !! disallowed outcome {}", o.render());
            }
        }
        println!(
            "  verdict: {}, coverage {:.3}",
            if r.sound() { "SOUND" } else { "VIOLATION" },
            r.coverage()
        );
    };

    if let Some(n) = flag_value(args, "--fuzz") {
        let n: u64 = n.parse().ok().filter(|&n| n > 0).ok_or("--fuzz needs a positive count")?;
        let mut violations = 0u64;
        for i in 0..n {
            let seed = opts.seed.wrapping_add(i);
            let p = generate(seed);
            let r = check_conformance(&p, &opts)?;
            if !r.sound() {
                violations += 1;
                println!("fuzz seed {seed}: VIOLATION");
                print_report(&r);
                let small = shrink(&p, &|q| is_unsound(q, &opts));
                println!("shrunk reproducer:\n{}", drfrlx::model::emit::emit(&small));
            }
        }
        println!(
            "fuzz: {n} programs from seed {}, {} sound, {violations} violations",
            opts.seed,
            n - violations
        );
        return Ok(violations == 0);
    }

    let target = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_operand(args, a))
        .ok_or("conform needs a test name, `corpus`, a .litmus file, or --fuzz N")?;
    if target == "corpus" {
        let reports = run_corpus(&opts)?;
        print!("{}", render_corpus(&reports, &opts));
        return Ok(reports.iter().all(|r| r.sound()));
    }
    if target == "templates" {
        let reports = run_template_corpus(&opts)?;
        print!("{}", render_corpus(&reports, &opts));
        return Ok(reports.iter().all(|r| r.sound()));
    }
    let p = if target.ends_with(".litmus") {
        load_program(target)?
    } else {
        all_tests()
            .into_iter()
            .find(|t| t.name.eq_ignore_ascii_case(target))
            .map(|t| (t.build)())
            .ok_or_else(|| format!("unknown litmus test `{target}` (or pass a .litmus path)"))?
    };
    let r = check_conformance(&p, &opts)?;
    print_report(&r);
    Ok(r.sound())
}

/// Is `arg` the operand of a `--flag value` pair (so not a positional)?
fn is_flag_operand(args: &[String], arg: &str) -> bool {
    args.iter()
        .position(|a| a == arg)
        .and_then(|i| i.checked_sub(1))
        .and_then(|i| args.get(i))
        .is_some_and(|prev| prev.starts_with("--"))
}

fn cmd_trace(args: &[String]) -> CmdResult {
    use drfrlx::sim::{chrome_trace, render_diff, render_profile, run_workload_traced};

    let name = args.first().ok_or("trace needs a workload name (see `drfrlx list`)")?;
    let config = parse_config(args, "GD0")?;
    let params = match flag_value(args, "--platform").unwrap_or("integrated") {
        "integrated" => SysParams::integrated(),
        "discrete" => SysParams::discrete_gpu(),
        other => return Err(format!("unknown platform `{other}`").into()),
    };
    let events = match flag_value(args, "--events") {
        None => 65536,
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--events needs a positive integer")?,
    };
    let spec = all_workloads()
        .into_iter()
        .chain(extensions())
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown workload `{name}` (see `drfrlx list`)"))?;
    let kernel = spec.kernel();

    let run = |config: SystemConfig| -> Result<_, Box<dyn std::error::Error>> {
        let r = run_workload_traced(kernel.as_ref(), config, &params, events);
        kernel
            .validate(&r.memory)
            .map_err(|e| format!("functional check failed under {config}: {e}"))?;
        Ok(r)
    };

    let r = run(config)?;
    let buf = r.trace.as_ref().expect("traced run carries a buffer");
    let label = format!("{} {} ({}, {} cycles)", spec.name, config, r.platform, r.cycles);
    print!("{}", render_profile(buf, &label));

    if let Some(out) = flag_value(args, "--out") {
        let path = std::path::Path::new(out);
        create_parent_dirs(path)?;
        std::fs::write(path, chrome_trace(buf, &label))?;
        eprintln!(
            "[trace: wrote {} ({} of {} events kept)]",
            path.display(),
            buf.len(),
            buf.recorded()
        );
    }

    if let Some(cfg2) = flag_value(args, "--diff") {
        let config2 = SystemConfig::from_abbrev(cfg2)
            .ok_or("unknown --diff config (use GD0..GDR, DD0..DDR or MD0..MDR)")?;
        let r2 = run(config2)?;
        let buf2 = r2.trace.as_ref().expect("traced run carries a buffer");
        println!();
        print!("{}", render_diff(&config.to_string(), buf, &config2.to_string(), buf2));
    }
    Ok(true)
}

fn cmd_simulate(args: &[String]) -> CmdResult {
    let name = args.first().ok_or("simulate needs a workload name (see `drfrlx list`)")?;
    let config = parse_config(args, "DDR")?;
    let params = match flag_value(args, "--platform").unwrap_or("integrated") {
        "integrated" => SysParams::integrated(),
        "discrete" => SysParams::discrete_gpu(),
        other => return Err(format!("unknown platform `{other}`").into()),
    };
    let spec = all_workloads()
        .into_iter()
        .chain(extensions())
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown workload `{name}` (see `drfrlx list`)"))?;
    let kernel = spec.kernel();
    let r = run_workload(kernel.as_ref(), config, &params);
    kernel.validate(&r.memory).map_err(|e| format!("functional check failed: {e}"))?;
    println!("{} on {} ({}):", spec.name, config, r.platform);
    println!("  cycles              {}", r.cycles);
    println!("  energy              {}", r.energy);
    println!("  atomics             {} ({} overlapped)", r.atomics, r.atomics_overlapped);
    println!("  L1 hits/misses      {}/{}", r.proto.l1_hits, r.proto.l1_misses);
    println!("  invalidation events {}", r.proto.invalidation_events);
    println!("  SB flushes          {}", r.proto.sb_flushes);
    println!("  atomics @L1/@L2     {}/{}", r.proto.atomics_at_l1, r.proto.atomics_at_l2);
    println!("  MSHR coalesced      {}", r.proto.mshr_coalesced);
    println!("  remote L1 transfers {}", r.proto.remote_l1_transfers);
    println!("  sharer invalidations {}", r.proto.sharer_invalidations);
    println!("  functional check    ok");
    Ok(true)
}
