//! The `drfrlx` command-line tool: check, explore and simulate.
//!
//! ```console
//! $ drfrlx check litmus-tests/mp_paired.litmus
//! $ drfrlx check litmus-tests/mp_unpaired.litmus --model drf1
//! $ drfrlx explore litmus-tests/figure2a.litmus
//! $ drfrlx machine litmus-tests/sb_relaxed.litmus
//! $ drfrlx list
//! $ drfrlx simulate PR-2 --config DDR
//! $ drfrlx bench fig3 --threads 8
//! $ drfrlx bench all
//! $ drfrlx conform corpus
//! $ drfrlx conform --fuzz 500 --seed 1
//! ```
//!
//! The help text, README table and unknown-subcommand error are all
//! rendered from the one table in [`drfrlx::cli`].

use drfrlx::model::checker::{
    check_program_resilient, check_program_with, CheckOptions, CheckResilience,
};
use drfrlx::model::emit::emit;
use drfrlx::model::exec::{enumerate_sc, EnumLimits, Reduction};
use drfrlx::model::infer::infer;
use drfrlx::model::parse::parse;
use drfrlx::model::pretty::{format_conflict_graph, format_execution};
use drfrlx::model::program::Program;
use drfrlx::model::races::analyze;
use drfrlx::model::resilience::{Budget, FaultPlan};
use drfrlx::model::syscentric::compare_with_sc;
use drfrlx::sim::{run_workload, SysParams};
use drfrlx::workloads::all_workloads;
use drfrlx::workloads::registry::extensions;
use drfrlx::{MemoryModel, Protocol, SystemConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// CI-friendly exit codes for `check` and `conform`: clean, a real
/// finding (race / soundness violation), a run that ended without a
/// verdict (budget exhausted, degraded), and an internal error. The
/// other subcommands keep the traditional 0 / 1 / 2.
const EXIT_CLEAN: u8 = 0;
const EXIT_FINDING: u8 = 2;
const EXIT_INCONCLUSIVE: u8 = 3;
const EXIT_INTERNAL: u8 = 101;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `check`/`conform` report internal errors as 101 so CI can tell
    // a crash from a finding; elsewhere errors keep the historic 2.
    let verdict_cmd = matches!(args.first().map(String::as_str), Some("check" | "conform"));
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("machine") => cmd_machine(&args[1..]),
        Some("infer") => cmd_infer(&args[1..]),
        Some("fmt") => cmd_fmt(&args[1..]),
        Some("list") => cmd_list(),
        Some("configs") => cmd_configs(),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("conform") => cmd_conform(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{}", drfrlx::cli::usage());
            return ExitCode::SUCCESS;
        }
        None => {
            eprintln!("{}", drfrlx::cli::usage());
            return ExitCode::from(2);
        }
        Some(other) => {
            eprintln!("{}", drfrlx::cli::unknown(other));
            eprintln!("\n{}", drfrlx::cli::usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(if verdict_cmd { EXIT_INTERNAL } else { 2 })
        }
    }
}

/// Exit code (`Ok`) or an error the dispatcher prints and maps.
type CmdResult = Result<u8, Box<dyn std::error::Error>>;

/// The traditional boolean exit mapping of the non-verdict
/// subcommands: 0 when clean, 1 otherwise.
fn ok01(clean: bool) -> CmdResult {
    Ok(if clean { 0 } else { 1 })
}

/// The `--timeout-secs`, `--checkpoint`, `--resume` and `--chaos-seed`
/// flags shared by `check` and `conform`. Any of them engages the
/// resilient execution path; all default off.
struct ResilienceFlags<'a> {
    timeout: Option<f64>,
    chaos_seed: Option<u64>,
    checkpoint: Option<&'a str>,
    resume: Option<&'a str>,
}

impl<'a> ResilienceFlags<'a> {
    fn parse(args: &'a [String]) -> Result<Self, Box<dyn std::error::Error>> {
        let timeout = match flag_value(args, "--timeout-secs") {
            None => None,
            Some(v) => Some(
                v.parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .ok_or("--timeout-secs needs a positive number")?,
            ),
        };
        let chaos_seed = match flag_value(args, "--chaos-seed") {
            None => None,
            Some(v) => {
                Some(v.parse::<u64>().map_err(|_| "--chaos-seed needs an unsigned integer")?)
            }
        };
        Ok(ResilienceFlags {
            timeout,
            chaos_seed,
            checkpoint: flag_value(args, "--checkpoint"),
            resume: flag_value(args, "--resume"),
        })
    }

    fn engaged(&self) -> bool {
        self.timeout.is_some()
            || self.chaos_seed.is_some()
            || self.checkpoint.is_some()
            || self.resume.is_some()
    }

    fn budget(&self) -> Option<Arc<Budget>> {
        self.timeout.map(|s| Arc::new(Budget::with_timeout(Duration::from_secs_f64(s))))
    }

    fn fault_plan(&self) -> Option<FaultPlan> {
        self.chaos_seed.map(FaultPlan::seeded)
    }
}

fn load_program(path: &str) -> Result<Program, Box<dyn std::error::Error>> {
    let src = std::fs::read_to_string(path)?;
    Ok(parse(&src)?)
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Create the directory an output file will land in, if it is missing.
fn create_parent_dirs(path: &std::path::Path) -> std::io::Result<()> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => std::fs::create_dir_all(dir),
        _ => Ok(()),
    }
}

fn cmd_check(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("check needs a .litmus file")?;
    let models: Vec<MemoryModel> = match flag_value(args, "--model") {
        None => MemoryModel::ALL.to_vec(),
        Some(m) => vec![match m.to_ascii_lowercase().as_str() {
            "drf0" => MemoryModel::Drf0,
            "drf1" => MemoryModel::Drf1,
            "drfrlx" => MemoryModel::Drfrlx,
            other => return Err(format!("unknown model `{other}`").into()),
        }],
    };
    let p = load_program(path)?;
    let threads = match flag_value(args, "--threads") {
        None => drfrlx::sim::default_threads(),
        Some(v) => v.parse().ok().filter(|&n| n > 0).ok_or("--threads needs a positive integer")?,
    };
    let mut limits = EnumLimits::default();
    if let Some(v) = flag_value(args, "--max-execs") {
        limits.max_executions =
            v.parse().ok().filter(|&n| n > 0).ok_or("--max-execs needs a positive integer")?;
    }
    let reduction = match flag_value(args, "--reduction") {
        None => Reduction::SleepSet,
        Some(v) => match v.to_ascii_lowercase().as_str() {
            "none" => Reduction::Exhaustive,
            "sleep" => Reduction::SleepSet,
            "memo" => Reduction::SleepSetMemo,
            other => return Err(format!("unknown reduction `{other}`").into()),
        },
    };
    let stats = args.iter().any(|a| a == "--stats");
    let res_flags = ResilienceFlags::parse(args)?;
    if (res_flags.checkpoint.is_some() || res_flags.resume.is_some()) && models.len() != 1 {
        return Err("--checkpoint/--resume need a single --model".into());
    }

    let print_report = |report: &drfrlx::CheckReport, clean: &mut bool| {
        let model = report.model;
        if report.is_race_free() {
            println!("{model}: race-free ({} SC executions)", report.executions);
        } else {
            *clean = false;
            println!("{model}: RACY ({} SC executions)", report.executions);
            for f in &report.races {
                println!("  - {}", f.description);
            }
        }
        println!(
            "  executions: {} explored, {} pruned by partial-order reduction",
            report.executions, report.pruned
        );
        if stats {
            println!(
                "  stats: explored {}, sleep-set-pruned {}, memo-pruned {}, peak-table-size {}",
                report.executions, report.pruned, report.memo_pruned, report.table_peak
            );
        }
    };

    let mut clean = true;
    let mut inconclusive = false;
    if !res_flags.engaged() {
        let opts = CheckOptions { limits, threads, reduction, ..CheckOptions::default() };
        for model in models {
            match check_program_with(&p, model, &opts) {
                Ok(report) => print_report(&report, &mut clean),
                Err(e) => {
                    inconclusive = true;
                    println!("{model}: INCONCLUSIVE ({e})");
                }
            }
        }
    } else {
        let budget = res_flags.budget();
        for model in models {
            let mut limits = limits.clone();
            limits.budget = budget.clone();
            let opts = CheckOptions { limits, threads, reduction, ..CheckOptions::default() };
            let completed = match res_flags.resume {
                Some(path) => {
                    let text = std::fs::read_to_string(path)?;
                    drfrlx::checkpoint::parse_check_checkpoint(&text, &p, model, &opts)?
                }
                None => Vec::new(),
            };
            let res = CheckResilience { fault_plan: res_flags.fault_plan(), completed };
            let out = check_program_resilient(&p, model, &opts, &res);
            if out.status.is_complete() || !out.report.is_race_free() {
                print_report(&out.report, &mut clean);
            } else {
                println!(
                    "{model}: INCONCLUSIVE (no races in {} SC executions explored)",
                    out.report.executions
                );
            }
            if !out.status.is_complete() {
                inconclusive = true;
                println!(
                    "  status: {} — {} of {} shards completed",
                    out.status,
                    out.shards.len(),
                    out.total_shards
                );
            }
            if let Some(path) = res_flags.checkpoint {
                create_parent_dirs(std::path::Path::new(path))?;
                let rendered = drfrlx::checkpoint::render_check_checkpoint(&p, model, &opts, &out);
                std::fs::write(path, rendered)?;
                eprintln!(
                    "[checkpoint: wrote {path} ({} of {} shards)]",
                    out.shards.len(),
                    out.total_shards
                );
            }
        }
    }
    Ok(if !clean {
        EXIT_FINDING
    } else if inconclusive {
        EXIT_INCONCLUSIVE
    } else {
        EXIT_CLEAN
    })
}

fn cmd_explore(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("explore needs a .litmus file")?;
    let p = load_program(path)?;
    let execs = enumerate_sc(&p, &EnumLimits::default())?;
    println!("{}: {} SC executions", p.name(), execs.len());
    let racy = execs.iter().find(|e| !analyze(e).is_race_free());
    let shown = racy.unwrap_or_else(|| execs.iter().max_by_key(|e| e.len()).expect("nonempty"));
    println!("\n{} execution:", if racy.is_some() { "racy" } else { "representative" });
    print!("{}", format_execution(&p, shown));
    print!("{}", format_conflict_graph(&p, shown));
    let mut any = false;
    for r in analyze(shown).races() {
        println!("  !! {} between e{} and e{}", r.kind, r.a, r.b);
        any = true;
    }
    if !any {
        println!("no illegal races in the shown execution");
    }
    ok01(racy.is_none())
}

fn cmd_machine(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("machine needs a .litmus file")?;
    let p = load_program(path)?;
    let cmp = compare_with_sc(&p, MemoryModel::Drfrlx, &EnumLimits::default())?;
    println!(
        "{}: {} relaxed memory results vs {} SC results",
        p.name(),
        cmp.relaxed_count,
        cmp.sc_count
    );
    if cmp.is_sc_only() {
        println!("every relaxed-machine result is an SC result");
    } else {
        println!("{} non-SC results reachable:", cmp.non_sc_results.len());
        for m in &cmp.non_sc_results {
            let pretty: Vec<String> =
                m.iter().map(|(l, v)| format!("{}={v}", p.loc_name(*l))).collect();
            println!("  {{ {} }}", pretty.join(", "));
        }
    }
    ok01(cmp.is_sc_only())
}

fn cmd_infer(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("infer needs a .litmus file")?;
    let p = load_program(path)?;
    let inf = infer(&p, &EnumLimits::default())?;
    if inf.changes.is_empty() {
        let racy = !drfrlx::check_program(&p, MemoryModel::Drfrlx).is_race_free();
        if racy {
            println!("// program is racy; nothing can be inferred");
            return ok01(false);
        }
        println!("// every annotation is already as weak as it can be");
    } else {
        for c in &inf.changes {
            println!("// t{}.i{}: {} -> {}", c.tid, c.iid, c.from, c.to);
        }
    }
    print!("{}", emit(&inf.program));
    ok01(true)
}

fn cmd_fmt(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("fmt needs a .litmus file")?;
    let p = load_program(path)?;
    print!("{}", emit(&p));
    ok01(true)
}

/// The `--config` abbreviation, with `--protocol` optionally
/// overriding the coherence protocol while keeping the model.
fn parse_config(
    args: &[String],
    default: &str,
) -> Result<SystemConfig, Box<dyn std::error::Error>> {
    let mut config = SystemConfig::from_abbrev(flag_value(args, "--config").unwrap_or(default))
        .ok_or("unknown config (use GD0..GDR, DD0..DDR or MD0..MDR)")?;
    if let Some(name) = flag_value(args, "--protocol") {
        config.protocol =
            Protocol::from_name(name).ok_or("unknown protocol (use gpu, denovo or mesi-wb)")?;
    }
    Ok(config)
}

fn cmd_configs() -> CmdResult {
    println!("protocol x model configuration matrix:");
    println!("{:12} {:>7} {:>7} {:>7}", "protocol", "DRF0", "DRF1", "DRFrlx");
    for protocol in Protocol::WITH_EXTENSIONS {
        print!("{:12}", protocol.to_string());
        for model in MemoryModel::ALL {
            print!(" {:>7}", SystemConfig { protocol, model }.abbrev());
        }
        println!();
    }
    println!("\n(the paper evaluates the GPU and DeNovo rows; MESI-WB is this");
    println!(" repo's writeback-baseline extension — see EXPERIMENTS.md)");
    for params in [SysParams::integrated(), SysParams::discrete_gpu()] {
        println!("\n{} platform (Table 2):", params.name);
        for (k, v) in params.table2_rows() {
            println!("  {k:18} {v}");
        }
    }
    ok01(true)
}

fn cmd_list() -> CmdResult {
    println!("{:8} {:6} scaled input", "name", "kind");
    for s in all_workloads().into_iter().chain(extensions()) {
        println!("{:8} {:6} {}", s.name, if s.micro { "micro" } else { "bench" }, s.scaled_input);
    }
    ok01(true)
}

fn cmd_bench(args: &[String]) -> CmdResult {
    use drfrlx::bench::timing::PerfReport;
    use drfrlx::bench::{find, registry, run_experiment, write_artifacts};

    let id = args.first().ok_or("bench needs an experiment id (see `drfrlx bench list`)")?;
    if id == "list" {
        println!("{:22} title", "id");
        for e in registry() {
            println!("{:22} {}", e.id(), e.title());
        }
        return ok01(true);
    }
    let threads = match flag_value(args, "--threads") {
        None => drfrlx::sim::default_threads(),
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--threads needs a positive integer")?,
    };
    let outdir = std::path::PathBuf::from(
        flag_value(args, "--out")
            .map(String::from)
            .or_else(|| std::env::var("DRFRLX_RESULTS").ok())
            .unwrap_or_else(|| "results".into()),
    );
    let experiments = if id == "all" {
        registry()
    } else {
        vec![find(id).ok_or_else(|| {
            let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
            format!("unknown experiment `{id}`; valid ids: all, {}", ids.join(", "))
        })?]
    };
    let mut perf = PerfReport::new(&format!("drfrlx bench {id} --threads {threads}"));
    for e in experiments {
        let t0 = std::time::Instant::now();
        let run = run_experiment(e.as_ref(), threads);
        perf.record(e.id(), t0.elapsed().as_secs_f64());
        print!("{}", run.text);
        let (txt, json) = write_artifacts(&outdir, e.id(), &run)?;
        eprintln!(
            "\n[{}: wrote {} and {}; threads={threads}]",
            e.id(),
            txt.display(),
            json.display()
        );
    }
    if let Some(perf_path) = flag_value(args, "--perf") {
        let rendered = match flag_value(args, "--perf-baseline") {
            Some(base_path) => {
                let text = std::fs::read_to_string(base_path)?;
                let before = PerfReport::parse(&text)
                    .ok_or_else(|| format!("`{base_path}` is not a perf report"))?;
                perf.to_json_vs(&before)
            }
            None => perf.to_json(),
        };
        create_parent_dirs(std::path::Path::new(perf_path))?;
        std::fs::write(perf_path, rendered)?;
        eprintln!(
            "[perf: {} experiments, {:.2}s total -> {perf_path}]",
            perf.entries.len(),
            perf.total_seconds()
        );
    }
    ok01(true)
}

fn cmd_conform(args: &[String]) -> CmdResult {
    use drfrlx::conform::{
        check_conformance, check_conformance_resilient, generate, is_unsound, render_corpus,
        render_summary, resume_campaign, run_corpus, run_template_corpus, shrink, CampaignState,
        ConformOptions, ConformResilience,
    };
    use drfrlx::litmus::all_tests;

    let threads = match flag_value(args, "--threads") {
        None => drfrlx::sim::default_threads(),
        Some(v) => v.parse().ok().filter(|&n| n > 0).ok_or("--threads needs a positive integer")?,
    };
    let mut opts = ConformOptions { threads, ..ConformOptions::default() };
    if let Some(v) = flag_value(args, "--seed") {
        opts.seed = v.parse().map_err(|_| "--seed needs an unsigned integer")?;
    }
    if let Some(v) = flag_value(args, "--schedules") {
        opts.schedules =
            v.parse().ok().filter(|&n| n > 0).ok_or("--schedules needs a positive integer")?;
    }
    if args.iter().any(|a| a == "--config") {
        opts.configs = vec![parse_config(args, "GD0")?];
    } else {
        if let Some(name) = flag_value(args, "--protocol") {
            let p =
                Protocol::from_name(name).ok_or("unknown protocol (use gpu, denovo or mesi-wb)")?;
            opts.configs.retain(|c| c.protocol == p);
        }
        if let Some(m) = flag_value(args, "--model") {
            let model = match m.to_ascii_lowercase().as_str() {
                "drf0" => MemoryModel::Drf0,
                "drf1" => MemoryModel::Drf1,
                "drfrlx" => MemoryModel::Drfrlx,
                other => return Err(format!("unknown model `{other}`").into()),
            };
            opts.configs.retain(|c| c.model == model);
        }
    }

    let print_report = |r: &drfrlx::conform::ConformReport| {
        println!(
            "conform {}: {} allowed outcomes (SC oracle, {} executions explored)",
            r.name,
            r.allowed.len(),
            r.oracle_stats.explored
        );
        for v in &r.verdicts {
            println!(
                "  {}: observed {:>3}, violations {}",
                v.config,
                v.observed.len(),
                v.violations.len()
            );
            for o in &v.violations {
                println!("    !! disallowed outcome {}", o.render());
            }
        }
        println!(
            "  verdict: {}, coverage {:.3}",
            if r.sound() { "SOUND" } else { "VIOLATION" },
            r.coverage()
        );
    };

    let res_flags = ResilienceFlags::parse(args)?;
    let budget = res_flags.budget();
    // The oracle polls the budget through its enumeration limits; the
    // simulation matrix polls it at job-claim granularity.
    opts.limits.budget = budget.clone();
    let res = ConformResilience { budget, fault_plan: res_flags.fault_plan() };

    if let Some(n) = flag_value(args, "--fuzz") {
        let n: u64 = n.parse().ok().filter(|&n| n > 0).ok_or("--fuzz needs a positive count")?;
        let mut state = match res_flags.resume {
            Some(path) => {
                let text = std::fs::read_to_string(path)?;
                let state = drfrlx::checkpoint::parse_fuzz_checkpoint(&text, &opts)?;
                if state.total != n {
                    return Err(format!(
                        "checkpoint is for --fuzz {}, not --fuzz {n}",
                        state.total
                    )
                    .into());
                }
                if state.seed != opts.seed {
                    return Err(format!(
                        "checkpoint campaign is rooted at seed {}, not --seed {}",
                        state.seed, opts.seed
                    )
                    .into());
                }
                state
            }
            None => CampaignState::new(opts.seed, n),
        };
        let status = resume_campaign(&mut state, &opts, &res, &mut |seed, r| {
            println!("fuzz seed {seed}: VIOLATION");
            print_report(r);
            let small = shrink(&generate(seed), &|q| is_unsound(q, &opts));
            println!("shrunk reproducer:\n{}", drfrlx::model::emit::emit(&small));
        });
        print!("{}", render_summary(&state));
        if !status.is_complete() {
            println!("status: {status}");
        }
        if let Some(path) = res_flags.checkpoint {
            create_parent_dirs(std::path::Path::new(path))?;
            std::fs::write(path, drfrlx::checkpoint::render_fuzz_checkpoint(&opts, &state))?;
            eprintln!(
                "[checkpoint: wrote {path} ({} of {} programs)]",
                state.next_index, state.total
            );
        }
        return Ok(if !state.violations.is_empty() {
            EXIT_FINDING
        } else if !status.is_complete() || !state.skipped.is_empty() {
            EXIT_INCONCLUSIVE
        } else {
            EXIT_CLEAN
        });
    }
    if res_flags.checkpoint.is_some() || res_flags.resume.is_some() {
        return Err("conform --checkpoint/--resume only apply to --fuzz campaigns".into());
    }

    let target = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_operand(args, a))
        .ok_or("conform needs a test name, `corpus`, a .litmus file, or --fuzz N")?;
    if target == "corpus" || target == "templates" {
        let run = if target == "corpus" { run_corpus } else { run_template_corpus };
        let reports = match run(&opts) {
            Ok(reports) => reports,
            Err(e) => {
                eprintln!("inconclusive: {e}");
                return Ok(EXIT_INCONCLUSIVE);
            }
        };
        print!("{}", render_corpus(&reports, &opts));
        return Ok(if reports.iter().all(|r| r.sound()) { EXIT_CLEAN } else { EXIT_FINDING });
    }
    let p = if target.ends_with(".litmus") {
        load_program(target)?
    } else {
        all_tests()
            .into_iter()
            .find(|t| t.name.eq_ignore_ascii_case(target))
            .map(|t| (t.build)())
            .ok_or_else(|| format!("unknown litmus test `{target}` (or pass a .litmus path)"))?
    };
    if res_flags.engaged() {
        let out = check_conformance_resilient(&p, &opts, &res);
        return Ok(match out.report {
            Some(r) => {
                print_report(&r);
                if !out.status.is_complete() {
                    println!("status: {}", out.status);
                }
                if !r.sound() {
                    EXIT_FINDING
                } else if !out.status.is_complete() {
                    EXIT_INCONCLUSIVE
                } else {
                    EXIT_CLEAN
                }
            }
            None => {
                println!("status: {}", out.status);
                EXIT_INCONCLUSIVE
            }
        });
    }
    let r = match check_conformance(&p, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("inconclusive: {e}");
            return Ok(EXIT_INCONCLUSIVE);
        }
    };
    print_report(&r);
    Ok(if r.sound() { EXIT_CLEAN } else { EXIT_FINDING })
}

/// Is `arg` the operand of a `--flag value` pair (so not a positional)?
fn is_flag_operand(args: &[String], arg: &str) -> bool {
    args.iter()
        .position(|a| a == arg)
        .and_then(|i| i.checked_sub(1))
        .and_then(|i| args.get(i))
        .is_some_and(|prev| prev.starts_with("--"))
}

fn cmd_trace(args: &[String]) -> CmdResult {
    use drfrlx::sim::{chrome_trace, render_diff, render_profile, run_workload_traced};

    let name = args.first().ok_or("trace needs a workload name (see `drfrlx list`)")?;
    let config = parse_config(args, "GD0")?;
    let params = match flag_value(args, "--platform").unwrap_or("integrated") {
        "integrated" => SysParams::integrated(),
        "discrete" => SysParams::discrete_gpu(),
        other => return Err(format!("unknown platform `{other}`").into()),
    };
    let events = match flag_value(args, "--events") {
        None => 65536,
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--events needs a positive integer")?,
    };
    let spec = all_workloads()
        .into_iter()
        .chain(extensions())
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown workload `{name}` (see `drfrlx list`)"))?;
    let kernel = spec.kernel();

    let run = |config: SystemConfig| -> Result<_, Box<dyn std::error::Error>> {
        let r = run_workload_traced(kernel.as_ref(), config, &params, events);
        kernel
            .validate(&r.memory)
            .map_err(|e| format!("functional check failed under {config}: {e}"))?;
        Ok(r)
    };

    let r = run(config)?;
    let buf = r.trace.as_ref().expect("traced run carries a buffer");
    let label = format!("{} {} ({}, {} cycles)", spec.name, config, r.platform, r.cycles);
    print!("{}", render_profile(buf, &label));
    if buf.dropped() > 0 {
        eprintln!(
            "warning: trace ring saturated; {} of {} events dropped (keep-newest \
             — raise --events to keep more history)",
            buf.dropped(),
            buf.recorded()
        );
    }

    if let Some(out) = flag_value(args, "--out") {
        let path = std::path::Path::new(out);
        create_parent_dirs(path)?;
        std::fs::write(path, chrome_trace(buf, &label))?;
        eprintln!(
            "[trace: wrote {} ({} of {} events kept)]",
            path.display(),
            buf.len(),
            buf.recorded()
        );
    }

    if let Some(cfg2) = flag_value(args, "--diff") {
        let config2 = SystemConfig::from_abbrev(cfg2)
            .ok_or("unknown --diff config (use GD0..GDR, DD0..DDR or MD0..MDR)")?;
        let r2 = run(config2)?;
        let buf2 = r2.trace.as_ref().expect("traced run carries a buffer");
        println!();
        print!("{}", render_diff(&config.to_string(), buf, &config2.to_string(), buf2));
    }
    ok01(true)
}

fn cmd_simulate(args: &[String]) -> CmdResult {
    let name = args.first().ok_or("simulate needs a workload name (see `drfrlx list`)")?;
    let config = parse_config(args, "DDR")?;
    let params = match flag_value(args, "--platform").unwrap_or("integrated") {
        "integrated" => SysParams::integrated(),
        "discrete" => SysParams::discrete_gpu(),
        other => return Err(format!("unknown platform `{other}`").into()),
    };
    let spec = all_workloads()
        .into_iter()
        .chain(extensions())
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown workload `{name}` (see `drfrlx list`)"))?;
    let kernel = spec.kernel();
    let r = run_workload(kernel.as_ref(), config, &params);
    kernel.validate(&r.memory).map_err(|e| format!("functional check failed: {e}"))?;
    println!("{} on {} ({}):", spec.name, config, r.platform);
    println!("  cycles              {}", r.cycles);
    println!("  energy              {}", r.energy);
    println!("  atomics             {} ({} overlapped)", r.atomics, r.atomics_overlapped);
    println!("  L1 hits/misses      {}/{}", r.proto.l1_hits, r.proto.l1_misses);
    println!("  invalidation events {}", r.proto.invalidation_events);
    println!("  SB flushes          {}", r.proto.sb_flushes);
    println!("  atomics @L1/@L2     {}/{}", r.proto.atomics_at_l1, r.proto.atomics_at_l2);
    println!("  MSHR coalesced      {}", r.proto.mshr_coalesced);
    println!("  remote L1 transfers {}", r.proto.remote_l1_transfers);
    println!("  sharer invalidations {}", r.proto.sharer_invalidations);
    println!("  functional check    ok");
    ok01(true)
}
