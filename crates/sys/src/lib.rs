//! # hsim-sys — the full heterogeneous system
//!
//! Assembles the substrate crates into the paper's evaluated platform
//! (§4.1, Table 2): 15 GPU CUs + 1 CPU core on a 4×4 mesh, private
//! 32 KB L1s + scratchpads, a 16-bank 4 MB NUCA L2, and the six
//! {GPU, DeNovo} × {DRF0, DRF1, DRFrlx} configurations (§4.3:
//! GD0, GD1, GDR, DD0, DD1, DDR).
//!
//! ```no_run
//! use hsim_sys::{run_workload, SysParams};
//! use drfrlx_core::SystemConfig;
//! # fn kernel() -> Box<dyn hsim_gpu::Kernel> { unimplemented!() }
//!
//! let params = SysParams::integrated();
//! let report = run_workload(kernel().as_ref(), SystemConfig::from_abbrev("DDR").unwrap(), &params);
//! println!("{} cycles, {}", report.cycles, report.energy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod config;
mod run;
mod sweep;

pub use backend::CoherenceBackend;
pub use config::SysParams;
pub use run::{run_workload, run_workload_traced, total_ratio, RunReport};
pub use sweep::{
    default_threads, extended_config_jobs, run_matrix, run_matrix_resilient, six_config_jobs,
    MatrixOutcome, MatrixResilience, SimJob,
};

pub use drfrlx_core::{MemoryModel, Protocol, SystemConfig};
pub use hsim_trace::{
    chrome_trace, render_diff, render_profile, Component, EventKind, KindTotals, NoTrace,
    SharedTracer, Trace, TraceBuffer, TraceEvent,
};
