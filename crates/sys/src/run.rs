//! Running one kernel on one configuration.

use crate::config::SysParams;
use crate::CoherenceBackend;
use drfrlx_core::SystemConfig;
use hsim_coherence::{MemorySystem, ProtoStats};
use hsim_energy::{breakdown, EnergyBreakdown, EnergyCounters};
use hsim_gpu::{run_kernel_traced, EngineReport, Kernel};
use hsim_trace::{NoTrace, SharedTracer, Trace, TraceBuffer};

/// Everything one simulation run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Kernel name.
    pub kernel: String,
    /// Protocol × model configuration.
    pub config: SystemConfig,
    /// Platform name ("integrated"/"discrete").
    pub platform: String,
    /// Execution time in cycles.
    pub cycles: u64,
    /// Raw energy event counts.
    pub counters: EnergyCounters,
    /// The Figure 3(b)/4(b) energy breakdown.
    pub energy: EnergyBreakdown,
    /// Protocol event statistics.
    pub proto: ProtoStats,
    /// Engine statistics (atomics, overlap, barriers...).
    pub atomics: u64,
    /// Overlapped (fire-and-forget) atomics.
    pub atomics_overlapped: u64,
    /// Final memory image.
    pub memory: Vec<u64>,
    /// The structured event trace, when the run was traced
    /// ([`run_workload_traced`]); `None` for untraced runs.
    pub trace: Option<TraceBuffer>,
}

/// A total normalization: `num / den`, except that a degenerate
/// baseline (zero, negative or non-finite) is treated as 1.0 — and a
/// degenerate numerator over a degenerate baseline is exactly 1.0 —
/// so no `NaN` or `inf` can reach tables or JSON.
pub fn total_ratio(num: f64, den: f64) -> f64 {
    let num_ok = num.is_finite() && num > 0.0;
    let den_ok = den.is_finite() && den > 0.0;
    match (num_ok, den_ok) {
        (true, true) => num / den,
        (true, false) => num,
        (false, true) => 0.0,
        (false, false) => 1.0,
    }
}

impl RunReport {
    /// Execution time of `self` normalized to `base` (1.0 = equal;
    /// lower is better). Total: a zero-cycle baseline normalizes as 1.
    pub fn normalized_time(&self, base: &RunReport) -> f64 {
        total_ratio(self.cycles as f64, base.cycles as f64)
    }

    /// Total energy normalized to `base`. Total in the same sense as
    /// [`RunReport::normalized_time`].
    pub fn normalized_energy(&self, base: &RunReport) -> f64 {
        total_ratio(self.energy.total(), base.energy.total())
    }
}

/// Run `kernel` under `config` on the platform described by `params`.
pub fn run_workload(kernel: &dyn Kernel, config: SystemConfig, params: &SysParams) -> RunReport {
    run_with(kernel, config, params, NoTrace)
}

/// [`run_workload`] with structured event tracing into a ring of
/// `capacity` events. Timing, statistics and the memory image are
/// identical to the untraced run; the report's `trace` field carries
/// the recorded [`TraceBuffer`] (complete per-kind totals plus the
/// newest `capacity` events).
pub fn run_workload_traced(
    kernel: &dyn Kernel,
    config: SystemConfig,
    params: &SysParams,
    capacity: usize,
) -> RunReport {
    let tracer = SharedTracer::with_capacity(capacity);
    let mut report = run_with(kernel, config, params, tracer.clone());
    report.trace = Some(tracer.into_buffer());
    report
}

fn run_with<T: Trace>(
    kernel: &dyn Kernel,
    config: SystemConfig,
    params: &SysParams,
    tracer: T,
) -> RunReport {
    let mem = MemorySystem::with_tracer(config.protocol, params.memsys.clone(), tracer.clone());
    let mut backend = CoherenceBackend::new(mem);
    let mut engine = params.engine.clone();
    engine.model = config.model;
    let EngineReport {
        cycles,
        core_ops,
        scratch_accesses,
        barriers: _,
        memory,
        atomics,
        atomics_overlapped,
    } = run_kernel_traced(kernel, &engine, &mut backend, tracer);

    let mem = backend.into_inner();
    let (l1, l1_tags, l2, dram, flits) = mem.energy_events();
    let counters = EnergyCounters {
        core_ops,
        scratch_accesses,
        l1_accesses: l1,
        l1_tag_ops: l1_tags,
        l2_accesses: l2,
        dram_accesses: dram,
        noc_flit_hops: flits,
    };
    RunReport {
        kernel: kernel.name(),
        config,
        platform: params.name.clone(),
        cycles,
        energy: breakdown(&params.energy, &counters),
        counters,
        proto: mem.stats().clone(),
        atomics,
        atomics_overlapped,
        memory,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_matrix, six_config_jobs};
    use drfrlx_core::OpClass;
    use hsim_gpu::{Op, RmwKind, WorkItem};
    use std::sync::Arc;

    fn run_all_configs(kernel: impl Kernel + 'static, params: &SysParams) -> Vec<RunReport> {
        run_matrix(&six_config_jobs("test", Arc::new(kernel), params, false), 1)
    }

    /// Contended counter kernel: every context issues `n` increments.
    struct Hammer {
        n: usize,
        class: OpClass,
    }
    struct HammerItem {
        left: usize,
        class: OpClass,
    }
    impl WorkItem for HammerItem {
        fn next(&mut self, _last: Option<u64>) -> Op {
            if self.left == 0 {
                return Op::Done;
            }
            self.left -= 1;
            Op::Rmw { addr: 0, rmw: RmwKind::Add, operand: 1, class: self.class, use_result: false }
        }
    }
    impl Kernel for Hammer {
        fn name(&self) -> String {
            "hammer".into()
        }
        fn blocks(&self) -> usize {
            15
        }
        fn threads_per_block(&self) -> usize {
            4
        }
        fn memory_words(&self) -> usize {
            64
        }
        fn item(&self, _b: usize, _t: usize) -> Box<dyn WorkItem> {
            Box::new(HammerItem { left: self.n, class: self.class })
        }
    }

    #[test]
    fn all_six_configs_run_and_agree_functionally() {
        let k = Hammer { n: 4, class: OpClass::Commutative };
        let params = SysParams::integrated();
        let reports = run_all_configs(k, &params);
        assert_eq!(reports.len(), 6);
        for r in &reports {
            assert_eq!(r.memory[0], 15 * 4 * 4, "{}: wrong count", r.config);
            assert!(r.cycles > 0);
            assert!(r.energy.total() > 0.0);
        }
    }

    #[test]
    fn weaker_models_are_not_slower() {
        let k = Hammer { n: 8, class: OpClass::Commutative };
        let params = SysParams::integrated();
        let r = run_all_configs(k, &params);
        let (gd0, gd1, gdr) = (&r[0], &r[1], &r[2]);
        let (dd0, dd1, ddr) = (&r[3], &r[4], &r[5]);
        assert!(gd1.cycles <= gd0.cycles, "GD1 {} > GD0 {}", gd1.cycles, gd0.cycles);
        assert!(gdr.cycles <= gd1.cycles, "GDR {} > GD1 {}", gdr.cycles, gd1.cycles);
        assert!(dd1.cycles <= dd0.cycles);
        assert!(ddr.cycles <= dd1.cycles);
        // Only the relaxed model overlaps atomics.
        assert_eq!(gd0.atomics_overlapped, 0);
        assert!(gdr.atomics_overlapped > 0);
    }

    #[test]
    fn gpu_and_denovo_place_atomics_differently() {
        let k = Hammer { n: 4, class: OpClass::Commutative };
        let params = SysParams::integrated();
        let g = run_workload(&k, SystemConfig::from_abbrev("GDR").unwrap(), &params);
        let d = run_workload(&k, SystemConfig::from_abbrev("DDR").unwrap(), &params);
        assert!(g.proto.atomics_at_l2 > 0);
        assert_eq!(g.proto.atomics_at_l1, 0);
        assert!(d.proto.atomics_at_l1 > 0);
        assert_eq!(d.proto.atomics_at_l2, 0);
    }

    #[test]
    fn drf0_invalidates_and_flushes() {
        let k = Hammer { n: 2, class: OpClass::Commutative };
        let params = SysParams::integrated();
        let gd0 = run_workload(&k, SystemConfig::from_abbrev("GD0").unwrap(), &params);
        let gdr = run_workload(&k, SystemConfig::from_abbrev("GDR").unwrap(), &params);
        assert!(gd0.proto.invalidation_events > 0);
        assert!(gd0.proto.sb_flushes > 0);
        assert_eq!(gdr.proto.invalidation_events, 0);
        assert_eq!(gdr.proto.sb_flushes, 0);
    }

    #[test]
    fn mesi_configs_run_with_owned_atomics_and_free_acquires() {
        let k = Hammer { n: 4, class: OpClass::Commutative };
        let params = SysParams::integrated();
        let jobs = crate::sweep::extended_config_jobs("hammer", Arc::new(k), &params, false);
        let reports = run_matrix(&jobs, 1);
        assert_eq!(reports.len(), 9);
        let md0 = &reports[6];
        assert_eq!(md0.config, SystemConfig::from_abbrev("MD0").unwrap());
        assert_eq!(md0.memory[0], 15 * 4 * 4, "MESI functional result");
        // Writeback protocol: atomics perform at the owning L1 and the
        // hardware keeps caches coherent, so acquires invalidate
        // nothing even under DRF0.
        assert!(md0.proto.atomics_at_l1 > 0);
        assert_eq!(md0.proto.atomics_at_l2, 0);
        assert_eq!(md0.proto.invalidation_events, 0);
        // A contended counter bounces ownership between CUs: the
        // directory must have invalidated or recalled remote copies.
        assert!(md0.proto.remote_l1_transfers > 0);
    }

    #[test]
    fn discrete_platform_is_slower() {
        let k = Hammer { n: 4, class: OpClass::Commutative };
        let i =
            run_workload(&k, SystemConfig::from_abbrev("GD0").unwrap(), &SysParams::integrated());
        let d =
            run_workload(&k, SystemConfig::from_abbrev("GD0").unwrap(), &SysParams::discrete_gpu());
        assert!(d.cycles > i.cycles);
        assert_eq!(d.platform, "discrete");
    }

    #[test]
    fn total_ratio_never_leaks_nan_or_inf() {
        assert_eq!(total_ratio(2.0, 4.0), 0.5);
        assert_eq!(total_ratio(3.0, 0.0), 3.0);
        assert_eq!(total_ratio(0.0, 4.0), 0.0);
        assert_eq!(total_ratio(0.0, 0.0), 1.0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            assert!(total_ratio(2.0, bad).is_finite());
            assert!(total_ratio(bad, 2.0).is_finite());
            assert!(total_ratio(bad, bad).is_finite());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let k = Hammer { n: 4, class: OpClass::Commutative };
        let params = SysParams::integrated();
        let cfg = SystemConfig::from_abbrev("DDR").unwrap();
        let a = run_workload(&k, cfg, &params);
        let b = run_workload(&k, cfg, &params);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.counters, b.counters);
    }
}
