//! Adapter: the execution engine's [`MemoryBackend`] over the
//! protocol-level [`MemorySystem`].

use hsim_coherence::{AccessKind, MemorySystem};
use hsim_gpu::MemoryBackend;

/// Routes engine memory operations into the coherence protocol.
pub struct CoherenceBackend {
    mem: MemorySystem,
}

impl CoherenceBackend {
    /// Wrap a memory system.
    pub fn new(mem: MemorySystem) -> CoherenceBackend {
        CoherenceBackend { mem }
    }

    /// Access the wrapped memory system (stats).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Unwrap.
    pub fn into_inner(self) -> MemorySystem {
        self.mem
    }
}

impl MemoryBackend for CoherenceBackend {
    fn load(&mut self, now: u64, cu: usize, addr: u64, atomic: bool) -> u64 {
        let kind = if atomic { AccessKind::AtomicLoad } else { AccessKind::DataLoad };
        self.mem.load(now, cu, addr, kind)
    }

    fn store(&mut self, now: u64, cu: usize, addr: u64, atomic: bool) -> u64 {
        let kind = if atomic { AccessKind::AtomicStore } else { AccessKind::DataStore };
        self.mem.store(now, cu, addr, kind)
    }

    fn rmw(&mut self, now: u64, cu: usize, addr: u64) -> u64 {
        self.mem.rmw(now, cu, addr)
    }

    fn acquire(&mut self, now: u64, cu: usize) -> u64 {
        self.mem.acquire(now, cu)
    }

    fn release(&mut self, now: u64, cu: usize) -> u64 {
        self.mem.release(now, cu)
    }
}
