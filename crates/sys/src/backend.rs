//! Adapter: the execution engine's [`MemoryBackend`] over the
//! protocol-level [`MemorySystem`].

use hsim_coherence::{AccessKind, MemorySystem};
use hsim_gpu::MemoryBackend;
use hsim_trace::{NoTrace, Trace};

/// Routes engine memory operations into the coherence protocol.
///
/// Generic over the [`Trace`] sink of the wrapped memory system; the
/// default ([`NoTrace`]) compiles all tracing away.
pub struct CoherenceBackend<T: Trace = NoTrace> {
    mem: MemorySystem<T>,
}

impl<T: Trace> CoherenceBackend<T> {
    /// Wrap a memory system.
    pub fn new(mem: MemorySystem<T>) -> CoherenceBackend<T> {
        CoherenceBackend { mem }
    }

    /// Access the wrapped memory system (stats).
    pub fn mem(&self) -> &MemorySystem<T> {
        &self.mem
    }

    /// Unwrap.
    pub fn into_inner(self) -> MemorySystem<T> {
        self.mem
    }
}

impl<T: Trace> MemoryBackend for CoherenceBackend<T> {
    fn load(&mut self, now: u64, cu: usize, addr: u64, atomic: bool) -> u64 {
        let kind = if atomic { AccessKind::AtomicLoad } else { AccessKind::DataLoad };
        self.mem.load(now, cu, addr, kind)
    }

    fn store(&mut self, now: u64, cu: usize, addr: u64, atomic: bool) -> u64 {
        let kind = if atomic { AccessKind::AtomicStore } else { AccessKind::DataStore };
        self.mem.store(now, cu, addr, kind)
    }

    fn rmw(&mut self, now: u64, cu: usize, addr: u64) -> u64 {
        self.mem.rmw(now, cu, addr)
    }

    fn acquire(&mut self, now: u64, cu: usize) -> u64 {
        self.mem.acquire(now, cu)
    }

    fn release(&mut self, now: u64, cu: usize) -> u64 {
        self.mem.release(now, cu)
    }
}
