//! System parameters (paper Table 2) and the discrete-GPU variant used
//! for the Figure 1 motivation experiment.

use hsim_coherence::MemSysParams;
use hsim_energy::EnergyParams;
use hsim_gpu::EngineParams;
use hsim_mem::DramParams;
use hsim_noc::NocParams;

/// Full-system parameters.
#[derive(Debug, Clone)]
pub struct SysParams {
    /// Configuration name ("integrated", "discrete").
    pub name: String,
    /// Execution-engine parameters (CUs, contexts, barriers).
    pub engine: EngineParams,
    /// Memory-system parameters (caches, NoC, DRAM).
    pub memsys: MemSysParams,
    /// Energy per event.
    pub energy: EnergyParams,
}

impl SysParams {
    /// The paper's integrated CPU-GPU platform (Table 2): 1 CPU core +
    /// 15 GPU CUs, 32 KB 8-way L1s, 4 MB 16-bank NUCA L2, 128-entry
    /// store buffers and L1 MSHRs, 4×4 mesh.
    pub fn integrated() -> SysParams {
        SysParams {
            name: "integrated".into(),
            engine: EngineParams::default(),
            memsys: MemSysParams::default(),
            energy: EnergyParams::default(),
        }
    }

    /// A discrete-GPU-like platform for the Figure 1 experiment:
    /// longer, lower-bandwidth path to the LLC, slower memory, heavier
    /// atomic serialization at the L2 — the regime where SC atomics are
    /// catastrophic and relaxed atomics shine on real discrete cards.
    pub fn discrete_gpu() -> SysParams {
        let mut p = SysParams::integrated();
        p.name = "discrete".into();
        p.memsys.noc = NocParams { hop_latency: 10, cycles_per_flit: 2, ..NocParams::default() };
        p.memsys.l2_latency = 60;
        p.memsys.l2_occupancy = 16;
        p.memsys.dram = DramParams { latency: 320, channels: 2, occupancy: 16 };
        p
    }

    /// Table 2 as printable rows.
    pub fn table2_rows(&self) -> Vec<(String, String)> {
        vec![
            ("CPU cores".into(), "1 (functional only)".into()),
            ("GPU CUs".into(), self.engine.num_cus.to_string()),
            ("Contexts per CU".into(), self.engine.max_contexts_per_cu.to_string()),
            (
                "L1 size".into(),
                format!("{} sets x {} ways x 64 B", self.memsys.l1.sets, self.memsys.l1.ways),
            ),
            ("L1 hit latency".into(), format!("{} cycle", self.memsys.l1_hit_latency)),
            ("L1 MSHRs".into(), format!("{} entries", self.memsys.l1_mshrs)),
            ("Store buffer".into(), format!("{} entries", self.memsys.store_buffer)),
            ("L2 banks (NUCA)".into(), self.memsys.l2_banks.to_string()),
            ("L2 latency".into(), format!("{} + NoC cycles", self.memsys.l2_latency)),
            (
                "NoC".into(),
                format!(
                    "{}x{} mesh, {} cycles/hop",
                    self.memsys.noc.width, self.memsys.noc.height, self.memsys.noc.hop_latency
                ),
            ),
            ("Memory latency".into(), format!("{} + queueing cycles", self.memsys.dram.latency)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrated_matches_table2_shape() {
        let p = SysParams::integrated();
        assert_eq!(p.engine.num_cus, 15);
        assert_eq!(p.memsys.l2_banks, 16);
        assert_eq!(p.memsys.l1_mshrs, 128);
        assert_eq!(p.memsys.store_buffer, 128);
        assert_eq!(p.memsys.noc.width * p.memsys.noc.height, 16);
    }

    #[test]
    fn discrete_is_slower_to_the_llc() {
        let i = SysParams::integrated();
        let d = SysParams::discrete_gpu();
        assert!(d.memsys.noc.hop_latency > i.memsys.noc.hop_latency);
        assert!(d.memsys.l2_occupancy > i.memsys.l2_occupancy);
        assert!(d.memsys.dram.latency > i.memsys.dram.latency);
    }

    #[test]
    fn table2_mentions_key_parameters() {
        let rows = SysParams::integrated().table2_rows();
        let text: String = rows.iter().map(|(k, v)| format!("{k}={v};")).collect();
        assert!(text.contains("GPU CUs=15"));
        assert!(text.contains("mesh"));
    }
}
