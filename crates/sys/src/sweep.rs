//! The sweep engine: declarative simulation jobs fanned out across
//! worker threads.
//!
//! A [`SimJob`] names one cell of an experiment matrix — a kernel, a
//! [`SystemConfig`] and the platform [`SysParams`] — and [`run_matrix`]
//! executes a whole job list on `threads` workers. Every simulation is
//! deterministic and owns its memory system, so jobs are embarrassingly
//! parallel; reports come back **in job order**, which makes parallel
//! and serial sweeps byte-identical (`threads = 1` and `threads = 8`
//! produce the same `Vec<RunReport>`).
//!
//! The worker count for CLI entry points comes from
//! [`default_threads`]: the `DRFRLX_THREADS` environment variable if
//! set, else [`std::thread::available_parallelism`].

use crate::config::SysParams;
use crate::run::{run_workload, run_workload_traced, RunReport};
use drfrlx_core::resilience::{Budget, EngineId, ExhaustReason, Fault, FaultPlan, RunStatus};
use drfrlx_core::SystemConfig;
use hsim_gpu::Kernel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One simulation to run: a kernel under one configuration on one
/// platform.
#[derive(Clone)]
pub struct SimJob {
    /// Display/workload id for reports and result files (the Table 3
    /// name, e.g. `"BC-1"` — not necessarily the kernel's own name).
    pub workload: String,
    /// The kernel to simulate; shared, immutable, run per-thread.
    pub kernel: Arc<dyn Kernel>,
    /// Protocol × model configuration.
    pub config: SystemConfig,
    /// Platform parameters.
    pub params: SysParams,
    /// Check the final memory image against the kernel's oracle and
    /// panic on mismatch (a simulator bug, not a measurement).
    pub validate: bool,
    /// Record a structured event trace with this ring capacity
    /// (`None` = untraced; tracing compiles to nothing in that run).
    pub trace: Option<usize>,
}

impl SimJob {
    /// A validated job (the default for experiment harnesses).
    pub fn new(
        workload: impl Into<String>,
        kernel: Arc<dyn Kernel>,
        config: SystemConfig,
        params: &SysParams,
    ) -> SimJob {
        SimJob {
            workload: workload.into(),
            kernel,
            config,
            params: params.clone(),
            validate: true,
            trace: None,
        }
    }

    /// Record a structured event trace with a ring of `capacity` events;
    /// the report's `trace` field carries the buffer.
    pub fn traced(mut self, capacity: usize) -> SimJob {
        self.trace = Some(capacity);
        self
    }
}

/// The jobs for one workload under all six paper configurations, in
/// the paper's order (GD0, GD1, GDR, DD0, DD1, DDR).
pub fn six_config_jobs(
    workload: &str,
    kernel: Arc<dyn Kernel>,
    params: &SysParams,
    validate: bool,
) -> Vec<SimJob> {
    SystemConfig::all()
        .into_iter()
        .map(|config| SimJob {
            workload: workload.to_string(),
            kernel: Arc::clone(&kernel),
            config,
            params: params.clone(),
            validate,
            trace: None,
        })
        .collect()
}

/// The jobs for one workload under all nine configurations — the paper
/// six plus MESI-WB × {DRF0, DRF1, DRFrlx} (MD0, MD1, MDR) — in
/// [`SystemConfig::extended`] order.
pub fn extended_config_jobs(
    workload: &str,
    kernel: Arc<dyn Kernel>,
    params: &SysParams,
    validate: bool,
) -> Vec<SimJob> {
    SystemConfig::extended()
        .into_iter()
        .map(|config| SimJob {
            workload: workload.to_string(),
            kernel: Arc::clone(&kernel),
            config,
            params: params.clone(),
            validate,
            trace: None,
        })
        .collect()
}

/// Worker count for sweeps: `DRFRLX_THREADS` if set to a positive
/// integer, else the host's available parallelism.
pub fn default_threads() -> usize {
    std::env::var("DRFRLX_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Run every job on `threads` workers and return the reports **in job
/// order**, independent of scheduling.
///
/// # Panics
///
/// Panics if a validated job produces a functionally wrong result.
pub fn run_matrix(jobs: &[SimJob], threads: usize) -> Vec<RunReport> {
    let threads = threads.clamp(1, jobs.len().max(1));
    if threads == 1 {
        return jobs.iter().map(run_job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunReport>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let report = run_job(job);
                *slots[i].lock().expect("slot lock") = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot lock").expect("every job ran"))
        .collect()
}

fn run_job(job: &SimJob) -> RunReport {
    let report = match job.trace {
        Some(capacity) => {
            run_workload_traced(job.kernel.as_ref(), job.config, &job.params, capacity)
        }
        None => run_workload(job.kernel.as_ref(), job.config, &job.params),
    };
    if job.validate {
        if let Err(e) = job.kernel.validate(&report.memory) {
            panic!("{} produced a wrong result under {}: {e}", job.workload, job.config);
        }
    }
    report
}

/// Resilience policy for [`run_matrix_resilient`]. The default —
/// no budget, no fault plan — behaves like [`run_matrix`] except that
/// a panicking job degrades the sweep instead of aborting it.
#[derive(Clone, Default)]
pub struct MatrixResilience {
    /// Shared resource budget (deadline / cancel flag), polled once
    /// per job claim; a deadline also arms a watchdog thread.
    pub budget: Option<Arc<Budget>>,
    /// Deterministic fault injection (chaos testing only).
    pub fault_plan: Option<FaultPlan>,
}

/// Result of a resilient sweep.
pub struct MatrixOutcome {
    /// One slot per job, **in job order**; `None` where the job was
    /// lost (panicked twice) or never ran (budget trip).
    pub reports: Vec<Option<RunReport>>,
    /// How the sweep ended: `Degraded` names lost jobs, and
    /// `Inconclusive`'s frontier names jobs still to run.
    pub status: RunStatus,
}

impl MatrixOutcome {
    /// The completed reports with their job indices, in job order.
    pub fn completed(&self) -> impl Iterator<Item = (usize, &RunReport)> {
        self.reports.iter().enumerate().filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
    }
}

/// How long an injected stall waits for the watchdog before failing
/// on its own.
const STALL_FALLBACK: Duration = Duration::from_millis(25);

/// [`run_matrix`], resilient: every job runs under `catch_unwind` and
/// is retried once before being reported lost, the budget is polled
/// between job claims (with a watchdog thread flipping the cancel
/// flag at the deadline), and a seeded [`FaultPlan`] can inject
/// panics, stalls and exhaustion per `(job, attempt)` — the same
/// discipline as the checker's shard pool. Never panics, never
/// aborts: the outcome is `Complete`, `Degraded { lost }` or
/// `Inconclusive { reason, frontier }`, and completed reports stay in
/// job order either way.
pub fn run_matrix_resilient(
    jobs: &[SimJob],
    threads: usize,
    res: &MatrixResilience,
) -> MatrixOutcome {
    let threads = threads.clamp(1, jobs.len().max(1));
    let exhausted: Mutex<Option<ExhaustReason>> = Mutex::new(None);
    let lost: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let slots: Vec<Mutex<Option<RunReport>>> = jobs.iter().map(|_| Mutex::new(None)).collect();

    // One job, first try plus at most one retry.
    let run_one = |i: usize| {
        for attempt in 0..2 {
            let fault =
                res.fault_plan.as_ref().and_then(|pl| pl.fault_for(EngineId::Sweep, i, attempt));
            match fault {
                Some(Fault::Stall) => {
                    let cap = Instant::now() + STALL_FALLBACK;
                    while !res.budget.as_deref().is_some_and(Budget::cancelled)
                        && Instant::now() < cap
                    {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    continue;
                }
                Some(Fault::Exhaust) => continue,
                _ => {}
            }
            let r = catch_unwind(AssertUnwindSafe(|| {
                if matches!(fault, Some(Fault::Panic)) {
                    panic!("injected fault: sweep job {i} attempt {attempt}");
                }
                run_job(&jobs[i])
            }));
            if let Ok(report) = r {
                *slots[i].lock().expect("slot lock") = Some(report);
                return;
            }
        }
        lost.lock().expect("lost lock").push(i);
    };
    // Budget poll at job-claim granularity: simulations have no
    // in-loop poll sites, so this is where a deadline or cancellation
    // takes effect.
    let claimable = || {
        if exhausted.lock().expect("exhausted lock").is_some() {
            return false;
        }
        if let Some(b) = &res.budget {
            if let Err(r) = b.check(0) {
                let mut g = exhausted.lock().expect("exhausted lock");
                if g.is_none() {
                    *g = Some(r);
                }
                return false;
            }
        }
        true
    };

    let done = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        if let Some(b) = res.budget.clone() {
            if let Some(deadline) = b.deadline() {
                let done = &done;
                scope.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let now = Instant::now();
                        if now >= deadline {
                            b.cancel();
                            break;
                        }
                        std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
                    }
                });
            }
        }
        if threads == 1 {
            for i in 0..jobs.len() {
                if !claimable() {
                    break;
                }
                run_one(i);
            }
        } else {
            let (next, run_one, claimable) = (&next, &run_one, &claimable);
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() || !claimable() {
                            break;
                        }
                        run_one(i);
                    })
                })
                .collect();
            for w in workers {
                let _ = w.join();
            }
        }
        done.store(true, Ordering::Relaxed);
    });

    let mut lost = lost.into_inner().expect("lost lock");
    lost.sort_unstable();
    let reports: Vec<Option<RunReport>> =
        slots.into_iter().map(|s| s.into_inner().expect("slot lock")).collect();
    let exhausted = exhausted.into_inner().expect("exhausted lock");
    let frontier: Vec<usize> = reports
        .iter()
        .enumerate()
        .filter(|(i, r)| r.is_none() && !lost.contains(i))
        .map(|(i, _)| i)
        .collect();
    let status = if !frontier.is_empty() {
        let mut f = frontier;
        f.extend_from_slice(&lost);
        f.sort_unstable();
        RunStatus::Inconclusive {
            reason: exhausted.unwrap_or(ExhaustReason::Cancelled),
            frontier: f,
        }
    } else if !lost.is_empty() {
        RunStatus::Degraded { lost }
    } else {
        RunStatus::Complete
    };
    MatrixOutcome { reports, status }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::OpClass;
    use hsim_gpu::{Op, RmwKind, WorkItem};

    struct Hammer {
        n: usize,
    }
    struct HammerItem {
        left: usize,
    }
    impl WorkItem for HammerItem {
        fn next(&mut self, _last: Option<u64>) -> Op {
            if self.left == 0 {
                return Op::Done;
            }
            self.left -= 1;
            Op::Rmw {
                addr: 0,
                rmw: RmwKind::Add,
                operand: 1,
                class: OpClass::Commutative,
                use_result: false,
            }
        }
    }
    impl Kernel for Hammer {
        fn name(&self) -> String {
            "hammer".into()
        }
        fn blocks(&self) -> usize {
            15
        }
        fn threads_per_block(&self) -> usize {
            4
        }
        fn memory_words(&self) -> usize {
            64
        }
        fn item(&self, _b: usize, _t: usize) -> Box<dyn WorkItem> {
            Box::new(HammerItem { left: self.n })
        }
        fn validate(&self, mem: &[u64]) -> Result<(), String> {
            let want = (15 * 4 * self.n) as u64;
            if mem[0] == want {
                Ok(())
            } else {
                Err(format!("count {} != {want}", mem[0]))
            }
        }
    }

    fn hammer_matrix() -> Vec<SimJob> {
        let params = SysParams::integrated();
        let mut jobs = Vec::new();
        for n in [2usize, 4, 8] {
            let kernel: Arc<dyn Kernel> = Arc::new(Hammer { n });
            jobs.extend(six_config_jobs(&format!("hammer-{n}"), kernel, &params, true));
        }
        jobs
    }

    #[test]
    fn parallel_sweep_is_deterministic_and_ordered() {
        let jobs = hammer_matrix();
        let serial = run_matrix(&jobs, 1);
        for threads in [2usize, 4, 8] {
            let parallel = run_matrix(&jobs, threads);
            assert_eq!(serial.len(), parallel.len());
            for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(a.config, jobs[i].config, "report order matches job order");
                assert_eq!(a.config, b.config);
                assert_eq!(a.cycles, b.cycles, "job {i} ({}) cycles differ", jobs[i].workload);
                assert_eq!(a.counters, b.counters, "job {i} counters differ");
                assert_eq!(a.memory, b.memory);
            }
        }
    }

    #[test]
    fn oversized_thread_counts_are_clamped() {
        let params = SysParams::integrated();
        let kernel: Arc<dyn Kernel> = Arc::new(Hammer { n: 2 });
        let jobs = six_config_jobs("hammer", kernel, &params, true);
        let reports = run_matrix(&jobs, 64);
        assert_eq!(reports.len(), 6);
    }

    #[test]
    fn empty_matrix_is_fine() {
        assert!(run_matrix(&[], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong result")]
    fn validation_failures_panic_with_context() {
        struct Broken;
        impl Kernel for Broken {
            fn name(&self) -> String {
                "broken".into()
            }
            fn blocks(&self) -> usize {
                1
            }
            fn threads_per_block(&self) -> usize {
                1
            }
            fn memory_words(&self) -> usize {
                4
            }
            fn item(&self, _b: usize, _t: usize) -> Box<dyn WorkItem> {
                struct Item;
                impl WorkItem for Item {
                    fn next(&mut self, _last: Option<u64>) -> Op {
                        Op::Done
                    }
                }
                Box::new(Item)
            }
            fn validate(&self, _mem: &[u64]) -> Result<(), String> {
                Err("always wrong".into())
            }
        }
        let params = SysParams::integrated();
        let jobs = six_config_jobs("broken", Arc::new(Broken), &params, true);
        run_matrix(&jobs, 1);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn resilient_complete_sweep_matches_run_matrix() {
        let jobs = hammer_matrix();
        let plain = run_matrix(&jobs, 1);
        for threads in [1usize, 4] {
            let out = run_matrix_resilient(&jobs, threads, &MatrixResilience::default());
            assert_eq!(out.status, RunStatus::Complete, "t={threads}");
            for (i, r) in out.reports.iter().enumerate() {
                let r = r.as_ref().expect("complete sweep fills every slot");
                assert_eq!(r.cycles, plain[i].cycles, "job {i}");
                assert_eq!(r.counters, plain[i].counters, "job {i}");
                assert_eq!(r.memory, plain[i].memory, "job {i}");
            }
        }
    }

    #[test]
    fn injected_job_panic_is_retried_then_degrades() {
        let jobs = hammer_matrix();
        // One panic: absorbed by the retry.
        let res = MatrixResilience {
            fault_plan: Some(FaultPlan::pinned(EngineId::Sweep, 5, 1, Fault::Panic)),
            ..MatrixResilience::default()
        };
        let out = run_matrix_resilient(&jobs, 1, &res);
        assert_eq!(out.status, RunStatus::Complete);
        // Two panics: the job is lost, the rest of the sweep survives.
        let res = MatrixResilience {
            fault_plan: Some(FaultPlan::pinned(EngineId::Sweep, 5, 2, Fault::Panic)),
            ..MatrixResilience::default()
        };
        for threads in [1usize, 4] {
            let out = run_matrix_resilient(&jobs, threads, &res);
            assert_eq!(out.status, RunStatus::Degraded { lost: vec![5] }, "t={threads}");
            assert!(out.reports[5].is_none());
            assert_eq!(out.completed().count(), jobs.len() - 1);
        }
    }

    #[test]
    fn a_panicking_validation_degrades_instead_of_aborting() {
        struct Broken;
        impl Kernel for Broken {
            fn name(&self) -> String {
                "broken".into()
            }
            fn blocks(&self) -> usize {
                1
            }
            fn threads_per_block(&self) -> usize {
                1
            }
            fn memory_words(&self) -> usize {
                4
            }
            fn item(&self, _b: usize, _t: usize) -> Box<dyn WorkItem> {
                struct Item;
                impl WorkItem for Item {
                    fn next(&mut self, _last: Option<u64>) -> Op {
                        Op::Done
                    }
                }
                Box::new(Item)
            }
            fn validate(&self, _mem: &[u64]) -> Result<(), String> {
                Err("always wrong".into())
            }
        }
        let params = SysParams::integrated();
        let jobs = six_config_jobs("broken", Arc::new(Broken), &params, true);
        let out = run_matrix_resilient(&jobs, 2, &MatrixResilience::default());
        assert_eq!(out.status, RunStatus::Degraded { lost: (0..6).collect() });
        assert_eq!(out.completed().count(), 0);
    }

    #[test]
    fn an_expired_deadline_leaves_a_frontier() {
        let jobs = hammer_matrix();
        let res = MatrixResilience {
            budget: Some(Arc::new(Budget::with_timeout(Duration::from_secs(0)))),
            ..MatrixResilience::default()
        };
        let out = run_matrix_resilient(&jobs, 2, &res);
        match out.status {
            RunStatus::Inconclusive { reason, frontier } => {
                assert!(
                    matches!(reason, ExhaustReason::Deadline | ExhaustReason::Cancelled),
                    "got {reason:?}"
                );
                assert_eq!(frontier.len() + out.reports.iter().flatten().count(), jobs.len());
            }
            s => panic!("expected Inconclusive, got {s:?}"),
        }
    }

    #[test]
    fn seeded_sweep_chaos_is_deterministic_and_never_aborts() {
        let jobs = hammer_matrix();
        for seed in 1..=4u64 {
            let res = MatrixResilience {
                fault_plan: Some(FaultPlan::seeded(seed)),
                ..MatrixResilience::default()
            };
            let a = run_matrix_resilient(&jobs, 1, &res);
            let b = run_matrix_resilient(&jobs, 1, &res);
            assert_eq!(a.status, b.status, "seed {seed}");
            let done = |o: &MatrixOutcome| o.completed().map(|(i, _)| i).collect::<Vec<_>>();
            assert_eq!(done(&a), done(&b), "seed {seed}");
        }
    }
}
