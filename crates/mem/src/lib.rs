//! # hsim-mem — memory-hierarchy structures
//!
//! Building blocks for the heterogeneous-system simulator (paper §4.1/
//! Table 2): set-associative cache arrays with pluggable per-line
//! state, miss-status holding registers (MSHRs) with same-address
//! coalescing — the mechanism behind DeNovo's atomic-coalescing
//! advantage (§6.3) — FIFO store buffers, a DRAM timing model, and a
//! generic busy-until [`Resource`] timeline used for cache ports and
//! bank arbitration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dram;
mod mshr;
mod resource;
mod storebuf;

pub use cache::{Cache, CacheParams, CacheStats, EvictedLine, LineId};
pub use dram::{Dram, DramParams};
pub use mshr::{Mshr, MshrOutcome};
pub use resource::Resource;
pub use storebuf::{StoreBuffer, StoreBufferStats};

/// Word-granular memory address (the simulator's unit of data).
pub type Addr = u64;

/// Simulation time in cycles.
pub type Cycle = u64;

/// A cache-line address: `addr / words_per_line`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Line containing a word address given the line size in words.
    pub fn of(addr: Addr, words_per_line: u64) -> LineAddr {
        LineAddr(addr / words_per_line)
    }
}
