//! Main-memory timing: fixed access latency plus channel contention
//! (paper Table 2: 197–261 cycles — the spread comes from bank/channel
//! queueing and NUCA distance, both modelled by the caller + this
//! channel timeline).

use crate::{Addr, Cycle, Resource};

/// DRAM configuration.
#[derive(Debug, Clone)]
pub struct DramParams {
    /// Intrinsic access latency.
    pub latency: u64,
    /// Independent channels.
    pub channels: usize,
    /// Cycles a channel is occupied per access.
    pub occupancy: u64,
}

impl Default for DramParams {
    fn default() -> Self {
        DramParams { latency: 160, channels: 4, occupancy: 8 }
    }
}

/// DRAM with per-channel queueing.
#[derive(Debug, Clone)]
pub struct Dram {
    params: DramParams,
    channels: Vec<Resource>,
    accesses: u64,
}

impl Dram {
    /// Create DRAM.
    ///
    /// # Panics
    ///
    /// Panics if there are no channels.
    pub fn new(params: DramParams) -> Dram {
        assert!(params.channels > 0, "DRAM needs channels");
        let channels = (0..params.channels).map(|_| Resource::new()).collect();
        Dram { params, channels, accesses: 0 }
    }

    /// Access the line containing `addr` at `now`; returns completion.
    pub fn access(&mut self, now: Cycle, addr: Addr) -> Cycle {
        self.accesses += 1;
        let ch = (addr as usize) % self.channels.len();
        let start = self.channels[ch].acquire(now, self.params.occupancy);
        start + self.params.latency
    }

    /// Total accesses (energy-relevant).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_access_is_base_latency() {
        let mut d = Dram::new(DramParams::default());
        assert_eq!(d.access(100, 0), 100 + 160);
    }

    #[test]
    fn same_channel_contends_different_channels_do_not() {
        let mut d = Dram::new(DramParams { latency: 100, channels: 2, occupancy: 10 });
        let a = d.access(0, 0);
        let b = d.access(0, 2); // same channel (even)
        let c = d.access(0, 1); // other channel
        assert_eq!(a, 100);
        assert_eq!(b, 110);
        assert_eq!(c, 100);
        assert_eq!(d.accesses(), 3);
    }
}
