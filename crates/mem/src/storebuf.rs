//! FIFO store buffer with per-line coalescing.
//!
//! GPU coherence writes dirty data through to the LLC; the store buffer
//! absorbs stores and drains in the background. A paired (release)
//! store must first *flush* it — one of the two overheads DRF1 removes
//! for unpaired atomics (Table 4).

use crate::{Cycle, LineAddr};
use hsim_trace::{EventKind, NoTrace, Trace, TraceEvent};

/// Store-buffer statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreBufferStats {
    /// Stores accepted.
    pub stores: u64,
    /// Stores merged into an existing entry for the same line.
    pub coalesced: u64,
    /// Explicit flushes requested.
    pub flushes: u64,
    /// Cycles some requester spent waiting for space or flush drain.
    pub stall_cycles: u64,
}

/// A bounded FIFO of dirty lines awaiting writeback/write-through.
///
/// ```
/// use hsim_mem::{LineAddr, StoreBuffer};
///
/// let mut sb = StoreBuffer::new(128);
/// sb.push(0, LineAddr(1), 70);  // drains at cycle 70
/// sb.push(0, LineAddr(2), 90);
/// // A release must wait for every pending entry:
/// assert_eq!(sb.flush(10), 90);
/// assert!(sb.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct StoreBuffer<T: Trace = NoTrace> {
    capacity: usize,
    /// (line, cycle the drain of this entry completes).
    entries: Vec<(LineAddr, Cycle)>,
    stats: StoreBufferStats,
    /// Trace lane (the owning CU).
    owner: u16,
    tracer: T,
}

impl StoreBuffer {
    /// An untraced buffer with `capacity` entries (Table 2: 128).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> StoreBuffer {
        StoreBuffer::with_tracer(capacity, 0, NoTrace)
    }
}

impl<T: Trace> StoreBuffer<T> {
    /// A buffer emitting [`EventKind::SbStall`] / [`EventKind::SbFlush`]
    /// events into `tracer` on lane `owner` (the CU id).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_tracer(capacity: usize, owner: u16, tracer: T) -> StoreBuffer<T> {
        assert!(capacity > 0, "store buffer needs capacity");
        StoreBuffer {
            capacity,
            entries: Vec::new(),
            stats: StoreBufferStats::default(),
            owner,
            tracer,
        }
    }

    /// Drop entries whose drain completed by `now`.
    pub fn expire(&mut self, now: Cycle) {
        self.entries.retain(|&(_, done)| done > now);
    }

    /// Push a store to `line` at `now`; `drain_done` says when the
    /// write-through of this entry will complete (the protocol computes
    /// it). Returns the cycle at which the store is accepted (later
    /// than `now` only when the buffer was full and had to drain).
    pub fn push(&mut self, now: Cycle, line: LineAddr, drain_done: Cycle) -> Cycle {
        self.expire(now);
        self.stats.stores += 1;
        if let Some(e) = self.entries.iter_mut().find(|(l, _)| *l == line) {
            // Coalesce into the pending entry; drain covers both.
            e.1 = e.1.max(drain_done);
            self.stats.coalesced += 1;
            return now;
        }
        let mut at = now;
        if self.entries.len() >= self.capacity {
            // Wait for the oldest entry to drain.
            let oldest = self.entries.iter().map(|&(_, d)| d).min().unwrap_or(now);
            self.stats.stall_cycles += oldest.saturating_sub(now);
            if T::ENABLED {
                self.tracer.record(TraceEvent::new(
                    EventKind::SbStall,
                    now,
                    self.owner,
                    line.0,
                    0,
                    oldest.saturating_sub(now),
                ));
            }
            at = at.max(oldest);
            self.expire(at);
        }
        self.entries.push((line, drain_done));
        at
    }

    /// Flush: the cycle by which every pending entry has drained.
    pub fn flush(&mut self, now: Cycle) -> Cycle {
        self.stats.flushes += 1;
        let done = self.entries.iter().map(|&(_, d)| d).max().unwrap_or(now).max(now);
        self.stats.stall_cycles += done - now;
        if T::ENABLED {
            self.tracer.record(TraceEvent::new(
                EventKind::SbFlush,
                now,
                self.owner,
                0,
                self.entries.len() as u64,
                done - now,
            ));
        }
        self.entries.clear();
        done
    }

    /// Entries currently pending.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics.
    pub fn stats(&self) -> StoreBufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_coalesce_per_line() {
        let mut sb = StoreBuffer::new(4);
        sb.push(0, LineAddr(1), 100);
        sb.push(1, LineAddr(1), 120);
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.stats().coalesced, 1);
    }

    #[test]
    fn full_buffer_stalls_until_drain() {
        let mut sb = StoreBuffer::new(2);
        sb.push(0, LineAddr(1), 50);
        sb.push(0, LineAddr(2), 80);
        let at = sb.push(0, LineAddr(3), 120);
        assert_eq!(at, 50, "must wait for the oldest entry");
        assert!(sb.stats().stall_cycles >= 50);
    }

    #[test]
    fn flush_waits_for_all() {
        let mut sb = StoreBuffer::new(4);
        sb.push(0, LineAddr(1), 70);
        sb.push(0, LineAddr(2), 90);
        assert_eq!(sb.flush(10), 90);
        assert!(sb.is_empty());
        // Idempotent on empty buffer.
        assert_eq!(sb.flush(95), 95);
    }

    #[test]
    fn entries_expire_over_time() {
        let mut sb = StoreBuffer::new(2);
        sb.push(0, LineAddr(1), 10);
        sb.expire(11);
        assert!(sb.is_empty());
    }
}
