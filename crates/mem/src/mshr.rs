//! Miss-status holding registers with same-address coalescing.
//!
//! The paper's §6.3: "obtaining ownership allows DeNovo's L1 MSHRs to
//! locally coalesce multiple requests for the same address, which
//! reduces network traffic ... and allows DeNovo with DRFrlx to quickly
//! service many overlapped atomic requests." GPU coherence performs
//! atomics at the LLC and "cannot coalesce multiple atomic requests for
//! the same address."

use crate::{Cycle, LineAddr};
use hsim_trace::{EventKind, NoTrace, Trace, TraceEvent};
use std::collections::BTreeMap;

/// Result of trying to allocate an MSHR entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must issue the request.
    /// Carries the number of entries now live.
    Allocated,
    /// Merged into an in-flight entry for the same line; no new request
    /// goes out. Carries the cycle the in-flight request completes.
    Coalesced(Cycle),
    /// No free entry: the requester must stall until one frees up.
    /// Carries the earliest cycle at which an entry completes.
    Full(Cycle),
}

/// A fixed-capacity MSHR file keyed by line address.
///
/// ```
/// use hsim_mem::{LineAddr, Mshr, MshrOutcome};
///
/// let mut mshr = Mshr::new(128);
/// assert_eq!(mshr.request(0, LineAddr(3)), MshrOutcome::Allocated);
/// mshr.set_completion(LineAddr(3), 80);
/// // A second request for the same in-flight line merges:
/// assert_eq!(mshr.request(5, LineAddr(3)), MshrOutcome::Coalesced(80));
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<T: Trace = NoTrace> {
    capacity: usize,
    /// line -> completion cycle of the outstanding request.
    inflight: BTreeMap<LineAddr, Cycle>,
    allocated: u64,
    coalesced: u64,
    full_stalls: u64,
    /// Trace lane (the owning CU).
    owner: u16,
    tracer: T,
}

impl Mshr {
    /// An untraced MSHR file with `capacity` entries (Table 2: 128).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Mshr {
        Mshr::with_tracer(capacity, 0, NoTrace)
    }
}

impl<T: Trace> Mshr<T> {
    /// An MSHR file emitting [`EventKind::MshrCoalesce`] /
    /// [`EventKind::MshrStall`] events into `tracer` on lane `owner`
    /// (the CU id).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_tracer(capacity: usize, owner: u16, tracer: T) -> Mshr<T> {
        assert!(capacity > 0, "MSHR needs at least one entry");
        Mshr {
            capacity,
            inflight: BTreeMap::new(),
            allocated: 0,
            coalesced: 0,
            full_stalls: 0,
            owner,
            tracer,
        }
    }

    /// Retire every entry whose request completed at or before `now`.
    pub fn expire(&mut self, now: Cycle) {
        self.inflight.retain(|_, done| *done > now);
    }

    /// Try to allocate (or merge into) an entry for `line` at `now`.
    /// On `Allocated`, the caller must follow up with
    /// [`Mshr::set_completion`] once it knows when the request finishes.
    pub fn request(&mut self, now: Cycle, line: LineAddr) -> MshrOutcome {
        self.expire(now);
        if let Some(done) = self.inflight.get(&line) {
            self.coalesced += 1;
            if T::ENABLED {
                self.tracer.record(TraceEvent::new(
                    EventKind::MshrCoalesce,
                    now,
                    self.owner,
                    line.0,
                    0,
                    done.saturating_sub(now),
                ));
            }
            return MshrOutcome::Coalesced(*done);
        }
        if self.inflight.len() >= self.capacity {
            self.full_stalls += 1;
            let earliest = self.inflight.values().copied().min().unwrap_or(now);
            if T::ENABLED {
                self.tracer.record(TraceEvent::new(
                    EventKind::MshrStall,
                    now,
                    self.owner,
                    line.0,
                    0,
                    earliest.saturating_sub(now),
                ));
            }
            return MshrOutcome::Full(earliest);
        }
        self.allocated += 1;
        self.inflight.insert(line, Cycle::MAX);
        MshrOutcome::Allocated
    }

    /// Is a request for `line` still in flight at `now`? Returns its
    /// completion cycle. Callers use this *before* a cache lookup so a
    /// line whose fill is still travelling cannot be hit early (the
    /// simulator installs state at issue time).
    pub fn pending(&mut self, now: Cycle, line: LineAddr) -> Option<Cycle> {
        self.expire(now);
        self.inflight.get(&line).copied()
    }

    /// Record when the outstanding request for `line` completes.
    pub fn set_completion(&mut self, line: LineAddr, done: Cycle) {
        if let Some(d) = self.inflight.get_mut(&line) {
            *d = done;
        }
    }

    /// Entries currently live.
    pub fn live(&self) -> usize {
        self.inflight.len()
    }

    /// (allocated, coalesced, full-stalls) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.allocated, self.coalesced, self.full_stalls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_request_to_same_line_coalesces() {
        let mut m = Mshr::new(4);
        assert_eq!(m.request(0, LineAddr(7)), MshrOutcome::Allocated);
        m.set_completion(LineAddr(7), 100);
        assert_eq!(m.request(1, LineAddr(7)), MshrOutcome::Coalesced(100));
        assert_eq!(m.counters(), (1, 1, 0));
    }

    #[test]
    fn entries_expire() {
        let mut m = Mshr::new(1);
        assert_eq!(m.request(0, LineAddr(7)), MshrOutcome::Allocated);
        m.set_completion(LineAddr(7), 50);
        // Before completion: full for other lines.
        assert!(matches!(m.request(10, LineAddr(9)), MshrOutcome::Full(50)));
        // After completion: free again.
        assert_eq!(m.request(51, LineAddr(9)), MshrOutcome::Allocated);
    }

    #[test]
    fn distinct_lines_use_distinct_entries() {
        let mut m = Mshr::new(2);
        assert_eq!(m.request(0, LineAddr(1)), MshrOutcome::Allocated);
        assert_eq!(m.request(0, LineAddr(2)), MshrOutcome::Allocated);
        assert_eq!(m.live(), 2);
        assert!(matches!(m.request(0, LineAddr(3)), MshrOutcome::Full(_)));
    }
}
