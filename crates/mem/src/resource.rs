//! Busy-until timelines for ports, banks and channels.

use crate::Cycle;

/// A unit-bandwidth resource: at most one operation in flight; later
/// requests queue. The standard way this simulator models structural
/// contention.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    next_free: Cycle,
    busy_cycles: u64,
    ops: u64,
}

impl Resource {
    /// A fresh, idle resource.
    pub fn new() -> Resource {
        Resource::default()
    }

    /// Occupy the resource for `duration` cycles starting no earlier
    /// than `at`; returns the cycle service actually starts.
    pub fn acquire(&mut self, at: Cycle, duration: u64) -> Cycle {
        let start = at.max(self.next_free);
        self.next_free = start + duration;
        self.busy_cycles += duration;
        self.ops += 1;
        start
    }

    /// When the resource next becomes free.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Total busy cycles (utilization numerator).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Operations served.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_serialize() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(10, 5), 10);
        assert_eq!(r.acquire(10, 5), 15);
        assert_eq!(r.acquire(30, 5), 30);
        assert_eq!(r.busy_cycles(), 15);
        assert_eq!(r.ops(), 3);
    }
}
