//! Set-associative cache array with LRU replacement and pluggable
//! per-line state.

use crate::LineAddr;
use std::fmt::Debug;

/// Identifies a line within the array (set, way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineId {
    /// Set index.
    pub set: usize,
    /// Way within the set.
    pub way: usize,
}

/// Cache geometry.
#[derive(Debug, Clone)]
pub struct CacheParams {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheParams {
    /// Geometry for a cache of `bytes` capacity with `line_bytes` lines
    /// and the given associativity (paper Table 2: 32 KB 8-way L1s,
    /// 4 MB 16-bank L2).
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn with_capacity(bytes: usize, line_bytes: usize, ways: usize) -> CacheParams {
        let lines = bytes / line_bytes;
        assert!(lines.is_multiple_of(ways), "capacity must divide into sets");
        CacheParams { sets: lines / ways, ways }
    }
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Lines invalidated by flash/self-invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Way<S> {
    tag: LineAddr,
    state: S,
    /// Higher = more recently used.
    lru: u64,
}

/// An evicted line returned to the caller (for writebacks).
#[derive(Debug, Clone)]
pub struct EvictedLine<S> {
    /// The line's address.
    pub line: LineAddr,
    /// Its state at eviction.
    pub state: S,
}

/// A set-associative array storing per-line state `S`.
///
/// The array is purely structural: protocols decide what states mean,
/// which lines are victims (`insert` evicts LRU) and what to do with
/// evicted state.
///
/// ```
/// use hsim_mem::{Cache, CacheParams, LineAddr};
///
/// let mut l1: Cache<bool> = Cache::new(CacheParams::with_capacity(32 * 1024, 64, 8));
/// assert!(l1.lookup(LineAddr(7)).is_none());
/// l1.insert(LineAddr(7), true);
/// assert_eq!(l1.lookup(LineAddr(7)), Some(&mut true));
/// assert_eq!(l1.stats().misses, 1);
/// assert_eq!(l1.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache<S> {
    params: CacheParams,
    sets: Vec<Va<S>>,
    clock: u64,
    stats: CacheStats,
}

type Va<S> = Vec<Way<S>>;

impl<S: Clone + Debug> Cache<S> {
    /// Create an empty cache.
    pub fn new(params: CacheParams) -> Cache<S> {
        let sets = (0..params.sets).map(|_| Vec::new()).collect();
        Cache { params, sets, clock: 0, stats: CacheStats::default() }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) % self.params.sets
    }

    /// Look up a line; hits bump LRU. Counted in the statistics.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut S> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(line);
        let found = self.sets[set].iter_mut().find(|w| w.tag == line);
        match found {
            Some(w) => {
                w.lru = clock;
                self.stats.hits += 1;
                Some(&mut w.state)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek without touching LRU or statistics.
    pub fn peek(&self, line: LineAddr) -> Option<&S> {
        let set = self.set_of(line);
        self.sets[set].iter().find(|w| w.tag == line).map(|w| &w.state)
    }

    /// Insert (or overwrite) a line, evicting LRU if the set is full.
    /// Lines for which `pinned` returns true are never chosen as
    /// victims (DeNovo keeps registered lines until they are downgraded;
    /// see the coherence crate).
    pub fn insert_with_pin(
        &mut self,
        line: LineAddr,
        state: S,
        pinned: impl Fn(&S) -> bool,
    ) -> Option<EvictedLine<S>> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(line);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.tag == line) {
            w.state = state;
            w.lru = clock;
            return None;
        }
        if self.sets[set].len() < self.params.ways {
            self.sets[set].push(Way { tag: line, state, lru: clock });
            return None;
        }
        // Choose LRU among unpinned ways; if all pinned, evict absolute
        // LRU anyway (structural necessity).
        let victim = self.sets[set]
            .iter()
            .enumerate()
            .filter(|(_, w)| !pinned(&w.state))
            .min_by_key(|(_, w)| w.lru)
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                self.sets[set]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.lru)
                    .map(|(i, _)| i)
                    .expect("set is full")
            });
        self.stats.evictions += 1;
        let old =
            std::mem::replace(&mut self.sets[set][victim], Way { tag: line, state, lru: clock });
        Some(EvictedLine { line: old.tag, state: old.state })
    }

    /// Insert with no pinning.
    pub fn insert(&mut self, line: LineAddr, state: S) -> Option<EvictedLine<S>> {
        self.insert_with_pin(line, state, |_| false)
    }

    /// Remove a specific line, returning its state.
    pub fn remove(&mut self, line: LineAddr) -> Option<S> {
        let set = self.set_of(line);
        let i = self.sets[set].iter().position(|w| w.tag == line)?;
        Some(self.sets[set].remove(i).state)
    }

    /// Invalidate every line for which `victim` returns true (flash /
    /// self-invalidation); returns how many were dropped.
    pub fn invalidate_where(&mut self, victim: impl Fn(&LineAddr, &S) -> bool) -> u64 {
        let mut n = 0;
        for set in &mut self.sets {
            set.retain(|w| {
                if victim(&w.tag, &w.state) {
                    n += 1;
                    false
                } else {
                    true
                }
            });
        }
        self.stats.invalidations += n;
        n
    }

    /// Iterate over all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &S)> + '_ {
        self.sets.iter().flatten().map(|w| (w.tag, &w.state))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache<u8> {
        // 2 sets x 2 ways.
        Cache::new(CacheParams { sets: 2, ways: 2 })
    }

    #[test]
    fn capacity_geometry() {
        let p = CacheParams::with_capacity(32 * 1024, 64, 8);
        assert_eq!(p.sets * p.ways * 64, 32 * 1024);
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        c.insert(LineAddr(4), 7);
        assert_eq!(c.lookup(LineAddr(4)), Some(&mut 7));
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn miss_on_absent() {
        let mut c = tiny();
        assert_eq!(c.lookup(LineAddr(4)), None);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0.
        c.insert(LineAddr(0), 0);
        c.insert(LineAddr(2), 2);
        c.lookup(LineAddr(0)); // 2 is now LRU
        let ev = c.insert(LineAddr(4), 4).expect("eviction");
        assert_eq!(ev.line, LineAddr(2));
        assert!(c.peek(LineAddr(0)).is_some());
    }

    #[test]
    fn pinned_lines_survive() {
        let mut c = tiny();
        c.insert(LineAddr(0), 9); // pinned (state 9)
        c.insert(LineAddr(2), 1);
        let ev = c.insert_with_pin(LineAddr(4), 5, |s| *s == 9).expect("eviction");
        assert_eq!(ev.line, LineAddr(2), "unpinned line must be the victim");
        assert!(c.peek(LineAddr(0)).is_some());
    }

    #[test]
    fn invalidate_where_is_selective() {
        let mut c = tiny();
        c.insert(LineAddr(0), 1);
        c.insert(LineAddr(1), 2);
        c.insert(LineAddr(2), 1);
        let n = c.invalidate_where(|_, s| *s == 1);
        assert_eq!(n, 2);
        assert_eq!(c.len(), 1);
        assert!(c.peek(LineAddr(1)).is_some());
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn remove_returns_state() {
        let mut c = tiny();
        c.insert(LineAddr(3), 8);
        assert_eq!(c.remove(LineAddr(3)), Some(8));
        assert_eq!(c.remove(LineAddr(3)), None);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = tiny();
        c.insert(LineAddr(0), 1);
        assert!(c.insert(LineAddr(0), 2).is_none());
        assert_eq!(c.peek(LineAddr(0)), Some(&2));
        assert_eq!(c.len(), 1);
    }
}
