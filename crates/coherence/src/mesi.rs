//! MESI-WB: a writeback, ownership-based MESI-style protocol — the
//! CPU-class baseline the paper's §2 contrasts GPU coherence against.
//!
//! The directory (per-L2-bank line state) tracks either a single owner
//! (M/E collapsed into [`L1State::Registered`]) or a sharer bitmask
//! ([`crate::memsys::L2State::SharedBy`]). Reads fill shared copies; a
//! read of an owned line recalls the owner (downgrade to shared, data
//! returns to the L2). Writes obtain exclusive ownership, invalidating
//! every remote sharer through the directory (writer-initiated
//! invalidation — the inverse of the reader-initiated self-invalidation
//! GPU/DeNovo use). Atomics execute at an owned L1, so repeated atomics
//! reuse ownership exactly like DeNovo.
//!
//! Consistency hooks: **acquire is free** — hardware keeps caches
//! coherent, so there is nothing to self-invalidate; release still
//! waits for the store buffer (pending ownership upgrades) to drain.
//!
//! This file is the whole protocol: it demonstrates the
//! [`CoherencePolicy`] seam (no other layer knows MESI exists beyond
//! the `Protocol::MesiWb` label used for construction and reporting).

use crate::memsys::{AccessKind, CuId, L1State, L2State, MemCore};
use crate::policy::CoherencePolicy;
use hsim_mem::{Addr, Cycle, LineAddr, MshrOutcome};
use hsim_trace::{EventKind, Trace};

/// Writeback MESI-style ownership coherence (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct MesiWbCoherence;

fn bit(cu: CuId) -> u64 {
    assert!(cu < 64, "MESI-WB sharer bitmask supports at most 64 CUs");
    1 << cu
}

impl MesiWbCoherence {
    /// Invalidate every remote sharer in `mask` via the directory:
    /// multicast invalidations, collect acks, drop the copies. Returns
    /// the cycle all acks have arrived back at the bank.
    fn invalidate_sharers<T: Trace>(
        core: &mut MemCore<T>,
        dir_done: Cycle,
        cu: CuId,
        line: LineAddr,
        mask: u64,
    ) -> Cycle {
        let bank_node = core.banks[core.bank_of(line)].node;
        let mut acks_done = dir_done;
        let mut dropped = 0u64;
        for sharer in 0..core.params.num_cus {
            if sharer == cu || mask & bit(sharer) == 0 {
                continue;
            }
            let sharer_node = core.params.cu_nodes[sharer];
            let inv_at = core.noc.send(dir_done, bank_node, sharer_node, core.params.ctl_flits);
            // The mask can be stale (shared copies evict silently);
            // only an actual drop costs a tag operation.
            if core.l1s[sharer].cache.remove(line).is_some() {
                core.l1_tag_ops += 1;
                dropped += 1;
            }
            let ack_at = core.noc.send(inv_at, sharer_node, bank_node, core.params.ctl_flits);
            acks_done = acks_done.max(ack_at);
        }
        if dropped > 0 {
            core.stats.sharer_invalidations += dropped;
            core.emit(
                EventKind::SharerInvalidate,
                dir_done,
                cu as u16,
                line.0,
                dropped,
                acks_done - dir_done,
            );
        }
        acks_done
    }

    /// Obtain exclusive ownership of `line` for `cu` (the write/atomic
    /// path): recall a remote owner or invalidate sharers, then install
    /// the line as [`L1State::Registered`]. Returns the cycle the data
    /// (and all invalidation acks) reach the requesting CU.
    fn register_exclusive<T: Trace>(
        core: &mut MemCore<T>,
        now: Cycle,
        cu: CuId,
        line: LineAddr,
    ) -> Cycle {
        let cu_node = core.params.cu_nodes[cu];
        let b = core.bank_of(line);
        let bank_node = core.banks[b].node;
        let arrive = core.noc.send(now, cu_node, bank_node, core.params.ctl_flits);
        let start = core.banks[b].port.acquire(arrive, core.params.l2_occupancy);
        core.l2_accesses += 1;
        core.emit(EventKind::L2Access, start, b as u16, line.0, 0, core.params.l2_latency);
        let dir_done = start + core.params.l2_latency;
        let prev = core.banks[b].cache.lookup(line).copied();
        core.banks[b].cache.insert(line, L2State::Owned(cu));
        let data_at_cu = match prev {
            Some(L2State::Owned(owner)) if owner != cu => {
                // Forward to the previous owner; it hands the dirty
                // line over and drops its copy.
                core.stats.remote_l1_transfers += 1;
                core.emit(
                    EventKind::OwnershipTransfer,
                    dir_done,
                    cu as u16,
                    line.0,
                    owner as u64,
                    0,
                );
                let owner_node = core.params.cu_nodes[owner];
                core.l1s[owner].cache.remove(line);
                core.l1_tag_ops += 1;
                let at_owner =
                    core.noc.send(dir_done, bank_node, owner_node, core.params.ctl_flits);
                let served = core.l1s[owner].port.acquire(at_owner, 1) + core.params.l1_hit_latency;
                core.l1_accesses += 1;
                core.noc.send(served, owner_node, cu_node, core.params.data_flits)
            }
            Some(L2State::SharedBy(mask)) => {
                let acks = MesiWbCoherence::invalidate_sharers(core, dir_done, cu, line, mask);
                core.noc.send(acks, bank_node, cu_node, core.params.data_flits)
            }
            Some(_) => core.noc.send(dir_done, bank_node, cu_node, core.params.data_flits),
            None => {
                core.stats.dram_refills += 1;
                let filled = core.dram.access(dir_done, line.0);
                core.emit(EventKind::DramRefill, dir_done, b as u16, line.0, 0, filled - dir_done);
                core.banks[b].cache.insert(line, L2State::Owned(cu));
                core.noc.send(filled, bank_node, cu_node, core.params.data_flits)
            }
        };
        let evicted = core.l1s[cu]
            .cache
            .insert_with_pin(line, L1State::Registered, |s| *s == L1State::Registered);
        core.handle_l1_eviction(data_at_cu, cu, evicted);
        data_at_cu
    }
}

impl<T: Trace> CoherencePolicy<T> for MesiWbCoherence {
    fn load(
        &self,
        core: &mut MemCore<T>,
        now: Cycle,
        cu: CuId,
        addr: Addr,
        kind: AccessKind,
    ) -> Cycle {
        if kind.is_atomic() {
            return self.rmw(core, now, cu, addr);
        }
        let line = core.line(addr);
        core.l1_accesses += 1;
        let start = now;
        if let Some(done) = core.l1s[cu].mshr.pending(start, line) {
            core.stats.mshr_coalesced += 1;
            core.emit(
                EventKind::MshrCoalesce,
                start,
                cu as u16,
                line.0,
                0,
                done.max(start) - start,
            );
            return done.max(start);
        }
        if core.l1s[cu].cache.lookup(line).is_some() {
            core.stats.l1_hits += 1;
            core.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, core.params.l1_hit_latency);
            return start + core.params.l1_hit_latency;
        }
        core.stats.l1_misses += 1;
        core.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        match core.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                core.stats.mshr_coalesced += 1;
                return done;
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.load(core, retry, cu, addr, kind);
            }
            MshrOutcome::Allocated => {}
        }
        // Read request to the home directory bank.
        let cu_node = core.params.cu_nodes[cu];
        let b = core.bank_of(line);
        let bank_node = core.banks[b].node;
        let arrive = core.noc.send(start, cu_node, bank_node, core.params.ctl_flits);
        let dir_start = core.banks[b].port.acquire(arrive, core.params.l2_occupancy);
        core.l2_accesses += 1;
        core.emit(EventKind::L2Access, dir_start, b as u16, line.0, 0, core.params.l2_latency);
        let dir_done = dir_start + core.params.l2_latency;
        let state = core.banks[b].cache.lookup(line).copied();
        let done = match state {
            Some(L2State::Owned(owner)) if owner != cu => {
                // Recall: the owner downgrades to shared, its dirty data
                // returns to the L2 and is forwarded to the reader.
                core.stats.remote_l1_transfers += 1;
                core.emit(
                    EventKind::OwnershipTransfer,
                    dir_done,
                    cu as u16,
                    line.0,
                    owner as u64,
                    0,
                );
                let owner_node = core.params.cu_nodes[owner];
                if let Some(s) = core.l1s[owner].cache.lookup(line) {
                    *s = L1State::Valid;
                }
                core.banks[b].cache.insert(line, L2State::SharedBy(bit(owner) | bit(cu)));
                let at_owner =
                    core.noc.send(dir_done, bank_node, owner_node, core.params.ctl_flits);
                let served = core.l1s[owner].port.acquire(at_owner, 1) + core.params.l1_hit_latency;
                core.l1_accesses += 1;
                core.noc.send(served, owner_node, cu_node, core.params.data_flits)
            }
            Some(L2State::SharedBy(mask)) => {
                core.banks[b].cache.insert(line, L2State::SharedBy(mask | bit(cu)));
                core.noc.send(dir_done, bank_node, cu_node, core.params.data_flits)
            }
            Some(_) => {
                core.banks[b].cache.insert(line, L2State::SharedBy(bit(cu)));
                core.noc.send(dir_done, bank_node, cu_node, core.params.data_flits)
            }
            None => {
                core.stats.dram_refills += 1;
                let filled = core.dram.access(dir_done, line.0);
                core.emit(EventKind::DramRefill, dir_done, b as u16, line.0, 0, filled - dir_done);
                core.banks[b].cache.insert(line, L2State::SharedBy(bit(cu)));
                core.noc.send(filled, bank_node, cu_node, core.params.data_flits)
            }
        };
        let evicted =
            core.l1s[cu].cache.insert_with_pin(line, L1State::Valid, |s| *s == L1State::Registered);
        core.handle_l1_eviction(done, cu, evicted);
        core.l1s[cu].mshr.set_completion(line, done);
        done
    }

    fn store(
        &self,
        core: &mut MemCore<T>,
        now: Cycle,
        cu: CuId,
        addr: Addr,
        kind: AccessKind,
    ) -> Cycle {
        if kind.is_atomic() {
            return self.rmw(core, now, cu, addr);
        }
        let line = core.line(addr);
        core.l1_accesses += 1;
        let start = now;
        let pending = core.l1s[cu].mshr.pending(start, line);
        if pending.is_none() && core.l1s[cu].cache.lookup(line) == Some(&mut L1State::Registered) {
            // Exclusive (M/E): write locally, writeback caching.
            core.stats.l1_hits += 1;
            core.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, core.params.l1_hit_latency);
            return start + core.params.l1_hit_latency;
        }
        core.stats.l1_misses += 1;
        core.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        // Pend in the store buffer while the upgrade is in flight.
        let drain_done = match core.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                core.stats.mshr_coalesced += 1;
                done
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.store(core, retry, cu, addr, kind);
            }
            MshrOutcome::Allocated => {
                let done = MesiWbCoherence::register_exclusive(core, start, cu, line);
                core.l1s[cu].mshr.set_completion(line, done);
                done
            }
        };
        let accepted = core.l1s[cu].sb.push(start, line, drain_done);
        accepted + 1
    }

    /// Atomics execute at the L1 on an exclusively owned line, so
    /// repeated atomics reuse ownership and concurrent same-line
    /// requests share one upgrade via the MSHR — like DeNovo, but the
    /// upgrade also invalidates any sharers.
    fn rmw(&self, core: &mut MemCore<T>, now: Cycle, cu: CuId, addr: Addr) -> Cycle {
        let line = core.line(addr);
        core.stats.atomics_at_l1 += 1;
        core.emit(EventKind::AtomicAtL1, now, cu as u16, addr, 0, 0);
        core.l1_accesses += 1;
        let start = now;
        if let Some(done) = core.l1s[cu].mshr.pending(start, line) {
            if core.params.atomic_coalescing {
                core.stats.mshr_coalesced += 1;
                core.emit(
                    EventKind::MshrCoalesce,
                    start,
                    cu as u16,
                    line.0,
                    0,
                    done.max(start) - start,
                );
                let served = core.l1s[cu].port.acquire(done.max(start), 1);
                return served + core.params.l1_hit_latency;
            }
            let refetch = MesiWbCoherence::register_exclusive(core, done.max(start), cu, line);
            let served = core.l1s[cu].port.acquire(refetch, 1);
            return served + core.params.l1_hit_latency;
        }
        if core.l1s[cu].cache.lookup(line) == Some(&mut L1State::Registered) {
            core.stats.atomic_l1_reuse += 1;
            core.stats.l1_hits += 1;
            core.emit(EventKind::AtomicReuse, start, cu as u16, line.0, 0, 0);
            core.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, core.params.l1_hit_latency);
            let served = core.l1s[cu].port.acquire(start, 1);
            return served + core.params.l1_hit_latency;
        }
        core.stats.l1_misses += 1;
        core.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        let owned_at = match core.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                core.stats.mshr_coalesced += 1;
                done
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.rmw(core, retry, cu, addr);
            }
            MshrOutcome::Allocated => {
                let done = MesiWbCoherence::register_exclusive(core, start, cu, line);
                core.l1s[cu].mshr.set_completion(line, done);
                done
            }
        };
        let served = core.l1s[cu].port.acquire(owned_at, 1);
        served + core.params.l1_hit_latency
    }

    /// Acquire is free: writer-initiated invalidation already keeps
    /// every cached copy coherent, so there is no stale data to drop.
    /// (The consistency layer still orders the access itself.)
    fn acquire(&self, _core: &mut MemCore<T>, now: Cycle, _cu: CuId) -> Cycle {
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemSysParams, MemorySystem, Protocol};

    fn sys() -> MemorySystem {
        MemorySystem::new(Protocol::MesiWb, MemSysParams::default())
    }

    #[test]
    fn load_miss_then_hit_without_acquire_penalty() {
        let mut m = sys();
        let t1 = m.load(0, 0, 100, AccessKind::DataLoad);
        assert!(t1 > 20, "miss goes through the directory: {t1}");
        // Acquire is free and drops nothing.
        let t = m.acquire(t1, 0);
        assert_eq!(t, t1, "MESI acquire costs nothing");
        assert_eq!(m.stats().lines_invalidated, 0);
        let t2 = m.load(t, 0, 100, AccessKind::DataLoad);
        assert_eq!(t2 - t, m.params().l1_hit_latency, "copy survives the acquire");
    }

    #[test]
    fn store_invalidates_remote_sharers() {
        let mut m = sys();
        // Three CUs read the line (shared copies), then CU 0 writes it.
        let mut t = 0;
        for cu in 0..3 {
            t = m.load(t, cu, 100, AccessKind::DataLoad);
        }
        let accepted = m.store(t, 0, 100, AccessKind::DataStore);
        let _ = m.release(accepted, 0);
        assert_eq!(m.stats().sharer_invalidations, 2, "CUs 1 and 2 lose their copies");
        // A reader now misses and recalls the new owner.
        let before = m.stats().l1_misses;
        let _ = m.load(accepted + 500, 1, 100, AccessKind::DataLoad);
        assert_eq!(m.stats().l1_misses, before + 1, "sharer copy was dropped");
        assert!(m.stats().remote_l1_transfers >= 1, "read recalls the owner");
    }

    #[test]
    fn read_of_owned_line_downgrades_owner_to_shared() {
        let mut m = sys();
        let t = m.rmw(0, 0, 200); // CU 0 owns the line
        let t2 = m.load(t, 1, 200, AccessKind::DataLoad); // recall
        assert_eq!(m.stats().remote_l1_transfers, 1);
        // Both keep copies: CU 0 re-reads locally...
        let t3 = m.load(t2, 0, 200, AccessKind::DataLoad);
        assert_eq!(t3 - t2, m.params().l1_hit_latency, "owner kept a shared copy");
        // ...but its next atomic must re-upgrade (invalidating CU 1).
        let _ = m.rmw(t3, 0, 200);
        assert_eq!(m.stats().sharer_invalidations, 1);
    }

    #[test]
    fn atomics_reuse_ownership_like_denovo() {
        let mut m = sys();
        let t1 = m.rmw(0, 3, 200);
        let t2 = m.rmw(t1, 3, 200);
        assert!(t2 - t1 <= 1 + m.params().l1_hit_latency, "second atomic is local: {}", t2 - t1);
        assert_eq!(m.stats().atomic_l1_reuse, 1);
        assert_eq!(m.stats().atomics_at_l1, 2);
        assert_eq!(m.stats().atomics_at_l2, 0);
    }

    #[test]
    fn contended_atomics_bounce_ownership() {
        let mut m = sys();
        let t1 = m.rmw(0, 0, 200);
        let t2 = m.rmw(t1, 5, 200);
        assert!(t2 - t1 > 30, "exclusive transfer is a 3-hop chain: {}", t2 - t1);
        assert_eq!(m.stats().remote_l1_transfers, 1);
    }

    #[test]
    fn evicting_owned_line_writes_back() {
        let mut m = sys();
        let mut t = 0;
        for i in 0..9u64 {
            let addr = i * 64 * 16; // same L1 set, distinct lines
            t = m.rmw(t, 0, addr);
        }
        assert!(m.stats().writebacks >= 1, "owned victim must write back");
    }

    #[test]
    fn invalidation_latency_scales_with_sharers() {
        let mut m = sys();
        let mut t = 0;
        for cu in 0..8 {
            t = m.load(t, cu, 100, AccessKind::DataLoad);
        }
        // The upgrade waits for all invalidation acks before the store
        // drains; measure through release.
        let accepted = m.store(t, 0, 100, AccessKind::DataStore);
        let drained = m.release(accepted, 0);
        assert!(drained - t > 40, "multicast + acks + data reply: {}", drained - t);
        assert_eq!(m.stats().sharer_invalidations, 7);
    }
}
