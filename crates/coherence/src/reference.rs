//! The pre-refactor enum-dispatch memory system, retained verbatim as
//! a differential-test reference (the same pattern as the scheduler and
//! NoC reference implementations from earlier refactors).
//!
//! [`EnumMemorySystem`] is the old `MemorySystem`: one monolith that
//! branches on the two-variant paper [`Protocol`] at every
//! load/store/atomic/acquire site, with its own copies of the bank /
//! DRAM / round-trip helpers. `tests/policy_equivalence.rs` drives
//! random workloads through both this and the trait-based system and
//! asserts identical stats, cycles and trace streams — proving the
//! policy extraction *moved* GPU/DeNovo behaviour without changing it.
//!
//! Deliberately not extended to MESI-WB (construction panics): the
//! reference exists to pin down the two protocols that existed before
//! the policy seam.

use crate::memsys::{L1State, L2Bank, L2State, L1};
use crate::{AccessKind, CuId, MemSysParams, ProtoStats};
use drfrlx_core::Protocol;
use hsim_mem::{Addr, Cache, Cycle, Dram, LineAddr, Mshr, MshrOutcome, Resource, StoreBuffer};
use hsim_noc::{Mesh, NodeId};
use hsim_trace::{EventKind, NoTrace, Trace, TraceEvent};

/// The old enum-dispatch memory system (GPU / DeNovo only).
pub struct EnumMemorySystem<T: Trace = NoTrace> {
    protocol: Protocol,
    params: MemSysParams,
    l1s: Vec<L1<T>>,
    banks: Vec<L2Bank>,
    noc: Mesh<T>,
    dram: Dram,
    stats: ProtoStats,
    l1_accesses: u64,
    l1_tag_ops: u64,
    l2_accesses: u64,
    tracer: T,
}

impl EnumMemorySystem {
    /// Build an untraced reference system.
    ///
    /// # Panics
    ///
    /// Panics on [`Protocol::MesiWb`] (the reference predates it) or if
    /// `cu_nodes` does not provide a node per CU.
    pub fn new(protocol: Protocol, params: MemSysParams) -> EnumMemorySystem {
        EnumMemorySystem::with_tracer(protocol, params, NoTrace)
    }
}

impl<T: Trace> EnumMemorySystem<T> {
    /// Build a reference system recording into `tracer`.
    ///
    /// # Panics
    ///
    /// Panics on [`Protocol::MesiWb`] or if `cu_nodes` does not provide
    /// a node per CU.
    pub fn with_tracer(protocol: Protocol, params: MemSysParams, tracer: T) -> EnumMemorySystem<T> {
        assert!(
            matches!(protocol, Protocol::Gpu | Protocol::DeNovo),
            "the enum reference implements only the paper's two protocols"
        );
        assert_eq!(params.cu_nodes.len(), params.num_cus, "need one node per CU");
        let l1s = (0..params.num_cus)
            .map(|cu| L1 {
                cache: Cache::new(params.l1.clone()),
                mshr: Mshr::with_tracer(params.l1_mshrs, cu as u16, tracer.clone()),
                sb: StoreBuffer::with_tracer(params.store_buffer, cu as u16, tracer.clone()),
                port: Resource::new(),
            })
            .collect();
        let noc = Mesh::with_tracer(params.noc.clone(), tracer.clone());
        let nodes = noc.nodes();
        let banks = (0..params.l2_banks)
            .map(|b| L2Bank {
                cache: Cache::new(params.l2_bank.clone()),
                port: Resource::new(),
                node: NodeId((b % nodes as usize) as u16),
            })
            .collect();
        let dram = Dram::new(params.dram.clone());
        EnumMemorySystem {
            protocol,
            params,
            l1s,
            banks,
            noc,
            dram,
            stats: ProtoStats::default(),
            l1_accesses: 0,
            l1_tag_ops: 0,
            l2_accesses: 0,
            tracer,
        }
    }

    #[inline]
    fn emit(&self, kind: EventKind, cycle: Cycle, lane: u16, addr: u64, arg: u64, dur: u64) {
        if T::ENABLED {
            self.tracer.record(TraceEvent::new(kind, cycle, lane, addr, arg, dur));
        }
    }

    /// The protocol in use.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Configuration.
    pub fn params(&self) -> &MemSysParams {
        &self.params
    }

    fn line(&self, addr: Addr) -> LineAddr {
        LineAddr::of(addr, self.params.line_words)
    }

    fn bank_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) % self.banks.len()
    }

    fn l2_access(&mut self, arrive: Cycle, line: LineAddr, fill_from_dram: bool) -> Cycle {
        let b = self.bank_of(line);
        self.l2_accesses += 1;
        let start = self.banks[b].port.acquire(arrive, self.params.l2_occupancy);
        self.emit(EventKind::L2Access, start, b as u16, line.0, 0, self.params.l2_latency);
        let after = start + self.params.l2_latency;
        if !fill_from_dram {
            return after;
        }
        let present = self.banks[b].cache.lookup(line).is_some();
        if present {
            after
        } else {
            self.stats.dram_refills += 1;
            let done = self.dram.access(after, line.0);
            self.emit(EventKind::DramRefill, after, b as u16, line.0, 0, done - after);
            self.banks[b].cache.insert(line, L2State::Data);
            done
        }
    }

    fn bank_round_trip(
        &mut self,
        now: Cycle,
        cu: CuId,
        line: LineAddr,
        resp_flits: u64,
        at_bank: impl FnOnce(&mut Self, Cycle) -> Cycle,
    ) -> Cycle {
        let cu_node = self.params.cu_nodes[cu];
        let bank_node = self.banks[self.bank_of(line)].node;
        let arrive = self.noc.send(now, cu_node, bank_node, self.params.ctl_flits);
        let bank_done = at_bank(self, arrive);
        self.noc.send(bank_done, bank_node, cu_node, resp_flits)
    }

    // ------------------------------------------------------------------
    // Public access API.
    // ------------------------------------------------------------------

    /// A load (data or atomic).
    pub fn load(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        match self.protocol {
            Protocol::Gpu => self.gpu_load(now, cu, addr, kind),
            Protocol::DeNovo => self.denovo_load(now, cu, addr, kind),
            Protocol::MesiWb => unreachable!("rejected at construction"),
        }
    }

    /// A store (data or atomic).
    pub fn store(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        match self.protocol {
            Protocol::Gpu => self.gpu_store(now, cu, addr, kind),
            Protocol::DeNovo => self.denovo_store(now, cu, addr, kind),
            Protocol::MesiWb => unreachable!("rejected at construction"),
        }
    }

    /// An atomic RMW.
    pub fn rmw(&mut self, now: Cycle, cu: CuId, addr: Addr) -> Cycle {
        match self.protocol {
            Protocol::Gpu => self.gpu_atomic(now, cu, addr),
            Protocol::DeNovo => self.denovo_atomic(now, cu, addr),
            Protocol::MesiWb => unreachable!("rejected at construction"),
        }
    }

    /// Acquire-side consistency action.
    pub fn acquire(&mut self, now: Cycle, cu: CuId) -> Cycle {
        let dropped = match self.protocol {
            Protocol::Gpu => self.l1s[cu].cache.invalidate_where(|_, _| true),
            Protocol::DeNovo => self.l1s[cu].cache.invalidate_where(|_, s| *s == L1State::Valid),
            Protocol::MesiWb => unreachable!("rejected at construction"),
        };
        self.stats.invalidation_events += 1;
        self.stats.lines_invalidated += dropped;
        self.l1_tag_ops += dropped;
        self.emit(EventKind::Invalidate, now, cu as u16, 0, dropped, 2);
        now + 2
    }

    /// Release-side consistency action.
    pub fn release(&mut self, now: Cycle, cu: CuId) -> Cycle {
        self.stats.sb_flushes += 1;
        self.l1s[cu].sb.flush(now)
    }

    // ------------------------------------------------------------------
    // GPU coherence.
    // ------------------------------------------------------------------

    fn gpu_load(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        if kind.is_atomic() {
            return self.gpu_atomic(now, cu, addr);
        }
        let line = self.line(addr);
        self.l1_accesses += 1;
        let start = now;
        if let Some(done) = self.l1s[cu].mshr.pending(start, line) {
            self.stats.mshr_coalesced += 1;
            self.emit(
                EventKind::MshrCoalesce,
                start,
                cu as u16,
                line.0,
                0,
                done.max(start) - start,
            );
            return done.max(start);
        }
        if self.l1s[cu].cache.lookup(line).is_some() {
            self.stats.l1_hits += 1;
            self.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, self.params.l1_hit_latency);
            return start + self.params.l1_hit_latency;
        }
        self.stats.l1_misses += 1;
        self.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        match self.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                self.stats.mshr_coalesced += 1;
                return done;
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.gpu_load(retry, cu, addr, kind);
            }
            MshrOutcome::Allocated => {}
        }
        let flits = self.params.data_flits;
        let done = self
            .bank_round_trip(start, cu, line, flits, |s, arrive| s.l2_access(arrive, line, true));
        self.l1s[cu].cache.insert(line, L1State::Valid);
        self.l1s[cu].mshr.set_completion(line, done);
        done
    }

    fn gpu_store(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        if kind.is_atomic() {
            return self.gpu_atomic(now, cu, addr);
        }
        let line = self.line(addr);
        self.l1_accesses += 1;
        let cu_node = self.params.cu_nodes[cu];
        let bank_node = self.banks[self.bank_of(line)].node;
        let arrive = self.noc.send(now, cu_node, bank_node, self.params.data_flits);
        let drain_done = self.l2_access(arrive, line, false);
        if self.l1s[cu].cache.peek(line).is_some() {
            self.l1s[cu].cache.insert(line, L1State::Valid);
        }
        let accepted = self.l1s[cu].sb.push(now, line, drain_done);
        accepted + 1
    }

    fn gpu_atomic(&mut self, now: Cycle, cu: CuId, addr: Addr) -> Cycle {
        let line = self.line(addr);
        self.stats.atomics_at_l2 += 1;
        let done = self.bank_round_trip(now, cu, line, self.params.ctl_flits, |s, arrive| {
            s.l2_access(arrive, line, true)
        });
        self.emit(EventKind::AtomicAtL2, now, cu as u16, addr, 0, done - now);
        done
    }

    // ------------------------------------------------------------------
    // DeNovo.
    // ------------------------------------------------------------------

    fn denovo_register(&mut self, now: Cycle, cu: CuId, line: LineAddr) -> Cycle {
        let cu_node = self.params.cu_nodes[cu];
        let b = self.bank_of(line);
        let bank_node = self.banks[b].node;
        let arrive = self.noc.send(now, cu_node, bank_node, self.params.ctl_flits);
        let start = self.banks[b].port.acquire(arrive, self.params.l2_occupancy);
        self.l2_accesses += 1;
        self.emit(EventKind::L2Access, start, b as u16, line.0, 0, self.params.l2_latency);
        let dir_done = start + self.params.l2_latency;
        let prev = self.banks[b].cache.lookup(line).copied();
        self.banks[b].cache.insert(line, L2State::Owned(cu));
        let data_at_cu = match prev {
            Some(L2State::Owned(owner)) if owner != cu => {
                self.stats.remote_l1_transfers += 1;
                self.emit(
                    EventKind::OwnershipTransfer,
                    dir_done,
                    cu as u16,
                    line.0,
                    owner as u64,
                    0,
                );
                let owner_node = self.params.cu_nodes[owner];
                self.l1s[owner].cache.remove(line);
                self.l1_tag_ops += 1;
                let at_owner =
                    self.noc.send(dir_done, bank_node, owner_node, self.params.ctl_flits);
                let served = self.l1s[owner].port.acquire(at_owner, 1) + self.params.l1_hit_latency;
                self.l1_accesses += 1;
                self.noc.send(served, owner_node, cu_node, self.params.data_flits)
            }
            Some(_) => self.noc.send(dir_done, bank_node, cu_node, self.params.data_flits),
            None => {
                self.stats.dram_refills += 1;
                let filled = self.dram.access(dir_done, line.0);
                self.emit(EventKind::DramRefill, dir_done, b as u16, line.0, 0, filled - dir_done);
                self.banks[b].cache.insert(line, L2State::Owned(cu));
                self.noc.send(filled, bank_node, cu_node, self.params.data_flits)
            }
        };
        let evicted = self.l1s[cu]
            .cache
            .insert_with_pin(line, L1State::Registered, |s| *s == L1State::Registered);
        self.handle_l1_eviction(data_at_cu, cu, evicted);
        data_at_cu
    }

    fn denovo_load(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        if kind.is_atomic() {
            return self.denovo_atomic(now, cu, addr);
        }
        let line = self.line(addr);
        self.l1_accesses += 1;
        let start = now;
        if let Some(done) = self.l1s[cu].mshr.pending(start, line) {
            self.stats.mshr_coalesced += 1;
            self.emit(
                EventKind::MshrCoalesce,
                start,
                cu as u16,
                line.0,
                0,
                done.max(start) - start,
            );
            return done.max(start);
        }
        if self.l1s[cu].cache.lookup(line).is_some() {
            self.stats.l1_hits += 1;
            self.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, self.params.l1_hit_latency);
            return start + self.params.l1_hit_latency;
        }
        self.stats.l1_misses += 1;
        self.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        match self.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                self.stats.mshr_coalesced += 1;
                return done;
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.denovo_load(retry, cu, addr, kind);
            }
            MshrOutcome::Allocated => {}
        }
        let cu_node = self.params.cu_nodes[cu];
        let b = self.bank_of(line);
        let bank_node = self.banks[b].node;
        let arrive = self.noc.send(start, cu_node, bank_node, self.params.ctl_flits);
        let dir_start = self.banks[b].port.acquire(arrive, self.params.l2_occupancy);
        self.l2_accesses += 1;
        self.emit(EventKind::L2Access, dir_start, b as u16, line.0, 0, self.params.l2_latency);
        let dir_done = dir_start + self.params.l2_latency;
        let state = self.banks[b].cache.lookup(line).copied();
        let done = match state {
            Some(L2State::Owned(owner)) if owner != cu => {
                self.stats.remote_l1_transfers += 1;
                self.emit(
                    EventKind::OwnershipTransfer,
                    dir_done,
                    cu as u16,
                    line.0,
                    owner as u64,
                    0,
                );
                let owner_node = self.params.cu_nodes[owner];
                let at_owner =
                    self.noc.send(dir_done, bank_node, owner_node, self.params.ctl_flits);
                let served = self.l1s[owner].port.acquire(at_owner, 1) + self.params.l1_hit_latency;
                self.l1_accesses += 1;
                self.noc.send(served, owner_node, cu_node, self.params.data_flits)
            }
            Some(_) => self.noc.send(dir_done, bank_node, cu_node, self.params.data_flits),
            None => {
                self.stats.dram_refills += 1;
                let filled = self.dram.access(dir_done, line.0);
                self.emit(EventKind::DramRefill, dir_done, b as u16, line.0, 0, filled - dir_done);
                self.banks[b].cache.insert(line, L2State::Data);
                self.noc.send(filled, bank_node, cu_node, self.params.data_flits)
            }
        };
        let evicted =
            self.l1s[cu].cache.insert_with_pin(line, L1State::Valid, |s| *s == L1State::Registered);
        self.handle_l1_eviction(done, cu, evicted);
        self.l1s[cu].mshr.set_completion(line, done);
        done
    }

    fn denovo_store(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        if kind.is_atomic() {
            return self.denovo_atomic(now, cu, addr);
        }
        let line = self.line(addr);
        self.l1_accesses += 1;
        let start = now;
        let pending = self.l1s[cu].mshr.pending(start, line);
        if pending.is_none() && self.l1s[cu].cache.lookup(line) == Some(&mut L1State::Registered) {
            self.stats.l1_hits += 1;
            self.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, self.params.l1_hit_latency);
            return start + self.params.l1_hit_latency;
        }
        self.stats.l1_misses += 1;
        self.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        let drain_done = match self.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                self.stats.mshr_coalesced += 1;
                done
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.denovo_store(retry, cu, addr, kind);
            }
            MshrOutcome::Allocated => {
                let done = self.denovo_register(start, cu, line);
                self.l1s[cu].mshr.set_completion(line, done);
                done
            }
        };
        let accepted = self.l1s[cu].sb.push(start, line, drain_done);
        accepted + 1
    }

    fn denovo_atomic(&mut self, now: Cycle, cu: CuId, addr: Addr) -> Cycle {
        let line = self.line(addr);
        self.stats.atomics_at_l1 += 1;
        self.emit(EventKind::AtomicAtL1, now, cu as u16, addr, 0, 0);
        self.l1_accesses += 1;
        let start = now;
        if let Some(done) = self.l1s[cu].mshr.pending(start, line) {
            if self.params.atomic_coalescing {
                self.stats.mshr_coalesced += 1;
                self.emit(
                    EventKind::MshrCoalesce,
                    start,
                    cu as u16,
                    line.0,
                    0,
                    done.max(start) - start,
                );
                let served = self.l1s[cu].port.acquire(done.max(start), 1);
                return served + self.params.l1_hit_latency;
            }
            let refetch = self.denovo_register(done.max(start), cu, line);
            let served = self.l1s[cu].port.acquire(refetch, 1);
            return served + self.params.l1_hit_latency;
        }
        if self.l1s[cu].cache.lookup(line) == Some(&mut L1State::Registered) {
            self.stats.atomic_l1_reuse += 1;
            self.stats.l1_hits += 1;
            self.emit(EventKind::AtomicReuse, start, cu as u16, line.0, 0, 0);
            self.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, self.params.l1_hit_latency);
            let served = self.l1s[cu].port.acquire(start, 1);
            return served + self.params.l1_hit_latency;
        }
        self.stats.l1_misses += 1;
        self.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        let owned_at = match self.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                self.stats.mshr_coalesced += 1;
                done
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.denovo_atomic(retry, cu, addr);
            }
            MshrOutcome::Allocated => {
                let done = self.denovo_register(start, cu, line);
                self.l1s[cu].mshr.set_completion(line, done);
                done
            }
        };
        let served = self.l1s[cu].port.acquire(owned_at, 1);
        served + self.params.l1_hit_latency
    }

    fn handle_l1_eviction(
        &mut self,
        now: Cycle,
        cu: CuId,
        evicted: Option<hsim_mem::EvictedLine<L1State>>,
    ) {
        let Some(ev) = evicted else { return };
        if ev.state != L1State::Registered {
            return;
        }
        self.stats.writebacks += 1;
        self.emit(EventKind::Writeback, now, cu as u16, ev.line.0, 0, 0);
        let cu_node = self.params.cu_nodes[cu];
        let b = self.bank_of(ev.line);
        let bank_node = self.banks[b].node;
        let arrive = self.noc.send(now, cu_node, bank_node, self.params.data_flits);
        let start = self.banks[b].port.acquire(arrive, self.params.l2_occupancy);
        let _done = start + self.params.l2_latency;
        self.l2_accesses += 1;
        self.emit(EventKind::L2Access, start, b as u16, ev.line.0, 0, self.params.l2_latency);
        if self.banks[b].cache.peek(ev.line) == Some(&L2State::Owned(cu)) {
            self.banks[b].cache.insert(ev.line, L2State::Data);
        }
    }

    // ------------------------------------------------------------------
    // Statistics.
    // ------------------------------------------------------------------

    /// Protocol event statistics.
    pub fn stats(&self) -> &ProtoStats {
        &self.stats
    }

    /// NoC statistics.
    pub fn noc_stats(&self) -> &hsim_noc::NocStats {
        self.noc.stats()
    }

    /// Energy-relevant counters: (L1 accesses, L1 tag ops, L2 accesses,
    /// DRAM accesses, NoC flit-hops).
    pub fn energy_events(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.l1_accesses,
            self.l1_tag_ops,
            self.l2_accesses,
            self.dram.accesses(),
            self.noc.stats().flit_hops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "paper's two protocols")]
    fn reference_rejects_mesi() {
        let _ = EnumMemorySystem::new(Protocol::MesiWb, MemSysParams::default());
    }

    #[test]
    fn reference_still_behaves_like_the_old_system() {
        // Spot-check one invariant per protocol; the heavy lifting is
        // the randomized differential test at the workspace root.
        let mut g = EnumMemorySystem::new(Protocol::Gpu, MemSysParams::default());
        let t = g.rmw(0, 0, 200);
        let t2 = g.rmw(t, 0, 200);
        assert!(t2 - t >= g.params().l2_latency);
        assert_eq!(g.stats().atomics_at_l2, 2);

        let mut d = EnumMemorySystem::new(Protocol::DeNovo, MemSysParams::default());
        let t = d.rmw(0, 3, 200);
        let t2 = d.rmw(t, 3, 200);
        assert!(t2 - t <= 1 + d.params().l1_hit_latency);
        assert_eq!(d.stats().atomic_l1_reuse, 1);
    }
}
