//! # hsim-coherence — pluggable coherence protocols
//!
//! Protocol behaviour is a first-class policy: the [`CoherencePolicy`]
//! trait captures per-line state transitions for loads/stores/atomics,
//! acquire/release actions and writeback/placement decisions, executed
//! against the shared hardware state in [`MemCore`] (per-CU L1s, banked
//! NUCA L2 + directory, store buffers, MSHRs, mesh NoC, DRAM). Three
//! protocols ship as transaction-level timing models:
//!
//! * **GPU coherence** (§2.1) — software-driven: L1s are write-through
//!   with no ownership; paired atomic loads flash-invalidate the entire
//!   L1; paired atomic stores flush the store buffer; *every* atomic is
//!   performed at its home L2 bank, so atomics serialize at the bank
//!   and can never be reused or coalesced at the L1.
//! * **DeNovo** (§2.2) — hybrid: stores and atomics obtain *ownership*
//!   (registration) at the L1 and are performed locally; reads
//!   self-invalidate only non-owned (Valid) lines at acquires; L1 MSHRs
//!   coalesce same-line requests, letting overlapped relaxed atomics to
//!   one address ride a single ownership transfer (§6.3); contended
//!   lines bounce between L1s at remote-L1 latency.
//! * **MESI-WB** — the CPU-class writeback baseline §2 contrasts
//!   against: a directory tracks sharers, writers invalidate them,
//!   reads of owned lines recall the owner, and acquires are free
//!   because the hardware keeps caches coherent.
//!
//! The pre-refactor enum-dispatch monolith survives as
//! [`reference::EnumMemorySystem`] for differential testing.
//!
//! The memory system is timing + state only: functional values live in
//! the execution engine (`hsim-gpu`/`hsim-sys`), mirroring how
//! GPGPU-Sim executes functionally at issue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod memsys;
mod mesi;
mod policy;
pub mod reference;

pub use memsys::{AccessKind, CuId, MemCore, MemSysParams, MemorySystem, ProtoStats};
pub use mesi::MesiWbCoherence;
pub use policy::{policy_for, CoherencePolicy, DeNovoCoherence, GpuCoherence};

pub use drfrlx_core::Protocol;
