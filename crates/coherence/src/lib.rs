//! # hsim-coherence — GPU and DeNovo coherence protocols
//!
//! The two protocols the paper evaluates (§2.1, §2.2), implemented as
//! transaction-level timing models over [`hsim_mem`] structures and an
//! [`hsim_noc`] mesh:
//!
//! * **GPU coherence** — software-driven: L1s are write-through with no
//!   ownership; paired atomic loads flash-invalidate the entire L1;
//!   paired atomic stores flush the store buffer; *every* atomic is
//!   performed at its home L2 bank, so atomics serialize at the bank
//!   and can never be reused or coalesced at the L1.
//! * **DeNovo** — hybrid: stores and atomics obtain *ownership*
//!   (registration) at the L1 and are performed locally; reads
//!   self-invalidate only non-owned (Valid) lines at acquires; L1 MSHRs
//!   coalesce same-line requests, letting overlapped relaxed atomics to
//!   one address ride a single ownership transfer (§6.3); contended
//!   lines bounce between L1s at remote-L1 latency.
//!
//! The memory system is timing + state only: functional values live in
//! the execution engine (`hsim-gpu`/`hsim-sys`), mirroring how
//! GPGPU-Sim executes functionally at issue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod memsys;

pub use memsys::{AccessKind, CuId, MemSysParams, MemorySystem, ProtoStats};

pub use drfrlx_core::Protocol;
