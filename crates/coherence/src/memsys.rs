//! The shared memory system: per-CU L1s, banked NUCA L2, DRAM, mesh.

use drfrlx_core::Protocol;
use hsim_mem::{
    Addr, Cache, CacheParams, Cycle, Dram, DramParams, LineAddr, Mshr, MshrOutcome, Resource,
    StoreBuffer,
};
use hsim_noc::{Mesh, NocParams, NodeId};
use hsim_trace::{EventKind, NoTrace, Trace, TraceEvent};

/// Index of a compute unit (or CPU core) in the memory system.
pub type CuId = usize;

/// What kind of access the execution engine is making. Atomic accesses
/// carry no strength here — *where* an atomic is performed depends only
/// on the protocol; consistency-model behaviour (invalidate / flush /
/// overlap) is driven by the execution engine calling
/// [`MemorySystem::acquire`] / [`MemorySystem::release`] and deciding
/// whether to wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Ordinary load.
    DataLoad,
    /// Ordinary store.
    DataStore,
    /// Atomic load.
    AtomicLoad,
    /// Atomic store.
    AtomicStore,
    /// Atomic read-modify-write.
    AtomicRmw,
}

impl AccessKind {
    /// Is this any atomic access?
    pub fn is_atomic(self) -> bool {
        !matches!(self, AccessKind::DataLoad | AccessKind::DataStore)
    }
}

/// Memory-system configuration (paper Table 2 defaults live in
/// `hsim-sys`).
#[derive(Debug, Clone)]
pub struct MemSysParams {
    /// Words per cache line.
    pub line_words: u64,
    /// Number of L1s (one per CU/core).
    pub num_cus: usize,
    /// Mesh node hosting each CU's L1 (index = CuId).
    pub cu_nodes: Vec<NodeId>,
    /// L1 geometry.
    pub l1: CacheParams,
    /// L1 hit latency.
    pub l1_hit_latency: u64,
    /// L1 MSHR entries.
    pub l1_mshrs: usize,
    /// Store-buffer entries.
    pub store_buffer: usize,
    /// Number of L2 banks (bank `b` lives at mesh node `b % nodes`).
    pub l2_banks: usize,
    /// Geometry of each bank.
    pub l2_bank: CacheParams,
    /// L2 bank access latency.
    pub l2_latency: u64,
    /// Cycles a bank is occupied per access (serialization unit —
    /// atomics hammering one bank queue here).
    pub l2_occupancy: u64,
    /// Flits in a control message.
    pub ctl_flits: u64,
    /// Flits in a data (line) message.
    pub data_flits: u64,
    /// NoC parameters.
    pub noc: NocParams,
    /// DRAM parameters.
    pub dram: DramParams,
    /// Enable L1 MSHR coalescing of same-line requests (DeNovo's §6.3
    /// advantage). Disable for the ablation study.
    pub atomic_coalescing: bool,
}

impl Default for MemSysParams {
    fn default() -> Self {
        // 15 GPU CUs + 1 CPU core on a 4x4 mesh; 32 KB 8-way L1s,
        // 16-bank 4 MB L2 (Table 2).
        let noc = NocParams::default();
        MemSysParams {
            line_words: 16,
            num_cus: 16,
            cu_nodes: (0..16).map(NodeId).collect(),
            l1: CacheParams::with_capacity(32 * 1024, 64, 8),
            l1_hit_latency: 1,
            l1_mshrs: 128,
            store_buffer: 128,
            l2_banks: 16,
            l2_bank: CacheParams::with_capacity(4 * 1024 * 1024 / 16, 64, 16),
            l2_latency: 20,
            l2_occupancy: 4,
            ctl_flits: 1,
            data_flits: 5,
            noc,
            dram: DramParams::default(),
            atomic_coalescing: true,
        }
    }
}

/// L1 line state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L1State {
    /// Readable copy (self-invalidated at acquires).
    Valid,
    /// DeNovo registration: owned, writable, survives acquires.
    Registered,
}

/// L2 directory/bank state for a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L2State {
    /// The bank holds the data.
    Data,
    /// A CU's L1 owns the line (DeNovo registration).
    Owned(CuId),
}

/// Protocol/consistency event statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtoStats {
    /// L1 load hits / misses (data + atomics performed at L1).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Flash/self-invalidation events (acquires that invalidated).
    pub invalidation_events: u64,
    /// Lines dropped by self-invalidation.
    pub lines_invalidated: u64,
    /// Store-buffer flushes (releases).
    pub sb_flushes: u64,
    /// Atomics performed at the L2 (GPU protocol).
    pub atomics_at_l2: u64,
    /// Atomics performed at the L1 (DeNovo).
    pub atomics_at_l1: u64,
    /// Of those, ones that hit an already-registered line (reuse).
    pub atomic_l1_reuse: u64,
    /// Requests satisfied by a remote L1 (DeNovo forwarding).
    pub remote_l1_transfers: u64,
    /// Same-line requests coalesced in L1 MSHRs.
    pub mshr_coalesced: u64,
    /// Writebacks of owned lines to the L2.
    pub writebacks: u64,
    /// DRAM refills.
    pub dram_refills: u64,
}

struct L1<T: Trace> {
    cache: Cache<L1State>,
    mshr: Mshr<T>,
    sb: StoreBuffer<T>,
    port: Resource,
}

struct L2Bank {
    cache: Cache<L2State>,
    port: Resource,
    node: NodeId,
}

/// The full memory system for one protocol, generic over the tracing
/// capability (`NoTrace` by default — the instrumented sites compile
/// away entirely).
pub struct MemorySystem<T: Trace = NoTrace> {
    protocol: Protocol,
    params: MemSysParams,
    l1s: Vec<L1<T>>,
    banks: Vec<L2Bank>,
    noc: Mesh<T>,
    dram: Dram,
    stats: ProtoStats,
    /// L1 data-array accesses (energy).
    l1_accesses: u64,
    /// L1 tag sweeps from invalidations (energy).
    l1_tag_ops: u64,
    /// L2 accesses (energy).
    l2_accesses: u64,
    tracer: T,
}

impl MemorySystem {
    /// Build an untraced memory system.
    ///
    /// # Panics
    ///
    /// Panics if `cu_nodes` does not provide a node per CU.
    pub fn new(protocol: Protocol, params: MemSysParams) -> MemorySystem {
        MemorySystem::with_tracer(protocol, params, NoTrace)
    }
}

impl<T: Trace> MemorySystem<T> {
    /// Build a memory system emitting protocol events (hits, misses,
    /// invalidations, ownership transfers, atomic placement, NoC and
    /// DRAM activity) into `tracer`.
    ///
    /// # Panics
    ///
    /// Panics if `cu_nodes` does not provide a node per CU.
    pub fn with_tracer(protocol: Protocol, params: MemSysParams, tracer: T) -> MemorySystem<T> {
        assert_eq!(params.cu_nodes.len(), params.num_cus, "need one node per CU");
        let l1s = (0..params.num_cus)
            .map(|cu| L1 {
                cache: Cache::new(params.l1.clone()),
                mshr: Mshr::with_tracer(params.l1_mshrs, cu as u16, tracer.clone()),
                sb: StoreBuffer::with_tracer(params.store_buffer, cu as u16, tracer.clone()),
                port: Resource::new(),
            })
            .collect();
        let noc = Mesh::with_tracer(params.noc.clone(), tracer.clone());
        let nodes = noc.nodes();
        let banks = (0..params.l2_banks)
            .map(|b| L2Bank {
                cache: Cache::new(params.l2_bank.clone()),
                port: Resource::new(),
                node: NodeId((b % nodes as usize) as u16),
            })
            .collect();
        let dram = Dram::new(params.dram.clone());
        MemorySystem {
            protocol,
            params,
            l1s,
            banks,
            noc,
            dram,
            stats: ProtoStats::default(),
            l1_accesses: 0,
            l1_tag_ops: 0,
            l2_accesses: 0,
            tracer,
        }
    }

    /// Emit one trace event (no-op unless `T::ENABLED`).
    #[inline]
    fn emit(&self, kind: EventKind, cycle: Cycle, lane: u16, addr: u64, arg: u64, dur: u64) {
        if T::ENABLED {
            self.tracer.record(TraceEvent::new(kind, cycle, lane, addr, arg, dur));
        }
    }

    /// The protocol in use.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Configuration.
    pub fn params(&self) -> &MemSysParams {
        &self.params
    }

    fn line(&self, addr: Addr) -> LineAddr {
        LineAddr::of(addr, self.params.line_words)
    }

    fn bank_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) % self.banks.len()
    }

    /// L2-bank access at `now` arriving from `from`; returns (data
    /// ready at bank, bank index). Handles bank queuing and DRAM fill.
    fn l2_access(&mut self, arrive: Cycle, line: LineAddr, fill_from_dram: bool) -> Cycle {
        let b = self.bank_of(line);
        self.l2_accesses += 1;
        let start = self.banks[b].port.acquire(arrive, self.params.l2_occupancy);
        self.emit(EventKind::L2Access, start, b as u16, line.0, 0, self.params.l2_latency);
        let after = start + self.params.l2_latency;
        if !fill_from_dram {
            return after;
        }
        // Tag check: miss goes to DRAM, then fills the bank.
        let present = self.banks[b].cache.lookup(line).is_some();
        if present {
            after
        } else {
            self.stats.dram_refills += 1;
            let done = self.dram.access(after, line.0);
            self.emit(EventKind::DramRefill, after, b as u16, line.0, 0, done - after);
            self.banks[b].cache.insert(line, L2State::Data);
            done
        }
    }

    /// Round-trip a control request + data response between a CU and a
    /// line's home bank, invoking `at_bank` for the bank-side latency.
    fn bank_round_trip(
        &mut self,
        now: Cycle,
        cu: CuId,
        line: LineAddr,
        resp_flits: u64,
        at_bank: impl FnOnce(&mut Self, Cycle) -> Cycle,
    ) -> Cycle {
        let cu_node = self.params.cu_nodes[cu];
        let bank_node = self.banks[self.bank_of(line)].node;
        let arrive = self.noc.send(now, cu_node, bank_node, self.params.ctl_flits);
        let bank_done = at_bank(self, arrive);
        self.noc.send(bank_done, bank_node, cu_node, resp_flits)
    }

    // ------------------------------------------------------------------
    // Public access API (called by the execution engine at issue time).
    // ------------------------------------------------------------------

    /// A load (data or atomic). Returns the cycle the value is
    /// available to the requesting CU.
    pub fn load(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        match self.protocol {
            Protocol::Gpu => self.gpu_load(now, cu, addr, kind),
            Protocol::DeNovo => self.denovo_load(now, cu, addr, kind),
        }
    }

    /// A store (data or atomic). Returns the cycle the CU may proceed
    /// (store accepted); the drain completes in the background, bounded
    /// by [`MemorySystem::release`].
    pub fn store(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        match self.protocol {
            Protocol::Gpu => self.gpu_store(now, cu, addr, kind),
            Protocol::DeNovo => self.denovo_store(now, cu, addr, kind),
        }
    }

    /// An atomic RMW; returns the cycle the old value is available.
    pub fn rmw(&mut self, now: Cycle, cu: CuId, addr: Addr) -> Cycle {
        match self.protocol {
            Protocol::Gpu => self.gpu_atomic(now, cu, addr),
            Protocol::DeNovo => self.denovo_atomic(now, cu, addr),
        }
    }

    /// Acquire-side consistency action for a *paired* atomic load:
    /// self-invalidate stale data in the CU's L1. GPU coherence drops
    /// every line; DeNovo keeps registered (owned) lines. Returns the
    /// cycle the invalidation is done (flash-clear: cheap in time,
    /// costly in lost reuse).
    pub fn acquire(&mut self, now: Cycle, cu: CuId) -> Cycle {
        let dropped = match self.protocol {
            Protocol::Gpu => self.l1s[cu].cache.invalidate_where(|_, _| true),
            Protocol::DeNovo => self.l1s[cu].cache.invalidate_where(|_, s| *s == L1State::Valid),
        };
        self.stats.invalidation_events += 1;
        self.stats.lines_invalidated += dropped;
        self.l1_tag_ops += dropped;
        self.emit(EventKind::Invalidate, now, cu as u16, 0, dropped, 2);
        now + 2
    }

    /// Release-side consistency action for a *paired* atomic store:
    /// flush the store buffer (GPU: finish write-throughs; DeNovo:
    /// finish pending ownership registrations). Returns the cycle the
    /// flush completes.
    pub fn release(&mut self, now: Cycle, cu: CuId) -> Cycle {
        self.stats.sb_flushes += 1;
        self.l1s[cu].sb.flush(now)
    }

    // ------------------------------------------------------------------
    // GPU coherence.
    // ------------------------------------------------------------------

    fn gpu_load(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        if kind.is_atomic() {
            return self.gpu_atomic(now, cu, addr);
        }
        let line = self.line(addr);
        self.l1_accesses += 1;
        let start = now;
        // A fill still in flight wins over the (already-installed)
        // cache state: merge rather than hitting data that has not
        // arrived yet.
        if let Some(done) = self.l1s[cu].mshr.pending(start, line) {
            self.stats.mshr_coalesced += 1;
            self.emit(
                EventKind::MshrCoalesce,
                start,
                cu as u16,
                line.0,
                0,
                done.max(start) - start,
            );
            return done.max(start);
        }
        if self.l1s[cu].cache.lookup(line).is_some() {
            self.stats.l1_hits += 1;
            self.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, self.params.l1_hit_latency);
            return start + self.params.l1_hit_latency;
        }
        self.stats.l1_misses += 1;
        self.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        // MSHR: merge with an in-flight fill for the same line.
        match self.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                self.stats.mshr_coalesced += 1;
                return done;
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.gpu_load(retry, cu, addr, kind);
            }
            MshrOutcome::Allocated => {}
        }
        let flits = self.params.data_flits;
        let done = self
            .bank_round_trip(start, cu, line, flits, |s, arrive| s.l2_access(arrive, line, true));
        self.l1s[cu].cache.insert(line, L1State::Valid);
        self.l1s[cu].mshr.set_completion(line, done);
        done
    }

    fn gpu_store(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        if kind.is_atomic() {
            return self.gpu_atomic(now, cu, addr);
        }
        let line = self.line(addr);
        self.l1_accesses += 1;
        // Write-through: compute the background drain (one-way trip +
        // bank write), then enqueue in the store buffer.
        let cu_node = self.params.cu_nodes[cu];
        let bank_node = self.banks[self.bank_of(line)].node;
        let arrive = self.noc.send(now, cu_node, bank_node, self.params.data_flits);
        let drain_done = self.l2_access(arrive, line, false);
        // Keep any L1 copy coherent with our own writes.
        if self.l1s[cu].cache.peek(line).is_some() {
            self.l1s[cu].cache.insert(line, L1State::Valid);
        }
        let accepted = self.l1s[cu].sb.push(now, line, drain_done);
        accepted + 1
    }

    /// GPU atomics always execute at the home L2 bank: round trip plus
    /// serialized bank occupancy; no reuse, no coalescing (§2.1, §6.3).
    fn gpu_atomic(&mut self, now: Cycle, cu: CuId, addr: Addr) -> Cycle {
        let line = self.line(addr);
        self.stats.atomics_at_l2 += 1;
        let done = self.bank_round_trip(now, cu, line, self.params.ctl_flits, |s, arrive| {
            s.l2_access(arrive, line, true)
        });
        self.emit(EventKind::AtomicAtL2, now, cu as u16, addr, 0, done - now);
        done
    }

    // ------------------------------------------------------------------
    // DeNovo.
    // ------------------------------------------------------------------

    /// Obtain registration (ownership) of `line` for `cu`, starting at
    /// `now`; returns the completion cycle. Transfers from a previous
    /// owner cost an extra forward hop (remote-L1 latency).
    fn denovo_register(&mut self, now: Cycle, cu: CuId, line: LineAddr) -> Cycle {
        let cu_node = self.params.cu_nodes[cu];
        let b = self.bank_of(line);
        let bank_node = self.banks[b].node;
        let arrive = self.noc.send(now, cu_node, bank_node, self.params.ctl_flits);
        let start = self.banks[b].port.acquire(arrive, self.params.l2_occupancy);
        self.l2_accesses += 1;
        self.emit(EventKind::L2Access, start, b as u16, line.0, 0, self.params.l2_latency);
        let dir_done = start + self.params.l2_latency;
        let prev = self.banks[b].cache.lookup(line).copied();
        self.banks[b].cache.insert(line, L2State::Owned(cu));
        let data_at_cu = match prev {
            Some(L2State::Owned(owner)) if owner != cu => {
                // Forward to previous owner; it hands the line over.
                self.stats.remote_l1_transfers += 1;
                self.emit(
                    EventKind::OwnershipTransfer,
                    dir_done,
                    cu as u16,
                    line.0,
                    owner as u64,
                    0,
                );
                let owner_node = self.params.cu_nodes[owner];
                self.l1s[owner].cache.remove(line);
                self.l1_tag_ops += 1;
                let at_owner =
                    self.noc.send(dir_done, bank_node, owner_node, self.params.ctl_flits);
                let served = self.l1s[owner].port.acquire(at_owner, 1) + self.params.l1_hit_latency;
                self.l1_accesses += 1;
                self.noc.send(served, owner_node, cu_node, self.params.data_flits)
            }
            Some(_) => {
                // L2 had the data (or we already owned it): reply directly.
                self.noc.send(dir_done, bank_node, cu_node, self.params.data_flits)
            }
            None => {
                // L2 miss: fill from DRAM first.
                self.stats.dram_refills += 1;
                let filled = self.dram.access(dir_done, line.0);
                self.emit(EventKind::DramRefill, dir_done, b as u16, line.0, 0, filled - dir_done);
                self.banks[b].cache.insert(line, L2State::Owned(cu));
                self.noc.send(filled, bank_node, cu_node, self.params.data_flits)
            }
        };
        let evicted = self.l1s[cu]
            .cache
            .insert_with_pin(line, L1State::Registered, |s| *s == L1State::Registered);
        // A full set of registered lines can force a registered victim
        // out; its ownership must return to the L2 (writeback).
        self.handle_l1_eviction(data_at_cu, cu, evicted);
        data_at_cu
    }

    fn denovo_load(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        if kind.is_atomic() {
            return self.denovo_atomic(now, cu, addr);
        }
        let line = self.line(addr);
        self.l1_accesses += 1;
        let start = now;
        if let Some(done) = self.l1s[cu].mshr.pending(start, line) {
            self.stats.mshr_coalesced += 1;
            self.emit(
                EventKind::MshrCoalesce,
                start,
                cu as u16,
                line.0,
                0,
                done.max(start) - start,
            );
            return done.max(start);
        }
        if self.l1s[cu].cache.lookup(line).is_some() {
            self.stats.l1_hits += 1;
            self.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, self.params.l1_hit_latency);
            return start + self.params.l1_hit_latency;
        }
        self.stats.l1_misses += 1;
        self.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        match self.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                self.stats.mshr_coalesced += 1;
                return done;
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.denovo_load(retry, cu, addr, kind);
            }
            MshrOutcome::Allocated => {}
        }
        // Read request to the home bank; may be forwarded to an owner.
        let cu_node = self.params.cu_nodes[cu];
        let b = self.bank_of(line);
        let bank_node = self.banks[b].node;
        let arrive = self.noc.send(start, cu_node, bank_node, self.params.ctl_flits);
        let dir_start = self.banks[b].port.acquire(arrive, self.params.l2_occupancy);
        self.l2_accesses += 1;
        self.emit(EventKind::L2Access, dir_start, b as u16, line.0, 0, self.params.l2_latency);
        let dir_done = dir_start + self.params.l2_latency;
        let state = self.banks[b].cache.lookup(line).copied();
        let done = match state {
            Some(L2State::Owned(owner)) if owner != cu => {
                // Forward: remote L1 services the read, keeps ownership.
                self.stats.remote_l1_transfers += 1;
                self.emit(
                    EventKind::OwnershipTransfer,
                    dir_done,
                    cu as u16,
                    line.0,
                    owner as u64,
                    0,
                );
                let owner_node = self.params.cu_nodes[owner];
                let at_owner =
                    self.noc.send(dir_done, bank_node, owner_node, self.params.ctl_flits);
                let served = self.l1s[owner].port.acquire(at_owner, 1) + self.params.l1_hit_latency;
                self.l1_accesses += 1;
                self.noc.send(served, owner_node, cu_node, self.params.data_flits)
            }
            Some(_) => self.noc.send(dir_done, bank_node, cu_node, self.params.data_flits),
            None => {
                self.stats.dram_refills += 1;
                let filled = self.dram.access(dir_done, line.0);
                self.emit(EventKind::DramRefill, dir_done, b as u16, line.0, 0, filled - dir_done);
                self.banks[b].cache.insert(line, L2State::Data);
                self.noc.send(filled, bank_node, cu_node, self.params.data_flits)
            }
        };
        // Fill as Valid (read data never takes ownership in DeNovo).
        let evicted =
            self.l1s[cu].cache.insert_with_pin(line, L1State::Valid, |s| *s == L1State::Registered);
        self.handle_l1_eviction(done, cu, evicted);
        self.l1s[cu].mshr.set_completion(line, done);
        done
    }

    fn denovo_store(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        if kind.is_atomic() {
            return self.denovo_atomic(now, cu, addr);
        }
        let line = self.line(addr);
        self.l1_accesses += 1;
        let start = now;
        let pending = self.l1s[cu].mshr.pending(start, line);
        if pending.is_none() && self.l1s[cu].cache.lookup(line) == Some(&mut L1State::Registered) {
            // Owned: write locally, writeback caching.
            self.stats.l1_hits += 1;
            self.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, self.params.l1_hit_latency);
            return start + self.params.l1_hit_latency;
        }
        self.stats.l1_misses += 1;
        self.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        // Pend in the store buffer while registration is in flight.
        let drain_done = match self.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                self.stats.mshr_coalesced += 1;
                done
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.denovo_store(retry, cu, addr, kind);
            }
            MshrOutcome::Allocated => {
                let done = self.denovo_register(start, cu, line);
                self.l1s[cu].mshr.set_completion(line, done);
                done
            }
        };
        let accepted = self.l1s[cu].sb.push(start, line, drain_done);
        accepted + 1
    }

    /// DeNovo atomics execute at the L1 once the line is registered —
    /// repeated atomics to the same line hit locally (reuse), and
    /// concurrent requests to one line share a single registration via
    /// the MSHR (coalescing).
    fn denovo_atomic(&mut self, now: Cycle, cu: CuId, addr: Addr) -> Cycle {
        let line = self.line(addr);
        self.stats.atomics_at_l1 += 1;
        self.emit(EventKind::AtomicAtL1, now, cu as u16, addr, 0, 0);
        self.l1_accesses += 1;
        let start = now;
        if let Some(done) = self.l1s[cu].mshr.pending(start, line) {
            if self.params.atomic_coalescing {
                // Ownership transfer in flight: coalesce, then perform
                // locally once it lands (serialized by the L1 port).
                self.stats.mshr_coalesced += 1;
                self.emit(
                    EventKind::MshrCoalesce,
                    start,
                    cu as u16,
                    line.0,
                    0,
                    done.max(start) - start,
                );
                let served = self.l1s[cu].port.acquire(done.max(start), 1);
                return served + self.params.l1_hit_latency;
            }
            // Ablation: no coalescing — wait out the in-flight fill,
            // then issue a fresh (redundant) registration round trip.
            let refetch = self.denovo_register(done.max(start), cu, line);
            let served = self.l1s[cu].port.acquire(refetch, 1);
            return served + self.params.l1_hit_latency;
        }
        if self.l1s[cu].cache.lookup(line) == Some(&mut L1State::Registered) {
            self.stats.atomic_l1_reuse += 1;
            self.stats.l1_hits += 1;
            self.emit(EventKind::AtomicReuse, start, cu as u16, line.0, 0, 0);
            self.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, self.params.l1_hit_latency);
            // The L1 port serializes atomic performs at one per cycle.
            let served = self.l1s[cu].port.acquire(start, 1);
            return served + self.params.l1_hit_latency;
        }
        self.stats.l1_misses += 1;
        self.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        let owned_at = match self.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                self.stats.mshr_coalesced += 1;
                done
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.denovo_atomic(retry, cu, addr);
            }
            MshrOutcome::Allocated => {
                let done = self.denovo_register(start, cu, line);
                self.l1s[cu].mshr.set_completion(line, done);
                done
            }
        };
        // Perform locally once owned; the L1 port serializes piled-up
        // coalesced atomics at one per cycle.
        let served = self.l1s[cu].port.acquire(owned_at, 1);
        served + self.params.l1_hit_latency
    }

    /// Writeback an evicted registered line (ownership returns to L2).
    fn handle_l1_eviction(
        &mut self,
        now: Cycle,
        cu: CuId,
        evicted: Option<hsim_mem::EvictedLine<L1State>>,
    ) {
        let Some(ev) = evicted else { return };
        if ev.state != L1State::Registered {
            return;
        }
        self.stats.writebacks += 1;
        self.emit(EventKind::Writeback, now, cu as u16, ev.line.0, 0, 0);
        let cu_node = self.params.cu_nodes[cu];
        let b = self.bank_of(ev.line);
        let bank_node = self.banks[b].node;
        let arrive = self.noc.send(now, cu_node, bank_node, self.params.data_flits);
        let start = self.banks[b].port.acquire(arrive, self.params.l2_occupancy);
        let _done = start + self.params.l2_latency;
        self.l2_accesses += 1;
        self.emit(EventKind::L2Access, start, b as u16, ev.line.0, 0, self.params.l2_latency);
        // Only reclaim if the directory still points at us.
        if self.banks[b].cache.peek(ev.line) == Some(&L2State::Owned(cu)) {
            self.banks[b].cache.insert(ev.line, L2State::Data);
        }
    }

    // ------------------------------------------------------------------
    // Statistics.
    // ------------------------------------------------------------------

    /// Protocol event statistics.
    pub fn stats(&self) -> &ProtoStats {
        &self.stats
    }

    /// NoC statistics.
    pub fn noc_stats(&self) -> &hsim_noc::NocStats {
        self.noc.stats()
    }

    /// Energy-relevant counters: (L1 accesses, L1 tag ops, L2 accesses,
    /// DRAM accesses, NoC flit-hops).
    pub fn energy_events(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.l1_accesses,
            self.l1_tag_ops,
            self.l2_accesses,
            self.dram.accesses(),
            self.noc.stats().flit_hops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(p: Protocol) -> MemorySystem {
        MemorySystem::new(p, MemSysParams::default())
    }

    #[test]
    fn gpu_load_miss_then_hit() {
        let mut m = sys(Protocol::Gpu);
        let t1 = m.load(0, 0, 100, AccessKind::DataLoad);
        assert!(t1 > 20, "miss goes to L2/DRAM: {t1}");
        let t2 = m.load(t1, 0, 100, AccessKind::DataLoad);
        assert_eq!(t2 - t1, m.params().l1_hit_latency, "second access hits L1");
        assert_eq!(m.stats().l1_hits, 1);
        assert_eq!(m.stats().l1_misses, 1);
    }

    #[test]
    fn gpu_acquire_drops_everything() {
        let mut m = sys(Protocol::Gpu);
        let t = m.load(0, 0, 100, AccessKind::DataLoad);
        m.acquire(t, 0);
        assert_eq!(m.stats().lines_invalidated, 1);
        let t2 = m.load(t + 10, 0, 100, AccessKind::DataLoad);
        assert!(t2 - (t + 10) > m.params().l1_hit_latency, "reuse destroyed");
    }

    #[test]
    fn gpu_atomics_execute_at_l2_without_reuse() {
        let mut m = sys(Protocol::Gpu);
        let t1 = m.rmw(0, 0, 200);
        let t2 = m.rmw(t1, 0, 200);
        // Both atomics pay a full round trip (no L1 reuse).
        assert!(t2 - t1 >= m.params().l2_latency);
        assert_eq!(m.stats().atomics_at_l2, 2);
        assert_eq!(m.stats().atomics_at_l1, 0);
    }

    #[test]
    fn denovo_atomics_reuse_ownership() {
        let mut m = sys(Protocol::DeNovo);
        let t1 = m.rmw(0, 3, 200);
        let t2 = m.rmw(t1, 3, 200);
        assert!(
            t2 - t1 <= 1 + m.params().l1_hit_latency,
            "second atomic hits the registered line locally: {}",
            t2 - t1
        );
        assert_eq!(m.stats().atomic_l1_reuse, 1);
    }

    #[test]
    fn denovo_acquire_keeps_owned_lines() {
        let mut m = sys(Protocol::DeNovo);
        let t = m.rmw(0, 2, 200); // registers line
        let t = m.load(t, 2, 300, AccessKind::DataLoad); // valid line
        m.acquire(t, 2);
        assert_eq!(m.stats().lines_invalidated, 1, "only the Valid line drops");
        let t2 = m.rmw(t + 10, 2, 200);
        assert!(t2 - (t + 10) <= 1 + m.params().l1_hit_latency, "owned line reused");
    }

    #[test]
    fn denovo_contended_atomics_bounce_ownership() {
        let mut m = sys(Protocol::DeNovo);
        let t1 = m.rmw(0, 0, 200);
        let t2 = m.rmw(t1, 5, 200); // other CU steals ownership
        assert!(t2 - t1 > 30, "remote transfer costs a 3-hop chain: {}", t2 - t1);
        assert_eq!(m.stats().remote_l1_transfers, 1);
        // And the original owner lost the line.
        let t3 = m.rmw(t2, 0, 200);
        assert!(t3 - t2 > 30);
    }

    #[test]
    fn denovo_mshr_coalesces_same_line_atomics() {
        let mut m = sys(Protocol::DeNovo);
        // Three overlapped atomics from one CU to one address: one
        // registration, two coalesces.
        let t1 = m.rmw(0, 1, 400);
        let t2 = m.rmw(1, 1, 400);
        let t3 = m.rmw(2, 1, 400);
        assert!(t2 <= t1 + 2, "coalesced atomic completes right after the first");
        assert!(t3 <= t2 + 2);
        assert_eq!(m.stats().mshr_coalesced, 2);
    }

    #[test]
    fn gpu_atomics_never_coalesce() {
        let mut m = sys(Protocol::Gpu);
        let warm = m.rmw(0, 1, 400); // prime the L2 line
        let t1 = m.rmw(warm, 1, 400);
        let t2 = m.rmw(warm + 1, 1, 400);
        assert!(t2 >= t1 + m.params().l2_occupancy, "bank serializes atomics");
        assert_eq!(m.stats().mshr_coalesced, 0);
    }

    #[test]
    fn release_waits_for_store_drain() {
        for p in [Protocol::Gpu, Protocol::DeNovo] {
            let mut m = sys(p);
            let accepted = m.store(0, 0, 100, AccessKind::DataStore);
            let flushed = m.release(accepted, 0);
            assert!(flushed > accepted, "{p}: release must wait for the drain");
            assert_eq!(m.stats().sb_flushes, 1);
        }
    }

    #[test]
    fn denovo_store_hits_owned_line_locally() {
        let mut m = sys(Protocol::DeNovo);
        let t = m.store(0, 0, 100, AccessKind::DataStore); // registers
        let t1 = m.release(t, 0); // drain ownership
        let t2 = m.store(t1, 0, 100, AccessKind::DataStore);
        assert!(t2 - t1 <= 1 + m.params().l1_hit_latency, "owned store is local");
    }

    #[test]
    fn gpu_stores_write_through() {
        let mut m = sys(Protocol::Gpu);
        let a1 = m.store(0, 0, 100, AccessKind::DataStore);
        assert!(a1 <= 2, "store buffered, CU proceeds immediately");
        // The drain shows up as L2 traffic once flushed.
        let flushed = m.release(a1, 0);
        assert!(flushed > 20);
    }

    #[test]
    fn remote_l1_latency_in_paper_range() {
        let mut m = sys(Protocol::DeNovo);
        // CU 0 owns a line; CU 15 (far corner) reads it.
        let t = m.rmw(0, 0, 512);
        let t2 = m.load(t, 15, 512, AccessKind::DataLoad);
        let lat = t2 - t;
        assert!((30..=100).contains(&lat), "remote L1 hit ~35-83 cycles, got {lat}");
    }

    #[test]
    fn l2_hit_latency_in_paper_range() {
        let mut m = sys(Protocol::Gpu);
        // Prime L2 (first access refills from DRAM).
        let t = m.load(0, 0, 640, AccessKind::DataLoad);
        m.acquire(t, 0);
        let t2 = m.load(t + 5, 0, 640, AccessKind::DataLoad);
        let lat = t2 - (t + 5);
        assert!((25..=70).contains(&lat), "L2 hit ~29-61 cycles, got {lat}");
    }

    #[test]
    fn memory_latency_in_paper_range() {
        let mut m = sys(Protocol::Gpu);
        let t = m.load(0, 0, 4096, AccessKind::DataLoad);
        assert!((150..=300).contains(&t), "memory ~197-261 cycles, got {t}");
    }

    #[test]
    fn denovo_evicting_registered_line_writes_back() {
        let mut m = sys(Protocol::DeNovo);
        // Register many lines mapping to one L1 set (same set index,
        // different tags) until eviction: L1 is 64 sets x 8 ways, so 9
        // lines with the same set index force a writeback.
        let mut t = 0;
        for i in 0..9u64 {
            // line index = addr / 16; same set: stride 64 lines x 16 words.
            let addr = i * 64 * 16;
            t = m.rmw(t, 0, addr);
        }
        assert!(m.stats().writebacks >= 1, "registered victim must write back");
        // And the directory reclaimed it: another CU gets it from L2,
        // not via a remote transfer.
        let before = m.stats().remote_l1_transfers;
        let _ = m.load(t + 1, 1, 0, AccessKind::DataLoad);
        assert_eq!(m.stats().remote_l1_transfers, before, "L2 owns the line again");
    }

    #[test]
    fn gpu_full_store_buffer_stalls() {
        let mut m = MemorySystem::new(
            Protocol::Gpu,
            MemSysParams { store_buffer: 2, ..MemSysParams::default() },
        );
        // Three stores to distinct lines: the third must wait for a drain.
        let a1 = m.store(0, 0, 0, AccessKind::DataStore);
        let a2 = m.store(a1, 0, 16, AccessKind::DataStore);
        let a3 = m.store(a2, 0, 32, AccessKind::DataStore);
        assert!(a3 - a2 > 10, "full buffer stalls the third store: {}", a3 - a2);
    }

    #[test]
    fn denovo_release_is_cheap_when_everything_is_owned() {
        let mut m = sys(Protocol::DeNovo);
        let t = m.store(0, 0, 100, AccessKind::DataStore);
        let drained = m.release(t, 0);
        // Second store hits the registered line: no new SB entry.
        let t2 = m.store(drained, 0, 100, AccessKind::DataStore);
        let flushed = m.release(t2, 0);
        assert_eq!(flushed, t2, "nothing pending: release is free");
    }

    #[test]
    fn acquire_preserves_denovo_ownership_across_rounds() {
        let mut m = sys(Protocol::DeNovo);
        let mut t = m.rmw(0, 4, 800);
        for _ in 0..3 {
            t = m.acquire(t, 4);
            t = m.rmw(t, 4, 800);
        }
        // One miss (the initial registration), all later atomics reuse.
        assert_eq!(m.stats().l1_misses, 1);
        assert_eq!(m.stats().atomic_l1_reuse, 3);
    }

    #[test]
    fn energy_events_accumulate() {
        let mut m = sys(Protocol::Gpu);
        m.load(0, 0, 100, AccessKind::DataLoad);
        m.rmw(10, 1, 200);
        let (l1, _tags, l2, dram, flits) = m.energy_events();
        assert!(l1 >= 1);
        assert!(l2 >= 2);
        assert!(dram >= 1);
        assert!(flits > 0);
    }
}
