//! The shared memory system: per-CU L1s, banked NUCA L2, DRAM, mesh.
//!
//! Protocol behaviour lives behind the [`CoherencePolicy`] trait
//! (`policy` / `mesi` modules); this module owns the hardware state
//! ([`MemCore`]) and the structural helpers every protocol shares
//! (bank queuing, DRAM fills, NoC round trips, writeback of evicted
//! owned lines), plus the public [`MemorySystem`] facade the execution
//! engine talks to.

use crate::mesi::MesiWbCoherence;
use crate::policy::{CoherencePolicy, DeNovoCoherence, GpuCoherence};
use drfrlx_core::Protocol;
use hsim_mem::{
    Addr, Cache, CacheParams, Cycle, Dram, DramParams, LineAddr, Mshr, Resource, StoreBuffer,
};
use hsim_noc::{Mesh, NocParams, NodeId};
use hsim_trace::{EventKind, NoTrace, Trace, TraceEvent};

/// Index of a compute unit (or CPU core) in the memory system.
pub type CuId = usize;

/// What kind of access the execution engine is making. Atomic accesses
/// carry no strength here — *where* an atomic is performed depends only
/// on the protocol; consistency-model behaviour (invalidate / flush /
/// overlap) is driven by the execution engine calling
/// [`MemorySystem::acquire`] / [`MemorySystem::release`] and deciding
/// whether to wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Ordinary load.
    DataLoad,
    /// Ordinary store.
    DataStore,
    /// Atomic load.
    AtomicLoad,
    /// Atomic store.
    AtomicStore,
    /// Atomic read-modify-write.
    AtomicRmw,
}

impl AccessKind {
    /// Is this any atomic access?
    pub fn is_atomic(self) -> bool {
        !matches!(self, AccessKind::DataLoad | AccessKind::DataStore)
    }
}

/// Memory-system configuration (paper Table 2 defaults live in
/// `hsim-sys`).
#[derive(Debug, Clone)]
pub struct MemSysParams {
    /// Words per cache line.
    pub line_words: u64,
    /// Number of L1s (one per CU/core).
    pub num_cus: usize,
    /// Mesh node hosting each CU's L1 (index = CuId).
    pub cu_nodes: Vec<NodeId>,
    /// L1 geometry.
    pub l1: CacheParams,
    /// L1 hit latency.
    pub l1_hit_latency: u64,
    /// L1 MSHR entries.
    pub l1_mshrs: usize,
    /// Store-buffer entries.
    pub store_buffer: usize,
    /// Number of L2 banks (bank `b` lives at mesh node `b % nodes`).
    pub l2_banks: usize,
    /// Geometry of each bank.
    pub l2_bank: CacheParams,
    /// L2 bank access latency.
    pub l2_latency: u64,
    /// Cycles a bank is occupied per access (serialization unit —
    /// atomics hammering one bank queue here).
    pub l2_occupancy: u64,
    /// Flits in a control message.
    pub ctl_flits: u64,
    /// Flits in a data (line) message.
    pub data_flits: u64,
    /// NoC parameters.
    pub noc: NocParams,
    /// DRAM parameters.
    pub dram: DramParams,
    /// Enable L1 MSHR coalescing of same-line requests (DeNovo's §6.3
    /// advantage). Disable for the ablation study.
    pub atomic_coalescing: bool,
}

impl MemSysParams {
    /// Table 2 defaults sized for `noc`: one CU/L1 per mesh node, laid
    /// out in row-major node order. Deriving the CU topology from the
    /// mesh keeps the two in sync — a resized NoC resizes the L1 side
    /// with it instead of silently desyncing from a hardcoded count.
    pub fn for_mesh(noc: NocParams) -> MemSysParams {
        let num_cus = noc.width as usize * noc.height as usize;
        MemSysParams {
            line_words: 16,
            num_cus,
            cu_nodes: (0..num_cus).map(|n| NodeId(n as u16)).collect(),
            l1: CacheParams::with_capacity(32 * 1024, 64, 8),
            l1_hit_latency: 1,
            l1_mshrs: 128,
            store_buffer: 128,
            l2_banks: 16,
            l2_bank: CacheParams::with_capacity(4 * 1024 * 1024 / 16, 64, 16),
            l2_latency: 20,
            l2_occupancy: 4,
            ctl_flits: 1,
            data_flits: 5,
            noc,
            dram: DramParams::default(),
            atomic_coalescing: true,
        }
    }
}

impl Default for MemSysParams {
    fn default() -> Self {
        // 15 GPU CUs + 1 CPU core on a 4x4 mesh; 32 KB 8-way L1s,
        // 16-bank 4 MB L2 (Table 2).
        MemSysParams::for_mesh(NocParams::default())
    }
}

/// L1 line state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum L1State {
    /// Readable copy (self-invalidated at acquires; a MESI shared
    /// copy — dropped by writer-initiated invalidation instead).
    Valid,
    /// Owned and writable: DeNovo registration / MESI exclusive-or-
    /// modified. Survives acquires; written back on eviction.
    Registered,
}

/// L2 directory/bank state for a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum L2State {
    /// The bank holds the data (no tracked sharers).
    Data,
    /// A CU's L1 owns the line (DeNovo registration / MESI M-or-E).
    Owned(CuId),
    /// MESI only: the bank holds the data and the set CUs hold shared
    /// copies (bitmask over CuId; the protocol asserts `num_cus <= 64`).
    SharedBy(u64),
}

/// Protocol/consistency event statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtoStats {
    /// L1 load hits / misses (data + atomics performed at L1).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Flash/self-invalidation events (acquires that invalidated).
    pub invalidation_events: u64,
    /// Lines dropped by self-invalidation.
    pub lines_invalidated: u64,
    /// Store-buffer flushes (releases).
    pub sb_flushes: u64,
    /// Atomics performed at the L2 (GPU protocol).
    pub atomics_at_l2: u64,
    /// Atomics performed at the L1 (DeNovo, MESI).
    pub atomics_at_l1: u64,
    /// Of those, ones that hit an already-registered line (reuse).
    pub atomic_l1_reuse: u64,
    /// Requests satisfied by a remote L1 (ownership forwarding).
    pub remote_l1_transfers: u64,
    /// Same-line requests coalesced in L1 MSHRs.
    pub mshr_coalesced: u64,
    /// Writebacks of owned lines to the L2.
    pub writebacks: u64,
    /// DRAM refills.
    pub dram_refills: u64,
    /// Remote sharer copies dropped by writer-initiated invalidation
    /// (MESI only; GPU/DeNovo never set this).
    pub sharer_invalidations: u64,
}

pub(crate) struct L1<T: Trace> {
    pub(crate) cache: Cache<L1State>,
    pub(crate) mshr: Mshr<T>,
    pub(crate) sb: StoreBuffer<T>,
    pub(crate) port: Resource,
}

pub(crate) struct L2Bank {
    pub(crate) cache: Cache<L2State>,
    pub(crate) port: Resource,
    pub(crate) node: NodeId,
}

/// All hardware state of the memory system plus the structural helpers
/// shared by every protocol. [`CoherencePolicy`] implementations drive
/// transitions against this; the public surface is [`MemorySystem`].
pub struct MemCore<T: Trace> {
    pub(crate) params: MemSysParams,
    pub(crate) l1s: Vec<L1<T>>,
    pub(crate) banks: Vec<L2Bank>,
    pub(crate) noc: Mesh<T>,
    pub(crate) dram: Dram,
    pub(crate) stats: ProtoStats,
    /// L1 data-array accesses (energy).
    pub(crate) l1_accesses: u64,
    /// L1 tag sweeps from invalidations (energy).
    pub(crate) l1_tag_ops: u64,
    /// L2 accesses (energy).
    pub(crate) l2_accesses: u64,
    pub(crate) tracer: T,
}

impl<T: Trace> MemCore<T> {
    pub(crate) fn build(params: MemSysParams, tracer: T) -> MemCore<T> {
        assert_eq!(params.cu_nodes.len(), params.num_cus, "need one node per CU");
        let l1s = (0..params.num_cus)
            .map(|cu| L1 {
                cache: Cache::new(params.l1.clone()),
                mshr: Mshr::with_tracer(params.l1_mshrs, cu as u16, tracer.clone()),
                sb: StoreBuffer::with_tracer(params.store_buffer, cu as u16, tracer.clone()),
                port: Resource::new(),
            })
            .collect();
        let noc = Mesh::with_tracer(params.noc.clone(), tracer.clone());
        let nodes = noc.nodes();
        let banks = (0..params.l2_banks)
            .map(|b| L2Bank {
                cache: Cache::new(params.l2_bank.clone()),
                port: Resource::new(),
                node: NodeId((b % nodes as usize) as u16),
            })
            .collect();
        let dram = Dram::new(params.dram.clone());
        MemCore {
            params,
            l1s,
            banks,
            noc,
            dram,
            stats: ProtoStats::default(),
            l1_accesses: 0,
            l1_tag_ops: 0,
            l2_accesses: 0,
            tracer,
        }
    }

    /// Emit one trace event (no-op unless `T::ENABLED`).
    #[inline]
    pub(crate) fn emit(
        &self,
        kind: EventKind,
        cycle: Cycle,
        lane: u16,
        addr: u64,
        arg: u64,
        dur: u64,
    ) {
        if T::ENABLED {
            self.tracer.record(TraceEvent::new(kind, cycle, lane, addr, arg, dur));
        }
    }

    pub(crate) fn line(&self, addr: Addr) -> LineAddr {
        LineAddr::of(addr, self.params.line_words)
    }

    pub(crate) fn bank_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) % self.banks.len()
    }

    /// L2-bank access at `now` arriving from `from`; returns (data
    /// ready at bank, bank index). Handles bank queuing and DRAM fill.
    pub(crate) fn l2_access(
        &mut self,
        arrive: Cycle,
        line: LineAddr,
        fill_from_dram: bool,
    ) -> Cycle {
        let b = self.bank_of(line);
        self.l2_accesses += 1;
        let start = self.banks[b].port.acquire(arrive, self.params.l2_occupancy);
        self.emit(EventKind::L2Access, start, b as u16, line.0, 0, self.params.l2_latency);
        let after = start + self.params.l2_latency;
        if !fill_from_dram {
            return after;
        }
        // Tag check: miss goes to DRAM, then fills the bank.
        let present = self.banks[b].cache.lookup(line).is_some();
        if present {
            after
        } else {
            self.stats.dram_refills += 1;
            let done = self.dram.access(after, line.0);
            self.emit(EventKind::DramRefill, after, b as u16, line.0, 0, done - after);
            self.banks[b].cache.insert(line, L2State::Data);
            done
        }
    }

    /// Round-trip a control request + data response between a CU and a
    /// line's home bank, invoking `at_bank` for the bank-side latency.
    pub(crate) fn bank_round_trip(
        &mut self,
        now: Cycle,
        cu: CuId,
        line: LineAddr,
        resp_flits: u64,
        at_bank: impl FnOnce(&mut Self, Cycle) -> Cycle,
    ) -> Cycle {
        let cu_node = self.params.cu_nodes[cu];
        let bank_node = self.banks[self.bank_of(line)].node;
        let arrive = self.noc.send(now, cu_node, bank_node, self.params.ctl_flits);
        let bank_done = at_bank(self, arrive);
        self.noc.send(bank_done, bank_node, cu_node, resp_flits)
    }

    /// Writeback an evicted owned line (ownership returns to L2).
    pub(crate) fn handle_l1_eviction(
        &mut self,
        now: Cycle,
        cu: CuId,
        evicted: Option<hsim_mem::EvictedLine<L1State>>,
    ) {
        let Some(ev) = evicted else { return };
        if ev.state != L1State::Registered {
            return;
        }
        self.stats.writebacks += 1;
        self.emit(EventKind::Writeback, now, cu as u16, ev.line.0, 0, 0);
        let cu_node = self.params.cu_nodes[cu];
        let b = self.bank_of(ev.line);
        let bank_node = self.banks[b].node;
        let arrive = self.noc.send(now, cu_node, bank_node, self.params.data_flits);
        let start = self.banks[b].port.acquire(arrive, self.params.l2_occupancy);
        let _done = start + self.params.l2_latency;
        self.l2_accesses += 1;
        self.emit(EventKind::L2Access, start, b as u16, ev.line.0, 0, self.params.l2_latency);
        // Only reclaim if the directory still points at us.
        if self.banks[b].cache.peek(ev.line) == Some(&L2State::Owned(cu)) {
            self.banks[b].cache.insert(ev.line, L2State::Data);
        }
    }
}

/// The full memory system for one protocol, generic over the tracing
/// capability (`NoTrace` by default — the instrumented sites compile
/// away entirely).
///
/// A thin facade: hardware state lives in [`MemCore`], per-protocol
/// transitions behind a [`CoherencePolicy`] selected from the
/// [`Protocol`] (or injected via [`MemorySystem::with_policy`]). The
/// built-in protocols dispatch statically through [`PolicySlot`] so
/// their transitions inline into the access API; only externally
/// injected policies pay a vtable call per transaction.
pub struct MemorySystem<T: Trace = NoTrace> {
    protocol: Protocol,
    policy: PolicySlot<T>,
    core: MemCore<T>,
}

/// The policy slot: built-in protocols as enum variants (static,
/// inlinable dispatch on the hot access path), arbitrary policies
/// behind the boxed trait object. [`CoherencePolicy`] stays the one
/// behavioural seam — the slot only decides how it is reached.
enum PolicySlot<T: Trace> {
    Gpu(GpuCoherence),
    DeNovo(DeNovoCoherence),
    MesiWb(MesiWbCoherence),
    Custom(Box<dyn CoherencePolicy<T>>),
}

/// Invoke one [`CoherencePolicy`] method on whichever policy occupies
/// the slot, monomorphized per built-in variant.
macro_rules! dispatch {
    ($slot:expr, $p:ident => $call:expr) => {
        match $slot {
            PolicySlot::Gpu($p) => $call,
            PolicySlot::DeNovo($p) => $call,
            PolicySlot::MesiWb($p) => $call,
            PolicySlot::Custom($p) => $call,
        }
    };
}

impl MemorySystem {
    /// Build an untraced memory system.
    ///
    /// # Panics
    ///
    /// Panics if `cu_nodes` does not provide a node per CU.
    pub fn new(protocol: Protocol, params: MemSysParams) -> MemorySystem {
        MemorySystem::with_tracer(protocol, params, NoTrace)
    }
}

impl<T: Trace> MemorySystem<T> {
    /// Build a memory system emitting protocol events (hits, misses,
    /// invalidations, ownership transfers, atomic placement, NoC and
    /// DRAM activity) into `tracer`.
    ///
    /// # Panics
    ///
    /// Panics if `cu_nodes` does not provide a node per CU.
    pub fn with_tracer(protocol: Protocol, params: MemSysParams, tracer: T) -> MemorySystem<T> {
        let policy = match protocol {
            Protocol::Gpu => PolicySlot::Gpu(GpuCoherence),
            Protocol::DeNovo => PolicySlot::DeNovo(DeNovoCoherence),
            Protocol::MesiWb => PolicySlot::MesiWb(MesiWbCoherence),
        };
        MemorySystem { protocol, policy, core: MemCore::build(params, tracer) }
    }

    /// Build a memory system around an externally supplied policy —
    /// the seam for protocols defined outside this crate. `protocol`
    /// is only a label (reporting, energy attribution); all behaviour
    /// comes from `policy`.
    pub fn with_policy(
        protocol: Protocol,
        policy: Box<dyn CoherencePolicy<T>>,
        params: MemSysParams,
        tracer: T,
    ) -> MemorySystem<T> {
        MemorySystem {
            protocol,
            policy: PolicySlot::Custom(policy),
            core: MemCore::build(params, tracer),
        }
    }

    /// The protocol in use.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Configuration.
    pub fn params(&self) -> &MemSysParams {
        &self.core.params
    }

    // ------------------------------------------------------------------
    // Public access API (called by the execution engine at issue time).
    // ------------------------------------------------------------------

    /// A load (data or atomic). Returns the cycle the value is
    /// available to the requesting CU.
    pub fn load(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        dispatch!(&self.policy, p => p.load(&mut self.core, now, cu, addr, kind))
    }

    /// A store (data or atomic). Returns the cycle the CU may proceed
    /// (store accepted); the drain completes in the background, bounded
    /// by [`MemorySystem::release`].
    pub fn store(&mut self, now: Cycle, cu: CuId, addr: Addr, kind: AccessKind) -> Cycle {
        dispatch!(&self.policy, p => p.store(&mut self.core, now, cu, addr, kind))
    }

    /// An atomic RMW; returns the cycle the old value is available.
    pub fn rmw(&mut self, now: Cycle, cu: CuId, addr: Addr) -> Cycle {
        dispatch!(&self.policy, p => p.rmw(&mut self.core, now, cu, addr))
    }

    /// Acquire-side consistency action for a *paired* atomic load:
    /// self-invalidate stale data in the CU's L1. GPU coherence drops
    /// every line; DeNovo keeps registered (owned) lines; MESI needs
    /// nothing (writer-initiated invalidation keeps caches coherent).
    /// Returns the cycle the action is done.
    pub fn acquire(&mut self, now: Cycle, cu: CuId) -> Cycle {
        dispatch!(&self.policy, p => p.acquire(&mut self.core, now, cu))
    }

    /// Release-side consistency action for a *paired* atomic store:
    /// flush the store buffer (GPU: finish write-throughs; DeNovo/MESI:
    /// finish pending ownership registrations). Returns the cycle the
    /// flush completes.
    pub fn release(&mut self, now: Cycle, cu: CuId) -> Cycle {
        dispatch!(&self.policy, p => p.release(&mut self.core, now, cu))
    }

    // ------------------------------------------------------------------
    // Statistics.
    // ------------------------------------------------------------------

    /// Protocol event statistics.
    pub fn stats(&self) -> &ProtoStats {
        &self.core.stats
    }

    /// NoC statistics.
    pub fn noc_stats(&self) -> &hsim_noc::NocStats {
        self.core.noc.stats()
    }

    /// Energy-relevant counters: (L1 accesses, L1 tag ops, L2 accesses,
    /// DRAM accesses, NoC flit-hops).
    pub fn energy_events(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.core.l1_accesses,
            self.core.l1_tag_ops,
            self.core.l2_accesses,
            self.core.dram.accesses(),
            self.core.noc.stats().flit_hops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(p: Protocol) -> MemorySystem {
        MemorySystem::new(p, MemSysParams::default())
    }

    #[test]
    fn default_params_track_the_mesh() {
        let p = MemSysParams::default();
        assert_eq!(p.num_cus, (p.noc.width * p.noc.height) as usize);
        assert_eq!(p.cu_nodes.len(), p.num_cus);
        // A resized mesh resizes the CU side with it.
        let wide =
            MemSysParams::for_mesh(NocParams { width: 6, height: 4, ..NocParams::default() });
        assert_eq!(wide.num_cus, 24);
        assert_eq!(wide.cu_nodes.len(), 24);
        assert_eq!(wide.cu_nodes[23], NodeId(23));
        MemorySystem::new(Protocol::Gpu, wide); // must not panic
    }

    #[test]
    fn gpu_load_miss_then_hit() {
        let mut m = sys(Protocol::Gpu);
        let t1 = m.load(0, 0, 100, AccessKind::DataLoad);
        assert!(t1 > 20, "miss goes to L2/DRAM: {t1}");
        let t2 = m.load(t1, 0, 100, AccessKind::DataLoad);
        assert_eq!(t2 - t1, m.params().l1_hit_latency, "second access hits L1");
        assert_eq!(m.stats().l1_hits, 1);
        assert_eq!(m.stats().l1_misses, 1);
    }

    #[test]
    fn gpu_acquire_drops_everything() {
        let mut m = sys(Protocol::Gpu);
        let t = m.load(0, 0, 100, AccessKind::DataLoad);
        m.acquire(t, 0);
        assert_eq!(m.stats().lines_invalidated, 1);
        let t2 = m.load(t + 10, 0, 100, AccessKind::DataLoad);
        assert!(t2 - (t + 10) > m.params().l1_hit_latency, "reuse destroyed");
    }

    #[test]
    fn gpu_atomics_execute_at_l2_without_reuse() {
        let mut m = sys(Protocol::Gpu);
        let t1 = m.rmw(0, 0, 200);
        let t2 = m.rmw(t1, 0, 200);
        // Both atomics pay a full round trip (no L1 reuse).
        assert!(t2 - t1 >= m.params().l2_latency);
        assert_eq!(m.stats().atomics_at_l2, 2);
        assert_eq!(m.stats().atomics_at_l1, 0);
    }

    #[test]
    fn denovo_atomics_reuse_ownership() {
        let mut m = sys(Protocol::DeNovo);
        let t1 = m.rmw(0, 3, 200);
        let t2 = m.rmw(t1, 3, 200);
        assert!(
            t2 - t1 <= 1 + m.params().l1_hit_latency,
            "second atomic hits the registered line locally: {}",
            t2 - t1
        );
        assert_eq!(m.stats().atomic_l1_reuse, 1);
    }

    #[test]
    fn denovo_acquire_keeps_owned_lines() {
        let mut m = sys(Protocol::DeNovo);
        let t = m.rmw(0, 2, 200); // registers line
        let t = m.load(t, 2, 300, AccessKind::DataLoad); // valid line
        m.acquire(t, 2);
        assert_eq!(m.stats().lines_invalidated, 1, "only the Valid line drops");
        let t2 = m.rmw(t + 10, 2, 200);
        assert!(t2 - (t + 10) <= 1 + m.params().l1_hit_latency, "owned line reused");
    }

    #[test]
    fn denovo_contended_atomics_bounce_ownership() {
        let mut m = sys(Protocol::DeNovo);
        let t1 = m.rmw(0, 0, 200);
        let t2 = m.rmw(t1, 5, 200); // other CU steals ownership
        assert!(t2 - t1 > 30, "remote transfer costs a 3-hop chain: {}", t2 - t1);
        assert_eq!(m.stats().remote_l1_transfers, 1);
        // And the original owner lost the line.
        let t3 = m.rmw(t2, 0, 200);
        assert!(t3 - t2 > 30);
    }

    #[test]
    fn denovo_mshr_coalesces_same_line_atomics() {
        let mut m = sys(Protocol::DeNovo);
        // Three overlapped atomics from one CU to one address: one
        // registration, two coalesces.
        let t1 = m.rmw(0, 1, 400);
        let t2 = m.rmw(1, 1, 400);
        let t3 = m.rmw(2, 1, 400);
        assert!(t2 <= t1 + 2, "coalesced atomic completes right after the first");
        assert!(t3 <= t2 + 2);
        assert_eq!(m.stats().mshr_coalesced, 2);
    }

    #[test]
    fn gpu_atomics_never_coalesce() {
        let mut m = sys(Protocol::Gpu);
        let warm = m.rmw(0, 1, 400); // prime the L2 line
        let t1 = m.rmw(warm, 1, 400);
        let t2 = m.rmw(warm + 1, 1, 400);
        assert!(t2 >= t1 + m.params().l2_occupancy, "bank serializes atomics");
        assert_eq!(m.stats().mshr_coalesced, 0);
    }

    #[test]
    fn release_waits_for_store_drain() {
        for p in [Protocol::Gpu, Protocol::DeNovo, Protocol::MesiWb] {
            let mut m = sys(p);
            let accepted = m.store(0, 0, 100, AccessKind::DataStore);
            let flushed = m.release(accepted, 0);
            assert!(flushed > accepted, "{p}: release must wait for the drain");
            assert_eq!(m.stats().sb_flushes, 1);
        }
    }

    #[test]
    fn denovo_store_hits_owned_line_locally() {
        let mut m = sys(Protocol::DeNovo);
        let t = m.store(0, 0, 100, AccessKind::DataStore); // registers
        let t1 = m.release(t, 0); // drain ownership
        let t2 = m.store(t1, 0, 100, AccessKind::DataStore);
        assert!(t2 - t1 <= 1 + m.params().l1_hit_latency, "owned store is local");
    }

    #[test]
    fn gpu_stores_write_through() {
        let mut m = sys(Protocol::Gpu);
        let a1 = m.store(0, 0, 100, AccessKind::DataStore);
        assert!(a1 <= 2, "store buffered, CU proceeds immediately");
        // The drain shows up as L2 traffic once flushed.
        let flushed = m.release(a1, 0);
        assert!(flushed > 20);
    }

    #[test]
    fn remote_l1_latency_in_paper_range() {
        let mut m = sys(Protocol::DeNovo);
        // CU 0 owns a line; CU 15 (far corner) reads it.
        let t = m.rmw(0, 0, 512);
        let t2 = m.load(t, 15, 512, AccessKind::DataLoad);
        let lat = t2 - t;
        assert!((30..=100).contains(&lat), "remote L1 hit ~35-83 cycles, got {lat}");
    }

    #[test]
    fn l2_hit_latency_in_paper_range() {
        let mut m = sys(Protocol::Gpu);
        // Prime L2 (first access refills from DRAM).
        let t = m.load(0, 0, 640, AccessKind::DataLoad);
        m.acquire(t, 0);
        let t2 = m.load(t + 5, 0, 640, AccessKind::DataLoad);
        let lat = t2 - (t + 5);
        assert!((25..=70).contains(&lat), "L2 hit ~29-61 cycles, got {lat}");
    }

    #[test]
    fn memory_latency_in_paper_range() {
        let mut m = sys(Protocol::Gpu);
        let t = m.load(0, 0, 4096, AccessKind::DataLoad);
        assert!((150..=300).contains(&t), "memory ~197-261 cycles, got {t}");
    }

    #[test]
    fn denovo_evicting_registered_line_writes_back() {
        let mut m = sys(Protocol::DeNovo);
        // Register many lines mapping to one L1 set (same set index,
        // different tags) until eviction: L1 is 64 sets x 8 ways, so 9
        // lines with the same set index force a writeback.
        let mut t = 0;
        for i in 0..9u64 {
            // line index = addr / 16; same set: stride 64 lines x 16 words.
            let addr = i * 64 * 16;
            t = m.rmw(t, 0, addr);
        }
        assert!(m.stats().writebacks >= 1, "registered victim must write back");
        // And the directory reclaimed it: another CU gets it from L2,
        // not via a remote transfer.
        let before = m.stats().remote_l1_transfers;
        let _ = m.load(t + 1, 1, 0, AccessKind::DataLoad);
        assert_eq!(m.stats().remote_l1_transfers, before, "L2 owns the line again");
    }

    #[test]
    fn gpu_full_store_buffer_stalls() {
        let mut m = MemorySystem::new(
            Protocol::Gpu,
            MemSysParams { store_buffer: 2, ..MemSysParams::default() },
        );
        // Three stores to distinct lines: the third must wait for a drain.
        let a1 = m.store(0, 0, 0, AccessKind::DataStore);
        let a2 = m.store(a1, 0, 16, AccessKind::DataStore);
        let a3 = m.store(a2, 0, 32, AccessKind::DataStore);
        assert!(a3 - a2 > 10, "full buffer stalls the third store: {}", a3 - a2);
    }

    #[test]
    fn denovo_release_is_cheap_when_everything_is_owned() {
        let mut m = sys(Protocol::DeNovo);
        let t = m.store(0, 0, 100, AccessKind::DataStore);
        let drained = m.release(t, 0);
        // Second store hits the registered line: no new SB entry.
        let t2 = m.store(drained, 0, 100, AccessKind::DataStore);
        let flushed = m.release(t2, 0);
        assert_eq!(flushed, t2, "nothing pending: release is free");
    }

    #[test]
    fn acquire_preserves_denovo_ownership_across_rounds() {
        let mut m = sys(Protocol::DeNovo);
        let mut t = m.rmw(0, 4, 800);
        for _ in 0..3 {
            t = m.acquire(t, 4);
            t = m.rmw(t, 4, 800);
        }
        // One miss (the initial registration), all later atomics reuse.
        assert_eq!(m.stats().l1_misses, 1);
        assert_eq!(m.stats().atomic_l1_reuse, 3);
    }

    #[test]
    fn energy_events_accumulate() {
        let mut m = sys(Protocol::Gpu);
        m.load(0, 0, 100, AccessKind::DataLoad);
        m.rmw(10, 1, 200);
        let (l1, _tags, l2, dram, flits) = m.energy_events();
        assert!(l1 >= 1);
        assert!(l2 >= 2);
        assert!(dram >= 1);
        assert!(flits > 0);
    }
}
