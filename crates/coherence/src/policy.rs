//! The [`CoherencePolicy`] trait and the paper's two protocols as
//! policy implementations.
//!
//! A policy is pure protocol behaviour — per-line state transitions for
//! loads/stores/atomics, acquire/release actions, writeback/placement
//! decisions — executed against the hardware state in
//! [`MemCore`]. Policies are stateless unit structs: every per-line and
//! per-CU fact lives in the core's caches/directory, so one policy
//! value can drive any number of systems. Adding a protocol means
//! implementing this trait in one file (see `mesi.rs`) and, if it
//! should be constructible by name, extending [`policy_for`].
//!
//! The bodies of [`GpuCoherence`] and [`DeNovoCoherence`] are the former
//! `MemorySystem` match arms moved verbatim (only `self` became `core`);
//! `reference.rs` retains the original enum-dispatch monolith so
//! differential tests can prove the move changed nothing.

use crate::memsys::{AccessKind, CuId, L1State, L2State, MemCore};
use crate::MesiWbCoherence;
use drfrlx_core::Protocol;
use hsim_mem::{Addr, Cycle, MshrOutcome};
use hsim_trace::{EventKind, Trace};

/// Per-protocol coherence behaviour, invoked by
/// [`crate::MemorySystem`] once per memory transaction.
///
/// Implementations receive the shared hardware state ([`MemCore`]) and
/// return completion cycles; they are responsible for maintaining every
/// protocol invariant (L1/L2 line states, directory contents, stats and
/// trace events).
pub trait CoherencePolicy<T: Trace> {
    /// A load (data or atomic): cycle the value reaches the CU.
    fn load(
        &self,
        core: &mut MemCore<T>,
        now: Cycle,
        cu: CuId,
        addr: Addr,
        kind: AccessKind,
    ) -> Cycle;

    /// A store (data or atomic): cycle the CU may proceed (the drain
    /// may complete later, bounded by [`CoherencePolicy::release`]).
    fn store(
        &self,
        core: &mut MemCore<T>,
        now: Cycle,
        cu: CuId,
        addr: Addr,
        kind: AccessKind,
    ) -> Cycle;

    /// An atomic RMW: cycle the old value is available.
    fn rmw(&self, core: &mut MemCore<T>, now: Cycle, cu: CuId, addr: Addr) -> Cycle;

    /// Acquire-side action for a paired atomic load (self-invalidation
    /// scope is the protocol's decision).
    fn acquire(&self, core: &mut MemCore<T>, now: Cycle, cu: CuId) -> Cycle;

    /// Release-side action for a paired atomic store.
    fn release(&self, core: &mut MemCore<T>, now: Cycle, cu: CuId) -> Cycle {
        core.stats.sb_flushes += 1;
        core.l1s[cu].sb.flush(now)
    }
}

/// The built-in policy for `protocol`.
pub fn policy_for<T: Trace>(protocol: Protocol) -> Box<dyn CoherencePolicy<T>> {
    match protocol {
        Protocol::Gpu => Box::new(GpuCoherence),
        Protocol::DeNovo => Box::new(DeNovoCoherence),
        Protocol::MesiWb => Box::new(MesiWbCoherence),
    }
}

/// Conventional GPU coherence (§2.1): write-through L1s without
/// ownership, flash self-invalidation at acquires, every atomic
/// performed at its home L2 bank.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuCoherence;

impl<T: Trace> CoherencePolicy<T> for GpuCoherence {
    fn load(
        &self,
        core: &mut MemCore<T>,
        now: Cycle,
        cu: CuId,
        addr: Addr,
        kind: AccessKind,
    ) -> Cycle {
        if kind.is_atomic() {
            return self.rmw(core, now, cu, addr);
        }
        let line = core.line(addr);
        core.l1_accesses += 1;
        let start = now;
        // A fill still in flight wins over the (already-installed)
        // cache state: merge rather than hitting data that has not
        // arrived yet.
        if let Some(done) = core.l1s[cu].mshr.pending(start, line) {
            core.stats.mshr_coalesced += 1;
            core.emit(
                EventKind::MshrCoalesce,
                start,
                cu as u16,
                line.0,
                0,
                done.max(start) - start,
            );
            return done.max(start);
        }
        if core.l1s[cu].cache.lookup(line).is_some() {
            core.stats.l1_hits += 1;
            core.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, core.params.l1_hit_latency);
            return start + core.params.l1_hit_latency;
        }
        core.stats.l1_misses += 1;
        core.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        // MSHR: merge with an in-flight fill for the same line.
        match core.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                core.stats.mshr_coalesced += 1;
                return done;
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.load(core, retry, cu, addr, kind);
            }
            MshrOutcome::Allocated => {}
        }
        let flits = core.params.data_flits;
        let done = core
            .bank_round_trip(start, cu, line, flits, |c, arrive| c.l2_access(arrive, line, true));
        core.l1s[cu].cache.insert(line, L1State::Valid);
        core.l1s[cu].mshr.set_completion(line, done);
        done
    }

    fn store(
        &self,
        core: &mut MemCore<T>,
        now: Cycle,
        cu: CuId,
        addr: Addr,
        kind: AccessKind,
    ) -> Cycle {
        if kind.is_atomic() {
            return self.rmw(core, now, cu, addr);
        }
        let line = core.line(addr);
        core.l1_accesses += 1;
        // Write-through: compute the background drain (one-way trip +
        // bank write), then enqueue in the store buffer.
        let cu_node = core.params.cu_nodes[cu];
        let bank_node = core.banks[core.bank_of(line)].node;
        let arrive = core.noc.send(now, cu_node, bank_node, core.params.data_flits);
        let drain_done = core.l2_access(arrive, line, false);
        // Keep any L1 copy coherent with our own writes.
        if core.l1s[cu].cache.peek(line).is_some() {
            core.l1s[cu].cache.insert(line, L1State::Valid);
        }
        let accepted = core.l1s[cu].sb.push(now, line, drain_done);
        accepted + 1
    }

    /// GPU atomics always execute at the home L2 bank: round trip plus
    /// serialized bank occupancy; no reuse, no coalescing (§2.1, §6.3).
    fn rmw(&self, core: &mut MemCore<T>, now: Cycle, cu: CuId, addr: Addr) -> Cycle {
        let line = core.line(addr);
        core.stats.atomics_at_l2 += 1;
        let done = core.bank_round_trip(now, cu, line, core.params.ctl_flits, |c, arrive| {
            c.l2_access(arrive, line, true)
        });
        core.emit(EventKind::AtomicAtL2, now, cu as u16, addr, 0, done - now);
        done
    }

    fn acquire(&self, core: &mut MemCore<T>, now: Cycle, cu: CuId) -> Cycle {
        let dropped = core.l1s[cu].cache.invalidate_where(|_, _| true);
        core.stats.invalidation_events += 1;
        core.stats.lines_invalidated += dropped;
        core.l1_tag_ops += dropped;
        core.emit(EventKind::Invalidate, now, cu as u16, 0, dropped, 2);
        now + 2
    }
}

/// DeNovo (§2.2): ownership (registration) at the L1 for stores and
/// atomics, selective self-invalidation, atomic reuse and MSHR
/// coalescing.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeNovoCoherence;

impl DeNovoCoherence {
    /// Obtain registration (ownership) of `line` for `cu`, starting at
    /// `now`; returns the completion cycle. Transfers from a previous
    /// owner cost an extra forward hop (remote-L1 latency).
    fn register<T: Trace>(
        core: &mut MemCore<T>,
        now: Cycle,
        cu: CuId,
        line: hsim_mem::LineAddr,
    ) -> Cycle {
        let cu_node = core.params.cu_nodes[cu];
        let b = core.bank_of(line);
        let bank_node = core.banks[b].node;
        let arrive = core.noc.send(now, cu_node, bank_node, core.params.ctl_flits);
        let start = core.banks[b].port.acquire(arrive, core.params.l2_occupancy);
        core.l2_accesses += 1;
        core.emit(EventKind::L2Access, start, b as u16, line.0, 0, core.params.l2_latency);
        let dir_done = start + core.params.l2_latency;
        let prev = core.banks[b].cache.lookup(line).copied();
        core.banks[b].cache.insert(line, L2State::Owned(cu));
        let data_at_cu = match prev {
            Some(L2State::Owned(owner)) if owner != cu => {
                // Forward to previous owner; it hands the line over.
                core.stats.remote_l1_transfers += 1;
                core.emit(
                    EventKind::OwnershipTransfer,
                    dir_done,
                    cu as u16,
                    line.0,
                    owner as u64,
                    0,
                );
                let owner_node = core.params.cu_nodes[owner];
                core.l1s[owner].cache.remove(line);
                core.l1_tag_ops += 1;
                let at_owner =
                    core.noc.send(dir_done, bank_node, owner_node, core.params.ctl_flits);
                let served = core.l1s[owner].port.acquire(at_owner, 1) + core.params.l1_hit_latency;
                core.l1_accesses += 1;
                core.noc.send(served, owner_node, cu_node, core.params.data_flits)
            }
            Some(_) => {
                // L2 had the data (or we already owned it): reply directly.
                core.noc.send(dir_done, bank_node, cu_node, core.params.data_flits)
            }
            None => {
                // L2 miss: fill from DRAM first.
                core.stats.dram_refills += 1;
                let filled = core.dram.access(dir_done, line.0);
                core.emit(EventKind::DramRefill, dir_done, b as u16, line.0, 0, filled - dir_done);
                core.banks[b].cache.insert(line, L2State::Owned(cu));
                core.noc.send(filled, bank_node, cu_node, core.params.data_flits)
            }
        };
        let evicted = core.l1s[cu]
            .cache
            .insert_with_pin(line, L1State::Registered, |s| *s == L1State::Registered);
        // A full set of registered lines can force a registered victim
        // out; its ownership must return to the L2 (writeback).
        core.handle_l1_eviction(data_at_cu, cu, evicted);
        data_at_cu
    }
}

impl<T: Trace> CoherencePolicy<T> for DeNovoCoherence {
    fn load(
        &self,
        core: &mut MemCore<T>,
        now: Cycle,
        cu: CuId,
        addr: Addr,
        kind: AccessKind,
    ) -> Cycle {
        if kind.is_atomic() {
            return self.rmw(core, now, cu, addr);
        }
        let line = core.line(addr);
        core.l1_accesses += 1;
        let start = now;
        if let Some(done) = core.l1s[cu].mshr.pending(start, line) {
            core.stats.mshr_coalesced += 1;
            core.emit(
                EventKind::MshrCoalesce,
                start,
                cu as u16,
                line.0,
                0,
                done.max(start) - start,
            );
            return done.max(start);
        }
        if core.l1s[cu].cache.lookup(line).is_some() {
            core.stats.l1_hits += 1;
            core.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, core.params.l1_hit_latency);
            return start + core.params.l1_hit_latency;
        }
        core.stats.l1_misses += 1;
        core.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        match core.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                core.stats.mshr_coalesced += 1;
                return done;
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.load(core, retry, cu, addr, kind);
            }
            MshrOutcome::Allocated => {}
        }
        // Read request to the home bank; may be forwarded to an owner.
        let cu_node = core.params.cu_nodes[cu];
        let b = core.bank_of(line);
        let bank_node = core.banks[b].node;
        let arrive = core.noc.send(start, cu_node, bank_node, core.params.ctl_flits);
        let dir_start = core.banks[b].port.acquire(arrive, core.params.l2_occupancy);
        core.l2_accesses += 1;
        core.emit(EventKind::L2Access, dir_start, b as u16, line.0, 0, core.params.l2_latency);
        let dir_done = dir_start + core.params.l2_latency;
        let state = core.banks[b].cache.lookup(line).copied();
        let done = match state {
            Some(L2State::Owned(owner)) if owner != cu => {
                // Forward: remote L1 services the read, keeps ownership.
                core.stats.remote_l1_transfers += 1;
                core.emit(
                    EventKind::OwnershipTransfer,
                    dir_done,
                    cu as u16,
                    line.0,
                    owner as u64,
                    0,
                );
                let owner_node = core.params.cu_nodes[owner];
                let at_owner =
                    core.noc.send(dir_done, bank_node, owner_node, core.params.ctl_flits);
                let served = core.l1s[owner].port.acquire(at_owner, 1) + core.params.l1_hit_latency;
                core.l1_accesses += 1;
                core.noc.send(served, owner_node, cu_node, core.params.data_flits)
            }
            Some(_) => core.noc.send(dir_done, bank_node, cu_node, core.params.data_flits),
            None => {
                core.stats.dram_refills += 1;
                let filled = core.dram.access(dir_done, line.0);
                core.emit(EventKind::DramRefill, dir_done, b as u16, line.0, 0, filled - dir_done);
                core.banks[b].cache.insert(line, L2State::Data);
                core.noc.send(filled, bank_node, cu_node, core.params.data_flits)
            }
        };
        // Fill as Valid (read data never takes ownership in DeNovo).
        let evicted =
            core.l1s[cu].cache.insert_with_pin(line, L1State::Valid, |s| *s == L1State::Registered);
        core.handle_l1_eviction(done, cu, evicted);
        core.l1s[cu].mshr.set_completion(line, done);
        done
    }

    fn store(
        &self,
        core: &mut MemCore<T>,
        now: Cycle,
        cu: CuId,
        addr: Addr,
        kind: AccessKind,
    ) -> Cycle {
        if kind.is_atomic() {
            return self.rmw(core, now, cu, addr);
        }
        let line = core.line(addr);
        core.l1_accesses += 1;
        let start = now;
        let pending = core.l1s[cu].mshr.pending(start, line);
        if pending.is_none() && core.l1s[cu].cache.lookup(line) == Some(&mut L1State::Registered) {
            // Owned: write locally, writeback caching.
            core.stats.l1_hits += 1;
            core.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, core.params.l1_hit_latency);
            return start + core.params.l1_hit_latency;
        }
        core.stats.l1_misses += 1;
        core.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        // Pend in the store buffer while registration is in flight.
        let drain_done = match core.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                core.stats.mshr_coalesced += 1;
                done
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.store(core, retry, cu, addr, kind);
            }
            MshrOutcome::Allocated => {
                let done = DeNovoCoherence::register(core, start, cu, line);
                core.l1s[cu].mshr.set_completion(line, done);
                done
            }
        };
        let accepted = core.l1s[cu].sb.push(start, line, drain_done);
        accepted + 1
    }

    /// DeNovo atomics execute at the L1 once the line is registered —
    /// repeated atomics to the same line hit locally (reuse), and
    /// concurrent requests to one line share a single registration via
    /// the MSHR (coalescing).
    fn rmw(&self, core: &mut MemCore<T>, now: Cycle, cu: CuId, addr: Addr) -> Cycle {
        let line = core.line(addr);
        core.stats.atomics_at_l1 += 1;
        core.emit(EventKind::AtomicAtL1, now, cu as u16, addr, 0, 0);
        core.l1_accesses += 1;
        let start = now;
        if let Some(done) = core.l1s[cu].mshr.pending(start, line) {
            if core.params.atomic_coalescing {
                // Ownership transfer in flight: coalesce, then perform
                // locally once it lands (serialized by the L1 port).
                core.stats.mshr_coalesced += 1;
                core.emit(
                    EventKind::MshrCoalesce,
                    start,
                    cu as u16,
                    line.0,
                    0,
                    done.max(start) - start,
                );
                let served = core.l1s[cu].port.acquire(done.max(start), 1);
                return served + core.params.l1_hit_latency;
            }
            // Ablation: no coalescing — wait out the in-flight fill,
            // then issue a fresh (redundant) registration round trip.
            let refetch = DeNovoCoherence::register(core, done.max(start), cu, line);
            let served = core.l1s[cu].port.acquire(refetch, 1);
            return served + core.params.l1_hit_latency;
        }
        if core.l1s[cu].cache.lookup(line) == Some(&mut L1State::Registered) {
            core.stats.atomic_l1_reuse += 1;
            core.stats.l1_hits += 1;
            core.emit(EventKind::AtomicReuse, start, cu as u16, line.0, 0, 0);
            core.emit(EventKind::L1Hit, start, cu as u16, line.0, 0, core.params.l1_hit_latency);
            // The L1 port serializes atomic performs at one per cycle.
            let served = core.l1s[cu].port.acquire(start, 1);
            return served + core.params.l1_hit_latency;
        }
        core.stats.l1_misses += 1;
        core.emit(EventKind::L1Miss, start, cu as u16, line.0, 0, 0);
        let owned_at = match core.l1s[cu].mshr.request(start, line) {
            MshrOutcome::Coalesced(done) => {
                core.stats.mshr_coalesced += 1;
                done
            }
            MshrOutcome::Full(free_at) => {
                let retry = free_at.max(start);
                return self.rmw(core, retry, cu, addr);
            }
            MshrOutcome::Allocated => {
                let done = DeNovoCoherence::register(core, start, cu, line);
                core.l1s[cu].mshr.set_completion(line, done);
                done
            }
        };
        // Perform locally once owned; the L1 port serializes piled-up
        // coalesced atomics at one per cycle.
        let served = core.l1s[cu].port.acquire(owned_at, 1);
        served + core.params.l1_hit_latency
    }

    fn acquire(&self, core: &mut MemCore<T>, now: Cycle, cu: CuId) -> Cycle {
        let dropped = core.l1s[cu].cache.invalidate_where(|_, s| *s == L1State::Valid);
        core.stats.invalidation_events += 1;
        core.stats.lines_invalidated += dropped;
        core.l1_tag_ops += dropped;
        core.emit(EventKind::Invalidate, now, cu as u16, 0, dropped, 2);
        now + 2
    }
}
