//! Satellite 3: the conformance harness is deterministic — observed
//! sets and verdicts are identical across worker-thread counts and
//! across reruns with a fixed seed — and the Table-1 corpus is sound
//! with healthy coverage.

use drfrlx_conform::{
    check_conformance, generate, run_corpus, shrink, ConformOptions, ConformReport,
};
use drfrlx_core::{MemoryModel, SystemConfig};
use std::collections::BTreeSet;

fn opts(threads: usize) -> ConformOptions {
    ConformOptions { threads, ..ConformOptions::default() }
}

/// Flatten a report to a canonical comparable form.
type Fingerprint = (String, BTreeSet<String>, Vec<(String, Vec<String>)>);

fn fingerprint(r: &ConformReport) -> Fingerprint {
    (
        r.name.clone(),
        r.allowed.iter().map(|o| o.render()).collect(),
        r.verdicts
            .iter()
            .map(|v| {
                (v.config.to_string(), v.observed.iter().map(|o| o.render()).collect::<Vec<_>>())
            })
            .collect(),
    )
}

#[test]
fn corpus_is_sound_across_all_nine_configs() {
    for r in run_corpus(&opts(4)).unwrap() {
        for v in &r.verdicts {
            assert!(
                v.violations.is_empty(),
                "{} under {}: disallowed outcomes {:?}",
                r.name,
                v.config,
                v.violations.iter().map(|o| o.render()).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn corpus_drf0_coverage_is_at_least_ninety_percent() {
    let reports = run_corpus(&opts(4)).unwrap();
    let allowed: usize = reports.iter().map(|r| r.allowed.len()).sum();
    let witnessed: usize = reports.iter().map(|r| r.witnessed_under(MemoryModel::Drf0)).sum();
    let cov = witnessed as f64 / allowed as f64;
    assert!(cov >= 0.9, "DRF0 coverage {cov:.3} ({witnessed}/{allowed}) below 0.9");
}

#[test]
fn verdicts_are_identical_across_worker_thread_counts() {
    let base: Vec<_> = run_corpus(&opts(1)).unwrap().iter().map(fingerprint).collect();
    for threads in [4, 8] {
        let got: Vec<_> = run_corpus(&opts(threads)).unwrap().iter().map(fingerprint).collect();
        assert_eq!(base, got, "corpus verdicts changed at {threads} worker threads");
    }
}

#[test]
fn reruns_with_a_fixed_seed_are_identical() {
    let p = generate(3);
    let a = fingerprint(&check_conformance(&p, &opts(2)).unwrap());
    let b = fingerprint(&check_conformance(&p, &opts(2)).unwrap());
    assert_eq!(a, b);
}

#[test]
fn distinct_seeds_give_distinct_schedule_families() {
    // Not a determinism requirement per se, but the seed must actually
    // steer the schedules: at least the option plumbing reaches them.
    let o1 = ConformOptions { seed: 1, ..opts(1) };
    let o2 = ConformOptions { seed: 2, ..opts(1) };
    let p = generate(3);
    // Same program, same oracle; observed sets may or may not differ,
    // but both runs must be sound and self-consistent.
    let r1 = check_conformance(&p, &o1).unwrap();
    let r2 = check_conformance(&p, &o2).unwrap();
    assert_eq!(r1.allowed, r2.allowed);
    assert!(r1.sound() && r2.sound());
}

#[test]
fn fuzz_smoke_is_sound_on_the_full_matrix() {
    // Small burst with fewer schedules: the CI job runs the big one.
    let o = ConformOptions { schedules: 6, ..opts(4) };
    for seed in 0..15 {
        let p = generate(seed);
        let r = check_conformance(&p, &o).unwrap();
        assert!(r.sound(), "fuzz seed {seed}: simulator observed outcomes outside the SC set");
    }
}

#[test]
fn shrinker_minimizes_against_the_harness_predicate_shape() {
    // No real soundness violation exists to shrink, so exercise the
    // full pipeline with a synthetic predicate of the same shape as
    // is_unsound: "the observed union still contains a nonzero x".
    let p = generate(7);
    let o = ConformOptions { configs: SystemConfig::all().to_vec(), schedules: 3, ..opts(1) };
    let pred = |q: &drfrlx_core::program::Program| -> bool {
        !q.threads().is_empty()
            && check_conformance(q, &o)
                .map(|r| r.observed_union().iter().any(|out| out.mem.iter().any(|&v| v != 0)))
                .unwrap_or(false)
    };
    if !pred(&p) {
        return; // seed produced an all-zero program; nothing to shrink
    }
    let s = shrink(&p, &pred);
    assert!(pred(&s), "shrunk program must still satisfy the predicate");
    let before: usize = p.threads().iter().map(|t| t.instrs.len()).sum();
    let after: usize = s.threads().iter().map(|t| t.instrs.len()).sum();
    assert!(after <= before);
}
