//! The template corpus stays SOUND across all nine protocol × model
//! configurations — the end-to-end acceptance check for the
//! single-source program pipeline: shared template → `Program` →
//! litmus lowering → simulator matrix → axiomatic oracle.
//!
//! Schedules are fewer than the committed artifact's 128 (the golden
//! test in `drfrlx-bench` pins that one byte-for-byte); soundness must
//! hold for every schedule family, so a cheaper family is still a real
//! check.

use drfrlx_conform::{compile, run_template_corpus, template_corpus, ConformOptions};

fn opts() -> ConformOptions {
    ConformOptions { schedules: 24, ..ConformOptions::default() }
}

#[test]
fn template_corpus_is_sound_on_all_nine_configs() {
    let o = opts();
    assert_eq!(o.configs.len(), 9, "default options cover the extended matrix");
    let reports = run_template_corpus(&o).expect("template programs enumerate within limits");
    assert_eq!(reports.len(), template_corpus().len());
    for r in &reports {
        for v in &r.verdicts {
            assert!(
                v.violations.is_empty(),
                "{} under {}: observed outcome outside the SC set: {:?}",
                r.name,
                v.config,
                v.violations.iter().map(|o| o.render()).collect::<Vec<_>>()
            );
        }
        assert!(r.coverage() > 0.0, "{}: no allowed outcome witnessed at all", r.name);
    }
}

/// The scratch + barrier histogram lowers to a single block (the
/// enumerator rendezvouses all threads and shares one scratch space)
/// with the scratchpad sized from its constant addresses.
#[test]
fn hist_program_lowers_to_one_block_with_sized_scratch() {
    use hsim_gpu::Kernel;
    let (_, p) = template_corpus().into_iter().find(|(n, _)| n == "tmpl_hist_scratch").unwrap();
    let shape = compile(&p);
    assert_eq!(shape.blocks(), 1);
    assert_eq!(shape.threads_per_block(), p.threads().len());
    // 2 threads × 2 bins of private scratch rows: slots 0..4.
    assert_eq!(shape.scratch_words(), 4);
}

/// Barrier-free programs keep the historical one-thread-per-block
/// litmus layout — the committed `results/conform.txt` depends on it.
#[test]
fn barrier_free_programs_keep_one_thread_per_block() {
    use hsim_gpu::Kernel;
    for (name, p) in template_corpus() {
        if name == "tmpl_hist_scratch" {
            continue;
        }
        let shape = compile(&p);
        assert_eq!(shape.threads_per_block(), 1, "{name}");
        assert_eq!(shape.blocks(), p.threads().len(), "{name}");
        assert_eq!(shape.scratch_words(), 0, "{name}");
    }
}
