//! Known coverage gaps of the committed conformance run, pinned.
//!
//! Coverage gaps are diagnostics, not failures (soundness is
//! `observed ⊆ allowed`; coverage only reports how much of the
//! allowed set the schedule family witnessed). The committed
//! `results/conform.txt` — 9 configurations × 128 schedules, seed 1 —
//! witnesses 42 of the corpus's 43 allowed outcomes. The one gap:
//!
//! * **seqlock**: the reader's clean-success outcome
//!   `mem=[seq=2, d1=10, d2=20]`, reader registers
//!   `[seq0=2, d1=10, d2=20, seq1=2]` — the reader's single attempt
//!   running entirely *after* the writer's critical section. Both
//!   threads launch at cycle 0 and the schedule family's ready-time
//!   jitter is bounded well below the writer's five-operation critical
//!   section, so the reader's first `seq0` load always issues before
//!   the writer's unlock lands. Witnessing it would need a schedule
//!   family with larger start skew — which would perturb every other
//!   committed conformance artifact, so the gap is pinned here
//!   instead.
//!
//! This test re-runs the committed options for the seqlock program and
//! asserts the gap is *exactly* that outcome: if a future schedule
//! family witnesses it (or loses another outcome), this test fails and
//! the documentation above — plus `results/conform.txt` — must move
//! together.

use drfrlx_conform::{check_conformance, table1_corpus, ConformOptions};

#[test]
fn seqlock_gap_is_exactly_the_post_writer_clean_read() {
    let (_, p) = table1_corpus().into_iter().find(|(n, _)| n == "seqlock").unwrap();
    // The committed artifact's options: 9 configs × 128 schedules, seed 1.
    let opts = ConformOptions::default();
    let r = check_conformance(&p, &opts).expect("seqlock enumerates within default limits");
    assert!(r.sound());
    assert_eq!(r.allowed.len(), 18);
    assert_eq!(r.witnessed(), 17, "the known gap regressed or was witnessed; update known_gaps");
    let unwitnessed: Vec<String> =
        r.allowed.difference(&r.observed_union()).map(|o| o.render()).collect();
    assert_eq!(
        unwitnessed,
        vec!["mem=[2, 10, 20] regs=[[0], [2, 10, 20, 2]]".to_string()],
        "the unwitnessed outcome moved; update the documentation above"
    );
}
