//! Outcome normalization and the axiomatic oracle.
//!
//! Both halves of the conformance loop report final states in
//! different shapes: the enumerator's [`ExecResult`] keeps sparse
//! per-thread register maps (only registers actually written appear),
//! while the simulator dumps a dense, zero-initialized observation
//! window. An [`Outcome`] is the common normal form — dense final
//! memory plus dense final register files, never-written registers
//! reading as 0 on both sides (exactly the read-as-zero convention of
//! [`drfrlx_core::program::Expr::eval_slice`]).
//!
//! The oracle enumerates the **SC outcome set** of the original
//! program via the streaming visitor. That is the tightest sound
//! baseline for every configuration: the simulator's engine applies
//! functional memory effects atomically at issue time in scheduler
//! order, so any observed outcome corresponds to some SC interleaving
//! — and the DRF0/DRF1/DRFrlx models all admit at least the SC
//! outcomes. An observed outcome outside this set is therefore a
//! genuine soundness violation under *every* model.

use crate::compile::CompiledLitmus;
use drfrlx_core::exec::{
    visit_sc_sharded, EnumError, EnumLimits, EnumStats, ExecResult, Execution, ExecutionVisitor,
    Reduction,
};
use drfrlx_core::program::{Loc, Program, Reg};
use std::collections::BTreeSet;

/// One normalized final state: dense memory (indexed by `Loc`) and
/// dense per-thread register files (unwritten = 0).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Outcome {
    /// Final value of location `l` at index `l`.
    pub mem: Vec<i64>,
    /// Final register `r` of thread `t` at `regs[t][r]`.
    pub regs: Vec<Vec<i64>>,
}

impl Outcome {
    /// Normalize an axiomatic [`ExecResult`] against the compiled
    /// layout.
    pub fn from_exec(shape: &CompiledLitmus, r: &ExecResult) -> Outcome {
        let p = &shape.program;
        let mem = (0..p.num_locs()).map(|l| *r.memory.get(&Loc(l as u32)).unwrap_or(&0)).collect();
        let regs = shape
            .reg_counts
            .iter()
            .enumerate()
            .map(|(t, &rc)| {
                (0..rc)
                    .map(|i| {
                        r.regs.get(t).and_then(|m| m.get(&Reg(i as u16))).copied().unwrap_or(0)
                    })
                    .collect()
            })
            .collect();
        Outcome { mem, regs }
    }

    /// Normalize a simulator memory image (locations + observation
    /// windows) against the compiled layout.
    pub fn from_sim_memory(shape: &CompiledLitmus, memory: &[u64]) -> Outcome {
        let mem = (0..shape.program.num_locs()).map(|l| memory[l] as i64).collect();
        let regs = shape
            .reg_counts
            .iter()
            .zip(&shape.obs_base)
            .map(|(&rc, &base)| (0..rc).map(|i| memory[base + i] as i64).collect())
            .collect();
        Outcome { mem, regs }
    }

    /// Compact display: `mem=[..] regs=[[..], ..]`.
    pub fn render(&self) -> String {
        format!("mem={:?} regs={:?}", self.mem, self.regs)
    }
}

/// Streaming visitor accumulating the outcome set.
struct OutcomeSet<'a> {
    shape: &'a CompiledLitmus,
    set: BTreeSet<Outcome>,
}

impl ExecutionVisitor for OutcomeSet<'_> {
    fn visit(&mut self, e: &Execution) -> bool {
        self.set.insert(Outcome::from_exec(self.shape, &e.result));
        true
    }
}

/// Enumerate the allowed (SC) outcome set of `p` on `threads` workers.
///
/// Uses sleep-set partial-order reduction: commuting adjacent steps
/// touch different locations (or are both reads), so the pruned order
/// produces the identical `ExecResult` — the outcome *set* is exact.
/// Memoized reduction would not be (its fingerprint is checker-grade),
/// so it is deliberately not offered here.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] when the interleaving tree
/// exceeds `limits.max_executions`.
pub fn allowed_outcomes(
    shape: &CompiledLitmus,
    limits: &EnumLimits,
    threads: usize,
) -> Result<(BTreeSet<Outcome>, EnumStats), EnumError> {
    let p: &Program = &shape.program;
    let run = visit_sc_sharded(
        p,
        limits,
        false,
        Reduction::SleepSet,
        threads,
        &|| OutcomeSet { shape, set: BTreeSet::new() },
        &|_| false,
    )?;
    let mut set = BTreeSet::new();
    for (v, _) in run.shards {
        set.extend(v.set);
    }
    Ok((set, run.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use drfrlx_core::prelude::*;
    use drfrlx_core::OpClass;

    /// Store-buffering shape: the SC set excludes the `(0, 0)` outcome.
    fn sb() -> Program {
        let mut p = Program::new("sb");
        {
            let mut t = p.thread();
            t.store(OpClass::Paired, "x", 1);
            let r = t.load(OpClass::Paired, "y");
            t.observe(r);
        }
        {
            let mut t = p.thread();
            t.store(OpClass::Paired, "y", 1);
            let r = t.load(OpClass::Paired, "x");
            t.observe(r);
        }
        p.build()
    }

    #[test]
    fn sc_set_of_store_buffering_has_no_zero_zero() {
        let p = sb();
        let shape = compile(&p);
        let (allowed, _) = allowed_outcomes(&shape, &EnumLimits::default(), 1).unwrap();
        // 3 outcomes: (r1,r2) in {(0,1),(1,0),(1,1)} — never (0,0).
        assert_eq!(allowed.len(), 3);
        assert!(!allowed.iter().any(|o| o.regs[0][0] == 0 && o.regs[1][0] == 0));
    }

    #[test]
    fn sharded_oracle_is_thread_invariant() {
        let p = sb();
        let shape = compile(&p);
        let (t1, _) = allowed_outcomes(&shape, &EnumLimits::default(), 1).unwrap();
        let (t4, _) = allowed_outcomes(&shape, &EnumLimits::default(), 4).unwrap();
        assert_eq!(t1, t4);
    }

    #[test]
    fn sleep_set_outcome_set_matches_exhaustive() {
        let p = sb();
        let shape = compile(&p);
        let execs = enumerate_sc(&p, &EnumLimits::default()).unwrap();
        let exhaustive: BTreeSet<Outcome> =
            execs.iter().map(|e| Outcome::from_exec(&shape, &e.result)).collect();
        let (reduced, _) = allowed_outcomes(&shape, &EnumLimits::default(), 1).unwrap();
        assert_eq!(exhaustive, reduced);
    }

    #[test]
    fn normalization_reads_unwritten_registers_as_zero() {
        let mut p = Program::new("t");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Paired, "x");
            t.observe(r);
        }
        let p = p.build();
        let shape = compile(&p);
        let (allowed, _) = allowed_outcomes(&shape, &EnumLimits::default(), 1).unwrap();
        assert_eq!(allowed.len(), 1);
        let o = allowed.iter().next().unwrap();
        assert_eq!(o.mem, vec![0]);
        assert_eq!(o.regs, vec![vec![0]]);
    }
}
