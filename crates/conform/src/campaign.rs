//! Resumable fuzz campaigns with an escalating oracle-budget ladder.
//!
//! A campaign runs `total` [generated](crate::fuzz::generate) programs
//! (program `i` uses seed `root + i`) through the conformance loop.
//! Each program gets the base oracle limits first; if the oracle
//! exhausts its execution budget the program is retried up the
//! [`BUDGET_LADDER`] (×4, then ×16) before being recorded as
//! **skipped** — skipped programs appear in the summary with their
//! seed, so no fuzz input silently vanishes from the report.
//!
//! The campaign is a pure function of `(root seed, total, options)`:
//! [`CampaignState`] checkpoints `next_index` plus the accumulated
//! tallies, and resuming from a checkpoint produces exactly the
//! summary an uninterrupted run would have produced.

use crate::fuzz::generate;
use crate::harness::{
    check_conformance_resilient, ConformOptions, ConformReport, ConformResilience,
};
use drfrlx_core::resilience::{EngineId, ExhaustReason, Fault, RunStatus};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Oracle `max_executions` multipliers tried per program, in order.
/// A program is skipped only after the whole ladder is exhausted.
pub const BUDGET_LADDER: [usize; 3] = [1, 4, 16];

/// How long an injected stall waits for cancellation before the
/// ladder rung fails on its own.
const STALL_FALLBACK: Duration = Duration::from_millis(25);

/// Checkpointable progress of a fuzz campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignState {
    /// Root seed: program `i` is `generate(seed + i)`.
    pub seed: u64,
    /// Total programs in the campaign.
    pub total: u64,
    /// Next program index to run (`== total` when the campaign is
    /// done). This is the resume point.
    pub next_index: u64,
    /// Programs whose report was sound.
    pub sound: u64,
    /// Seeds that demonstrated a violation, in discovery order.
    pub violations: Vec<u64>,
    /// Seeds skipped after the whole [`BUDGET_LADDER`] was exhausted,
    /// in discovery order.
    pub skipped: Vec<u64>,
}

impl CampaignState {
    /// A fresh campaign of `total` programs rooted at `seed`.
    pub fn new(seed: u64, total: u64) -> Self {
        CampaignState {
            seed,
            total,
            next_index: 0,
            sound: 0,
            violations: Vec::new(),
            skipped: Vec::new(),
        }
    }

    /// Has every program been run?
    pub fn done(&self) -> bool {
        self.next_index >= self.total
    }
}

/// What one program's ladder run amounted to.
enum Ladder {
    Verdict(ConformReport),
    Skipped,
    Abort(ExhaustReason),
}

/// Run (or resume) a fuzz campaign, mutating `state` as it goes.
///
/// Every program runs under `catch_unwind` with the oracle budget
/// ladder; `res.fault_plan` injects faults per
/// `(EngineId::Conform, program index, ladder rung)` on top of
/// whatever it injects into the inner simulation sweeps. A tripped
/// `res.budget` (deadline or cancellation) stops the campaign between
/// programs and returns `Inconclusive` whose frontier holds the
/// resume index — `state` is then a valid checkpoint.
///
/// `on_violation` fires once per unsound program with its seed and
/// report (the CLI prints and shrinks there).
pub fn resume_campaign(
    state: &mut CampaignState,
    opts: &ConformOptions,
    res: &ConformResilience,
    on_violation: &mut dyn FnMut(u64, &ConformReport),
) -> RunStatus {
    while !state.done() {
        let i = state.next_index;
        if let Some(b) = &res.budget {
            if let Err(reason) = b.check(0) {
                return RunStatus::Inconclusive { reason, frontier: vec![i as usize] };
            }
        }
        let seed = state.seed.wrapping_add(i);
        match run_ladder(seed, i, opts, res) {
            Ladder::Verdict(report) => {
                if report.sound() {
                    state.sound += 1;
                } else {
                    state.violations.push(seed);
                    on_violation(seed, &report);
                }
            }
            Ladder::Skipped => state.skipped.push(seed),
            Ladder::Abort(reason) => {
                return RunStatus::Inconclusive { reason, frontier: vec![i as usize] }
            }
        }
        state.next_index = i + 1;
    }
    RunStatus::Complete
}

/// One program through the budget ladder. Pure in `(seed, index)`
/// given fixed options, so resumed campaigns replay identically.
fn run_ladder(seed: u64, index: u64, opts: &ConformOptions, res: &ConformResilience) -> Ladder {
    let p = generate(seed);
    if p.threads().is_empty() {
        return Ladder::Skipped;
    }
    for (rung, mult) in BUDGET_LADDER.iter().enumerate() {
        let fault = res
            .fault_plan
            .as_ref()
            .and_then(|pl| pl.fault_for(EngineId::Conform, index as usize, rung));
        match fault {
            Some(Fault::Stall) => {
                let cap = Instant::now() + STALL_FALLBACK;
                while !res.budget.as_deref().is_some_and(drfrlx_core::Budget::cancelled)
                    && Instant::now() < cap
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                continue;
            }
            Some(Fault::Exhaust) => continue,
            _ => {}
        }
        let mut rung_opts = opts.clone();
        rung_opts.limits.max_executions = opts.limits.max_executions.saturating_mul(*mult);
        let out = catch_unwind(AssertUnwindSafe(|| {
            if matches!(fault, Some(Fault::Panic)) {
                panic!("injected fault: conform program {index} rung {rung}");
            }
            check_conformance_resilient(&p, &rung_opts, res)
        }));
        let Ok(out) = out else { continue };
        if let RunStatus::Inconclusive {
            reason: reason @ (ExhaustReason::Deadline | ExhaustReason::Cancelled),
            ..
        } = out.status
        {
            return Ladder::Abort(reason);
        }
        match out.report {
            Some(report) => return Ladder::Verdict(report),
            // Oracle exhausted its execution/memory budget: climb.
            None => continue,
        }
    }
    Ladder::Skipped
}

/// The campaign summary printed by `drfrlx conform --fuzz`. Skipped
/// seeds are listed explicitly so every fuzz input is accounted for.
pub fn render_summary(state: &CampaignState) -> String {
    let mut out = format!(
        "fuzz: {} programs from seed {}, {} sound, {} violations, {} skipped\n",
        state.next_index,
        state.seed,
        state.sound,
        state.violations.len(),
        state.skipped.len()
    );
    if !state.skipped.is_empty() {
        let seeds: Vec<String> = state.skipped.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "  skipped seeds (oracle budget exhausted after {} attempts): {}\n",
            BUDGET_LADDER.len(),
            seeds.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::exec::EnumLimits;
    use drfrlx_core::resilience::{Budget, FaultPlan};
    use drfrlx_core::SystemConfig;
    use std::sync::Arc;

    fn quick_opts() -> ConformOptions {
        ConformOptions {
            configs: SystemConfig::all().to_vec(),
            schedules: 2,
            seed: 1,
            threads: 1,
            limits: EnumLimits::default(),
        }
    }

    #[test]
    fn a_clean_campaign_completes_and_counts_every_program() {
        let mut state = CampaignState::new(1, 5);
        let status = resume_campaign(
            &mut state,
            &quick_opts(),
            &ConformResilience::default(),
            &mut |_, _| panic!("fuzz seeds 1..=5 are sound"),
        );
        assert_eq!(status, RunStatus::Complete);
        assert!(state.done());
        assert_eq!(state.sound + state.violations.len() as u64 + state.skipped.len() as u64, 5);
        assert!(state.skipped.is_empty(), "default limits never exhaust on tiny programs");
    }

    #[test]
    fn a_starved_oracle_records_the_skipped_seed_in_the_summary() {
        // max_executions 0 stays 0 up the whole ladder, so every
        // program exhausts the oracle and lands in `skipped`.
        let opts = ConformOptions {
            limits: EnumLimits { max_executions: 0, ..EnumLimits::default() },
            ..quick_opts()
        };
        let mut state = CampaignState::new(7, 3);
        let status =
            resume_campaign(&mut state, &opts, &ConformResilience::default(), &mut |_, _| {});
        assert_eq!(status, RunStatus::Complete);
        assert_eq!(state.skipped, vec![7, 8, 9]);
        let summary = render_summary(&state);
        assert!(summary.contains("3 skipped"), "{summary}");
        assert!(summary.contains("7, 8, 9"), "{summary}");
    }

    #[test]
    fn a_cancelled_budget_checkpoints_between_programs() {
        let budget = Arc::new(Budget::unlimited());
        budget.cancel();
        let res = ConformResilience { budget: Some(budget), fault_plan: None };
        let mut state = CampaignState::new(1, 4);
        let status = resume_campaign(&mut state, &quick_opts(), &res, &mut |_, _| {});
        assert_eq!(
            status,
            RunStatus::Inconclusive { reason: ExhaustReason::Cancelled, frontier: vec![0] }
        );
        assert_eq!(state.next_index, 0, "nothing ran; the checkpoint resumes from the start");
    }

    #[test]
    fn a_resumed_campaign_matches_an_uninterrupted_one() {
        let opts = quick_opts();
        let res = ConformResilience::default();

        let mut whole = CampaignState::new(3, 6);
        assert_eq!(resume_campaign(&mut whole, &opts, &res, &mut |_, _| {}), RunStatus::Complete);

        // Interrupt by cancelling after 3 programs, then resume.
        let mut split = CampaignState::new(3, 6);
        split.total = 3;
        assert_eq!(resume_campaign(&mut split, &opts, &res, &mut |_, _| {}), RunStatus::Complete);
        split.total = 6;
        assert_eq!(resume_campaign(&mut split, &opts, &res, &mut |_, _| {}), RunStatus::Complete);

        assert_eq!(split, whole, "resumed == uninterrupted");
    }

    #[test]
    fn seeded_campaign_chaos_is_deterministic_and_never_aborts() {
        let opts = quick_opts();
        for seed in 1..=3u64 {
            let res = ConformResilience { budget: None, fault_plan: Some(FaultPlan::seeded(seed)) };
            let mut a = CampaignState::new(1, 4);
            let mut b = CampaignState::new(1, 4);
            let sa = resume_campaign(&mut a, &opts, &res, &mut |_, _| {});
            let sb = resume_campaign(&mut b, &opts, &res, &mut |_, _| {});
            assert_eq!(sa, RunStatus::Complete, "chaos seed {seed}");
            assert_eq!(sa, sb, "chaos seed {seed}");
            assert_eq!(a, b, "chaos seed {seed}");
            // Faulted rungs may skip programs, never lose them.
            assert_eq!(a.sound + a.violations.len() as u64 + a.skipped.len() as u64, 4);
        }
    }
}
