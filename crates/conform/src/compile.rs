//! The litmus→kernel compiler — a thin wrapper over
//! [`drfrlx_bridge::ProgramKernel`]'s litmus lowering.
//!
//! Lowers a [`drfrlx_core::program::Program`] into the `hsim-gpu`
//! work-item IR so the cycle simulator can execute it: one
//! single-thread block per litmus thread (blocks land on distinct CUs
//! round-robin, so litmus threads really do run on different cores),
//! every memory instruction carried over with its
//! [`drfrlx_core::OpClass`] annotation — the engine maps classes
//! through the active [`hsim_gpu::ConsistencyPolicy`] exactly as for
//! hand-written workloads — and local computation (assignments, branch
//! markers, structured `if`s) interpreted inside the work item. The
//! actual lowering and interpretation live in `drfrlx-bridge`, shared
//! with the micro workloads' grid kernels; this module only pins the
//! litmus-specific layout contract used by outcome normalization.
//!
//! ## Memory layout and observation
//!
//! The kernel's memory image is `[locations][register dumps]`:
//! word `l` holds litmus location `Loc(l)` (initialized from the
//! program's `init` block), and after its body each thread appends
//! plain data stores dumping every register it could have written into
//! its private observation window at [`CompiledLitmus::obs_base`]. The
//! final memory image therefore encodes the complete litmus outcome —
//! final memory *and* final register files — which
//! [`crate::outcome::Outcome`] normalizes for comparison against the
//! axiomatic oracle.
//!
//! ## Value domains
//!
//! Litmus values are `i64`, the simulator's are `u64`; all lowering is
//! bit-pattern faithful (`as` casts) and every RMW — including
//! `FetchMin`/`FetchMax`, which both sides order as *signed* values —
//! computes the same bit pattern in both domains, so checker and
//! simulator agree on every program the fuzzer can generate.

use drfrlx_bridge::ProgramKernel;
use drfrlx_core::program::Program;
use hsim_gpu::{Kernel, WorkItem};

/// Shape information shared by the kernel and outcome normalization.
#[derive(Debug, Clone)]
pub struct CompiledLitmus {
    /// The source program (threads are interpreted per work item).
    pub program: Program,
    /// Registers each thread can write (dense `0..reg_count`).
    pub reg_counts: Vec<usize>,
    /// First observation word of each thread's register dump.
    pub obs_base: Vec<usize>,
    /// Total memory words: locations + all register dumps.
    pub memory_words: usize,
    /// The shared lowering that actually runs on the simulator.
    kernel: ProgramKernel,
}

/// Compile `p` into a simulator kernel plus its layout.
///
/// # Panics
///
/// Panics if the program has no threads (nothing to simulate).
pub fn compile(p: &Program) -> CompiledLitmus {
    assert!(!p.threads().is_empty(), "cannot compile a litmus program with no threads");
    let kernel = ProgramKernel::litmus(p);
    CompiledLitmus {
        program: p.clone(),
        reg_counts: kernel.reg_counts(),
        obs_base: kernel.obs_bases(),
        memory_words: kernel.memory_words(),
        kernel,
    }
}

impl Kernel for CompiledLitmus {
    fn name(&self) -> String {
        self.kernel.name()
    }

    fn blocks(&self) -> usize {
        self.kernel.blocks()
    }

    fn threads_per_block(&self) -> usize {
        self.kernel.threads_per_block()
    }

    fn memory_words(&self) -> usize {
        self.kernel.memory_words()
    }

    fn scratch_words(&self) -> usize {
        self.kernel.scratch_words()
    }

    fn init_memory(&self, mem: &mut [u64]) {
        self.kernel.init_memory(mem);
    }

    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        self.kernel.item(block, thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::program::RmwOp;
    use drfrlx_core::OpClass;
    use hsim_gpu::{run_kernel, EngineParams, MemoryBackend};

    /// Zero-latency functional backend for compiler-only tests.
    struct Instant;
    impl MemoryBackend for Instant {
        fn load(&mut self, now: u64, _cu: usize, _a: u64, _at: bool) -> u64 {
            now + 1
        }
        fn store(&mut self, now: u64, _cu: usize, _a: u64, _at: bool) -> u64 {
            now + 1
        }
        fn rmw(&mut self, now: u64, _cu: usize, _a: u64) -> u64 {
            now + 1
        }
        fn acquire(&mut self, now: u64, _cu: usize) -> u64 {
            now
        }
        fn release(&mut self, now: u64, _cu: usize) -> u64 {
            now
        }
    }

    fn run(p: &Program) -> Vec<u64> {
        let k = compile(p);
        let mut b = Instant;
        run_kernel(&k, &EngineParams::default(), &mut b).memory
    }

    #[test]
    fn compiles_stores_loads_and_rmws() {
        let mut p = Program::new("t");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 5);
            let r = t.rmw(OpClass::Commutative, "x", RmwOp::FetchAdd, 2);
            t.observe(r);
        }
        let p = p.build();
        let c = compile(&p);
        assert_eq!(c.reg_counts, vec![1]);
        assert_eq!(c.obs_base, vec![1]);
        let mem = run(&p);
        assert_eq!(mem[0], 7, "x = 5 then fadd 2");
        assert_eq!(mem[1], 5, "RMW returned the old value");
    }

    #[test]
    fn init_values_and_cas_lower_correctly() {
        let mut p = Program::new("t");
        p.set_init("c", 7);
        {
            let mut t = p.thread();
            let r = t.cas(OpClass::Unpaired, "c", 7, 9);
            t.observe(r);
        }
        let p = p.build();
        let mem = run(&p);
        assert_eq!(mem[0], 9, "CAS(expected 7, new 9) on 7 succeeds");
        assert_eq!(mem[1], 7, "old value observed");
    }

    #[test]
    fn structured_ifs_interpret_inside_the_item() {
        let src = "litmus t\ninit { f = 1 }\nthread a {\n  r = load.paired f;\n  if r { store.data x 4; }\n  ifz r { store.data y 5; }\n}";
        let p = drfrlx_core::parse::parse(src).unwrap();
        let mem = run(&p);
        let f = p.find_loc("f").unwrap().0 as usize;
        let x = p.find_loc("x").unwrap().0 as usize;
        let y = p.find_loc("y").unwrap().0 as usize;
        assert_eq!(mem[f], 1);
        assert_eq!(mem[x], 4, "if-branch taken");
        assert_eq!(mem[y], 0, "ifz-branch skipped");
    }

    #[test]
    fn negative_values_round_trip_through_u64() {
        let mut p = Program::new("t");
        p.set_init("x", -3);
        {
            let mut t = p.thread();
            let r = t.rmw(OpClass::Commutative, "x", RmwOp::FetchAdd, 1);
            t.observe(r);
        }
        let p = p.build();
        let mem = run(&p);
        assert_eq!(mem[0] as i64, -2);
        assert_eq!(mem[1] as i64, -3, "old value bit-pattern faithful");
    }

    #[test]
    fn signed_min_max_agree_with_the_checker() {
        // -5 < 3 signed but not unsigned: fmin must keep -5, fmax must
        // take 3 over -5 — the checker's RmwOp::apply semantics.
        let mut p = Program::new("t");
        p.set_init("a", -5);
        p.set_init("b", -5);
        {
            let mut t = p.thread();
            let r1 = t.rmw(OpClass::Commutative, "a", RmwOp::FetchMin, 3);
            let r2 = t.rmw(OpClass::Commutative, "b", RmwOp::FetchMax, 3);
            t.observe(r1);
            t.observe(r2);
        }
        let p = p.build();
        let mem = run(&p);
        assert_eq!(mem[0] as i64, -5, "min(-5, 3) is -5 signed");
        assert_eq!(mem[1] as i64, 3, "max(-5, 3) is 3 signed");
    }
}
