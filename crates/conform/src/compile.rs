//! The litmus→kernel compiler.
//!
//! Lowers a [`drfrlx_core::program::Program`] into the `hsim-gpu`
//! work-item IR so the cycle simulator can execute it: one
//! single-thread block per litmus thread (blocks land on distinct CUs
//! round-robin, so litmus threads really do run on different cores),
//! every memory instruction carried over with its [`OpClass`]
//! annotation — the engine maps classes through the active
//! [`hsim_gpu::ConsistencyPolicy`] exactly as for hand-written
//! workloads — and local computation (assignments, branch markers,
//! structured `if`s) interpreted inside the work item.
//!
//! ## Memory layout and observation
//!
//! The kernel's memory image is `[locations][register dumps]`:
//! word `l` holds litmus location `Loc(l)` (initialized from the
//! program's `init` block), and after its body each thread appends
//! plain data stores dumping every register it could have written into
//! its private observation window at [`CompiledLitmus::obs_base`]. The
//! final memory image therefore encodes the complete litmus outcome —
//! final memory *and* final register files — which
//! [`crate::outcome::Outcome`] normalizes for comparison against the
//! axiomatic oracle.
//!
//! ## Value-domain caveat
//!
//! Litmus values are `i64`, the simulator's are `u64`; all lowering is
//! bit-pattern faithful (`as` casts) and every RMW except
//! `FetchMin`/`FetchMax` computes the same bit pattern in both domains.
//! Min/max order *unsigned* in the simulator, so programs mixing
//! negative values with `fmin`/`fmax` may legitimately diverge — the
//! corpus has none and the fuzzer never generates them.

use drfrlx_core::program::{Instr, Program, Reg, RmwOp};
use hsim_gpu::{Kernel, Op, RmwKind, WorkItem};

/// Shape information shared by the kernel and outcome normalization.
#[derive(Debug, Clone)]
pub struct CompiledLitmus {
    /// The source program (threads are interpreted per work item).
    pub program: Program,
    /// Registers each thread can write (dense `0..reg_count`).
    pub reg_counts: Vec<usize>,
    /// First observation word of each thread's register dump.
    pub obs_base: Vec<usize>,
    /// Total memory words: locations + all register dumps.
    pub memory_words: usize,
}

/// Compile `p` into a simulator kernel plus its layout.
///
/// # Panics
///
/// Panics if the program has no threads (nothing to simulate).
pub fn compile(p: &Program) -> CompiledLitmus {
    assert!(!p.threads().is_empty(), "cannot compile a litmus program with no threads");
    let reg_counts: Vec<usize> = p.threads().iter().map(thread_reg_count).collect();
    let mut obs_base = Vec::with_capacity(reg_counts.len());
    let mut next = p.num_locs();
    for rc in &reg_counts {
        obs_base.push(next);
        next += rc;
    }
    CompiledLitmus { program: p.clone(), reg_counts, obs_base, memory_words: next.max(1) }
}

/// Highest register index a thread writes or reads, plus one.
fn thread_reg_count(t: &drfrlx_core::program::Thread) -> usize {
    let mut max: Option<u16> = None;
    let mut see = |r: Reg| max = Some(max.map_or(r.0, |m: u16| m.max(r.0)));
    for i in &t.instrs {
        match i {
            Instr::Load { dst, .. } => see(*dst),
            Instr::Store { val, .. } => val.for_each_reg(&mut see),
            Instr::Rmw { operand, operand2, dst, .. } => {
                operand.for_each_reg(&mut see);
                operand2.for_each_reg(&mut see);
                see(*dst);
            }
            Instr::Assign { dst, expr } => {
                expr.for_each_reg(&mut see);
                see(*dst);
            }
            Instr::BranchOn { cond } | Instr::JumpIfZero { cond, .. } => {
                cond.for_each_reg(&mut see);
            }
            Instr::Observe { expr } => expr.for_each_reg(&mut see),
        }
    }
    max.map_or(0, |m| m as usize + 1)
}

impl Kernel for CompiledLitmus {
    fn name(&self) -> String {
        format!("conform_{}", self.program.name())
    }

    fn blocks(&self) -> usize {
        self.program.threads().len()
    }

    fn threads_per_block(&self) -> usize {
        1
    }

    fn memory_words(&self) -> usize {
        self.memory_words
    }

    fn init_memory(&self, mem: &mut [u64]) {
        for (l, word) in mem.iter_mut().enumerate().take(self.program.num_locs()) {
            let loc = drfrlx_core::program::Loc(l as u32);
            *word = self.program.init_value(loc) as u64;
        }
    }

    fn item(&self, block: usize, _thread: usize) -> Box<dyn WorkItem> {
        Box::new(LitmusItem {
            instrs: self.program.threads()[block].instrs.clone(),
            regs: vec![None; self.reg_counts[block]],
            pc: 0,
            pending: None,
            obs_base: self.obs_base[block] as u64,
            dumped: 0,
        })
    }
}

/// A work item interpreting one litmus thread.
struct LitmusItem {
    instrs: Vec<Instr>,
    /// Dense register file; `None` = never written (reads as 0, like
    /// the axiomatic enumerator's [`drfrlx_core::program::Expr::eval_slice`]).
    regs: Vec<Option<i64>>,
    pc: usize,
    /// Register awaiting the value delivered as `last`.
    pending: Option<Reg>,
    obs_base: u64,
    /// Registers dumped so far in the observation phase.
    dumped: usize,
}

impl WorkItem for LitmusItem {
    fn next(&mut self, last: Option<u64>) -> Op {
        if let Some(dst) = self.pending.take() {
            let v = last.expect("memory op with a destination returns a value");
            self.regs[dst.0 as usize] = Some(v as i64);
        }
        while self.pc < self.instrs.len() {
            let pc = self.pc;
            self.pc += 1;
            match &self.instrs[pc] {
                Instr::Assign { dst, expr } => {
                    self.regs[dst.0 as usize] = Some(expr.eval_slice(&self.regs));
                }
                Instr::BranchOn { .. } | Instr::Observe { .. } => {
                    // Dependency/observability markers: no dynamic
                    // effect, the simulator executes the real path.
                }
                Instr::JumpIfZero { cond, skip } => {
                    if cond.eval_slice(&self.regs) == 0 {
                        self.pc += skip;
                    }
                }
                Instr::Load { class, loc, dst } => {
                    self.pending = Some(*dst);
                    return Op::Load { addr: loc.0 as u64, class: *class };
                }
                Instr::Store { class, loc, val } => {
                    return Op::Store {
                        addr: loc.0 as u64,
                        value: val.eval_slice(&self.regs) as u64,
                        class: *class,
                    };
                }
                Instr::Rmw { class, loc, op, operand, operand2, dst } => {
                    let k = operand.eval_slice(&self.regs);
                    let k2 = operand2.eval_slice(&self.regs);
                    self.pending = Some(*dst);
                    return Op::Rmw {
                        addr: loc.0 as u64,
                        rmw: lower_rmw(*op, k2),
                        operand: k as u64,
                        class: *class,
                        use_result: true,
                    };
                }
            }
        }
        // Body done: dump the register file into the observation
        // window, then retire. Plain data stores to thread-private
        // words — racing with nothing, invisible to other threads.
        if self.dumped < self.regs.len() {
            let r = self.dumped;
            self.dumped += 1;
            return Op::Store {
                addr: self.obs_base + r as u64,
                value: self.regs[r].unwrap_or(0) as u64,
                class: drfrlx_core::OpClass::Data,
            };
        }
        Op::Done
    }
}

/// Map a litmus RMW to the simulator's (same modify function, modulo
/// the documented unsigned min/max caveat).
fn lower_rmw(op: RmwOp, expected: i64) -> RmwKind {
    match op {
        RmwOp::FetchAdd => RmwKind::Add,
        RmwOp::FetchSub => RmwKind::Sub,
        RmwOp::FetchAnd => RmwKind::And,
        RmwOp::FetchOr => RmwKind::Or,
        RmwOp::FetchXor => RmwKind::Xor,
        RmwOp::FetchMin => RmwKind::Min,
        RmwOp::FetchMax => RmwKind::Max,
        RmwOp::Exchange => RmwKind::Exchange,
        RmwOp::Cas => RmwKind::Cas { expected: expected as u64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::OpClass;
    use hsim_gpu::{run_kernel, EngineParams, MemoryBackend};

    /// Zero-latency functional backend for compiler-only tests.
    struct Instant;
    impl MemoryBackend for Instant {
        fn load(&mut self, now: u64, _cu: usize, _a: u64, _at: bool) -> u64 {
            now + 1
        }
        fn store(&mut self, now: u64, _cu: usize, _a: u64, _at: bool) -> u64 {
            now + 1
        }
        fn rmw(&mut self, now: u64, _cu: usize, _a: u64) -> u64 {
            now + 1
        }
        fn acquire(&mut self, now: u64, _cu: usize) -> u64 {
            now
        }
        fn release(&mut self, now: u64, _cu: usize) -> u64 {
            now
        }
    }

    fn run(p: &Program) -> Vec<u64> {
        let k = compile(p);
        let mut b = Instant;
        run_kernel(&k, &EngineParams::default(), &mut b).memory
    }

    #[test]
    fn compiles_stores_loads_and_rmws() {
        let mut p = Program::new("t");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 5);
            let r = t.rmw(OpClass::Commutative, "x", RmwOp::FetchAdd, 2);
            t.observe(r);
        }
        let p = p.build();
        let c = compile(&p);
        assert_eq!(c.reg_counts, vec![1]);
        assert_eq!(c.obs_base, vec![1]);
        let mem = run(&p);
        assert_eq!(mem[0], 7, "x = 5 then fadd 2");
        assert_eq!(mem[1], 5, "RMW returned the old value");
    }

    #[test]
    fn init_values_and_cas_lower_correctly() {
        let mut p = Program::new("t");
        p.set_init("c", 7);
        {
            let mut t = p.thread();
            let r = t.cas(OpClass::Unpaired, "c", 7, 9);
            t.observe(r);
        }
        let p = p.build();
        let mem = run(&p);
        assert_eq!(mem[0], 9, "CAS(expected 7, new 9) on 7 succeeds");
        assert_eq!(mem[1], 7, "old value observed");
    }

    #[test]
    fn structured_ifs_interpret_inside_the_item() {
        let src = "litmus t\ninit { f = 1 }\nthread a {\n  r = load.paired f;\n  if r { store.data x 4; }\n  ifz r { store.data y 5; }\n}";
        let p = drfrlx_core::parse::parse(src).unwrap();
        let mem = run(&p);
        let f = p.find_loc("f").unwrap().0 as usize;
        let x = p.find_loc("x").unwrap().0 as usize;
        let y = p.find_loc("y").unwrap().0 as usize;
        assert_eq!(mem[f], 1);
        assert_eq!(mem[x], 4, "if-branch taken");
        assert_eq!(mem[y], 0, "ifz-branch skipped");
    }

    #[test]
    fn negative_values_round_trip_through_u64() {
        let mut p = Program::new("t");
        p.set_init("x", -3);
        {
            let mut t = p.thread();
            let r = t.rmw(OpClass::Commutative, "x", RmwOp::FetchAdd, 1);
            t.observe(r);
        }
        let p = p.build();
        let mem = run(&p);
        assert_eq!(mem[0] as i64, -2);
        assert_eq!(mem[1] as i64, -3, "old value bit-pattern faithful");
    }
}
