//! `drfrlx-conform` — litmus→simulator conformance harness.
//!
//! Closes the loop between the repo's two executable semantics: the
//! axiomatic enumerator in `drfrlx-core` and the cycle-level simulator
//! in `hsim-sys`. A litmus program is [compiled](compile) into a
//! simulator kernel, run across the protocol × model matrix under a
//! family of [perturbed schedules](schedule), and the observed outcome
//! set is checked against the [oracle's](outcome) allowed set:
//! `observed ⊆ allowed` is the soundness verdict, the witnessed
//! fraction of the allowed set is the coverage diagnostic. A seeded
//! [fuzzer](fuzz) feeds random programs through the same loop and a
//! delta-debugging [shrinker](shrink) minimizes any disagreement it
//! finds.
//!
//! Two corpora ride on the harness: the Table-1 litmus programs
//! ([`harness::table1_corpus`]) and the richer [template
//! corpus](templates) instantiating the same shared emitters with the
//! micro workloads' knobs (polls, retries, think delays, scratch +
//! barrier).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod compile;
pub mod fuzz;
pub mod harness;
pub mod outcome;
pub mod schedule;
pub mod shrink;
pub mod templates;

pub use campaign::{render_summary, resume_campaign, CampaignState, BUDGET_LADDER};
pub use compile::{compile, CompiledLitmus};
pub use fuzz::generate;
pub use harness::{
    check_conformance, check_conformance_resilient, conform_jobs, is_unsound, render_corpus,
    report_from_partial_runs, report_from_runs, run_corpus, run_template_corpus, table1_corpus,
    ConfigVerdict, ConformOptions, ConformOutcome, ConformReport, ConformResilience,
};
pub use outcome::{allowed_outcomes, Outcome};
pub use schedule::schedule_params;
pub use shrink::shrink;
pub use templates::template_corpus;
