//! Delta-debugging shrinker for disagreeing programs.
//!
//! Given a program on which some failing predicate holds (normally
//! "the simulator observed an outcome outside the allowed set", see
//! [`crate::harness::is_unsound`]), `shrink` greedily removes program
//! structure while the predicate keeps holding:
//!
//! 1. **Drop a whole thread** (never below one — the compiler refuses
//!    empty programs).
//! 2. **Drop a single instruction.** Earlier `JumpIfZero` skips whose
//!    region covers the dropped index are shortened by one so the
//!    structured-`if` encoding stays well-formed.
//! 3. **Demote an operation class to `Data`**, isolating which
//!    relaxed-atomic class the disagreement actually needs.
//!
//! Passes run to a fixpoint; every candidate is re-checked against the
//! predicate before being accepted, so the result is a locally minimal
//! program that still reproduces the disagreement. The predicate is
//! expected to be deterministic (the whole harness is), which keeps
//! shrinking deterministic too.

use drfrlx_core::program::{Instr, Program, Thread};

/// Shrink `p` while `failing` keeps returning `true`.
///
/// Returns `p` unchanged if the predicate does not hold on it (nothing
/// to shrink), otherwise a locally minimal failing program.
pub fn shrink(p: &Program, failing: &dyn Fn(&Program) -> bool) -> Program {
    if !failing(p) {
        return p.clone();
    }
    let mut cur = p.clone();
    loop {
        let mut progressed = false;

        // Pass 1: drop whole threads.
        while cur.threads().len() > 1 {
            let mut dropped = false;
            for t in 0..cur.threads().len() {
                let mut threads = cur.threads().to_vec();
                threads.remove(t);
                let cand = cur.with_threads(threads);
                if failing(&cand) {
                    cur = cand;
                    dropped = true;
                    progressed = true;
                    break;
                }
            }
            if !dropped {
                break;
            }
        }

        // Pass 2: drop single instructions.
        'instrs: loop {
            for t in 0..cur.threads().len() {
                for i in 0..cur.threads()[t].instrs.len() {
                    let mut threads = cur.threads().to_vec();
                    threads[t] = drop_instr(&threads[t], i);
                    let cand = cur.with_threads(threads);
                    if failing(&cand) {
                        cur = cand;
                        progressed = true;
                        continue 'instrs;
                    }
                }
            }
            break;
        }

        // Pass 3: demote classes to Data.
        'classes: loop {
            for t in 0..cur.threads().len() {
                for i in 0..cur.threads()[t].instrs.len() {
                    let Some(cand) = demote_class(&cur, t, i) else { continue };
                    if failing(&cand) {
                        cur = cand;
                        progressed = true;
                        continue 'classes;
                    }
                }
            }
            break;
        }

        if !progressed {
            return cur;
        }
    }
}

/// `t` without instruction `i`, with earlier `JumpIfZero` skips whose
/// region `(j, j+skip]` covered `i` shortened by one.
fn drop_instr(t: &Thread, i: usize) -> Thread {
    let mut instrs = Vec::with_capacity(t.instrs.len().saturating_sub(1));
    for (j, ins) in t.instrs.iter().enumerate() {
        if j == i {
            continue;
        }
        let mut ins = ins.clone();
        if let Instr::JumpIfZero { skip, .. } = &mut ins {
            if j < i && i <= j + *skip {
                *skip -= 1;
            }
        }
        instrs.push(ins);
    }
    Thread { instrs }
}

/// A copy of `p` with instruction `(t, i)`'s class set to `Data`, or
/// `None` when it has no class or is already `Data`.
fn demote_class(p: &Program, t: usize, i: usize) -> Option<Program> {
    use drfrlx_core::OpClass;
    let mut threads = p.threads().to_vec();
    let class = match &mut threads[t].instrs[i] {
        Instr::Load { class, .. } | Instr::Store { class, .. } | Instr::Rmw { class, .. } => class,
        _ => return None,
    };
    if *class == OpClass::Data {
        return None;
    }
    *class = OpClass::Data;
    Some(p.with_threads(threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::prelude::*;
    use drfrlx_core::OpClass;

    /// Predicate: some thread stores the value 42 somewhere.
    fn stores_42(p: &Program) -> bool {
        p.threads()
            .iter()
            .flat_map(|t| &t.instrs)
            .any(|i| matches!(i, Instr::Store { val, .. } if *val == Expr::Const(42)))
    }

    use drfrlx_core::program::Instr;

    #[test]
    fn shrinks_to_the_single_relevant_instruction() {
        let mut p = Program::new("padded");
        {
            let mut t = p.thread();
            t.store(OpClass::Paired, "x", 1);
            let r = t.load(OpClass::Paired, "y");
            t.observe(r);
            t.store(OpClass::Unpaired, "z", 42);
        }
        {
            let mut t = p.thread();
            t.store(OpClass::Commutative, "y", 7);
        }
        let p = p.build();
        let s = shrink(&p, &stores_42);
        assert!(stores_42(&s));
        assert_eq!(s.threads().len(), 1);
        assert_eq!(s.threads()[0].instrs.len(), 1);
        // Pass 3 demoted the surviving store's class to Data.
        assert!(matches!(&s.threads()[0].instrs[0], Instr::Store { class: OpClass::Data, .. }));
    }

    #[test]
    fn non_failing_program_is_returned_unchanged() {
        let mut p = Program::new("clean");
        p.thread().store(OpClass::Data, "x", 1);
        let p = p.build();
        let s = shrink(&p, &stores_42);
        assert_eq!(s.threads(), p.threads());
    }

    #[test]
    fn dropping_inside_an_if_body_fixes_the_skip() {
        let src = "litmus t\ninit { f = 1 }\nthread a {\n  r = load.paired f;\n  if r { store.data x 1; store.data y 42; }\n}";
        let p = drfrlx_core::parse::parse(src).unwrap();
        // Force the shrinker to keep the `if` and the 42-store but let
        // it drop the x-store inside the body.
        let keeps = |q: &Program| {
            stores_42(q)
                && q.threads()
                    .iter()
                    .flat_map(|t| &t.instrs)
                    .any(|i| matches!(i, Instr::JumpIfZero { .. }))
        };
        let s = shrink(&p, &keeps);
        assert!(keeps(&s));
        // Every surviving jump must still land inside its thread.
        for t in s.threads() {
            for (j, ins) in t.instrs.iter().enumerate() {
                if let Instr::JumpIfZero { skip, .. } = ins {
                    assert!(j + 1 + skip <= t.instrs.len(), "skip out of bounds");
                }
            }
        }
        // And the shrunk program still enumerates: the guarded store
        // executes iff f != 0, which it is.
        let execs = enumerate_sc(&s, &EnumLimits::default()).unwrap();
        assert!(!execs.is_empty());
    }

    #[test]
    fn never_drops_below_one_thread() {
        let mut p = Program::new("two");
        p.thread().store(OpClass::Data, "x", 42);
        p.thread().store(OpClass::Data, "y", 42);
        let p = p.build();
        let s = shrink(&p, &|_| true);
        assert_eq!(s.threads().len(), 1);
    }
}
