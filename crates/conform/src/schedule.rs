//! Deterministic schedule diversification.
//!
//! One simulator run realizes one interleaving; conformance needs
//! many. Schedule 0 is always the pristine platform (the exact timing
//! every committed artifact uses), and schedules `1..n` perturb the
//! knobs that move the interleaving without touching functional
//! semantics: per-context issue jitter ([`hsim_gpu::IssueJitter`]),
//! NoC hop latency and link bandwidth, L2 latency/occupancy, DRAM
//! latency, and the relaxed-atomic overlap window. Every derived
//! parameter is a pure function of `(seed, index)` via SplitMix64, so
//! the whole schedule family — and therefore the observed outcome set
//! — is reproducible and thread-count independent.

use drfrlx_workloads::util::SplitMix64;
use hsim_gpu::IssueJitter;
use hsim_sys::SysParams;

/// The `index`-th perturbed platform of the family rooted at `seed`.
///
/// Index 0 returns `base` unchanged; higher indices derive a
/// deterministic variant. Distinct seeds give distinct families.
pub fn schedule_params(base: &SysParams, seed: u64, index: usize) -> SysParams {
    let mut p = base.clone();
    if index == 0 {
        return p;
    }
    let mut rng = SplitMix64::new(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Issue jitter is the main interleaving lever. The ladder is
    // exponential: early indices perturb by a few cycles (fine
    // reorderings near the pristine timing), late indices by up to a
    // couple thousand — longer than a full memory round-trip, so the
    // launch-time jitter can stagger whole threads past each other and
    // reach coarse interleavings timing alone never produces.
    let scale = 4u64 << index.min(9);
    let max_delay = 1 + rng.below(scale);
    p.engine.jitter = Some(IssueJitter { seed: rng.next_u64(), max_delay });
    // Memory-system contention knobs shift which accesses collide.
    p.memsys.noc.hop_latency = [1, 2, 4, 10][rng.below(4) as usize];
    p.memsys.noc.cycles_per_flit = 1 + rng.below(2);
    p.memsys.l2_latency = [10, 20, 40, 60][rng.below(4) as usize];
    p.memsys.l2_occupancy = 1 + rng.below(16);
    p.memsys.dram.latency = [100, 160, 320][rng.below(3) as usize];
    p.engine.max_outstanding_atomics = 1 + rng.below(8) as usize;
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_zero_is_pristine() {
        let base = SysParams::integrated();
        let p = schedule_params(&base, 1, 0);
        assert_eq!(p.engine.jitter, base.engine.jitter);
        assert_eq!(p.memsys.noc.hop_latency, base.memsys.noc.hop_latency);
    }

    #[test]
    fn same_seed_same_index_is_identical() {
        let base = SysParams::integrated();
        let a = schedule_params(&base, 7, 3);
        let b = schedule_params(&base, 7, 3);
        assert_eq!(a.engine.jitter, b.engine.jitter);
        assert_eq!(a.memsys.noc.hop_latency, b.memsys.noc.hop_latency);
        assert_eq!(a.memsys.l2_latency, b.memsys.l2_latency);
    }

    #[test]
    fn indices_diversify_jitter() {
        let base = SysParams::integrated();
        let seeds: Vec<_> =
            (1..6).map(|i| schedule_params(&base, 1, i).engine.jitter.unwrap().seed).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "jitter seeds should differ across indices");
    }
}
