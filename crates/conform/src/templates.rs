//! The template conformance corpus: richer instances of the shared
//! [`drfrlx_bridge::templates`] emitters, sized between the Table-1
//! litmus programs (one instruction per shape point) and the
//! grid-scale micro workloads (thousands of threads).
//!
//! The Table-1 corpus ([`crate::harness::table1_corpus`]) pins the
//! paper's exact listings; this corpus turns the *same* template
//! knobs the micro workloads use — bounded polls, think delays,
//! multiple sweeps, seqlock retry loops, and the scratch + barrier
//! histogram privatisation — so the conformance loop exercises every
//! instruction family the pipeline can lower ([`Instr::Think`],
//! [`Instr::Barrier`], scratch) end-to-end: template → `Program` →
//! [`ProgramKernel::litmus`] → nine protocol × model configurations →
//! axiomatic oracle.
//!
//! Programs with a barrier or scratch accesses lower to a single
//! block (see [`ProgramKernel::litmus`]); everything else keeps the
//! one-thread-per-block litmus layout.
//!
//! [`Instr::Think`]: drfrlx_core::program::Instr::Think
//! [`Instr::Barrier`]: drfrlx_core::program::Instr::Barrier
//! [`ProgramKernel::litmus`]: drfrlx_bridge::ProgramKernel::litmus

use drfrlx_bridge::templates::{
    event_counter, flags, hist, ref_counter, seqlock, split_counter, work_queue,
};
use drfrlx_core::program::Program;
use drfrlx_core::OpClass;

/// Work queue whose producer publishes by *bumping* the occupancy
/// (the micro family's fetch-add publish) instead of storing 1; the
/// consumer polls unpaired and re-checks paired, as in Listing 1.
pub fn work_queue_fadd_publish() -> Program {
    let mut p = Program::new("tmpl_work_queue_fadd");
    {
        let mut t = p.thread();
        work_queue::producer(
            &mut t,
            "task",
            7,
            &work_queue::Publish::Fadd(OpClass::Paired, "occupancy".into()),
        );
    }
    {
        let mut t = p.thread();
        work_queue::consumer(
            &mut t,
            &[(OpClass::Unpaired, "occupancy".into())],
            Some((OpClass::Paired, "occupancy".into())),
            "task",
        );
    }
    p.build()
}

/// Event counter with three workers of distinct amounts — the main
/// thread joins through three paired flags before reading the bin.
pub fn event_counter_three_workers() -> Program {
    let mut p = Program::new("tmpl_event_counter3");
    for (amount, done) in [(1, "done0"), (2, "done1"), (4, "done2")] {
        let mut t = p.thread();
        event_counter::worker(
            &mut t,
            &event_counter::Worker {
                bin_class: OpClass::Commutative,
                op: drfrlx_core::RmwOp::FetchAdd,
                amount,
                observe: false,
                done: Some((OpClass::Paired, done.into())),
            },
        );
    }
    {
        let mut t = p.thread();
        event_counter::main(
            &mut t,
            &[
                (OpClass::Paired, "done0".into()),
                (OpClass::Paired, "done1".into()),
                (OpClass::Paired, "done2".into()),
            ],
            OpClass::Data,
        );
    }
    p.build()
}

/// Flags at micro shape: a worker that polls twice with think cycles
/// between iterations and exits through the fetch-add handshake, and
/// a main thread that delays, joins, and reads `dirty` under guard.
pub fn flags_polling_worker() -> Program {
    let mut p = Program::new("tmpl_flags_poll2");
    let worker = flags::worker(
        &mut p,
        &flags::Worker {
            stop_class: OpClass::NonOrdering,
            dirty_class: OpClass::Commutative,
            polls: 2,
            think: 2,
            dirty_every: 1,
            last_poll_works: true,
            observe_poll: false,
            exit: flags::Exit::Fadd(OpClass::Paired),
        },
    );
    p.push_thread(worker);
    let main = flags::main(
        &mut p,
        &flags::Main {
            delay: Some(3),
            stop_class: OpClass::NonOrdering,
            exited_class: OpClass::Paired,
            join_polls: 2,
            join_target: 1,
            tail: flags::Tail::GuardedObserveDirty(OpClass::NonOrdering),
        },
    );
    p.push_thread(main);
    p.build()
}

/// Split counter at micro shape: two quantum updaters and a reader
/// doing two sweeps separated by think cycles, publishing the final
/// sum into memory as the grid kernels do. (Quantum ops stay few:
/// the programmer-centric checker's quantum transformation explores
/// `|domain|^k` executions.)
pub fn split_counter_two_sweeps() -> Program {
    let shape = split_counter::Shape {
        counters: vec!["c0".into(), "c1".into()],
        increments: 1,
        sweeps: 2,
        think_between_sweeps: 2,
        update_class: OpClass::Quantum,
        read_class: OpClass::Quantum,
    };
    let mut p = Program::new("tmpl_split_counter_sweeps");
    for c in ["c0", "c1"] {
        let mut t = p.thread();
        split_counter::updater(&mut t, &shape, c);
    }
    {
        let mut t = p.thread();
        split_counter::reader(&mut t, &shape, Some("sum"));
    }
    p.build()
}

/// Reference counter at micro shape: two visitors with think cycles
/// between the increment and the decrement — the grid kernels' work
/// phase. (One object: every extra quantum RMW multiplies the
/// checker's quantum transformation by `|domain|`.)
pub fn ref_counter_think() -> Program {
    let shape = ref_counter::Shape {
        count_class: OpClass::Quantum,
        mark_class: OpClass::Commutative,
        think: 2,
    };
    let objs =
        [ref_counter::Obj { count: "refcount".into(), mark: "marked".into(), mark_value: 1 }];
    let mut p = Program::new("tmpl_ref_counter_think");
    for _ in 0..2 {
        let mut t = p.thread();
        ref_counter::visit(&mut t, &shape, &objs);
    }
    p.build()
}

/// Seqlock at micro shape: the writer runs two lock/publish rounds
/// over two payload words, and the reader retries up to twice before
/// giving up, observing only sequence-checked values.
pub fn seqlock_retry_reader() -> Program {
    let payloads: Vec<String> = vec!["d0".into(), "d1".into()];
    let mut p = Program::new("tmpl_seqlock_retry");
    {
        let mut t = p.thread();
        seqlock::writer(
            &mut t,
            &seqlock::Writer {
                lock: true,
                lock_class: OpClass::Paired,
                unlock_class: OpClass::Paired,
                payload_class: OpClass::Speculative,
                payloads: payloads.clone(),
                writes: 2,
            },
            |w, i| (10 * (w + 1) + i) as i64,
        );
    }
    let reader = seqlock::reader(
        &mut p,
        &seqlock::Reader {
            seq0_class: OpClass::Paired,
            seq1_class: OpClass::Paired,
            payload_class: OpClass::Speculative,
            payloads,
            reads: 1,
            max_retries: 2,
            tail: seqlock::Tail::ObserveChecked,
        },
    );
    p.push_thread(reader);
    p.build()
}

/// Scratch-privatised histogram: two threads in one block count two
/// inputs each into private scratch rows, rendezvous at the barrier,
/// then each merges its owned bin into global memory — the only
/// corpus program lowering [`Instr::Think`]-free scratch + barrier
/// code, and the end-to-end proof that the enumerator's rendezvous
/// and shared-scratch semantics agree with the engine's.
///
/// [`Instr::Think`]: drfrlx_core::program::Instr::Think
pub fn hist_scratch_barrier() -> Program {
    let shape = hist::Shape { bins: 2, per_thread: 2, tpb: 2, merge_class: OpClass::Commutative };
    let bin_of = |_b: usize, t: usize, i: usize| (t + i) % 2;
    let mut p = Program::new("tmpl_hist_scratch");
    for thread in 0..shape.tpb {
        let t = hist::local_thread(&mut p, &shape, 0, thread, &bin_of);
        p.push_thread(t);
    }
    // Every input counts: bin_of decides the bin, not the value.
    for i in 0..shape.tpb * shape.per_thread {
        p.set_init(&format!("i{i}"), 1 + i as i64);
    }
    p.build()
}

/// The template corpus as `(name, program)` pairs, in report order.
pub fn template_corpus() -> Vec<(String, Program)> {
    [
        work_queue_fadd_publish(),
        event_counter_three_workers(),
        flags_polling_worker(),
        split_counter_two_sweeps(),
        ref_counter_think(),
        seqlock_retry_reader(),
        hist_scratch_barrier(),
    ]
    .into_iter()
    .map(|p| (p.name().to_string(), p))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::{check_program, MemoryModel};

    /// Every template-corpus program carries the correct labels: the
    /// programmer-centric DRFrlx model must find it race-free — the
    /// same verdict the Table-1 instances of these templates get.
    #[test]
    fn template_corpus_is_drfrlx_race_free() {
        for (name, p) in template_corpus() {
            let r = check_program(&p, MemoryModel::Drfrlx);
            assert!(
                r.is_race_free(),
                "{name} must be race-free under DRFrlx; found: {:?}",
                r.races.iter().map(|f| &f.description).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn hist_program_uses_scratch_and_barrier() {
        use drfrlx_core::program::Instr;
        let p = hist_scratch_barrier();
        let has = |f: &dyn Fn(&Instr) -> bool| p.threads().iter().any(|t| t.instrs.iter().any(f));
        assert!(has(&|i| matches!(i, Instr::Barrier)));
        assert!(has(&|i| matches!(i, Instr::ScratchLoad { .. })));
        assert!(has(&|i| matches!(i, Instr::ScratchStore { .. })));
    }
}
