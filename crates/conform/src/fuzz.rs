//! Seeded random litmus-program generation.
//!
//! The generator is a pure function of its seed (SplitMix64, same RNG
//! as the workload suite): `generate(s)` always returns the same
//! program, so every fuzz finding is reproducible from its seed alone.
//! Programs are kept small enough for the axiomatic oracle to
//! enumerate exhaustively — 2–3 threads, 1–3 locations, at most 7
//! memory operations — while mixing all five relaxed-atomic classes
//! plus paired and data accesses, loads feeding conditionals and
//! stores, RMWs (including CAS), and non-zero initial values.
//!
//! All nine RMW modify functions are generated, including
//! `FetchMin`/`FetchMax`: the simulator orders min/max signed, exactly
//! like the litmus `i64` domain, so every modify function computes the
//! same bit pattern on both sides of the conformance check.

use drfrlx_core::program::{Program, Reg, RmwOp};
use drfrlx_core::OpClass;
use drfrlx_workloads::util::SplitMix64;

/// Classes the fuzzer draws from: the five relaxed-atomic classes of
/// the paper plus the ordinary paired/data baseline.
const CLASSES: [OpClass; 7] = [
    OpClass::Data,
    OpClass::Paired,
    OpClass::Unpaired,
    OpClass::Commutative,
    OpClass::NonOrdering,
    OpClass::Quantum,
    OpClass::Speculative,
];

/// RMW modify functions the generator draws from — every non-CAS
/// function, min/max included (both sides order them signed).
const RMWS: [RmwOp; 8] = [
    RmwOp::FetchAdd,
    RmwOp::FetchSub,
    RmwOp::FetchAnd,
    RmwOp::FetchOr,
    RmwOp::FetchXor,
    RmwOp::FetchMin,
    RmwOp::FetchMax,
    RmwOp::Exchange,
];

const LOC_NAMES: [&str; 3] = ["x", "y", "z"];

/// Generate the litmus program identified by `seed`.
pub fn generate(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed.wrapping_mul(0xD1B5_4A32_D192_ED03).wrapping_add(1));
    let nthreads = 2 + rng.below(2) as usize;
    let nlocs = 1 + rng.below(3) as usize;
    let mut budget = 4 + rng.below(4) as usize; // total memory ops

    let mut p = Program::new(format!("fuzz_{seed}"));
    // Occasionally start a location at a non-zero value so CAS and
    // conditionals have something to bite on.
    for loc in LOC_NAMES.iter().take(nlocs) {
        if rng.below(4) == 0 {
            p.set_init(loc, 1 + rng.below(2) as i64);
        }
    }

    // Give every thread at least one op, then spread the rest.
    let mut per_thread = vec![1usize; nthreads];
    budget = budget.saturating_sub(nthreads);
    for _ in 0..budget {
        per_thread[rng.below(nthreads as u64) as usize] += 1;
    }

    for ops in per_thread {
        let mut t = p.thread();
        let mut loaded: Option<Reg> = None;
        for _ in 0..ops {
            let class = CLASSES[rng.below(CLASSES.len() as u64) as usize];
            let loc = LOC_NAMES[rng.below(nlocs as u64) as usize];
            match rng.below(5) {
                0 | 1 => {
                    let r = t.load(class, loc);
                    t.observe(r);
                    loaded = Some(r);
                }
                2 => {
                    // Store a constant, or forward a loaded value to
                    // create cross-location data flow.
                    match loaded {
                        Some(r) if rng.below(2) == 0 => {
                            t.store(class, loc, r);
                        }
                        _ => {
                            t.store(class, loc, rng.below(3) as i64);
                        }
                    }
                }
                3 => {
                    let op = RMWS[rng.below(RMWS.len() as u64) as usize];
                    let r = t.rmw(class, loc, op, 1 + rng.below(2) as i64);
                    t.observe(r);
                    loaded = Some(r);
                }
                _ => {
                    let expected = rng.below(3) as i64;
                    let r = t.cas(class, loc, expected, 1 + rng.below(3) as i64);
                    t.observe(r);
                    loaded = Some(r);
                }
            }
            // Occasionally guard a store on the last loaded value,
            // exercising control dependencies and JumpIfZero lowering.
            if let Some(r) = loaded {
                if rng.below(5) == 0 {
                    let gclass = CLASSES[rng.below(CLASSES.len() as u64) as usize];
                    let gloc = LOC_NAMES[rng.below(nlocs as u64) as usize];
                    let v = rng.below(3) as i64;
                    if rng.below(2) == 0 {
                        t.if_nz(r, |t| {
                            t.store(gclass, gloc, v);
                        });
                    } else {
                        t.if_z(r, |t| {
                            t.store(gclass, gloc, v);
                        });
                    }
                }
            }
        }
    }
    p.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::program::Instr;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..10 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
        }
    }

    #[test]
    fn programs_stay_enumerable_and_draw_every_rmw() {
        let mut seen_min_max = false;
        for seed in 0..200 {
            let p = generate(seed);
            assert!(!p.threads().is_empty());
            assert!(p.threads().len() <= 3);
            // Guarded stores can push past the raw budget a little,
            // but the op count stays firmly oracle-enumerable.
            assert!(p.memory_op_count() <= 12, "seed {seed}: {}", p.memory_op_count());
            for t in p.threads() {
                for i in &t.instrs {
                    if let Instr::Rmw { op, .. } = i {
                        seen_min_max |= matches!(op, RmwOp::FetchMin | RmwOp::FetchMax);
                    }
                }
            }
        }
        assert!(seen_min_max, "200 seeds never generated a min/max RMW");
    }

    #[test]
    fn seeds_diversify_shapes() {
        let shapes: Vec<String> = (0..20).map(|s| format!("{:?}", generate(s))).collect();
        let mut uniq = shapes.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() >= 15, "only {} distinct programs in 20 seeds", uniq.len());
    }
}
