//! The conformance harness: run a compiled litmus kernel across the
//! configuration × schedule matrix and compare the observed outcome
//! set against the axiomatic oracle.
//!
//! ## Soundness vs coverage
//!
//! * **Soundness** (the verdict): `observed ⊆ allowed` per
//!   configuration. A violation means the simulator produced a final
//!   state no SC interleaving of the program can produce — a simulator
//!   bug, since every DRF-family model admits at least the SC
//!   outcomes and the engine's functional semantics are
//!   issue-atomic.
//! * **Coverage** (the diagnostic): `|observed ∩ allowed| / |allowed|`
//!   — the fraction of allowed outcomes some schedule actually
//!   witnessed. Low coverage never fails a test by itself; it flags
//!   that the schedule family is too tame to exercise the program.
//!
//! Everything here is deterministic: jobs are laid out config-major ×
//! schedule-minor, `run_matrix` returns reports in job order
//! regardless of worker count, outcome sets are `BTreeSet`s, and the
//! oracle's shard set depends only on the program.

use crate::compile::{compile, CompiledLitmus};
use crate::outcome::{allowed_outcomes, Outcome};
use crate::schedule::schedule_params;
use drfrlx_core::exec::{EnumError, EnumLimits, EnumStats};
use drfrlx_core::program::Program;
use drfrlx_core::{MemoryModel, SystemConfig};
use drfrlx_litmus::{all_tests, Category};
use hsim_sys::{run_matrix, RunReport, SimJob, SysParams};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Options for one conformance run.
#[derive(Debug, Clone)]
pub struct ConformOptions {
    /// Configurations to simulate (default: all nine).
    pub configs: Vec<SystemConfig>,
    /// Schedules per configuration (index 0 is always the pristine
    /// platform).
    pub schedules: usize,
    /// Root seed of the schedule family.
    pub seed: u64,
    /// Worker threads for both the simulation matrix and the oracle.
    pub threads: usize,
    /// Oracle enumeration limits.
    pub limits: EnumLimits,
}

impl Default for ConformOptions {
    fn default() -> Self {
        ConformOptions {
            configs: SystemConfig::extended().to_vec(),
            schedules: 128,
            seed: 1,
            threads: 1,
            limits: EnumLimits::default(),
        }
    }
}

/// Observed outcomes and soundness verdict for one configuration.
#[derive(Debug, Clone)]
pub struct ConfigVerdict {
    /// The protocol × model cell.
    pub config: SystemConfig,
    /// Every final state some schedule produced.
    pub observed: BTreeSet<Outcome>,
    /// `observed \ allowed` — non-empty means the simulator is
    /// unsound for this program under this configuration.
    pub violations: Vec<Outcome>,
}

/// The full conformance result for one program.
#[derive(Debug, Clone)]
pub struct ConformReport {
    /// Program name.
    pub name: String,
    /// The oracle's allowed (SC) outcome set.
    pub allowed: BTreeSet<Outcome>,
    /// Oracle enumeration statistics.
    pub oracle_stats: EnumStats,
    /// One verdict per configuration, in option order.
    pub verdicts: Vec<ConfigVerdict>,
}

impl ConformReport {
    /// No configuration observed an outcome outside the allowed set.
    pub fn sound(&self) -> bool {
        self.verdicts.iter().all(|v| v.violations.is_empty())
    }

    /// Union of observed outcomes across every configuration.
    pub fn observed_union(&self) -> BTreeSet<Outcome> {
        let mut u = BTreeSet::new();
        for v in &self.verdicts {
            u.extend(v.observed.iter().cloned());
        }
        u
    }

    /// Allowed outcomes witnessed by at least one configuration,
    /// over the allowed count (1.0 when the allowed set is empty).
    pub fn coverage(&self) -> f64 {
        Self::ratio(&self.observed_union(), &self.allowed)
    }

    /// Coverage restricted to configurations running `model`.
    pub fn coverage_under(&self, model: MemoryModel) -> f64 {
        let mut u = BTreeSet::new();
        for v in self.verdicts.iter().filter(|v| v.config.model == model) {
            u.extend(v.observed.iter().cloned());
        }
        Self::ratio(&u, &self.allowed)
    }

    /// Allowed outcomes witnessed (across all configurations), as a
    /// count — the coverage numerator.
    pub fn witnessed(&self) -> usize {
        self.observed_union().intersection(&self.allowed).count()
    }

    /// The coverage numerator restricted to `model` configurations.
    pub fn witnessed_under(&self, model: MemoryModel) -> usize {
        let mut u = BTreeSet::new();
        for v in self.verdicts.iter().filter(|v| v.config.model == model) {
            u.extend(v.observed.iter().cloned());
        }
        u.intersection(&self.allowed).count()
    }

    fn ratio(observed: &BTreeSet<Outcome>, allowed: &BTreeSet<Outcome>) -> f64 {
        if allowed.is_empty() {
            return 1.0;
        }
        observed.intersection(allowed).count() as f64 / allowed.len() as f64
    }
}

/// The simulation jobs of one conformance run: config-major ×
/// schedule-minor, in `opts.configs` order. [`report_from_runs`]
/// expects reports in exactly this order.
pub fn conform_jobs(shape: &CompiledLitmus, opts: &ConformOptions) -> Vec<SimJob> {
    let kernel: Arc<dyn hsim_gpu::Kernel> = Arc::new(shape.clone());
    let base = SysParams::integrated();
    let name = shape.program.name();
    let mut jobs = Vec::with_capacity(opts.configs.len() * opts.schedules.max(1));
    for &config in &opts.configs {
        for s in 0..opts.schedules.max(1) {
            let mut job = SimJob::new(
                format!("{name}:{config}:s{s}"),
                Arc::clone(&kernel),
                config,
                &schedule_params(&base, opts.seed, s),
            );
            job.validate = false;
            jobs.push(job);
        }
    }
    jobs
}

/// Fold simulation reports (in [`conform_jobs`] order) and the
/// axiomatic oracle into a [`ConformReport`].
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] when the oracle cannot
/// enumerate the program within `opts.limits`.
pub fn report_from_runs(
    shape: &CompiledLitmus,
    opts: &ConformOptions,
    reports: &[RunReport],
) -> Result<ConformReport, EnumError> {
    let (allowed, oracle_stats) = allowed_outcomes(shape, &opts.limits, opts.threads)?;
    let per = opts.schedules.max(1);
    let verdicts = opts
        .configs
        .iter()
        .enumerate()
        .map(|(ci, &config)| {
            let observed: BTreeSet<Outcome> = reports[ci * per..(ci + 1) * per]
                .iter()
                .map(|r| Outcome::from_sim_memory(shape, &r.memory))
                .collect();
            let violations = observed.difference(&allowed).cloned().collect();
            ConfigVerdict { config, observed, violations }
        })
        .collect();
    Ok(ConformReport { name: shape.program.name().to_string(), allowed, oracle_stats, verdicts })
}

/// Run the full conformance loop for one program.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] when the oracle cannot
/// enumerate the program within `opts.limits` (the simulation side ran
/// by then, but without an allowed set there is no verdict).
///
/// # Panics
///
/// Panics if the program has no threads.
pub fn check_conformance(p: &Program, opts: &ConformOptions) -> Result<ConformReport, EnumError> {
    let shape = compile(p);
    let jobs = conform_jobs(&shape, opts);
    let reports = run_matrix(&jobs, opts.threads);
    report_from_runs(&shape, opts, &reports)
}

/// Is `p` *demonstrably* unsound under `opts` — i.e. did some
/// configuration observe a disallowed outcome? Oracle overflow counts
/// as "not demonstrated" (the shrinker predicate must only accept
/// programs whose disagreement reproduces).
pub fn is_unsound(p: &Program, opts: &ConformOptions) -> bool {
    !p.threads().is_empty() && matches!(check_conformance(p, opts), Ok(report) if !report.sound())
}

/// The Table-1 use-case corpus as `(name, program)` pairs.
pub fn table1_corpus() -> Vec<(String, Program)> {
    all_tests()
        .into_iter()
        .filter(|t| t.category == Category::UseCase)
        .map(|t| (t.name.to_string(), (t.build)()))
        .collect()
}

/// Conformance over the whole Table-1 corpus, one report per test.
///
/// # Errors
///
/// Propagates the first oracle enumeration failure.
pub fn run_corpus(opts: &ConformOptions) -> Result<Vec<ConformReport>, EnumError> {
    table1_corpus().iter().map(|(_, p)| check_conformance(p, opts)).collect()
}

/// Conformance over the [template corpus](crate::templates), one
/// report per program.
///
/// # Errors
///
/// Propagates the first oracle enumeration failure.
pub fn run_template_corpus(opts: &ConformOptions) -> Result<Vec<ConformReport>, EnumError> {
    crate::templates::template_corpus().iter().map(|(_, p)| check_conformance(p, opts)).collect()
}

/// Render corpus reports as the stable text table committed to
/// `results/conform.txt`.
pub fn render_corpus(reports: &[ConformReport], opts: &ConformOptions) -> String {
    let mut out = String::new();
    out.push_str("Conformance: litmus corpus vs simulator (observed ⊆ allowed)\n");
    let configs: Vec<&str> = opts.configs.iter().map(|c| c.abbrev()).collect();
    out.push_str(&format!(
        "configs: {}   schedules/config: {}   seed: {}\n\n",
        configs.join(" "),
        opts.schedules,
        opts.seed
    ));
    out.push_str(&format!(
        "{:<26} {:>7} {:>9} {:>9} {:>9}  verdict\n",
        "test", "allowed", "observed", "coverage", "drf0-cov"
    ));
    let (mut tot_allowed, mut tot_wit, mut tot_wit0) = (0usize, 0usize, 0usize);
    let mut all_sound = true;
    for r in reports {
        let verdict = if r.sound() { "SOUND" } else { "VIOLATION" };
        all_sound &= r.sound();
        tot_allowed += r.allowed.len();
        tot_wit += r.witnessed();
        tot_wit0 += r.witnessed_under(MemoryModel::Drf0);
        out.push_str(&format!(
            "{:<26} {:>7} {:>9} {:>9.3} {:>9.3}  {}\n",
            r.name,
            r.allowed.len(),
            r.observed_union().len(),
            r.coverage(),
            r.coverage_under(MemoryModel::Drf0),
            verdict
        ));
    }
    let agg = |w: usize| if tot_allowed == 0 { 1.0 } else { w as f64 / tot_allowed as f64 };
    out.push_str(&format!(
        "{:<26} {:>7} {:>9} {:>9.3} {:>9.3}  {}\n",
        "total",
        tot_allowed,
        tot_wit,
        agg(tot_wit),
        agg(tot_wit0),
        if all_sound { "SOUND" } else { "VIOLATION" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::OpClass;

    fn quick_opts() -> ConformOptions {
        ConformOptions {
            configs: SystemConfig::all().to_vec(),
            schedules: 4,
            seed: 1,
            threads: 1,
            limits: EnumLimits::default(),
        }
    }

    #[test]
    fn commutative_counter_conforms() {
        let mut p = Program::new("inc2");
        p.thread().rmw(OpClass::Commutative, "c", drfrlx_core::RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Commutative, "c", drfrlx_core::RmwOp::FetchAdd, 1);
        let p = p.build();
        let r = check_conformance(&p, &quick_opts()).unwrap();
        assert!(r.sound(), "two relaxed increments must stay in the SC set");
        // Final memory is always 2; the old values distinguish orders.
        assert!(r.coverage() > 0.0);
    }

    #[test]
    fn corpus_has_the_seven_table1_tests() {
        let names: Vec<String> = table1_corpus().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 7);
        assert!(names.contains(&"work_queue".to_string()));
        assert!(names.contains(&"seqlock".to_string()));
    }

    #[test]
    fn render_is_stable_shape() {
        let opts = quick_opts();
        let mut p = Program::new("one");
        p.thread().store(OpClass::Data, "x", 1);
        let p = p.build();
        let r = check_conformance(&p, &opts).unwrap();
        let text = render_corpus(&[r], &opts);
        assert!(text.contains("one"));
        assert!(text.contains("SOUND"));
        assert!(text.contains("total"));
    }
}
