//! The conformance harness: run a compiled litmus kernel across the
//! configuration × schedule matrix and compare the observed outcome
//! set against the axiomatic oracle.
//!
//! ## Soundness vs coverage
//!
//! * **Soundness** (the verdict): `observed ⊆ allowed` per
//!   configuration. A violation means the simulator produced a final
//!   state no SC interleaving of the program can produce — a simulator
//!   bug, since every DRF-family model admits at least the SC
//!   outcomes and the engine's functional semantics are
//!   issue-atomic.
//! * **Coverage** (the diagnostic): `|observed ∩ allowed| / |allowed|`
//!   — the fraction of allowed outcomes some schedule actually
//!   witnessed. Low coverage never fails a test by itself; it flags
//!   that the schedule family is too tame to exercise the program.
//!
//! Everything here is deterministic: jobs are laid out config-major ×
//! schedule-minor, `run_matrix` returns reports in job order
//! regardless of worker count, outcome sets are `BTreeSet`s, and the
//! oracle's shard set depends only on the program.

use crate::compile::{compile, CompiledLitmus};
use crate::outcome::{allowed_outcomes, Outcome};
use crate::schedule::schedule_params;
use drfrlx_core::exec::{EnumError, EnumLimits, EnumStats};
use drfrlx_core::program::Program;
use drfrlx_core::resilience::{Budget, FaultPlan, RunStatus};
use drfrlx_core::{MemoryModel, SystemConfig};
use drfrlx_litmus::{all_tests, Category};
use hsim_sys::{run_matrix, run_matrix_resilient, MatrixResilience, RunReport, SimJob, SysParams};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Options for one conformance run.
#[derive(Debug, Clone)]
pub struct ConformOptions {
    /// Configurations to simulate (default: all nine).
    pub configs: Vec<SystemConfig>,
    /// Schedules per configuration (index 0 is always the pristine
    /// platform).
    pub schedules: usize,
    /// Root seed of the schedule family.
    pub seed: u64,
    /// Worker threads for both the simulation matrix and the oracle.
    pub threads: usize,
    /// Oracle enumeration limits.
    pub limits: EnumLimits,
}

impl Default for ConformOptions {
    fn default() -> Self {
        ConformOptions {
            configs: SystemConfig::extended().to_vec(),
            schedules: 128,
            seed: 1,
            threads: 1,
            limits: EnumLimits::default(),
        }
    }
}

/// Observed outcomes and soundness verdict for one configuration.
#[derive(Debug, Clone)]
pub struct ConfigVerdict {
    /// The protocol × model cell.
    pub config: SystemConfig,
    /// Every final state some schedule produced.
    pub observed: BTreeSet<Outcome>,
    /// `observed \ allowed` — non-empty means the simulator is
    /// unsound for this program under this configuration.
    pub violations: Vec<Outcome>,
}

/// The full conformance result for one program.
#[derive(Debug, Clone)]
pub struct ConformReport {
    /// Program name.
    pub name: String,
    /// The oracle's allowed (SC) outcome set.
    pub allowed: BTreeSet<Outcome>,
    /// Oracle enumeration statistics.
    pub oracle_stats: EnumStats,
    /// One verdict per configuration, in option order.
    pub verdicts: Vec<ConfigVerdict>,
}

impl ConformReport {
    /// No configuration observed an outcome outside the allowed set.
    pub fn sound(&self) -> bool {
        self.verdicts.iter().all(|v| v.violations.is_empty())
    }

    /// Union of observed outcomes across every configuration.
    pub fn observed_union(&self) -> BTreeSet<Outcome> {
        let mut u = BTreeSet::new();
        for v in &self.verdicts {
            u.extend(v.observed.iter().cloned());
        }
        u
    }

    /// Allowed outcomes witnessed by at least one configuration,
    /// over the allowed count (1.0 when the allowed set is empty).
    pub fn coverage(&self) -> f64 {
        Self::ratio(&self.observed_union(), &self.allowed)
    }

    /// Coverage restricted to configurations running `model`.
    pub fn coverage_under(&self, model: MemoryModel) -> f64 {
        let mut u = BTreeSet::new();
        for v in self.verdicts.iter().filter(|v| v.config.model == model) {
            u.extend(v.observed.iter().cloned());
        }
        Self::ratio(&u, &self.allowed)
    }

    /// Allowed outcomes witnessed (across all configurations), as a
    /// count — the coverage numerator.
    pub fn witnessed(&self) -> usize {
        self.observed_union().intersection(&self.allowed).count()
    }

    /// The coverage numerator restricted to `model` configurations.
    pub fn witnessed_under(&self, model: MemoryModel) -> usize {
        let mut u = BTreeSet::new();
        for v in self.verdicts.iter().filter(|v| v.config.model == model) {
            u.extend(v.observed.iter().cloned());
        }
        u.intersection(&self.allowed).count()
    }

    fn ratio(observed: &BTreeSet<Outcome>, allowed: &BTreeSet<Outcome>) -> f64 {
        if allowed.is_empty() {
            return 1.0;
        }
        observed.intersection(allowed).count() as f64 / allowed.len() as f64
    }
}

/// The simulation jobs of one conformance run: config-major ×
/// schedule-minor, in `opts.configs` order. [`report_from_runs`]
/// expects reports in exactly this order.
pub fn conform_jobs(shape: &CompiledLitmus, opts: &ConformOptions) -> Vec<SimJob> {
    let kernel: Arc<dyn hsim_gpu::Kernel> = Arc::new(shape.clone());
    let base = SysParams::integrated();
    let name = shape.program.name();
    let mut jobs = Vec::with_capacity(opts.configs.len() * opts.schedules.max(1));
    for &config in &opts.configs {
        for s in 0..opts.schedules.max(1) {
            let mut job = SimJob::new(
                format!("{name}:{config}:s{s}"),
                Arc::clone(&kernel),
                config,
                &schedule_params(&base, opts.seed, s),
            );
            job.validate = false;
            jobs.push(job);
        }
    }
    jobs
}

/// Fold simulation reports (in [`conform_jobs`] order) and the
/// axiomatic oracle into a [`ConformReport`].
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] when the oracle cannot
/// enumerate the program within `opts.limits`.
pub fn report_from_runs(
    shape: &CompiledLitmus,
    opts: &ConformOptions,
    reports: &[RunReport],
) -> Result<ConformReport, EnumError> {
    fold_report(shape, opts, &opts.limits, &|i| reports.get(i))
}

/// [`report_from_runs`] over a partial sweep: `None` slots (jobs lost
/// to a panic or never run under a tripped budget) simply contribute
/// no observed outcome. Since the verdict is `observed ⊆ allowed`, a
/// partial observed set can only under-report coverage — it never
/// invents a violation.
///
/// # Errors
///
/// Returns the oracle's [`EnumError`] when it cannot enumerate the
/// program within `opts.limits`.
pub fn report_from_partial_runs(
    shape: &CompiledLitmus,
    opts: &ConformOptions,
    reports: &[Option<RunReport>],
) -> Result<ConformReport, EnumError> {
    fold_report(shape, opts, &opts.limits, &|i| reports.get(i).and_then(Option::as_ref))
}

/// Shared fold: oracle + per-config observed sets, with the report for
/// job `i` looked up through `report_at` (absent reports are skipped).
fn fold_report<'a>(
    shape: &CompiledLitmus,
    opts: &ConformOptions,
    limits: &EnumLimits,
    report_at: &dyn Fn(usize) -> Option<&'a RunReport>,
) -> Result<ConformReport, EnumError> {
    let (allowed, oracle_stats) = allowed_outcomes(shape, limits, opts.threads)?;
    let per = opts.schedules.max(1);
    let verdicts = opts
        .configs
        .iter()
        .enumerate()
        .map(|(ci, &config)| {
            let observed: BTreeSet<Outcome> = (ci * per..(ci + 1) * per)
                .filter_map(report_at)
                .map(|r| Outcome::from_sim_memory(shape, &r.memory))
                .collect();
            let violations = observed.difference(&allowed).cloned().collect();
            ConfigVerdict { config, observed, violations }
        })
        .collect();
    Ok(ConformReport { name: shape.program.name().to_string(), allowed, oracle_stats, verdicts })
}

/// Run the full conformance loop for one program.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] when the oracle cannot
/// enumerate the program within `opts.limits` (the simulation side ran
/// by then, but without an allowed set there is no verdict).
///
/// # Panics
///
/// Panics if the program has no threads.
pub fn check_conformance(p: &Program, opts: &ConformOptions) -> Result<ConformReport, EnumError> {
    let shape = compile(p);
    let jobs = conform_jobs(&shape, opts);
    let reports = run_matrix(&jobs, opts.threads);
    report_from_runs(&shape, opts, &reports)
}

/// Resilience controls for a conformance run. The default — no
/// budget, no fault plan — behaves like [`check_conformance`] except
/// that a panicking simulation job degrades the run instead of
/// aborting it.
#[derive(Clone, Default)]
pub struct ConformResilience {
    /// Shared resource budget. Applied to the simulation matrix at
    /// job-claim granularity and (unless `opts.limits.budget` already
    /// carries one) to the axiomatic oracle's enumerator.
    pub budget: Option<Arc<Budget>>,
    /// Deterministic fault injection (chaos testing only). Simulation
    /// jobs are faulted under `EngineId::Sweep`, fuzz-campaign
    /// iterations under `EngineId::Conform`.
    pub fault_plan: Option<FaultPlan>,
}

/// The outcome of a resilient conformance run.
#[derive(Clone)]
pub struct ConformOutcome {
    /// The report, when the oracle produced an allowed set. `None`
    /// only when the oracle itself was exhausted — without an allowed
    /// set there is no verdict.
    pub report: Option<ConformReport>,
    /// How the run ended. `Degraded`'s `lost` names simulation job
    /// indices (in [`conform_jobs`] order) whose observations are
    /// missing; an oracle failure maps to `Inconclusive` with an
    /// empty frontier.
    pub status: RunStatus,
}

/// [`check_conformance`], resilient: the simulation matrix runs
/// through [`run_matrix_resilient`] (per-job `catch_unwind` + one
/// retry, budget polled between job claims, deterministic fault
/// injection), and an oracle enumeration failure becomes a structured
/// `Inconclusive` status instead of an `Err`. Never panics.
///
/// A `Degraded` report is still meaningful: lost jobs only shrink the
/// observed sets, so soundness verdicts on the surviving observations
/// remain valid (prefix-soundness — see [`report_from_partial_runs`]).
///
/// # Panics
///
/// Panics if the program has no threads (same contract as
/// [`check_conformance`]).
pub fn check_conformance_resilient(
    p: &Program,
    opts: &ConformOptions,
    res: &ConformResilience,
) -> ConformOutcome {
    let shape = compile(p);
    let jobs = conform_jobs(&shape, opts);
    let matrix = run_matrix_resilient(
        &jobs,
        opts.threads,
        &MatrixResilience { budget: res.budget.clone(), fault_plan: res.fault_plan },
    );
    let mut limits = opts.limits.clone();
    if limits.budget.is_none() {
        limits.budget = res.budget.clone();
    }
    let report_at = |i: usize| matrix.reports.get(i).and_then(Option::as_ref);
    match fold_report(&shape, opts, &limits, &report_at) {
        Ok(report) => ConformOutcome { report: Some(report), status: matrix.status },
        Err(e) => ConformOutcome {
            report: None,
            status: RunStatus::Inconclusive { reason: e.exhaust_reason(), frontier: Vec::new() },
        },
    }
}

/// Is `p` *demonstrably* unsound under `opts` — i.e. did some
/// configuration observe a disallowed outcome? Oracle overflow counts
/// as "not demonstrated" (the shrinker predicate must only accept
/// programs whose disagreement reproduces).
pub fn is_unsound(p: &Program, opts: &ConformOptions) -> bool {
    !p.threads().is_empty() && matches!(check_conformance(p, opts), Ok(report) if !report.sound())
}

/// The Table-1 use-case corpus as `(name, program)` pairs.
pub fn table1_corpus() -> Vec<(String, Program)> {
    all_tests()
        .into_iter()
        .filter(|t| t.category == Category::UseCase)
        .map(|t| (t.name.to_string(), (t.build)()))
        .collect()
}

/// Conformance over the whole Table-1 corpus, one report per test.
///
/// # Errors
///
/// Propagates the first oracle enumeration failure.
pub fn run_corpus(opts: &ConformOptions) -> Result<Vec<ConformReport>, EnumError> {
    table1_corpus().iter().map(|(_, p)| check_conformance(p, opts)).collect()
}

/// Conformance over the [template corpus](crate::templates), one
/// report per program.
///
/// # Errors
///
/// Propagates the first oracle enumeration failure.
pub fn run_template_corpus(opts: &ConformOptions) -> Result<Vec<ConformReport>, EnumError> {
    crate::templates::template_corpus().iter().map(|(_, p)| check_conformance(p, opts)).collect()
}

/// One line of the corpus table: a test row or the total row. Both
/// render through the same format string, so the table stays aligned
/// by construction.
struct CorpusRow {
    name: String,
    allowed: usize,
    observed: usize,
    coverage: f64,
    drf0_cov: f64,
    sound: bool,
}

impl CorpusRow {
    fn from_report(r: &ConformReport) -> Self {
        CorpusRow {
            name: r.name.clone(),
            allowed: r.allowed.len(),
            observed: r.observed_union().len(),
            coverage: r.coverage(),
            drf0_cov: r.coverage_under(MemoryModel::Drf0),
            sound: r.sound(),
        }
    }

    fn render(&self) -> String {
        format!(
            "{:<26} {:>7} {:>9} {:>9.3} {:>9.3}  {}\n",
            self.name,
            self.allowed,
            self.observed,
            self.coverage,
            self.drf0_cov,
            if self.sound { "SOUND" } else { "VIOLATION" }
        )
    }
}

/// Render corpus reports as the stable text table committed to
/// `results/conform.txt`.
pub fn render_corpus(reports: &[ConformReport], opts: &ConformOptions) -> String {
    let mut out = String::new();
    out.push_str("Conformance: litmus corpus vs simulator (observed ⊆ allowed)\n");
    let configs: Vec<&str> = opts.configs.iter().map(|c| c.abbrev()).collect();
    out.push_str(&format!(
        "configs: {}   schedules/config: {}   seed: {}\n\n",
        configs.join(" "),
        opts.schedules,
        opts.seed
    ));
    out.push_str(&format!(
        "{:<26} {:>7} {:>9} {:>9} {:>9}  verdict\n",
        "test", "allowed", "observed", "coverage", "drf0-cov"
    ));
    let (mut tot_allowed, mut tot_wit, mut tot_wit0) = (0usize, 0usize, 0usize);
    let mut all_sound = true;
    for r in reports {
        all_sound &= r.sound();
        tot_allowed += r.allowed.len();
        tot_wit += r.witnessed();
        tot_wit0 += r.witnessed_under(MemoryModel::Drf0);
        out.push_str(&CorpusRow::from_report(r).render());
    }
    let agg = |w: usize| if tot_allowed == 0 { 1.0 } else { w as f64 / tot_allowed as f64 };
    let total = CorpusRow {
        name: "total".to_string(),
        allowed: tot_allowed,
        observed: tot_wit,
        coverage: agg(tot_wit),
        drf0_cov: agg(tot_wit0),
        sound: all_sound,
    };
    out.push_str(&total.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::OpClass;

    fn quick_opts() -> ConformOptions {
        ConformOptions {
            configs: SystemConfig::all().to_vec(),
            schedules: 4,
            seed: 1,
            threads: 1,
            limits: EnumLimits::default(),
        }
    }

    #[test]
    fn commutative_counter_conforms() {
        let mut p = Program::new("inc2");
        p.thread().rmw(OpClass::Commutative, "c", drfrlx_core::RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Commutative, "c", drfrlx_core::RmwOp::FetchAdd, 1);
        let p = p.build();
        let r = check_conformance(&p, &quick_opts()).unwrap();
        assert!(r.sound(), "two relaxed increments must stay in the SC set");
        // Final memory is always 2; the old values distinguish orders.
        assert!(r.coverage() > 0.0);
    }

    #[test]
    fn corpus_has_the_seven_table1_tests() {
        let names: Vec<String> = table1_corpus().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 7);
        assert!(names.contains(&"work_queue".to_string()));
        assert!(names.contains(&"seqlock".to_string()));
    }

    #[test]
    fn resilient_run_matches_the_plain_harness() {
        let opts = quick_opts();
        let mut p = Program::new("pair");
        p.thread().store(OpClass::Paired, "x", 1);
        p.thread().load(OpClass::Paired, "x");
        let p = p.build();
        let plain = check_conformance(&p, &opts).unwrap();
        let out = check_conformance_resilient(&p, &opts, &ConformResilience::default());
        assert_eq!(out.status, RunStatus::Complete);
        let r = out.report.expect("complete run carries a report");
        assert_eq!(r.allowed, plain.allowed);
        assert_eq!(r.sound(), plain.sound());
        for (a, b) in r.verdicts.iter().zip(&plain.verdicts) {
            assert_eq!(a.observed, b.observed, "{}", a.config);
        }
    }

    #[test]
    fn a_lost_simulation_job_degrades_but_stays_sound() {
        use drfrlx_core::resilience::{EngineId, Fault};
        let opts = quick_opts();
        let mut p = Program::new("one");
        p.thread().store(OpClass::Data, "x", 1);
        let p = p.build();
        let res = ConformResilience {
            budget: None,
            // Job 0 panics on both attempts and is lost.
            fault_plan: Some(FaultPlan::pinned(EngineId::Sweep, 0, 2, Fault::Panic)),
        };
        let out = check_conformance_resilient(&p, &opts, &res);
        assert_eq!(out.status, RunStatus::Degraded { lost: vec![0] });
        let r = out.report.expect("a degraded run still has an oracle and a verdict");
        assert!(r.sound(), "missing observations cannot invent a violation");
    }

    #[test]
    fn an_exhausted_oracle_is_inconclusive_not_an_error() {
        use drfrlx_core::resilience::ExhaustReason;
        let opts = ConformOptions {
            limits: EnumLimits { max_executions: 0, ..EnumLimits::default() },
            ..quick_opts()
        };
        let mut p = Program::new("two");
        p.thread().store(OpClass::Data, "x", 1);
        p.thread().store(OpClass::Data, "x", 2);
        let p = p.build();
        let out = check_conformance_resilient(&p, &opts, &ConformResilience::default());
        assert!(out.report.is_none());
        match out.status {
            RunStatus::Inconclusive { reason: ExhaustReason::Executions { .. }, .. } => {}
            s => panic!("expected Inconclusive(Executions), got {s:?}"),
        }
    }

    #[test]
    fn render_is_stable_shape() {
        let opts = quick_opts();
        let mut p = Program::new("one");
        p.thread().store(OpClass::Data, "x", 1);
        let p = p.build();
        let r = check_conformance(&p, &opts).unwrap();
        let text = render_corpus(&[r], &opts);
        assert!(text.contains("one"));
        assert!(text.contains("SOUND"));
        assert!(text.contains("total"));
    }
}
