//! # hsim-gpu — GPU execution engine and work-item IR
//!
//! The compute side of the simulated heterogeneous system (paper §4.1):
//! GPU compute units (CUs) running many hardware contexts, per-block
//! scratchpads, block barriers, and — central to the paper — the
//! consistency-model enforcement that differentiates DRF0 / DRF1 /
//! DRFrlx (Table 4):
//!
//! | effective strength | invalidate at loads | flush SB at stores | overlap |
//! |--------------------|--------------------|--------------------|---------|
//! | paired             | yes                | yes                | no      |
//! | unpaired           | no                 | no                 | no      |
//! | relaxed            | no                 | no                 | yes     |
//!
//! Workloads are written against the [`Kernel`] / [`WorkItem`] traits
//! and annotate every access with an [`drfrlx_core::OpClass`]; the same
//! workload binary runs under any model because the engine maps classes
//! to strengths via [`drfrlx_core::MemoryModel::strength_of`].
//!
//! Model enforcement itself is a policy, not engine control flow: a
//! [`ConsistencyPolicy`] turns each (operation, strength) into an
//! [`AccessActions`] table (fence / flush / invalidate / overlap), and
//! the engine executes whatever the table says. The DRF family is
//! [`DrfPolicy`]; [`run_kernel_policy`] accepts any other
//! implementation.
//!
//! Modelling notes (documented substitutions, see DESIGN.md): a
//! "context" executes one work-item instruction stream (warp-level
//! lockstep and intra-warp coalescing are folded into the MSHR/port
//! contention of the memory system); CUs issue one operation per cycle;
//! execution is event-driven and fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod consistency;
mod engine;
mod ir;

pub use consistency::{AccessActions, ConsistencyPolicy, DrfPolicy};
pub use engine::{
    run_kernel, run_kernel_policy, run_kernel_reference, run_kernel_traced, EngineParams,
    EngineReport, IssueJitter, MemoryBackend,
};
pub use ir::{Kernel, Op, RmwKind, WorkItem};

/// Simulation time in cycles.
pub type Cycle = u64;

/// Word address in the shared global memory.
pub type Addr = u64;

/// The simulator's value type.
pub type Value = u64;
