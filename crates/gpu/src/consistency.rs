//! The [`ConsistencyPolicy`] trait: consistency-model enforcement as
//! data, not control flow.
//!
//! The execution engine used to branch on [`Strength`] at every
//! load/store/RMW site. Those branches only ever decided four things —
//! fence outstanding relaxed atomics first, flush the store buffer
//! before, self-invalidate after, and whether the access may overlap
//! (fire-and-forget) — so a model is now a table: [`AccessActions`]
//! per (operation, strength), plus the class→strength mapping itself.
//! DRF0 / DRF1 / DRFrlx are all [`DrfPolicy`] values differing only in
//! their [`MemoryModel`]; an alternative semantics (e.g. an
//! SC-total-order model or a fence-heavier mapping) slots in by
//! implementing the trait, without touching the engine.

use drfrlx_core::classes::Strength;
use drfrlx_core::{MemoryModel, OpClass};

/// What the engine must do around one memory access (paper Table 4
/// distilled): each flag corresponds to one
/// [`crate::MemoryBackend`] interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessActions {
    /// Wait for this context's outstanding overlapped atomics first
    /// (the atomic-atomic program-order fence).
    pub fence: bool,
    /// Flush the store buffer before performing (release side).
    pub release_before: bool,
    /// Self-invalidate the L1 after performing (acquire side).
    pub acquire_after: bool,
    /// Perform as an atomic access in the memory system.
    pub atomic: bool,
    /// Count toward the report's atomic tally.
    pub counts_atomic: bool,
    /// Fire-and-forget: the context continues next cycle and the
    /// completion joins its outstanding window (relaxed overlap).
    pub overlap: bool,
}

/// A consistency model as seen by the execution engine: the
/// class→strength mapping plus the per-access action tables.
///
/// Implementations must be deterministic pure functions of their
/// arguments — the engine consults them once per issued operation.
pub trait ConsistencyPolicy {
    /// The model label (reporting; configuration round-trips).
    fn model(&self) -> MemoryModel;

    /// The strength this model enforces for a programmer annotation.
    fn strength_of(&self, class: OpClass) -> Strength;

    /// Actions around a load of the given strength.
    fn load_actions(&self, strength: Strength) -> AccessActions;

    /// Actions around a store of the given strength.
    fn store_actions(&self, strength: Strength) -> AccessActions;

    /// Actions around an RMW of the given strength. `use_result` is
    /// whether the program observes the loaded value (an RMW whose
    /// result is discarded may overlap under relaxed strength).
    fn rmw_actions(&self, strength: Strength, use_result: bool) -> AccessActions;
}

/// The paper's DRF family. All three models share one action table —
/// the differences live entirely in
/// [`MemoryModel::strength_of`], which is the point: DRF0/DRF1/DRFrlx
/// differ in *which strengths programs can reach*, not in what a
/// strength means to the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrfPolicy(pub MemoryModel);

impl ConsistencyPolicy for DrfPolicy {
    #[inline]
    fn model(&self) -> MemoryModel {
        self.0
    }

    #[inline]
    fn strength_of(&self, class: OpClass) -> Strength {
        self.0.strength_of(class)
    }

    #[inline]
    fn load_actions(&self, strength: Strength) -> AccessActions {
        use Strength::*;
        match strength {
            Data => AccessActions::default(),
            // Fence, perform at full strength, self-invalidate after.
            Paired | Acquire => AccessActions {
                fence: true,
                acquire_after: true,
                atomic: true,
                counts_atomic: true,
                ..Default::default()
            },
            // A release-annotated load has no write side to order; it
            // behaves like an unpaired atomic.
            Unpaired | Release => AccessActions {
                fence: true,
                atomic: true,
                counts_atomic: true,
                ..Default::default()
            },
            // The value is needed, so the load blocks, but it does not
            // fence other outstanding atomics.
            Relaxed => AccessActions { atomic: true, counts_atomic: true, ..Default::default() },
        }
    }

    #[inline]
    fn store_actions(&self, strength: Strength) -> AccessActions {
        use Strength::*;
        match strength {
            Data => AccessActions::default(),
            // Release side: flush the store buffer first; no
            // self-invalidation afterwards.
            Paired | Release => AccessActions {
                fence: true,
                release_before: true,
                atomic: true,
                counts_atomic: true,
                ..Default::default()
            },
            // An acquire-annotated store has no read side to order; it
            // behaves like an unpaired atomic.
            Unpaired | Acquire => AccessActions {
                fence: true,
                atomic: true,
                counts_atomic: true,
                ..Default::default()
            },
            Relaxed => AccessActions {
                atomic: true,
                counts_atomic: true,
                overlap: true,
                ..Default::default()
            },
        }
    }

    #[inline]
    fn rmw_actions(&self, strength: Strength, use_result: bool) -> AccessActions {
        use Strength::*;
        let base = AccessActions { atomic: true, counts_atomic: true, ..Default::default() };
        match strength {
            // Paired RMW is both release and acquire (Data-class RMWs
            // are treated as paired: an RMW is inherently atomic).
            Data | Paired => {
                AccessActions { fence: true, release_before: true, acquire_after: true, ..base }
            }
            // Acquire-only RMW: invalidate after, no flush before
            // (e.g. a lock acquire).
            Acquire => AccessActions { fence: true, acquire_after: true, ..base },
            // Release-only RMW: flush before, no invalidation after
            // (the seqlock reader's "read-don't-modify-write", paper
            // footnote 7).
            Release => AccessActions { fence: true, release_before: true, ..base },
            Unpaired => AccessActions { fence: true, ..base },
            Relaxed => AccessActions { overlap: !use_result, ..base },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_accesses_do_nothing_extra() {
        for model in MemoryModel::ALL {
            let p = DrfPolicy(model);
            assert_eq!(p.load_actions(Strength::Data), AccessActions::default());
            assert_eq!(p.store_actions(Strength::Data), AccessActions::default());
        }
    }

    #[test]
    fn paired_is_acquire_release_split_by_direction() {
        let p = DrfPolicy(MemoryModel::Drfrlx);
        let l = p.load_actions(Strength::Paired);
        assert!(l.fence && l.acquire_after && !l.release_before && !l.overlap);
        let s = p.store_actions(Strength::Paired);
        assert!(s.fence && s.release_before && !s.acquire_after && !s.overlap);
        let r = p.rmw_actions(Strength::Paired, true);
        assert!(r.fence && r.release_before && r.acquire_after);
    }

    #[test]
    fn relaxed_overlap_depends_on_operation() {
        let p = DrfPolicy(MemoryModel::Drfrlx);
        // A relaxed load blocks (its value is needed) but never fences.
        let l = p.load_actions(Strength::Relaxed);
        assert!(!l.fence && !l.overlap && l.atomic);
        // A relaxed store always overlaps.
        assert!(p.store_actions(Strength::Relaxed).overlap);
        // A relaxed RMW overlaps only when the result is discarded.
        assert!(p.rmw_actions(Strength::Relaxed, false).overlap);
        assert!(!p.rmw_actions(Strength::Relaxed, true).overlap);
    }

    #[test]
    fn one_sided_strengths_order_one_direction() {
        let p = DrfPolicy(MemoryModel::Drfrlx);
        // Acquire loads invalidate; release loads degrade to unpaired.
        assert!(p.load_actions(Strength::Acquire).acquire_after);
        assert!(!p.load_actions(Strength::Release).acquire_after);
        // Release stores flush; acquire stores degrade to unpaired.
        assert!(p.store_actions(Strength::Release).release_before);
        assert!(!p.store_actions(Strength::Acquire).release_before);
    }

    #[test]
    fn models_share_the_action_table() {
        // The DRF family differs only via strength_of: for any fixed
        // strength, every model prescribes identical actions.
        for s in [
            Strength::Data,
            Strength::Paired,
            Strength::Unpaired,
            Strength::Relaxed,
            Strength::Acquire,
            Strength::Release,
        ] {
            let base = DrfPolicy(MemoryModel::Drf0);
            for model in MemoryModel::ALL {
                let p = DrfPolicy(model);
                assert_eq!(p.load_actions(s), base.load_actions(s));
                assert_eq!(p.store_actions(s), base.store_actions(s));
                assert_eq!(p.rmw_actions(s, true), base.rmw_actions(s, true));
                assert_eq!(p.rmw_actions(s, false), base.rmw_actions(s, false));
            }
        }
    }
}
