//! The event-driven execution engine.
//!
//! Context selection — "which context runs next?" — is the innermost
//! loop of every simulation: one pick per executed operation. The
//! engine keeps an indexed ready queue (a min-[`BinaryHeap`] keyed by
//! `(ready cycle, context id)`), so each pick costs O(log contexts)
//! instead of a linear scan over every resident context. Ties still
//! break by context id, so schedules — and therefore all reports —
//! are deterministic and identical to the retained reference scanner
//! ([`run_kernel_reference`]), which differential tests hold it to.

use crate::consistency::{AccessActions, ConsistencyPolicy, DrfPolicy};
use crate::ir::{Kernel, Op, WorkItem};
use crate::{Addr, Cycle, Value};
use drfrlx_core::MemoryModel;
use hsim_trace::{EventKind, NoTrace, Trace, TraceEvent};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Timing interface to the memory system (implemented over
/// `hsim-coherence` by `hsim-sys`; a fixed-latency stub is used in unit
/// tests). All methods return the completion cycle.
pub trait MemoryBackend {
    /// A load (data or atomic); completion = value available.
    fn load(&mut self, now: Cycle, cu: usize, addr: Addr, atomic: bool) -> Cycle;
    /// A store; completion = store accepted (drain is asynchronous)
    /// for data stores, value globally performed for atomics.
    fn store(&mut self, now: Cycle, cu: usize, addr: Addr, atomic: bool) -> Cycle;
    /// An atomic RMW; completion = old value available.
    fn rmw(&mut self, now: Cycle, cu: usize, addr: Addr) -> Cycle;
    /// Acquire action of a paired load: self-invalidate the L1.
    fn acquire(&mut self, now: Cycle, cu: usize) -> Cycle;
    /// Release action of a paired store: flush the store buffer.
    fn release(&mut self, now: Cycle, cu: usize) -> Cycle;
}

/// Opt-in issue-order perturbation for conformance testing.
///
/// When set, every ready transition of a context is delayed by a
/// pseudo-random `0..=max_delay` cycles, a pure function of
/// `(seed, context, step)` — so a perturbed run is still fully
/// deterministic and reproducible, it just realizes a *different*
/// interleaving than the unperturbed schedule. `None` (the default)
/// leaves timing bit-for-bit identical to previous releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueJitter {
    /// Seed mixed into every delay.
    pub seed: u64,
    /// Largest extra delay, in cycles, applied per ready transition.
    pub max_delay: u64,
}

impl IssueJitter {
    /// The delay for context `ctx`'s `step`-th ready transition:
    /// SplitMix64-style finalizer over `(seed, ctx, step)`, reduced to
    /// `0..=max_delay`.
    fn delay(self, ctx: usize, step: u64) -> Cycle {
        if self.max_delay == 0 {
            return 0;
        }
        let mut z = self
            .seed
            .wrapping_add((ctx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(step.wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z % (self.max_delay + 1)
    }
}

/// The delay (0 when jitter is off) for a context's next ready time.
fn jitter_delay(jitter: Option<IssueJitter>, ctx: usize, step: u64) -> Cycle {
    jitter.map_or(0, |j| j.delay(ctx, step))
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineParams {
    /// Number of GPU compute units.
    pub num_cus: usize,
    /// Hardware contexts per CU (work items resident at once).
    pub max_contexts_per_cu: usize,
    /// Consistency model enforced by the hardware.
    pub model: MemoryModel,
    /// Latency of a block barrier once the last item arrives.
    pub barrier_latency: u64,
    /// Latency of a grid-wide barrier (kernel relaunch cost).
    pub global_barrier_latency: u64,
    /// Cap on overlapped (relaxed) atomics per context.
    pub max_outstanding_atomics: usize,
    /// Deterministic schedule perturbation (`None` = exact legacy
    /// timing; used by the conformance harness to diversify
    /// interleavings).
    pub jitter: Option<IssueJitter>,
}

impl Default for EngineParams {
    fn default() -> Self {
        EngineParams {
            num_cus: 15,
            max_contexts_per_cu: 64,
            model: MemoryModel::Drf0,
            barrier_latency: 4,
            global_barrier_latency: 600,
            max_outstanding_atomics: 8,
            jitter: None,
        }
    }
}

/// What a kernel run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// Total cycles (last context retirement).
    pub cycles: Cycle,
    /// Instructions issued (incl. think cycles).
    pub core_ops: u64,
    /// Scratchpad accesses.
    pub scratch_accesses: u64,
    /// Block barriers completed.
    pub barriers: u64,
    /// Final global memory image (for validation).
    pub memory: Vec<Value>,
    /// Atomic operations issued.
    pub atomics: u64,
    /// Atomics that were overlapped (issued without waiting).
    pub atomics_overlapped: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtxState {
    Ready(Cycle),
    AtBarrier(Cycle),
    AtGlobalBarrier(Cycle),
    Finished(Cycle),
}

struct Ctx {
    item: Box<dyn WorkItem>,
    cu: usize,
    block: usize,
    state: CtxState,
    last: Option<Value>,
    /// Completion times of overlapped atomics not yet fenced.
    outstanding: Vec<Cycle>,
    /// Ready transitions taken so far; the jitter step counter.
    steps: u64,
}

impl Ctx {
    /// Bump and return the jitter step counter.
    fn next_step(&mut self) -> u64 {
        self.steps += 1;
        self.steps
    }
}

/// Per-CU issue port: one operation per cycle.
#[derive(Debug, Clone, Default)]
struct IssuePort {
    next_free: Cycle,
}

impl IssuePort {
    fn acquire(&mut self, at: Cycle) -> Cycle {
        let start = at.max(self.next_free);
        self.next_free = start + 1;
        start
    }
}

/// The ready-queue strategy: how the engine finds the runnable context
/// with the smallest `(ready cycle, context id)`.
///
/// Both implementations must agree exactly — [`HeapQueue`] is the
/// production O(log n) path, [`LinearScan`] the O(n) reference that
/// differential tests compare it against.
trait ReadyQueue {
    /// Note that context `ctx` became `Ready(at)`.
    fn push(&mut self, at: Cycle, ctx: usize);
    /// Remove and return the minimum `(ready cycle, context id)`, or
    /// `None` when no context is runnable.
    fn pop(&mut self, ctxs: &[Ctx]) -> Option<(Cycle, usize)>;
}

/// Indexed ready queue: a min-heap over `(cycle, ctx_id)`.
///
/// Every `Ready` transition pushes exactly one entry and every entry is
/// consumed at most once, so the heap never holds stale entries for a
/// context that was rescheduled; the state check on pop is a cheap
/// invariant guard, not a lazy-deletion scheme.
#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<Reverse<(Cycle, usize)>>,
}

impl ReadyQueue for HeapQueue {
    fn push(&mut self, at: Cycle, ctx: usize) {
        self.heap.push(Reverse((at, ctx)));
    }

    fn pop(&mut self, ctxs: &[Ctx]) -> Option<(Cycle, usize)> {
        while let Some(Reverse((at, i))) = self.heap.pop() {
            if ctxs[i].state == CtxState::Ready(at) {
                return Some((at, i));
            }
        }
        None
    }
}

/// Reference scheduler: scan every context per step. O(contexts) per
/// pick — retained only so differential tests can certify the heap.
#[derive(Default)]
struct LinearScan;

impl ReadyQueue for LinearScan {
    fn push(&mut self, _at: Cycle, _ctx: usize) {}

    fn pop(&mut self, ctxs: &[Ctx]) -> Option<(Cycle, usize)> {
        let mut best: Option<(Cycle, usize)> = None;
        for (i, c) in ctxs.iter().enumerate() {
            if let CtxState::Ready(at) = c.state {
                if best.is_none_or(|(t, _)| at < t) {
                    best = Some((at, i));
                }
            }
        }
        best
    }
}

/// Run `kernel` to completion under `params` on `backend`.
///
/// Blocks are assigned to CUs round-robin; when a CU's resident blocks
/// retire, queued blocks launch in order. Execution is event-driven:
/// each step advances the context with the smallest ready time (ties
/// broken by context id), so runs are deterministic.
///
/// # Panics
///
/// Panics if the kernel has no blocks, a block exceeds the CU context
/// capacity, or a work item keeps emitting ops after `Done`.
pub fn run_kernel(
    kernel: &dyn Kernel,
    params: &EngineParams,
    backend: &mut dyn MemoryBackend,
) -> EngineReport {
    let policy = DrfPolicy(params.model);
    run_kernel_with(kernel, params, backend, &policy, HeapQueue::default(), NoTrace)
}

/// [`run_kernel`] under an explicit [`ConsistencyPolicy`] instead of
/// the DRF policy derived from `params.model`. `params.model` is
/// ignored; the policy alone decides per-access strengths and actions.
pub fn run_kernel_policy(
    kernel: &dyn Kernel,
    params: &EngineParams,
    backend: &mut dyn MemoryBackend,
    policy: &dyn ConsistencyPolicy,
) -> EngineReport {
    run_kernel_with(kernel, params, backend, policy, HeapQueue::default(), NoTrace)
}

/// [`run_kernel`] emitting per-operation pipeline events (issue, issue
/// stalls, fence drains, barrier releases, block launches, context
/// retirement, atomic overlap) into `tracer`. Timing and the returned
/// [`EngineReport`] are identical to the untraced run.
pub fn run_kernel_traced(
    kernel: &dyn Kernel,
    params: &EngineParams,
    backend: &mut dyn MemoryBackend,
    tracer: impl Trace,
) -> EngineReport {
    let policy = DrfPolicy(params.model);
    run_kernel_with(kernel, params, backend, &policy, HeapQueue::default(), tracer)
}

/// [`run_kernel`] on the reference linear-scan scheduler.
///
/// Exists solely as the differential-testing oracle for the indexed
/// scheduler: any kernel must produce a byte-identical [`EngineReport`]
/// on both. Not for production use — every step costs O(contexts).
pub fn run_kernel_reference(
    kernel: &dyn Kernel,
    params: &EngineParams,
    backend: &mut dyn MemoryBackend,
) -> EngineReport {
    let policy = DrfPolicy(params.model);
    run_kernel_with(kernel, params, backend, &policy, LinearScan, NoTrace)
}

/// Stable per-operation code carried in the `arg` of an
/// [`EventKind::Issue`] event.
fn op_code(op: &Op) -> u64 {
    match op {
        Op::Think(_) => 0,
        Op::ScratchLoad { .. } => 1,
        Op::ScratchStore { .. } => 2,
        Op::Load { .. } => 3,
        Op::Store { .. } => 4,
        Op::Rmw { .. } => 5,
        Op::Barrier => 6,
        Op::GlobalBarrier => 7,
        Op::Done => 8,
    }
}

fn run_kernel_with<T: Trace, P: ConsistencyPolicy + ?Sized>(
    kernel: &dyn Kernel,
    params: &EngineParams,
    backend: &mut dyn MemoryBackend,
    policy: &P,
    mut ready: impl ReadyQueue,
    tracer: T,
) -> EngineReport {
    assert!(kernel.blocks() > 0, "kernel needs blocks");
    assert!(
        kernel.threads_per_block() <= params.max_contexts_per_cu,
        "block larger than CU context capacity"
    );
    let mut memory = vec![0; kernel.memory_words()];
    kernel.init_memory(&mut memory);
    let scratch_words = kernel.scratch_words();
    let mut scratch: Vec<Vec<Value>> =
        (0..kernel.blocks()).map(|_| vec![0; scratch_words]).collect();

    let tpb = kernel.threads_per_block();
    let blocks_per_cu_resident = (params.max_contexts_per_cu / tpb).max(1);

    // Round-robin block → CU assignment; queue beyond residency.
    let mut cu_queues: Vec<Vec<usize>> = vec![Vec::new(); params.num_cus];
    for b in 0..kernel.blocks() {
        cu_queues[b % params.num_cus].push(b);
    }

    let mut ctxs: Vec<Ctx> = Vec::new();
    let mut block_ctxs: Vec<Vec<usize>> = vec![Vec::new(); kernel.blocks()];
    let launch = |block: usize,
                  cu: usize,
                  at: Cycle,
                  ctxs: &mut Vec<Ctx>,
                  block_ctxs: &mut Vec<Vec<usize>>,
                  ready: &mut dyn ReadyQueue| {
        if T::ENABLED {
            tracer.record(TraceEvent::new(
                EventKind::BlockLaunch,
                at,
                cu as u16,
                0,
                block as u64,
                0,
            ));
        }
        for t in 0..tpb {
            block_ctxs[block].push(ctxs.len());
            let at = at + jitter_delay(params.jitter, ctxs.len(), 0);
            ready.push(at, ctxs.len());
            ctxs.push(Ctx {
                item: kernel.item(block, t),
                cu,
                block,
                state: CtxState::Ready(at),
                last: None,
                outstanding: Vec::new(),
                steps: 0,
            });
        }
    };
    let mut next_queued: Vec<usize> = vec![0; params.num_cus];
    for cu in 0..params.num_cus {
        let n = blocks_per_cu_resident.min(cu_queues[cu].len());
        for _ in 0..n {
            let b = cu_queues[cu][next_queued[cu]];
            next_queued[cu] += 1;
            launch(b, cu, 0, &mut ctxs, &mut block_ctxs, &mut ready);
        }
    }

    let mut ports: Vec<IssuePort> = vec![IssuePort::default(); params.num_cus];
    let mut report = EngineReport {
        cycles: 0,
        core_ops: 0,
        scratch_accesses: 0,
        barriers: 0,
        memory: Vec::new(),
        atomics: 0,
        atomics_overlapped: 0,
    };

    // Pick the ready context with the smallest (time, id) until none is
    // runnable: everyone finished (barrier stalls resolve eagerly below,
    // so queue exhaustion means completion).
    while let Some((at, i)) = ready.pop(&ctxs) {
        let cu = ctxs[i].cu;
        let block = ctxs[i].block;
        let last = ctxs[i].last.take();
        let op = ctxs[i].item.next(last);
        let issue = ports[cu].acquire(at);
        report.core_ops += 1;
        if T::ENABLED {
            if issue > at {
                tracer.record(TraceEvent::new(
                    EventKind::IssueStall,
                    at,
                    cu as u16,
                    0,
                    0,
                    issue - at,
                ));
            }
            tracer.record(TraceEvent::new(EventKind::Issue, issue, cu as u16, 0, op_code(&op), 0));
        }

        let ctx = &mut ctxs[i];
        match op {
            Op::Think(n) => {
                report.core_ops += n as u64;
                let next = issue + 1 + n as u64 + jitter_delay(params.jitter, i, ctx.next_step());
                ctx.state = CtxState::Ready(next);
                ready.push(next, i);
            }
            Op::ScratchLoad { addr } => {
                report.scratch_accesses += 1;
                ctx.last = Some(scratch[block][addr as usize]);
                let next = issue + 1 + jitter_delay(params.jitter, i, ctx.next_step());
                ctx.state = CtxState::Ready(next);
                ready.push(next, i);
            }
            Op::ScratchStore { addr, value } => {
                report.scratch_accesses += 1;
                scratch[block][addr as usize] = value;
                let next = issue + 1 + jitter_delay(params.jitter, i, ctx.next_step());
                ctx.state = CtxState::Ready(next);
                ready.push(next, i);
            }
            Op::Load { addr, class } => {
                let a = policy.load_actions(policy.strength_of(class));
                let value = memory[addr as usize];
                let start = begin_access(&tracer, backend, &mut report, ctx, a, issue, cu);
                let performed = backend.load(start, cu, addr, a.atomic);
                let done = finish_access(
                    &tracer,
                    backend,
                    &mut report,
                    ctx,
                    a,
                    issue,
                    cu,
                    addr,
                    performed,
                    params,
                );
                ctx.last = Some(value);
                let done = done + jitter_delay(params.jitter, i, ctx.next_step());
                ctx.state = CtxState::Ready(done);
                ready.push(done, i);
            }
            Op::Store { addr, value, class } => {
                let a = policy.store_actions(policy.strength_of(class));
                let start = begin_access(&tracer, backend, &mut report, ctx, a, issue, cu);
                let performed = backend.store(start, cu, addr, a.atomic);
                let done = finish_access(
                    &tracer,
                    backend,
                    &mut report,
                    ctx,
                    a,
                    issue,
                    cu,
                    addr,
                    performed,
                    params,
                );
                memory[addr as usize] = value;
                let done = done + jitter_delay(params.jitter, i, ctx.next_step());
                ctx.state = CtxState::Ready(done);
                ready.push(done, i);
            }
            Op::Rmw { addr, rmw, operand, class, use_result } => {
                let a = policy.rmw_actions(policy.strength_of(class), use_result);
                let old = memory[addr as usize];
                memory[addr as usize] = rmw.apply(old, operand);
                let start = begin_access(&tracer, backend, &mut report, ctx, a, issue, cu);
                let performed = backend.rmw(start, cu, addr);
                let done = finish_access(
                    &tracer,
                    backend,
                    &mut report,
                    ctx,
                    a,
                    issue,
                    cu,
                    addr,
                    performed,
                    params,
                );
                if use_result {
                    ctx.last = Some(old);
                }
                let done = done + jitter_delay(params.jitter, i, ctx.next_step());
                ctx.state = CtxState::Ready(done);
                ready.push(done, i);
            }
            Op::Barrier => {
                // Wait for own outstanding atomics, then park.
                let fenced = drain_traced(&tracer, &mut ctx.outstanding, issue, cu);
                ctx.state = CtxState::AtBarrier(fenced);
                // Release the block if everyone arrived.
                let all = block_ctxs[block].iter().all(|&j| {
                    matches!(ctxs[j].state, CtxState::AtBarrier(_) | CtxState::Finished(_))
                });
                if all {
                    let release = block_ctxs[block]
                        .iter()
                        .filter_map(|&j| match ctxs[j].state {
                            CtxState::AtBarrier(t) => Some(t),
                            _ => None,
                        })
                        .max()
                        .unwrap_or(issue)
                        + params.barrier_latency;
                    report.barriers += 1;
                    if T::ENABLED {
                        tracer.record(TraceEvent::new(
                            EventKind::BarrierRelease,
                            release,
                            cu as u16,
                            0,
                            block as u64,
                            params.barrier_latency,
                        ));
                    }
                    for &j in &block_ctxs[block] {
                        if matches!(ctxs[j].state, CtxState::AtBarrier(_)) {
                            ctxs[j].state = CtxState::Ready(release);
                            ready.push(release, j);
                        }
                    }
                }
            }
            Op::GlobalBarrier => {
                // Kernel-boundary release: fence own atomics, flush.
                let fenced = drain_traced(&tracer, &mut ctx.outstanding, issue, cu);
                let flushed = backend.release(fenced, cu);
                ctx.state = CtxState::AtGlobalBarrier(flushed);
                let all = ctxs.iter().all(|c| {
                    matches!(c.state, CtxState::AtGlobalBarrier(_) | CtxState::Finished(_))
                });
                if all {
                    assert!(
                        (0..params.num_cus).all(|c| next_queued[c] >= cu_queues[c].len()),
                        "GlobalBarrier requires every block to be resident"
                    );
                    let release = ctxs
                        .iter()
                        .filter_map(|c| match c.state {
                            CtxState::AtGlobalBarrier(t) => Some(t),
                            _ => None,
                        })
                        .max()
                        .unwrap_or(issue)
                        + params.global_barrier_latency;
                    // Kernel-boundary acquire: every CU self-invalidates.
                    let mut resume = release;
                    for c in 0..params.num_cus {
                        resume = resume.max(backend.acquire(release, c));
                    }
                    report.barriers += 1;
                    if T::ENABLED {
                        tracer.record(TraceEvent::new(
                            EventKind::GlobalBarrierRelease,
                            resume,
                            0,
                            0,
                            0,
                            params.global_barrier_latency,
                        ));
                    }
                    for (j, c) in ctxs.iter_mut().enumerate() {
                        if matches!(c.state, CtxState::AtGlobalBarrier(_)) {
                            c.state = CtxState::Ready(resume);
                            ready.push(resume, j);
                        }
                    }
                }
            }
            Op::Done => {
                let fenced = drain_traced(&tracer, &mut ctx.outstanding, issue, cu);
                ctx.state = CtxState::Finished(fenced);
                if T::ENABLED {
                    tracer.record(TraceEvent::new(
                        EventKind::CtxFinish,
                        fenced,
                        cu as u16,
                        0,
                        i as u64,
                        0,
                    ));
                }
                report.cycles = report.cycles.max(fenced);
                // Launch the next queued block on this CU if this one
                // fully retired.
                let done_block = block_ctxs[block]
                    .iter()
                    .all(|&j| matches!(ctxs[j].state, CtxState::Finished(_)));
                if done_block && next_queued[cu] < cu_queues[cu].len() {
                    let retire = block_ctxs[block]
                        .iter()
                        .map(|&j| match ctxs[j].state {
                            CtxState::Finished(t) => t,
                            _ => unreachable!(),
                        })
                        .max()
                        .unwrap_or(fenced);
                    let b = cu_queues[cu][next_queued[cu]];
                    next_queued[cu] += 1;
                    launch(b, cu, retire, &mut ctxs, &mut block_ctxs, &mut ready);
                }
            }
        }
    }

    // Deadlocked barrier check: every context must have finished.
    assert!(
        ctxs.iter().all(|c| matches!(c.state, CtxState::Finished(_))),
        "kernel ended with contexts parked at a barrier"
    );
    report.memory = memory;
    report
}

/// Pre-access half of an [`AccessActions`] table: count the atomic,
/// fence outstanding overlapped atomics, flush the store buffer.
/// Returns the cycle at which the access itself may perform.
#[allow(clippy::too_many_arguments)]
fn begin_access<T: Trace>(
    tracer: &T,
    backend: &mut dyn MemoryBackend,
    report: &mut EngineReport,
    ctx: &mut Ctx,
    actions: AccessActions,
    issue: Cycle,
    cu: usize,
) -> Cycle {
    debug_assert!(
        !(actions.overlap && actions.acquire_after),
        "an overlapped access cannot also self-invalidate"
    );
    if actions.counts_atomic {
        report.atomics += 1;
    }
    let t =
        if actions.fence { drain_traced(tracer, &mut ctx.outstanding, issue, cu) } else { issue };
    if actions.release_before {
        backend.release(t, cu)
    } else {
        t
    }
}

/// Post-access half of an [`AccessActions`] table: self-invalidate
/// after an acquire, or detach an overlapped access (record its
/// completion in the outstanding window and let the context continue
/// next cycle). Returns the context's next ready cycle.
#[allow(clippy::too_many_arguments)]
fn finish_access<T: Trace>(
    tracer: &T,
    backend: &mut dyn MemoryBackend,
    report: &mut EngineReport,
    ctx: &mut Ctx,
    actions: AccessActions,
    issue: Cycle,
    cu: usize,
    addr: Addr,
    performed: Cycle,
    params: &EngineParams,
) -> Cycle {
    if actions.overlap {
        report.atomics_overlapped += 1;
        if T::ENABLED {
            tracer.record(TraceEvent::new(
                EventKind::AtomicOverlap,
                issue,
                cu as u16,
                addr,
                0,
                performed.saturating_sub(issue),
            ));
        }
        push_outstanding(&mut ctx.outstanding, performed, params.max_outstanding_atomics);
        issue + 1
    } else if actions.acquire_after {
        backend.acquire(performed, cu)
    } else {
        performed
    }
}

/// Wait for all outstanding atomics: returns the fence completion time
/// and clears the list.
fn drain(outstanding: &mut Vec<Cycle>, now: Cycle) -> Cycle {
    let t = outstanding.iter().copied().max().map_or(now, |m| m.max(now));
    outstanding.clear();
    t
}

/// [`drain`] that also emits an [`EventKind::FenceDrain`] event when
/// there were outstanding atomics to wait for.
fn drain_traced<T: Trace>(
    tracer: &T,
    outstanding: &mut Vec<Cycle>,
    now: Cycle,
    cu: usize,
) -> Cycle {
    let n = outstanding.len() as u64;
    let t = drain(outstanding, now);
    if T::ENABLED && n > 0 {
        tracer.record(TraceEvent::new(EventKind::FenceDrain, now, cu as u16, 0, n, t - now));
    }
    t
}

/// Track an overlapped atomic, stalling on the oldest when the window
/// is full.
fn push_outstanding(outstanding: &mut Vec<Cycle>, done: Cycle, cap: usize) {
    if outstanding.len() >= cap {
        // Retire the earliest (the issue path already priced the stall
        // into `done` via memory-system queuing; we just bound memory).
        let min = outstanding
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .expect("cap > 0 so list non-empty");
        outstanding.remove(min);
    }
    outstanding.push(done);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::RmwKind;
    use drfrlx_core::OpClass;

    /// Fixed-latency backend for engine-only tests.
    #[derive(Default)]
    struct FixedLat {
        loads: u64,
        stores: u64,
        rmws: u64,
        acquires: u64,
        releases: u64,
    }

    impl MemoryBackend for FixedLat {
        fn load(&mut self, now: Cycle, _cu: usize, _a: Addr, atomic: bool) -> Cycle {
            self.loads += 1;
            now + if atomic { 50 } else { 10 }
        }
        fn store(&mut self, now: Cycle, _cu: usize, _a: Addr, atomic: bool) -> Cycle {
            self.stores += 1;
            now + if atomic { 50 } else { 2 }
        }
        fn rmw(&mut self, now: Cycle, _cu: usize, _a: Addr) -> Cycle {
            self.rmws += 1;
            now + 50
        }
        fn acquire(&mut self, now: Cycle, _cu: usize) -> Cycle {
            self.acquires += 1;
            now + 2
        }
        fn release(&mut self, now: Cycle, _cu: usize) -> Cycle {
            self.releases += 1;
            now + 20
        }
    }

    /// A kernel of `blocks × tpb` items, each doing `n` RMWs on one
    /// counter with the given class.
    struct CounterKernel {
        blocks: usize,
        tpb: usize,
        n: usize,
        class: OpClass,
    }

    struct CounterItem {
        left: usize,
        class: OpClass,
    }

    impl WorkItem for CounterItem {
        fn next(&mut self, _last: Option<Value>) -> Op {
            if self.left == 0 {
                return Op::Done;
            }
            self.left -= 1;
            Op::Rmw { addr: 0, rmw: RmwKind::Add, operand: 1, class: self.class, use_result: false }
        }
    }

    impl Kernel for CounterKernel {
        fn name(&self) -> String {
            "counter".into()
        }
        fn blocks(&self) -> usize {
            self.blocks
        }
        fn threads_per_block(&self) -> usize {
            self.tpb
        }
        fn memory_words(&self) -> usize {
            4
        }
        fn item(&self, _b: usize, _t: usize) -> Box<dyn WorkItem> {
            Box::new(CounterItem { left: self.n, class: self.class })
        }
        fn validate(&self, mem: &[Value]) -> Result<(), String> {
            let expect = (self.blocks * self.tpb * self.n) as Value;
            if mem[0] == expect {
                Ok(())
            } else {
                Err(format!("counter: expected {expect}, got {}", mem[0]))
            }
        }
    }

    fn params(model: MemoryModel) -> EngineParams {
        EngineParams { num_cus: 4, max_contexts_per_cu: 8, model, ..Default::default() }
    }

    #[test]
    fn functional_result_is_model_independent() {
        for model in MemoryModel::ALL {
            let k = CounterKernel { blocks: 4, tpb: 4, n: 8, class: OpClass::Commutative };
            let mut b = FixedLat::default();
            let r = run_kernel(&k, &params(model), &mut b);
            k.validate(&r.memory).unwrap();
        }
    }

    #[test]
    fn relaxed_atomics_overlap_and_run_faster() {
        let k = CounterKernel { blocks: 4, tpb: 4, n: 8, class: OpClass::Commutative };
        let mut b0 = FixedLat::default();
        let c0 = run_kernel(&k, &params(MemoryModel::Drf0), &mut b0).cycles;
        let mut b1 = FixedLat::default();
        let c1 = run_kernel(&k, &params(MemoryModel::Drf1), &mut b1).cycles;
        let mut br = FixedLat::default();
        let rr = run_kernel(&k, &params(MemoryModel::Drfrlx), &mut br);
        assert!(c1 < c0, "DRF1 removes inval/flush: {c1} !< {c0}");
        assert!(rr.cycles < c1, "DRFrlx overlaps atomics: {} !< {c1}", rr.cycles);
        assert!(rr.atomics_overlapped > 0);
        // DRF0 paid acquire + release per atomic.
        assert!(b0.acquires > 0 && b0.releases > 0);
        assert_eq!(br.acquires, 0);
        assert_eq!(br.releases, 0);
    }

    /// Producer/consumer within one block via scratchpad + barrier.
    struct BarrierKernel;

    struct BarrierItem {
        tid: usize,
        step: usize,
    }

    impl WorkItem for BarrierItem {
        fn next(&mut self, last: Option<Value>) -> Op {
            self.step += 1;
            match (self.tid, self.step) {
                // Thread 0 publishes to scratch, all meet the barrier,
                // thread 1 reads and stores globally.
                (0, 1) => Op::ScratchStore { addr: 0, value: 77 },
                (_, 1) => Op::Think(0),
                (_, 2) => Op::Barrier,
                (1, 3) => Op::ScratchLoad { addr: 0 },
                (1, 4) => Op::Store { addr: 0, value: last.unwrap(), class: OpClass::Data },
                _ => Op::Done,
            }
        }
    }

    impl Kernel for BarrierKernel {
        fn name(&self) -> String {
            "barrier".into()
        }
        fn blocks(&self) -> usize {
            1
        }
        fn threads_per_block(&self) -> usize {
            2
        }
        fn scratch_words(&self) -> usize {
            1
        }
        fn memory_words(&self) -> usize {
            1
        }
        fn item(&self, _b: usize, t: usize) -> Box<dyn WorkItem> {
            Box::new(BarrierItem { tid: t, step: 0 })
        }
    }

    #[test]
    fn barrier_orders_scratchpad_communication() {
        let mut b = FixedLat::default();
        let r = run_kernel(&BarrierKernel, &params(MemoryModel::Drf0), &mut b);
        assert_eq!(r.memory[0], 77);
        assert_eq!(r.barriers, 1);
        assert!(r.scratch_accesses >= 2);
    }

    #[test]
    fn blocks_queue_beyond_residency() {
        // 12 blocks on 4 CUs with room for 2 contexts (tpb=2 → 1
        // resident block per CU): blocks launch in waves.
        let k = CounterKernel { blocks: 12, tpb: 2, n: 2, class: OpClass::Paired };
        let mut b = FixedLat::default();
        let p = EngineParams {
            num_cus: 4,
            max_contexts_per_cu: 2,
            model: MemoryModel::Drf0,
            ..Default::default()
        };
        let r = run_kernel(&k, &p, &mut b);
        k.validate(&r.memory).unwrap();
    }

    /// Two-phase kernel across blocks: phase 1 writes, GlobalBarrier,
    /// phase 2 reads what another block wrote.
    struct TwoPhase;

    struct TwoPhaseItem {
        id: usize,
        total: usize,
        step: usize,
    }

    impl WorkItem for TwoPhaseItem {
        fn next(&mut self, last: Option<Value>) -> Op {
            self.step += 1;
            match self.step {
                1 => Op::Store { addr: self.id as u64, value: 7, class: OpClass::Data },
                2 => Op::GlobalBarrier,
                // Read the slot of the "next" work item, which lives in
                // a different block.
                3 => Op::Load { addr: ((self.id + 1) % self.total) as u64, class: OpClass::Data },
                4 => Op::Store {
                    addr: (self.total + self.id) as u64,
                    value: last.unwrap(),
                    class: OpClass::Data,
                },
                _ => Op::Done,
            }
        }
    }

    impl Kernel for TwoPhase {
        fn name(&self) -> String {
            "two_phase".into()
        }
        fn blocks(&self) -> usize {
            4
        }
        fn threads_per_block(&self) -> usize {
            1
        }
        fn memory_words(&self) -> usize {
            8
        }
        fn item(&self, b: usize, t: usize) -> Box<dyn WorkItem> {
            Box::new(TwoPhaseItem { id: b + t, total: 4, step: 0 })
        }
    }

    #[test]
    fn global_barrier_separates_grid_phases() {
        let mut b = FixedLat::default();
        let r = run_kernel(&TwoPhase, &params(MemoryModel::Drf0), &mut b);
        // Every phase-2 read saw the phase-1 value from another block.
        for i in 4..8 {
            assert_eq!(r.memory[i], 7);
        }
        assert_eq!(r.barriers, 1);
        // Kernel-boundary semantics: every CU flushed and invalidated.
        assert!(b.releases >= 4);
        assert!(b.acquires >= 4);
    }

    #[test]
    #[should_panic(expected = "every block to be resident")]
    fn global_barrier_rejects_queued_blocks() {
        struct K;
        struct I {
            step: usize,
        }
        impl WorkItem for I {
            fn next(&mut self, _l: Option<Value>) -> Op {
                self.step += 1;
                match self.step {
                    1 => Op::GlobalBarrier,
                    _ => Op::Done,
                }
            }
        }
        impl Kernel for K {
            fn name(&self) -> String {
                "bad".into()
            }
            fn blocks(&self) -> usize {
                8
            }
            fn threads_per_block(&self) -> usize {
                2
            }
            fn memory_words(&self) -> usize {
                1
            }
            fn item(&self, _b: usize, _t: usize) -> Box<dyn WorkItem> {
                Box::new(I { step: 0 })
            }
        }
        // 2 CUs x 2 contexts: only 2 of 8 blocks resident.
        let p = EngineParams {
            num_cus: 2,
            max_contexts_per_cu: 2,
            model: MemoryModel::Drf0,
            ..Default::default()
        };
        let mut b = FixedLat::default();
        run_kernel(&K, &p, &mut b);
    }

    #[test]
    fn explicit_drf_policy_matches_model_derived_run() {
        for model in MemoryModel::ALL {
            let k = CounterKernel { blocks: 4, tpb: 4, n: 8, class: OpClass::Commutative };
            let mut b1 = FixedLat::default();
            let implicit = run_kernel(&k, &params(model), &mut b1);
            let mut b2 = FixedLat::default();
            // params.model deliberately disagrees: the policy must win.
            let p = EngineParams { model: MemoryModel::Drf0, ..params(model) };
            let explicit = run_kernel_policy(&k, &p, &mut b2, &DrfPolicy(model));
            assert_eq!(implicit, explicit);
        }
    }

    #[test]
    fn paired_atomics_fence_outstanding_relaxed_ones() {
        // One item: two relaxed RMWs then a paired store. The paired
        // store's release must start no earlier than the atomics'
        // completions (checked indirectly: total cycles exceed the
        // relaxed completions).
        struct Item {
            step: usize,
        }
        impl WorkItem for Item {
            fn next(&mut self, _last: Option<Value>) -> Op {
                self.step += 1;
                match self.step {
                    1 | 2 => Op::Rmw {
                        addr: 0,
                        rmw: RmwKind::Add,
                        operand: 1,
                        class: OpClass::Commutative,
                        use_result: false,
                    },
                    3 => Op::Store { addr: 1, value: 1, class: OpClass::Paired },
                    _ => Op::Done,
                }
            }
        }
        struct K;
        impl Kernel for K {
            fn name(&self) -> String {
                "fence".into()
            }
            fn blocks(&self) -> usize {
                1
            }
            fn threads_per_block(&self) -> usize {
                1
            }
            fn memory_words(&self) -> usize {
                2
            }
            fn item(&self, _b: usize, _t: usize) -> Box<dyn WorkItem> {
                Box::new(Item { step: 0 })
            }
        }
        let mut b = FixedLat::default();
        let r = run_kernel(&K, &params(MemoryModel::Drfrlx), &mut b);
        // Relaxed RMWs complete at ~51, 52; release adds 20; the store
        // 50 → well past 120.
        assert!(r.cycles >= 50 + 20 + 50, "got {}", r.cycles);
        assert_eq!(b.releases, 1);
    }

    #[test]
    fn jitter_none_and_zero_delay_match_legacy_timing() {
        let k = CounterKernel { blocks: 4, tpb: 4, n: 8, class: OpClass::Commutative };
        let mut b0 = FixedLat::default();
        let base = run_kernel(&k, &params(MemoryModel::Drf0), &mut b0);
        let mut b1 = FixedLat::default();
        let p = EngineParams {
            jitter: Some(IssueJitter { seed: 42, max_delay: 0 }),
            ..params(MemoryModel::Drf0)
        };
        let zero = run_kernel(&k, &p, &mut b1);
        assert_eq!(base, zero, "max_delay=0 must not perturb the schedule");
    }

    #[test]
    fn jitter_perturbs_timing_but_not_function() {
        let k = CounterKernel { blocks: 4, tpb: 4, n: 8, class: OpClass::Commutative };
        let mut b0 = FixedLat::default();
        let base = run_kernel(&k, &params(MemoryModel::Drf0), &mut b0);
        let mut b1 = FixedLat::default();
        let p = EngineParams {
            jitter: Some(IssueJitter { seed: 1, max_delay: 13 }),
            ..params(MemoryModel::Drf0)
        };
        let jit = run_kernel(&k, &p, &mut b1);
        k.validate(&jit.memory).unwrap();
        assert_ne!(base.cycles, jit.cycles, "jitter should move the schedule");
        // Same seed, same run: fully reproducible.
        let mut b2 = FixedLat::default();
        let again = run_kernel(&k, &p, &mut b2);
        assert_eq!(jit, again);
    }

    #[test]
    fn jittered_heap_matches_reference_scheduler() {
        for seed in [1u64, 7, 1234] {
            let k = CounterKernel { blocks: 6, tpb: 3, n: 5, class: OpClass::Unpaired };
            let p = EngineParams {
                num_cus: 3,
                max_contexts_per_cu: 6,
                model: MemoryModel::Drfrlx,
                jitter: Some(IssueJitter { seed, max_delay: 9 }),
                ..Default::default()
            };
            let mut bh = FixedLat::default();
            let heap = run_kernel(&k, &p, &mut bh);
            let mut bl = FixedLat::default();
            let linear = run_kernel_reference(&k, &p, &mut bl);
            assert_eq!(heap, linear, "schedulers diverged under jitter seed {seed}");
        }
    }
}
