//! The work-item instruction representation.

use crate::{Addr, Value};
use drfrlx_core::OpClass;

/// Read-modify-write operations available to work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwKind {
    /// `new = old + k`.
    Add,
    /// `new = old - k`.
    Sub,
    /// `new = min(old, k)`, ordering signed — memory words are bit
    /// patterns, and the litmus pipeline's value domain is `i64`.
    Min,
    /// `new = max(old, k)`, ordering signed (see [`RmwKind::Min`]).
    Max,
    /// `new = old & k`.
    And,
    /// `new = old | k`.
    Or,
    /// `new = old ^ k`.
    Xor,
    /// `new = k`.
    Exchange,
    /// `new = if old == expected { k } else { old }`.
    Cas {
        /// Expected value.
        expected: Value,
    },
}

impl RmwKind {
    /// Apply the operation.
    pub fn apply(self, old: Value, k: Value) -> Value {
        match self {
            RmwKind::Add => old.wrapping_add(k),
            RmwKind::Sub => old.wrapping_sub(k),
            RmwKind::Min => (old as i64).min(k as i64) as Value,
            RmwKind::Max => (old as i64).max(k as i64) as Value,
            RmwKind::And => old & k,
            RmwKind::Or => old | k,
            RmwKind::Xor => old ^ k,
            RmwKind::Exchange => k,
            RmwKind::Cas { expected } => {
                if old == expected {
                    k
                } else {
                    old
                }
            }
        }
    }
}

/// One operation issued by a work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Busy ALU work for `0` or more cycles.
    Think(u32),
    /// Global load; the value arrives as `last` on the next call.
    Load {
        /// Word address.
        addr: Addr,
        /// Consistency annotation.
        class: OpClass,
    },
    /// Global store.
    Store {
        /// Word address.
        addr: Addr,
        /// Value to write.
        value: Value,
        /// Consistency annotation.
        class: OpClass,
    },
    /// Atomic read-modify-write. With `use_result: false` the old value
    /// is discarded and — under a model that relaxes this class — the
    /// operation may overlap with other atomics in the memory system.
    Rmw {
        /// Word address.
        addr: Addr,
        /// Modify function.
        rmw: RmwKind,
        /// Operand.
        operand: Value,
        /// Consistency annotation.
        class: OpClass,
        /// Does the work item consume the old value?
        use_result: bool,
    },
    /// Per-block scratchpad load (value arrives as `last`).
    ScratchLoad {
        /// Scratchpad word index.
        addr: Addr,
    },
    /// Per-block scratchpad store.
    ScratchStore {
        /// Scratchpad word index.
        addr: Addr,
        /// Value to write.
        value: Value,
    },
    /// Block-level barrier (like `__syncthreads`): waits for every
    /// work item of the block; orders scratchpad accesses; waits for
    /// the context's own outstanding atomics.
    Barrier,
    /// Grid-wide barrier modelling a kernel-relaunch boundary (how
    /// Pannotia-style benchmarks synchronize between phases): every
    /// context flushes its store buffer (release), waits, and resumes
    /// after an L1 self-invalidation (acquire) plus a fixed relaunch
    /// latency. Requires every block to be resident.
    GlobalBarrier,
    /// The work item is finished.
    Done,
}

/// A running work item: a deterministic state machine emitting one
/// [`Op`] at a time. `last` carries the result of the previous
/// operation when it produces one (loads, scratch loads, RMWs with
/// `use_result`), else `None`.
pub trait WorkItem {
    /// Produce the next operation.
    fn next(&mut self, last: Option<Value>) -> Op;
}

/// A kernel: a grid of blocks of work items plus its memory image.
///
/// Kernels are immutable descriptions (work items hold all per-run
/// state), so the trait requires `Send + Sync`: the sweep engine in
/// `hsim-sys` shares one kernel across worker threads and runs every
/// configuration against it concurrently.
pub trait Kernel: Send + Sync {
    /// Kernel name (for reports).
    fn name(&self) -> String;
    /// Number of thread blocks.
    fn blocks(&self) -> usize;
    /// Work items per block.
    fn threads_per_block(&self) -> usize;
    /// Scratchpad words per block.
    fn scratch_words(&self) -> usize {
        0
    }
    /// Size of the global memory image in words.
    fn memory_words(&self) -> usize;
    /// Initialize the memory image (defaults to zeros).
    fn init_memory(&self, _mem: &mut [Value]) {}
    /// Create the work item for `(block, thread)`.
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem>;
    /// Check the final memory image for functional correctness.
    ///
    /// # Errors
    ///
    /// Describes the first mismatch found.
    fn validate(&self, _mem: &[Value]) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_kinds_apply() {
        assert_eq!(RmwKind::Add.apply(3, 4), 7);
        assert_eq!(RmwKind::Sub.apply(3, 4), u64::MAX);
        assert_eq!(RmwKind::Min.apply(3, 4), 3);
        assert_eq!(RmwKind::Max.apply(3, 4), 4);
        assert_eq!(RmwKind::And.apply(6, 3), 2);
        assert_eq!(RmwKind::Or.apply(6, 3), 7);
        assert_eq!(RmwKind::Xor.apply(6, 3), 5);
        assert_eq!(RmwKind::Exchange.apply(6, 3), 3);
        assert_eq!(RmwKind::Cas { expected: 6 }.apply(6, 3), 3);
        assert_eq!(RmwKind::Cas { expected: 5 }.apply(6, 3), 6);
    }
}
