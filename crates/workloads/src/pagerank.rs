//! PageRank (Pannotia-style push variant, §4.4, Table 3).
//!
//! Each iteration, every thread pushes its vertices' rank contributions
//! into the neighbours' next-rank accumulators with **commutative**
//! fetch-adds, then the grid synchronizes through paired counters and
//! swaps rank buffers. High data reuse (adjacency + ranks re-read every
//! iteration) plus frequent atomics is exactly the combination where
//! DRF1's avoided invalidations and DRFrlx's overlap pay off the most
//! in the paper (Figure 4).
//!
//! Arithmetic is 2^12 fixed point so the parallel result is exactly the
//! sequential oracle's (integer addition commutes).

use crate::graphs::Csr;
use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Op, RmwKind, Value, WorkItem};

/// Fixed-point scale.
pub const SCALE: u64 = 1 << 12;
/// Damping factor numerator (0.85 in fixed point).
pub const DAMP: u64 = (85 * SCALE) / 100;

/// The PageRank kernel over one graph.
#[derive(Debug, Clone)]
pub struct PageRank {
    graph: Csr,
    /// Iterations.
    pub iters: usize,
    /// Thread blocks.
    pub blocks: usize,
    /// Threads per block.
    pub tpb: usize,
    /// Track the per-iteration rank residual in a shared accumulator —
    /// the Split Counter use case (§3.4) inside a benchmark: updaters
    /// add |Δrank| with `residual_class` atomics and thread 0 reads the
    /// approximate total each iteration to judge convergence.
    pub track_residual: bool,
    /// Class of the residual accumulator operations (Quantum per the
    /// use case; Paired for the conservative baseline in the ablation).
    pub residual_class: OpClass,
}

/// Memory map.
struct Map {
    n: usize,
}

impl Map {
    fn rank(&self, v: usize) -> u64 {
        v as u64
    }
    fn next(&self, v: usize) -> u64 {
        (self.n + v) as u64
    }
    fn offsets(&self, v: usize) -> u64 {
        (2 * self.n + v) as u64
    }
    fn edges(&self, e: usize) -> u64 {
        (3 * self.n + 1 + e) as u64
    }
    fn residual(&self, edges: usize) -> u64 {
        // Own cache line past the edge array.
        ((3 * self.n + 1 + edges).div_ceil(16) * 16) as u64
    }
    fn words(&self, edges: usize) -> usize {
        self.residual(edges) as usize + 1
    }
}

impl PageRank {
    /// Build over a graph.
    pub fn new(graph: Csr, iters: usize, blocks: usize, tpb: usize) -> PageRank {
        PageRank {
            graph,
            iters,
            blocks,
            tpb,
            track_residual: false,
            residual_class: OpClass::Quantum,
        }
    }

    /// The graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    fn map(&self) -> Map {
        Map { n: self.graph.verts() }
    }

    fn threads(&self) -> usize {
        self.blocks * self.tpb
    }

    /// Sequential oracle with identical fixed-point arithmetic;
    /// returns (ranks, total residual across iterations).
    pub fn oracle_full(&self) -> (Vec<Value>, Value) {
        let n = self.graph.verts();
        let mut rank = vec![SCALE; n];
        let mut next = vec![0u64; n];
        let mut residual = 0u64;
        for _ in 0..self.iters {
            for (v, &rank_v) in rank.iter().enumerate() {
                let deg = self.graph.degree(v).max(1) as u64;
                let contrib = rank_v / deg;
                for &u in self.graph.neighbors(v) {
                    next[u as usize] += contrib;
                }
            }
            for v in 0..n {
                let new = (SCALE - DAMP) + (DAMP * next[v]) / SCALE;
                residual += new.abs_diff(rank[v]);
                rank[v] = new;
                next[v] = 0;
            }
        }
        (rank, residual)
    }

    /// Sequential oracle with identical fixed-point arithmetic.
    pub fn oracle(&self) -> Vec<Value> {
        self.oracle_full().0
    }
}

enum PrPhase {
    /// Push phase: fetch offsets[v] (data load from simulated memory).
    Off0(usize, usize),
    /// last = offsets[v]; fetch offsets[v + 1].
    Off1(usize, usize),
    /// last = offsets[v+1]; fetch rank[v]. Carries off0.
    RankLd(usize, usize, u64),
    /// last = rank[v]; compute the contribution. Carries (off0, off1).
    Contrib(usize, usize, u64, u64),
    /// Per-edge: fetch edges[e] (data). Carries (e, end, contrib).
    EdgeLd(usize, usize, u64, u64, Value),
    /// last = neighbour id: push the contribution, then next edge.
    EdgeAdd(usize, usize, u64, u64, Value),
    /// Kernel-relaunch boundary between phases.
    SyncEnter(usize, usize),
    SyncDone(usize, usize),
    /// Apply next → rank: (iteration, owned cursor).
    ApplyLoad(usize, usize),
    /// last = next[v]; read the old rank (residual tracking only);
    /// carries acc.
    ApplyOldRank(usize, usize),
    /// Store the new rank; carries (new_rank, residual delta).
    ApplyStore(usize, usize, Value, Value),
    ApplyClear(usize, usize, Value),
    /// Push the accumulated |Δrank| into the shared residual.
    ApplyResidual(usize, usize, Value),
    /// Thread 0's approximate convergence peek before the barrier.
    ResidualPeek(usize),
    Done,
}

struct PrItem {
    map: Map,
    edges: usize,
    verts: usize,
    tid: usize,
    threads: usize,
    iters: usize,
    residual_class: Option<OpClass>,
    phase: PrPhase,
}

impl PrItem {
    fn owned(&self, cursor: usize) -> Option<usize> {
        // Contiguous block partitioning: thread t owns vertices
        // [t*chunk, (t+1)*chunk). Mesh-like graphs then keep most
        // neighbour updates within the owning CU — the locality DeNovo's
        // ownership exploits (Pannotia partitions the same way).
        let chunk = self.verts.div_ceil(self.threads);
        let v = self.tid * chunk + cursor;
        (cursor < chunk && v < self.verts).then_some(v)
    }
}

impl WorkItem for PrItem {
    fn next(&mut self, last: Option<Value>) -> Op {
        loop {
            match self.phase {
                PrPhase::Off0(it, cur) => {
                    let Some(v) = self.owned(cur) else {
                        self.phase = PrPhase::SyncEnter(it, 0);
                        continue;
                    };
                    self.phase = PrPhase::Off1(it, cur);
                    return Op::Load { addr: self.map.offsets(v), class: OpClass::Data };
                }
                PrPhase::Off1(it, cur) => {
                    let off0 = last.unwrap_or(0);
                    let v = self.owned(cur).expect("cursor valid");
                    self.phase = PrPhase::RankLd(it, cur, off0);
                    return Op::Load { addr: self.map.offsets(v + 1), class: OpClass::Data };
                }
                PrPhase::RankLd(it, cur, off0) => {
                    let off1 = last.unwrap_or(0);
                    let v = self.owned(cur).expect("cursor valid");
                    self.phase = PrPhase::Contrib(it, cur, off0, off1);
                    return Op::Load { addr: self.map.rank(v), class: OpClass::Data };
                }
                PrPhase::Contrib(it, cur, off0, off1) => {
                    let rank = last.unwrap_or(0);
                    let deg = off1.saturating_sub(off0).max(1);
                    self.phase = PrPhase::EdgeLd(it, cur, off0, off1, rank / deg);
                }
                PrPhase::EdgeLd(it, cur, e, end, contrib) => {
                    if e >= end {
                        self.phase = PrPhase::Off0(it, cur + 1);
                        continue;
                    }
                    self.phase = PrPhase::EdgeAdd(it, cur, e, end, contrib);
                    return Op::Load { addr: self.map.edges(e as usize), class: OpClass::Data };
                }
                PrPhase::EdgeAdd(it, cur, e, end, contrib) => {
                    let u = last.unwrap_or(0) as usize;
                    self.phase = PrPhase::EdgeLd(it, cur, e + 1, end, contrib);
                    return Op::Rmw {
                        addr: self.map.next(u),
                        rmw: RmwKind::Add,
                        operand: contrib,
                        class: OpClass::Commutative,
                        use_result: false,
                    };
                }
                PrPhase::SyncEnter(it, half) => {
                    self.phase = PrPhase::SyncDone(it, half);
                    return Op::GlobalBarrier;
                }
                PrPhase::SyncDone(it, half) => {
                    self.phase = if half == 0 {
                        PrPhase::ApplyLoad(it, 0)
                    } else if it + 1 < self.iters {
                        PrPhase::Off0(it + 1, 0)
                    } else {
                        PrPhase::Done
                    };
                }
                PrPhase::ApplyLoad(it, cur) => {
                    let Some(v) = self.owned(cur) else {
                        self.phase = if self.residual_class.is_some() && self.tid == 0 {
                            PrPhase::ResidualPeek(it)
                        } else {
                            PrPhase::SyncEnter(it, 1)
                        };
                        continue;
                    };
                    self.phase = PrPhase::ApplyOldRank(it, cur);
                    return Op::Load { addr: self.map.next(v), class: OpClass::Data };
                }
                PrPhase::ApplyOldRank(it, cur) => {
                    let acc = last.unwrap_or(0);
                    let new_rank = (SCALE - DAMP) + (DAMP * acc) / SCALE;
                    let v = self.owned(cur).expect("cursor valid");
                    if self.residual_class.is_none() {
                        // No residual tracking: skip the old-rank read.
                        self.phase = PrPhase::ApplyStore(it, cur, new_rank, 0);
                        continue;
                    }
                    self.phase = PrPhase::ApplyStore(it, cur, new_rank, u64::MAX);
                    return Op::Load { addr: self.map.rank(v), class: OpClass::Data };
                }
                PrPhase::ApplyStore(it, cur, new_rank, delta) => {
                    let v = self.owned(cur).expect("cursor valid");
                    let delta = if delta == u64::MAX {
                        new_rank.abs_diff(last.unwrap_or(0))
                    } else {
                        delta
                    };
                    self.phase = PrPhase::ApplyClear(it, cur, delta);
                    return Op::Store {
                        addr: self.map.rank(v),
                        value: new_rank,
                        class: OpClass::Data,
                    };
                }
                PrPhase::ApplyClear(it, cur, delta) => {
                    let v = self.owned(cur).expect("cursor valid");
                    self.phase = if self.residual_class.is_some() && delta > 0 {
                        PrPhase::ApplyResidual(it, cur, delta)
                    } else {
                        PrPhase::ApplyLoad(it, cur + 1)
                    };
                    return Op::Store { addr: self.map.next(v), value: 0, class: OpClass::Data };
                }
                PrPhase::ApplyResidual(it, cur, delta) => {
                    let class = self.residual_class.expect("residual tracking on");
                    self.phase = PrPhase::ApplyLoad(it, cur + 1);
                    return Op::Rmw {
                        addr: self.map.residual(self.edges),
                        rmw: RmwKind::Add,
                        operand: delta,
                        class,
                        use_result: false,
                    };
                }
                PrPhase::ResidualPeek(it) => {
                    // Approximate convergence check: a quantum load may
                    // see a partial total — exactly what the use case
                    // tolerates.
                    self.phase = PrPhase::SyncEnter(it, 1);
                    return Op::Load {
                        addr: self.map.residual(self.edges),
                        class: self.residual_class.expect("residual tracking on"),
                    };
                }
                PrPhase::Done => return Op::Done,
            }
        }
    }
}

impl Kernel for PageRank {
    fn name(&self) -> String {
        format!("PR[{}]", self.graph.name)
    }
    fn blocks(&self) -> usize {
        self.blocks
    }
    fn threads_per_block(&self) -> usize {
        self.tpb
    }
    fn memory_words(&self) -> usize {
        self.map().words(self.graph.num_edges())
    }
    fn init_memory(&self, mem: &mut [Value]) {
        let m = self.map();
        let n = self.graph.verts();
        for v in 0..n {
            mem[m.rank(v) as usize] = SCALE;
            mem[m.offsets(v) as usize] = self.graph.offsets[v] as Value;
        }
        mem[m.offsets(n) as usize] = self.graph.offsets[n] as Value;
        for (e, &u) in self.graph.edges.iter().enumerate() {
            mem[m.edges(e) as usize] = u as Value;
        }
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        Box::new(PrItem {
            map: self.map(),
            edges: self.graph.num_edges(),
            verts: self.graph.verts(),
            tid: block * self.tpb + thread,
            threads: self.threads(),
            iters: self.iters,
            residual_class: self.track_residual.then_some(self.residual_class),
            phase: PrPhase::Off0(0, 0),
        })
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        let m = self.map();
        let (oracle, residual) = self.oracle_full();
        for (v, &expect) in oracle.iter().enumerate() {
            let got = mem[m.rank(v) as usize];
            if got != expect {
                return Err(format!("rank[{v}]: expected {expect}, got {got}"));
            }
        }
        if self.track_residual {
            // Every |Δrank| is added exactly once (atomicity is never
            // relaxed), so the final total is exact even though
            // mid-flight quantum reads are approximate.
            let got = mem[m.residual(self.graph.num_edges()) as usize];
            if got != residual {
                return Err(format!("residual: expected {residual}, got {got}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs;
    use drfrlx_core::SystemConfig;
    use hsim_sys::{run_workload, SysParams};

    fn tiny() -> PageRank {
        PageRank::new(graphs::mesh_like("tiny", 6, 4), 2, 4, 4)
    }

    #[test]
    fn oracle_conserves_mass_roughly() {
        let pr = tiny();
        let ranks = pr.oracle();
        let total: u64 = ranks.iter().sum();
        let n = pr.graph().verts() as u64;
        // Fixed-point truncation loses a little mass but stays near n.
        assert!(total > n * SCALE / 2 && total < n * SCALE * 2, "total {total}");
    }

    #[test]
    fn pagerank_matches_oracle_on_every_config() {
        let pr = tiny();
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&pr, cfg, &params);
            pr.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn residual_tracking_is_exact_and_valid_everywhere() {
        let mut pr = PageRank::new(graphs::mesh_like("t", 8, 6), 2, 4, 4);
        pr.track_residual = true;
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&pr, cfg, &params);
            pr.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
        // The residual really is nonzero (ranks move).
        let (_, residual) = pr.oracle_full();
        assert!(residual > 0);
    }

    #[test]
    fn drf1_beats_drf0_on_pagerank() {
        let pr = PageRank::new(graphs::mesh_like("m", 10, 8), 2, 8, 4);
        let params = SysParams::integrated();
        let gd0 = run_workload(&pr, SystemConfig::from_abbrev("GD0").unwrap(), &params);
        let gd1 = run_workload(&pr, SystemConfig::from_abbrev("GD1").unwrap(), &params);
        assert!(
            gd1.cycles < gd0.cycles,
            "avoided invalidations must help: GD1 {} !< GD0 {}",
            gd1.cycles,
            gd0.cycles
        );
    }
}
