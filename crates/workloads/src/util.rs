//! Small deterministic utilities shared by workloads.

/// SplitMix64: deterministic, seedable, and good enough for synthetic
/// inputs (we avoid `rand` in kernels themselves so a workload is a
/// pure function of its parameters).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }
}
