//! The Table 3 registry: every workload with its paper input, the
//! scaled input we simulate, and the relaxed-atomic classes it uses.

use crate::bc::Bc;
use crate::graphs;
use crate::micro::{
    Flags, Hist, HistGlobal, HistGlobalNonOrder, RefCounter, Seqlocks, SplitCounter,
};
use crate::pagerank::PageRank;
use crate::uts::Uts;
use drfrlx_core::{OpClass, SystemConfig};
use hsim_gpu::Kernel;
use hsim_sys::{six_config_jobs, SimJob, SysParams};
use std::sync::Arc;

/// One row of Table 3.
pub struct WorkloadSpec {
    /// Short name as the paper prints it (H, HG, HG-NO, Flags, SC, RC,
    /// SEQ, UTS, BC-1..4, PR-1..4).
    pub name: &'static str,
    /// Is this a microbenchmark (Figure 3) or benchmark (Figure 4)?
    pub micro: bool,
    /// The paper's input description.
    pub paper_input: &'static str,
    /// Our scaled input description.
    pub scaled_input: String,
    /// Atomic classes used.
    pub classes: &'static [OpClass],
    /// Kernel constructor.
    pub build: Box<dyn Fn() -> Box<dyn Kernel> + Send + Sync>,
}

impl WorkloadSpec {
    /// Instantiate the kernel.
    pub fn kernel(&self) -> Box<dyn Kernel> {
        (self.build)()
    }

    /// Instantiate the kernel behind an [`Arc`] so one instance can be
    /// shared by every [`SimJob`] of a sweep.
    pub fn shared_kernel(&self) -> Arc<dyn Kernel> {
        Arc::from(self.kernel())
    }

    /// One validated simulation job for this workload.
    pub fn job(&self, config: SystemConfig, params: &SysParams) -> SimJob {
        SimJob::new(self.name, self.shared_kernel(), config, params)
    }

    /// Validated jobs for this workload under all six paper
    /// configurations (GD0..DDR), sharing one kernel instance.
    pub fn six_jobs(&self, params: &SysParams) -> Vec<SimJob> {
        six_config_jobs(self.name, self.shared_kernel(), params, true)
    }
}

fn spec(
    name: &'static str,
    micro: bool,
    paper_input: &'static str,
    scaled_input: impl Into<String>,
    classes: &'static [OpClass],
    build: impl Fn() -> Box<dyn Kernel> + Send + Sync + 'static,
) -> WorkloadSpec {
    WorkloadSpec {
        name,
        micro,
        paper_input,
        scaled_input: scaled_input.into(),
        classes,
        build: Box::new(build),
    }
}

/// The seven microbenchmarks (Figure 3's x-axis).
pub fn microbenchmarks() -> Vec<WorkloadSpec> {
    use OpClass::*;
    vec![
        spec("H", true, "256 KB, 256 bins", "61K values, 256 bins", &[Commutative], || {
            Box::new(Hist::new(crate::micro::HistParams { per_thread: 256, ..Default::default() }))
        }),
        spec("HG", true, "256 KB, 256 bins", "15K values, 256 bins", &[Commutative], || {
            Box::new(HistGlobal::default())
        }),
        spec("HG-NO", true, "256 KB, 256 bins", "240 readers x 256 bins", &[NonOrdering], || {
            Box::new(HistGlobalNonOrder::default())
        }),
        spec(
            "Flags",
            true,
            "90 thread blocks",
            "15 blocks x 16 threads",
            &[Commutative, NonOrdering],
            || Box::new(Flags::default()),
        ),
        spec("SC", true, "112 thread blocks", "14 blocks x 16 threads", &[Quantum], || {
            Box::new(SplitCounter::default())
        }),
        spec("RC", true, "64 thread blocks", "15 blocks x 16 threads", &[Quantum], || {
            Box::new(RefCounter::default())
        }),
        spec("SEQ", true, "512 thread blocks", "15 blocks x 16 threads", &[Speculative], || {
            Box::new(Seqlocks::default())
        }),
    ]
}

/// The benchmarks (Figure 4's x-axis): UTS, BC over four graphs,
/// PageRank over four graphs.
pub fn benchmarks() -> Vec<WorkloadSpec> {
    use OpClass::*;
    let mut out =
        vec![spec("UTS", false, "16K nodes", "2K nodes, geometric tree", &[Unpaired], || {
            Box::new(Uts::scaled(2048, 15, 16))
        })];
    for (i, g) in graphs::bc_inputs().into_iter().enumerate() {
        let name: &'static str = ["BC-1", "BC-2", "BC-3", "BC-4"][i];
        let paper: &'static str = ["rome99", "nasa1824", "ex33", "c-22"][i];
        let desc = format!("{} ({} verts, {} edges)", g.name, g.verts(), g.num_edges());
        out.push(spec(name, false, paper, desc, &[Commutative, NonOrdering], move || {
            Box::new(Bc::new(g.clone(), 15, 16))
        }));
    }
    for (i, g) in graphs::pr_inputs().into_iter().enumerate() {
        let name: &'static str = ["PR-1", "PR-2", "PR-3", "PR-4"][i];
        let paper: &'static str = ["c-37", "c-36", "ex3", "c-40"][i];
        let desc = format!("{} ({} verts, {} edges)", g.name, g.verts(), g.num_edges());
        out.push(spec(name, false, paper, desc, &[Commutative], move || {
            Box::new(PageRank::new(g.clone(), 2, 15, 16))
        }));
    }
    out
}

/// All workloads (Table 3 order).
pub fn all_workloads() -> Vec<WorkloadSpec> {
    let mut v = microbenchmarks();
    v.extend(benchmarks());
    v
}

/// The nine atomic-heavy applications of the Figure 1 motivation
/// experiment (one representative input per benchmark family), in
/// Table 3 order.
pub fn figure1_workloads() -> Vec<WorkloadSpec> {
    const FIG1: [&str; 9] = ["H", "HG", "Flags", "SC", "RC", "SEQ", "UTS", "BC-4", "PR-2"];
    all_workloads().into_iter().filter(|s| FIG1.contains(&s.name)).collect()
}

/// Extension workloads beyond the paper's Table 3 (kept out of the
/// figure harnesses for fidelity): SSSP, Pannotia's other
/// relaxed-atomic graph benchmark.
pub fn extensions() -> Vec<WorkloadSpec> {
    use OpClass::*;
    let mut out = Vec::new();
    for (i, g) in
        [graphs::mesh_like("sssp-mesh", 24, 20), graphs::contact_like("sssp-contact", 640, 3, 41)]
            .into_iter()
            .enumerate()
    {
        let name: &'static str = ["SSSP-1", "SSSP-2"][i];
        let desc = format!("{} ({} verts, {} edges)", g.name, g.verts(), g.num_edges());
        out.push(spec(name, false, "(extension)", desc, &[Commutative, NonOrdering], move || {
            Box::new(crate::sssp::Sssp::new(g.clone(), 15, 16))
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table3() {
        let all = all_workloads();
        assert_eq!(all.len(), 7 + 1 + 4 + 4);
        let names: Vec<&str> = all.iter().map(|s| s.name).collect();
        for expected in ["H", "HG", "HG-NO", "Flags", "SC", "RC", "SEQ", "UTS", "BC-1", "PR-4"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // Classes per Table 3.
        let by_name = |n: &str| all.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("UTS").classes, &[OpClass::Unpaired]);
        assert_eq!(by_name("SC").classes, &[OpClass::Quantum]);
        assert_eq!(by_name("SEQ").classes, &[OpClass::Speculative]);
        assert!(by_name("BC-1").classes.contains(&OpClass::NonOrdering));
        assert_eq!(by_name("PR-1").classes, &[OpClass::Commutative]);
    }

    #[test]
    fn every_spec_builds_a_kernel() {
        for s in all_workloads() {
            let k = s.kernel();
            assert!(k.blocks() > 0, "{}", s.name);
            assert!(k.memory_words() > 0, "{}", s.name);
        }
    }
}
