//! Synthetic graph generators — the substitute for the paper's Matrix
//! Market inputs (§4.4: rome99, nasa1824, ex33, c-22 for BC; c-37,
//! c-36, ex3, c-40 for PageRank).
//!
//! BC/PageRank behaviour in the paper is driven by graph *shape* —
//! degree distribution (atomic contention per vertex) and size
//! (cache-resident or not) — so each generator reproduces one shape
//! class from the Davis & Hu collection:
//!
//! * [`road_like`] — rome99: road network; low, near-uniform degree,
//!   large diameter.
//! * [`mesh_like`] — nasa1824/ex33/ex3: FEM meshes; moderate regular
//!   degree, strong locality.
//! * [`contact_like`] — c-22/c-36/c-37/c-40: optimization/contact
//!   matrices; skewed degree with a few hub rows (contention
//!   hotspots).
//!
//! All generators are deterministic in their parameters.

use crate::util::SplitMix64;

/// A graph in compressed sparse row form.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Name (for reports).
    pub name: String,
    /// Row offsets (`verts + 1` entries).
    pub offsets: Vec<u32>,
    /// Column indices.
    pub edges: Vec<u32>,
}

impl Csr {
    /// Number of vertices.
    pub fn verts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Neighbours of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.edges[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Maximum degree (contention indicator).
    pub fn max_degree(&self) -> usize {
        (0..self.verts()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    fn from_adj(name: &str, adj: Vec<Vec<u32>>) -> Csr {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let mut edges = Vec::new();
        offsets.push(0);
        for mut row in adj {
            row.sort_unstable();
            row.dedup();
            edges.extend_from_slice(&row);
            offsets.push(edges.len() as u32);
        }
        Csr { name: name.into(), offsets, edges }
    }
}

/// Road-network-like graph: a `w × h` grid with a sprinkle of diagonal
/// shortcuts. Degree ≈ 2–4, large diameter (rome99 stand-in).
pub fn road_like(name: &str, w: usize, h: usize, seed: u64) -> Csr {
    let n = w * h;
    let mut adj = vec![Vec::new(); n];
    let mut rng = SplitMix64::new(seed);
    let link = |adj: &mut Vec<Vec<u32>>, a: usize, b: usize| {
        adj[a].push(b as u32);
        adj[b].push(a as u32);
    };
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                link(&mut adj, v, v + 1);
            }
            if y + 1 < h {
                link(&mut adj, v, v + w);
            }
            // Occasional shortcut, like a bridge or tunnel.
            if x + 1 < w && y + 1 < h && rng.below(10) == 0 {
                link(&mut adj, v, v + w + 1);
            }
        }
    }
    Csr::from_adj(name, adj)
}

/// FEM-mesh-like graph: grid where each vertex also connects to its
/// diagonal neighbours (degree ≈ 8, strong locality — nasa1824/ex33
/// stand-in).
pub fn mesh_like(name: &str, w: usize, h: usize) -> Csr {
    let n = w * h;
    let mut adj = vec![Vec::new(); n];
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (nx, ny) = (x as i64 + dx, y as i64 + dy);
                    if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                        adj[v].push((ny as usize * w + nx as usize) as u32);
                    }
                }
            }
        }
    }
    Csr::from_adj(name, adj)
}

/// Contact/optimization-matrix-like graph: preferential attachment
/// producing a skewed degree distribution with hub vertices (c-22/c-37
/// stand-in). Hubs are the atomic-contention hotspots the paper's
/// PR-3 anomaly comes from.
pub fn contact_like(name: &str, n: usize, edges_per_vertex: usize, seed: u64) -> Csr {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut rng = SplitMix64::new(seed);
    // Endpoint pool for preferential attachment.
    let mut pool: Vec<u32> = vec![0];
    for v in 1..n {
        for _ in 0..edges_per_vertex {
            let target = pool[rng.below(pool.len() as u64) as usize] as usize;
            if target != v {
                adj[v].push(target as u32);
                adj[target].push(v as u32);
                pool.push(target as u32);
            }
            pool.push(v as u32);
        }
    }
    Csr::from_adj(name, adj)
}

/// The four BC inputs (paper: rome99, nasa1824, ex33, c-22), scaled.
pub fn bc_inputs() -> Vec<Csr> {
    vec![
        road_like("bc-1(road)", 48, 28, 11),
        mesh_like("bc-2(fem)", 38, 30),
        mesh_like("bc-3(fem)", 30, 24),
        contact_like("bc-4(contact)", 1024, 3, 13),
    ]
}

/// The four PageRank inputs (paper: c-37, c-36, ex3, c-40), scaled.
pub fn pr_inputs() -> Vec<Csr> {
    vec![
        contact_like("pr-1(contact)", 960, 3, 21),
        contact_like("pr-2(contact)", 1152, 4, 22),
        mesh_like("pr-3(fem)", 32, 26),
        contact_like("pr-4(contact)", 1344, 3, 23),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_is_consistent() {
        for g in bc_inputs().into_iter().chain(pr_inputs()) {
            assert_eq!(g.offsets[0], 0);
            assert_eq!(*g.offsets.last().unwrap() as usize, g.num_edges());
            for v in 0..g.verts() {
                assert!(g.offsets[v] <= g.offsets[v + 1], "{}: bad offsets", g.name);
                for &u in g.neighbors(v) {
                    assert!((u as usize) < g.verts(), "{}: edge out of range", g.name);
                    assert_ne!(u as usize, v, "{}: self loop", g.name);
                }
            }
        }
    }

    #[test]
    fn graphs_are_symmetric() {
        for g in bc_inputs() {
            for v in 0..g.verts() {
                for &u in g.neighbors(v) {
                    assert!(
                        g.neighbors(u as usize).contains(&(v as u32)),
                        "{}: asymmetric edge {v}->{u}",
                        g.name
                    );
                }
            }
        }
    }

    #[test]
    fn degree_shapes_match_their_classes() {
        let road = road_like("r", 24, 16, 11);
        let mesh = mesh_like("m", 20, 16);
        let contact = contact_like("c", 384, 3, 13);
        assert!(road.max_degree() <= 8, "roads are low degree");
        assert!(mesh.max_degree() == 8, "mesh interior degree is 8");
        assert!(
            contact.max_degree() > 3 * mesh.max_degree(),
            "contact graphs have hubs: max degree {}",
            contact.max_degree()
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = contact_like("c", 100, 3, 5);
        let b = contact_like("c", 100, 3, 5);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.offsets, b.offsets);
    }
}
