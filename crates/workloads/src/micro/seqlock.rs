//! Seqlocks microbenchmark (speculative use case, §3.5, Listing 6).
//!
//! A handful of writers update a multi-word payload under a sequence
//! lock; many readers speculatively load the payload with speculative
//! atomics, bracketed by a paired load of `seq` and the paired
//! "read-don't-modify-write" (`fetch_add 0`), retrying on mismatch.
//!
//! Writer and reader are the shared `seqlock` template of
//! [`drfrlx_bridge::templates`]; the same emitter, at single-section
//! scale with an observe tail, produces the litmus use-case whose
//! torn-snapshot freedom the axiomatic checkers verify exhaustively
//! (that conformance corpus is where the old in-thread tearing
//! assertion now lives). Here the reader's retry loop is unrolled to
//! its exact worst case (`reads * max_retries` attempts) with the
//! section/retry bookkeeping carried in registers, and every attempt
//! guard jumps to the thread's end once the quota of sections is done.

use drfrlx_bridge::templates::seqlock;
use drfrlx_bridge::ProgramKernel;
use drfrlx_core::program::Program;
use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Value, WorkItem};

const SEQ: u64 = 0;
const DATA_BASE: u64 = 1;

/// The Seqlocks microbenchmark (paper: 512 thread blocks).
#[derive(Debug, Clone)]
pub struct Seqlocks {
    /// Use one-sided acquire/release for the `seq` accesses instead of
    /// full paired atomics (paper footnote 7 / §7: the reader's seq
    /// accesses can be relaxed to acquire and release ordering).
    pub acqrel: bool,
    /// Thread blocks.
    pub blocks: usize,
    /// Threads per block (thread 0 of block 0 writes, the rest read).
    pub tpb: usize,
    /// Payload words.
    pub payload: usize,
    /// Updates the writer performs.
    pub writes: usize,
    /// Successful read-critical-sections per reader.
    pub reads: usize,
    /// Retry cap per read attempt (keeps worst-case runs bounded).
    pub max_retries: usize,
    kernel: ProgramKernel,
}

impl Seqlocks {
    /// Build the kernel from the `seqlock` template: one writer thread
    /// and a single reader body shared by every other grid thread.
    pub fn new(
        acqrel: bool,
        blocks: usize,
        tpb: usize,
        payload: usize,
        writes: usize,
        reads: usize,
        max_retries: usize,
    ) -> Seqlocks {
        let (acq, rel) = if acqrel {
            (OpClass::Acquire, OpClass::Release)
        } else {
            (OpClass::Paired, OpClass::Paired)
        };
        let payloads: Vec<String> = (0..payload).map(|i| format!("d{i}")).collect();
        let mut p = Program::new("SEQ");
        {
            let mut t = p.thread();
            seqlock::writer(
                &mut t,
                &seqlock::Writer {
                    lock: true,
                    lock_class: acq,
                    unlock_class: rel,
                    payload_class: OpClass::Speculative,
                    payloads: payloads.clone(),
                    writes,
                },
                // Section w publishes the snapshot `seq + i` for the
                // release value seq = 2w + 2.
                |w, i| (2 * w + 2 + i) as drfrlx_core::program::Value,
            );
        }
        let reader = seqlock::reader(
            &mut p,
            &seqlock::Reader {
                seq0_class: acq,
                seq1_class: rel,
                payload_class: OpClass::Speculative,
                payloads,
                reads,
                max_retries,
                tail: seqlock::Tail::None,
            },
        );
        p.push_thread(reader);
        let p = p.build();
        let layout: Vec<usize> = (0..blocks * tpb).map(|i| usize::from(i != 0)).collect();
        let kernel =
            ProgramKernel::grid_with_layout(&p, &layout, tpb, 1 + payload, 0, |n| match n {
                "seq" => SEQ,
                d => DATA_BASE + d[1..].parse::<u64>().unwrap(),
            });
        Seqlocks { acqrel, blocks, tpb, payload, writes, reads, max_retries, kernel }
    }
}

impl Default for Seqlocks {
    fn default() -> Self {
        Seqlocks::new(false, 15, 16, 4, 8, 8, 64)
    }
}

impl Kernel for Seqlocks {
    fn name(&self) -> String {
        self.kernel.name()
    }
    fn blocks(&self) -> usize {
        self.kernel.blocks()
    }
    fn threads_per_block(&self) -> usize {
        self.kernel.threads_per_block()
    }
    fn memory_words(&self) -> usize {
        self.kernel.memory_words()
    }
    fn init_memory(&self, mem: &mut [Value]) {
        self.kernel.init_memory(mem);
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        self.kernel.item(block, thread)
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        // Writer completed all updates: seq is even and equals 2*writes.
        let seq = mem[SEQ as usize];
        if seq != 2 * self.writes as Value {
            return Err(format!("seq: expected {}, got {seq}", 2 * self.writes));
        }
        // Final payload is the last snapshot.
        for i in 0..self.payload {
            let expect = (2 * (self.writes - 1) + 2 + i) as Value;
            let got = mem[DATA_BASE as usize + i];
            if got != expect {
                return Err(format!("payload {i}: expected {expect}, got {got}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::SystemConfig;
    use hsim_sys::{run_workload, SysParams};

    #[test]
    fn seqlock_valid_and_untorn_on_every_config() {
        let k = Seqlocks::new(false, 4, 4, 3, 4, 4, 64);
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn relaxed_speculative_loads_help() {
        let k = Seqlocks::default();
        let params = SysParams::integrated();
        let d1 = run_workload(&k, SystemConfig::from_abbrev("DD1").unwrap(), &params);
        let dr = run_workload(&k, SystemConfig::from_abbrev("DDR").unwrap(), &params);
        assert!(dr.cycles <= d1.cycles, "DDR {} > DD1 {}", dr.cycles, d1.cycles);
    }
}
