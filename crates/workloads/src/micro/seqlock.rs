//! Seqlocks microbenchmark (speculative use case, §3.5, Listing 6).
//!
//! A handful of writers update a multi-word payload under a sequence
//! lock; many readers speculatively load the payload with speculative
//! atomics, bracketed by a paired load of `seq` and the paired
//! "read-don't-modify-write" (`fetch_add 0`), retrying on mismatch.

use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Op, RmwKind, Value, WorkItem};

const SEQ: u64 = 0;
const DATA_BASE: u64 = 1;

/// The Seqlocks microbenchmark (paper: 512 thread blocks).
#[derive(Debug, Clone)]
pub struct Seqlocks {
    /// Use one-sided acquire/release for the `seq` accesses instead of
    /// full paired atomics (paper footnote 7 / §7: the reader's seq
    /// accesses can be relaxed to acquire and release ordering).
    pub acqrel: bool,
    /// Thread blocks.
    pub blocks: usize,
    /// Threads per block (thread 0 of block 0 writes, the rest read).
    pub tpb: usize,
    /// Payload words.
    pub payload: usize,
    /// Updates the writer performs.
    pub writes: usize,
    /// Successful read-critical-sections per reader.
    pub reads: usize,
    /// Retry cap per read attempt (keeps worst-case runs bounded).
    pub max_retries: usize,
}

impl Default for Seqlocks {
    fn default() -> Self {
        Seqlocks {
            acqrel: false,
            blocks: 15,
            tpb: 16,
            payload: 4,
            writes: 8,
            reads: 8,
            max_retries: 64,
        }
    }
}

enum WriterPhase {
    TryLock,
    CheckLock,
    StorePayload(usize),
    Unlock,
    Done,
}

struct Writer {
    payload: usize,
    writes_left: usize,
    seq_even: Value,
    lock_class: OpClass,
    unlock_class: OpClass,
    phase: WriterPhase,
}

impl WorkItem for Writer {
    fn next(&mut self, last: Option<Value>) -> Op {
        loop {
            match self.phase {
                WriterPhase::TryLock => {
                    if self.writes_left == 0 {
                        self.phase = WriterPhase::Done;
                        continue;
                    }
                    self.phase = WriterPhase::CheckLock;
                    return Op::Rmw {
                        addr: SEQ,
                        rmw: RmwKind::Cas { expected: self.seq_even },
                        operand: self.seq_even + 1,
                        class: self.lock_class,
                        use_result: true,
                    };
                }
                WriterPhase::CheckLock => {
                    let old = last.unwrap_or(0);
                    if old != self.seq_even {
                        // Lost the race (single writer here, so this
                        // only happens if seq drifted): resync.
                        self.seq_even = old & !1;
                        self.phase = WriterPhase::TryLock;
                        continue;
                    }
                    self.phase = WriterPhase::StorePayload(0);
                }
                WriterPhase::StorePayload(i) => {
                    if i >= self.payload {
                        self.phase = WriterPhase::Unlock;
                        continue;
                    }
                    self.phase = WriterPhase::StorePayload(i + 1);
                    let value = self.seq_even + 2 + i as Value;
                    return Op::Store {
                        addr: DATA_BASE + i as u64,
                        value,
                        class: OpClass::Speculative,
                    };
                }
                WriterPhase::Unlock => {
                    self.writes_left -= 1;
                    self.seq_even += 2;
                    self.phase = WriterPhase::TryLock;
                    return Op::Store { addr: SEQ, value: self.seq_even, class: self.unlock_class };
                }
                WriterPhase::Done => return Op::Done,
            }
        }
    }
}

enum ReaderPhase {
    Seq0,
    Payload(usize),
    Seq1,
    Check,
    Done,
}

struct Reader {
    seq0_class: OpClass,
    seq1_class: OpClass,
    payload: usize,
    reads_left: usize,
    retries: usize,
    max_retries: usize,
    seq0: Value,
    consistent: bool,
    vals: Vec<Value>,
    phase: ReaderPhase,
}

impl WorkItem for Reader {
    fn next(&mut self, last: Option<Value>) -> Op {
        loop {
            match self.phase {
                ReaderPhase::Seq0 => {
                    if self.reads_left == 0 {
                        self.phase = ReaderPhase::Done;
                        continue;
                    }
                    self.phase = ReaderPhase::Payload(0);
                    return Op::Load { addr: SEQ, class: self.seq0_class };
                }
                ReaderPhase::Payload(i) => {
                    if i == 0 {
                        self.seq0 = last.unwrap_or(0);
                        self.vals.clear();
                    } else {
                        self.vals.push(last.unwrap_or(0));
                    }
                    if i >= self.payload {
                        self.phase = ReaderPhase::Seq1;
                        continue;
                    }
                    self.phase = ReaderPhase::Payload(i + 1);
                    return Op::Load { addr: DATA_BASE + i as u64, class: OpClass::Speculative };
                }
                ReaderPhase::Seq1 => {
                    self.phase = ReaderPhase::Check;
                    // Read-don't-modify-write: fetch_add(0) on seq —
                    // release ordering in the acqrel variant (Boehm
                    // 2012 / paper footnote 7).
                    return Op::Rmw {
                        addr: SEQ,
                        rmw: RmwKind::Add,
                        operand: 0,
                        class: self.seq1_class,
                        use_result: true,
                    };
                }
                ReaderPhase::Check => {
                    let seq1 = last.unwrap_or(0);
                    let ok = seq1 == self.seq0 && self.seq0.is_multiple_of(2);
                    if ok {
                        // Speculation succeeded: the payload must be the
                        // coherent snapshot for seq0.
                        self.consistent &= self.vals.iter().enumerate().all(|(i, &v)| {
                            (self.seq0 == 0 && v == 0) || v == self.seq0 + i as Value
                        });
                        self.reads_left -= 1;
                        self.retries = 0;
                    } else {
                        self.retries += 1;
                        if self.retries >= self.max_retries {
                            // Give up this section (bounded runtime).
                            self.reads_left -= 1;
                            self.retries = 0;
                        }
                    }
                    self.phase = ReaderPhase::Seq0;
                }
                ReaderPhase::Done => {
                    // A torn read would have been recorded; surface it
                    // through the panic below (validate cannot see
                    // per-thread state, so fail fast here).
                    assert!(self.consistent, "seqlock reader observed a torn payload");
                    return Op::Done;
                }
            }
        }
    }
}

impl Kernel for Seqlocks {
    fn name(&self) -> String {
        "SEQ".into()
    }
    fn blocks(&self) -> usize {
        self.blocks
    }
    fn threads_per_block(&self) -> usize {
        self.tpb
    }
    fn memory_words(&self) -> usize {
        1 + self.payload
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        let (acq, rel) = if self.acqrel {
            (OpClass::Acquire, OpClass::Release)
        } else {
            (OpClass::Paired, OpClass::Paired)
        };
        if block == 0 && thread == 0 {
            Box::new(Writer {
                payload: self.payload,
                writes_left: self.writes,
                seq_even: 0,
                lock_class: acq,
                unlock_class: rel,
                phase: WriterPhase::TryLock,
            })
        } else {
            Box::new(Reader {
                seq0_class: acq,
                seq1_class: rel,
                payload: self.payload,
                reads_left: self.reads,
                retries: 0,
                max_retries: self.max_retries,
                seq0: 0,
                consistent: true,
                vals: Vec::new(),
                phase: ReaderPhase::Seq0,
            })
        }
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        // Writer completed all updates: seq is even and equals 2*writes.
        let seq = mem[SEQ as usize];
        if seq != 2 * self.writes as Value {
            return Err(format!("seq: expected {}, got {seq}", 2 * self.writes));
        }
        // Final payload is the last snapshot.
        for i in 0..self.payload {
            let expect = (2 * (self.writes - 1) + 2 + i) as Value;
            let got = mem[DATA_BASE as usize + i];
            if got != expect {
                return Err(format!("payload {i}: expected {expect}, got {got}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::SystemConfig;
    use hsim_sys::{run_workload, SysParams};

    #[test]
    fn seqlock_valid_and_untorn_on_every_config() {
        let k = Seqlocks {
            acqrel: false,
            blocks: 4,
            tpb: 4,
            payload: 3,
            writes: 4,
            reads: 4,
            max_retries: 64,
        };
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn relaxed_speculative_loads_help() {
        let k = Seqlocks::default();
        let params = SysParams::integrated();
        let d1 = run_workload(&k, SystemConfig::from_abbrev("DD1").unwrap(), &params);
        let dr = run_workload(&k, SystemConfig::from_abbrev("DDR").unwrap(), &params);
        assert!(dr.cycles <= d1.cycles, "DDR {} > DD1 {}", dr.cycles, d1.cycles);
    }
}
