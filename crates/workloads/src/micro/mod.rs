//! The seven microbenchmarks of Table 3, each stressing one
//! relaxed-atomic use case from §3. Inputs are scaled from the paper's
//! (256 KB → a few KB of values) to keep simulations fast; contention
//! ratios — the quantity that drives the trends — are preserved by
//! scaling bins and threads together.

mod counters;
mod flags;
mod hist;
mod seqlock;

pub use counters::{RefCounter, SplitCounter};
pub use flags::Flags;
pub use hist::{Hist, HistGlobal, HistGlobalNonOrder, HistParams};
pub use seqlock::Seqlocks;
