//! Split Counter and Reference Counter microbenchmarks (the quantum
//! use cases, §3.4, Listings 4 and 5).
//!
//! Both kernels are grid instantiations of the shared program templates
//! in [`drfrlx_bridge::templates`]: the same `split_counter` and
//! `ref_counter` emitters also produce the scaled-down litmus programs
//! the axiomatic checkers enumerate, so the quantum-counter logic lives
//! in exactly one place. Here the templates are stamped out at full
//! scale and lowered with [`ProgramKernel::grid`], which places each
//! counter on its own cache line and infers `use_result` per RMW from
//! register liveness.

use drfrlx_bridge::templates::{ref_counter, split_counter};
use drfrlx_bridge::ProgramKernel;
use drfrlx_core::program::Program;
use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Value, WorkItem};

// ---------------------------------------------------------------------
// SplitCounter (SC): per-block counters, concurrent approximate readers.
// ---------------------------------------------------------------------

/// Split counter: updater threads bump their block's counter with
/// quantum fetch-adds; reader threads sweep all counters with quantum
/// loads to form an approximate partial sum. Counters are padded to
/// one cache line each (as real split-counter implementations do, to
/// avoid false sharing).
#[derive(Debug, Clone)]
pub struct SplitCounter {
    /// Thread blocks (one split counter each; paper: 112).
    pub blocks: usize,
    /// Threads per block (thread 0 reads, the rest update).
    pub tpb: usize,
    /// Increments per updater.
    pub increments: usize,
    /// Read sweeps per reader.
    pub sweeps: usize,
    kernel: ProgramKernel,
}

impl SplitCounter {
    /// Build the kernel: the `split_counter` template instantiated at
    /// grid scale (blocks × tpb threads, counter `c{b}` and reader
    /// output `out{b}` each padded to a cache line).
    pub fn new(blocks: usize, tpb: usize, increments: usize, sweeps: usize) -> SplitCounter {
        let shape = split_counter::Shape {
            counters: (0..blocks).map(|b| format!("c{b}")).collect(),
            increments,
            sweeps,
            think_between_sweeps: 8,
            update_class: OpClass::Quantum,
            read_class: OpClass::Quantum,
        };
        let mut p = Program::new("SC");
        for block in 0..blocks {
            for thread in 0..tpb {
                let mut t = p.thread();
                if thread == 0 {
                    split_counter::reader(&mut t, &shape, Some(&format!("out{block}")));
                } else {
                    split_counter::updater(&mut t, &shape, &format!("c{block}"));
                }
            }
        }
        let p = p.build();
        // line-padded counters | line-padded reader outputs
        let memory = 16 * (blocks + blocks);
        let kernel = ProgramKernel::grid(&p, tpb, memory, 0, |n| {
            if let Some(b) = n.strip_prefix("out") {
                16 * (blocks + b.parse::<usize>().unwrap()) as u64
            } else {
                16 * n.strip_prefix('c').unwrap().parse::<u64>().unwrap()
            }
        });
        SplitCounter { blocks, tpb, increments, sweeps, kernel }
    }
}

impl Default for SplitCounter {
    fn default() -> Self {
        SplitCounter::new(14, 12, 256, 2)
    }
}

impl Kernel for SplitCounter {
    fn name(&self) -> String {
        self.kernel.name()
    }
    fn blocks(&self) -> usize {
        self.kernel.blocks()
    }
    fn threads_per_block(&self) -> usize {
        self.kernel.threads_per_block()
    }
    fn memory_words(&self) -> usize {
        self.kernel.memory_words()
    }
    fn init_memory(&self, mem: &mut [Value]) {
        self.kernel.init_memory(mem);
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        self.kernel.item(block, thread)
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        // Exact final counters (quantum relaxes ordering, not atomicity).
        let expect = ((self.tpb - 1) * self.increments) as Value;
        for b in 0..self.blocks {
            if mem[16 * b] != expect {
                return Err(format!("counter {b}: expected {expect}, got {}", mem[16 * b]));
            }
        }
        // Reader sums are approximate but bounded by the true total.
        let total = expect * self.blocks as Value;
        for b in 0..self.blocks {
            let s = mem[16 * (self.blocks + b)];
            if s > total {
                return Err(format!("reader {b} sum {s} exceeds true total {total}"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// RefCounter (RC): quantum inc/dec over a pool of objects.
// ---------------------------------------------------------------------

/// Reference counter: every thread walks a pool of shared objects,
/// incrementing each object's refcount (quantum), doing some work, then
/// decrementing (quantum, result observed); whoever sees the count drop
/// to zero marks the object with a commutative store.
#[derive(Debug, Clone)]
pub struct RefCounter {
    /// Thread blocks (paper: 64).
    pub blocks: usize,
    /// Threads per block.
    pub tpb: usize,
    /// Shared objects.
    pub objects: usize,
    /// Objects visited per thread.
    pub visits: usize,
    kernel: ProgramKernel,
}

impl RefCounter {
    /// Build the kernel: `visits` unrolled `ref_counter::visit`s per
    /// thread, each touching a pair of neighbouring objects (Listing
    /// 5's refcount1/refcount2) before advancing one object.
    pub fn new(blocks: usize, tpb: usize, objects: usize, visits: usize) -> RefCounter {
        let shape = ref_counter::Shape {
            count_class: OpClass::Quantum,
            mark_class: OpClass::Commutative,
            think: 4,
        };
        let obj_pair = |o: usize| {
            let b = (o + 1) % objects;
            [
                ref_counter::Obj { count: format!("c{o}"), mark: format!("m{o}"), mark_value: 1 },
                ref_counter::Obj { count: format!("c{b}"), mark: format!("m{b}"), mark_value: 1 },
            ]
        };
        let mut p = Program::new("RC");
        for block in 0..blocks {
            for thread in 0..tpb {
                // Each block mostly works a contiguous slice of the
                // object pool (objects belong to a worker's arena);
                // slices of neighbouring blocks overlap so cross-CU
                // sharing still occurs.
                let per_block = (objects / blocks).max(1);
                let id = block * tpb + thread;
                let mut obj = (block * per_block + id % (per_block + 1)) % objects;
                let mut t = p.thread();
                for _ in 0..visits {
                    ref_counter::visit(&mut t, &shape, &obj_pair(obj));
                    obj = (obj + 1) % objects;
                }
            }
        }
        let p = p.build();
        // Each object is line-padded: refcount in the first word, the
        // deletion mark in the second.
        let kernel = ProgramKernel::grid(&p, tpb, 16 * objects, 0, |n| {
            let o: u64 = n[1..].parse().unwrap();
            match n.as_bytes()[0] {
                b'c' => 16 * o,
                _ => 16 * o + 1,
            }
        });
        RefCounter { blocks, tpb, objects, visits, kernel }
    }
}

impl Default for RefCounter {
    fn default() -> Self {
        RefCounter::new(15, 16, 60, 16)
    }
}

impl Kernel for RefCounter {
    fn name(&self) -> String {
        self.kernel.name()
    }
    fn blocks(&self) -> usize {
        self.kernel.blocks()
    }
    fn threads_per_block(&self) -> usize {
        self.kernel.threads_per_block()
    }
    fn memory_words(&self) -> usize {
        self.kernel.memory_words()
    }
    fn init_memory(&self, mem: &mut [Value]) {
        self.kernel.init_memory(mem);
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        self.kernel.item(block, thread)
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        // All references dropped: every count is zero again.
        for o in 0..self.objects {
            if mem[16 * o] != 0 {
                return Err(format!("object {o}: refcount {} != 0", mem[16 * o]));
            }
        }
        // Marks are 0 or 1.
        for o in 0..self.objects {
            let m = mem[16 * o + 1];
            if m > 1 {
                return Err(format!("object {o}: mark {m} invalid"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::SystemConfig;
    use hsim_sys::{run_workload, SysParams};

    #[test]
    fn split_counter_valid_on_every_config() {
        let k = SplitCounter::new(4, 4, 8, 2);
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn ref_counter_valid_on_every_config() {
        let k = RefCounter::new(4, 4, 8, 6);
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn relaxed_model_overlaps_quantum_increments() {
        let k = SplitCounter::default();
        let params = SysParams::integrated();
        let d0 = run_workload(&k, SystemConfig::from_abbrev("DD0").unwrap(), &params);
        let dr = run_workload(&k, SystemConfig::from_abbrev("DDR").unwrap(), &params);
        assert!(dr.atomics_overlapped > 0);
        assert!(dr.cycles < d0.cycles, "DDR {} !< DD0 {}", dr.cycles, d0.cycles);
    }
}
