//! Split Counter and Reference Counter microbenchmarks (the quantum
//! use cases, §3.4, Listings 4 and 5).

use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Op, RmwKind, Value, WorkItem};

// ---------------------------------------------------------------------
// SplitCounter (SC): per-block counters, concurrent approximate readers.
// ---------------------------------------------------------------------

/// Split counter: updater threads bump their block's counter with
/// quantum fetch-adds; reader threads sweep all counters with quantum
/// loads to form an approximate partial sum. Counters are padded to
/// one cache line each (as real split-counter implementations do, to
/// avoid false sharing).
#[derive(Debug, Clone)]
pub struct SplitCounter {
    /// Thread blocks (one split counter each; paper: 112).
    pub blocks: usize,
    /// Threads per block (thread 0 reads, the rest update).
    pub tpb: usize,
    /// Increments per updater.
    pub increments: usize,
    /// Read sweeps per reader.
    pub sweeps: usize,
}

impl Default for SplitCounter {
    fn default() -> Self {
        SplitCounter { blocks: 14, tpb: 12, increments: 256, sweeps: 2 }
    }
}

struct ScUpdater {
    counter: u64,
    left: usize,
}

impl WorkItem for ScUpdater {
    fn next(&mut self, _last: Option<Value>) -> Op {
        if self.left == 0 {
            return Op::Done;
        }
        self.left -= 1;
        Op::Rmw {
            addr: self.counter,
            rmw: RmwKind::Add,
            operand: 1,
            class: OpClass::Quantum,
            use_result: false,
        }
    }
}

struct ScReader {
    counters: u64,
    i: u64,
    sweeps_left: usize,
    sum: Value,
    out: u64,
    stored: bool,
}

impl WorkItem for ScReader {
    fn next(&mut self, last: Option<Value>) -> Op {
        if let Some(v) = last {
            self.sum = self.sum.wrapping_add(v);
        }
        if self.i < self.counters {
            let addr = 16 * self.i;
            self.i += 1;
            return Op::Load { addr, class: OpClass::Quantum };
        }
        if self.sweeps_left > 1 {
            // Start a fresh partial sum for the next sweep.
            self.sweeps_left -= 1;
            self.i = 0;
            self.sum = 0;
            return Op::Think(8);
        }
        if !self.stored {
            self.stored = true;
            // Publish the (approximate) sum — plain data, per-thread slot.
            return Op::Store { addr: self.out, value: self.sum, class: OpClass::Data };
        }
        Op::Done
    }
}

impl Kernel for SplitCounter {
    fn name(&self) -> String {
        "SC".into()
    }
    fn blocks(&self) -> usize {
        self.blocks
    }
    fn threads_per_block(&self) -> usize {
        self.tpb
    }
    fn memory_words(&self) -> usize {
        // line-padded counters | line-padded reader outputs
        16 * (self.blocks + self.blocks)
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        if thread == 0 {
            Box::new(ScReader {
                counters: self.blocks as u64,
                i: 0,
                sweeps_left: self.sweeps,
                sum: 0,
                out: (16 * (self.blocks + block)) as u64,
                stored: false,
            })
        } else {
            Box::new(ScUpdater { counter: (16 * block) as u64, left: self.increments })
        }
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        // Exact final counters (quantum relaxes ordering, not atomicity).
        let expect = ((self.tpb - 1) * self.increments) as Value;
        for b in 0..self.blocks {
            if mem[16 * b] != expect {
                return Err(format!("counter {b}: expected {expect}, got {}", mem[16 * b]));
            }
        }
        // Reader sums are approximate but bounded by the true total.
        let total = expect * self.blocks as Value;
        for b in 0..self.blocks {
            let s = mem[16 * (self.blocks + b)];
            if s > total {
                return Err(format!("reader {b} sum {s} exceeds true total {total}"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// RefCounter (RC): quantum inc/dec over a pool of objects.
// ---------------------------------------------------------------------

/// Reference counter: every thread walks a pool of shared objects,
/// incrementing each object's refcount (quantum), doing some work, then
/// decrementing (quantum, result observed); whoever sees the count drop
/// to zero marks the object with a commutative store.
#[derive(Debug, Clone)]
pub struct RefCounter {
    /// Thread blocks (paper: 64).
    pub blocks: usize,
    /// Threads per block.
    pub tpb: usize,
    /// Shared objects.
    pub objects: usize,
    /// Objects visited per thread.
    pub visits: usize,
}

impl Default for RefCounter {
    fn default() -> Self {
        RefCounter { blocks: 15, tpb: 16, objects: 60, visits: 16 }
    }
}

enum RcPhase {
    /// Increment both refcounts (Listing 5: refcount1 then refcount2,
    /// back-to-back — the overlap opportunity for relaxed atomics).
    IncA,
    IncB,
    Work,
    DecA,
    MaybeMarkA,
    DecB,
    MaybeMarkB,
    Advance,
}

struct RcItem {
    objects: u64,
    visits_left: usize,
    obj: u64,
    obj_b: u64,
    stride: u64,
    phase: RcPhase,
}

impl RcItem {
    // Each object is line-padded: refcount in the first word, the
    // deletion mark in the second.
    fn count_addr(&self, obj: u64) -> u64 {
        16 * obj
    }
    fn mark_addr(&self, obj: u64) -> u64 {
        16 * obj + 1
    }
}

impl WorkItem for RcItem {
    fn next(&mut self, last: Option<Value>) -> Op {
        loop {
            match self.phase {
                RcPhase::IncA => {
                    if self.visits_left == 0 {
                        return Op::Done;
                    }
                    self.phase = RcPhase::IncB;
                    return Op::Rmw {
                        addr: self.count_addr(self.obj),
                        rmw: RmwKind::Add,
                        operand: 1,
                        class: OpClass::Quantum,
                        use_result: false,
                    };
                }
                RcPhase::IncB => {
                    self.phase = RcPhase::Work;
                    return Op::Rmw {
                        addr: self.count_addr(self.obj_b),
                        rmw: RmwKind::Add,
                        operand: 1,
                        class: OpClass::Quantum,
                        use_result: false,
                    };
                }
                RcPhase::Work => {
                    self.phase = RcPhase::DecA;
                    return Op::Think(4);
                }
                RcPhase::DecA => {
                    self.phase = RcPhase::MaybeMarkA;
                    return Op::Rmw {
                        addr: self.count_addr(self.obj),
                        rmw: RmwKind::Sub,
                        operand: 1,
                        class: OpClass::Quantum,
                        use_result: true,
                    };
                }
                RcPhase::MaybeMarkA => {
                    let old = last.unwrap_or(0);
                    self.phase = RcPhase::DecB;
                    if old == 1 {
                        // Dropped to zero: mark for deletion (same
                        // value from every thread — commutative).
                        return Op::Store {
                            addr: self.mark_addr(self.obj),
                            value: 1,
                            class: OpClass::Commutative,
                        };
                    }
                }
                RcPhase::DecB => {
                    self.phase = RcPhase::MaybeMarkB;
                    return Op::Rmw {
                        addr: self.count_addr(self.obj_b),
                        rmw: RmwKind::Sub,
                        operand: 1,
                        class: OpClass::Quantum,
                        use_result: true,
                    };
                }
                RcPhase::MaybeMarkB => {
                    let old = last.unwrap_or(0);
                    self.phase = RcPhase::Advance;
                    if old == 1 {
                        return Op::Store {
                            addr: self.mark_addr(self.obj_b),
                            value: 1,
                            class: OpClass::Commutative,
                        };
                    }
                }
                RcPhase::Advance => {
                    self.visits_left -= 1;
                    self.obj = (self.obj + self.stride) % self.objects;
                    self.obj_b = (self.obj + 1) % self.objects;
                    self.phase = RcPhase::IncA;
                }
            }
        }
    }
}

impl Kernel for RefCounter {
    fn name(&self) -> String {
        "RC".into()
    }
    fn blocks(&self) -> usize {
        self.blocks
    }
    fn threads_per_block(&self) -> usize {
        self.tpb
    }
    fn memory_words(&self) -> usize {
        16 * self.objects
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        // Each block mostly works a contiguous slice of the object pool
        // (objects belong to a worker's arena); slices of neighbouring
        // blocks overlap so cross-CU sharing still occurs.
        let per_block = (self.objects / self.blocks).max(1) as u64;
        let id = (block * self.tpb + thread) as u64;
        let obj = (block as u64 * per_block + id % (per_block + 1)) % self.objects as u64;
        Box::new(RcItem {
            objects: self.objects as u64,
            visits_left: self.visits,
            obj,
            obj_b: (obj + 1) % self.objects as u64,
            stride: 1,
            phase: RcPhase::IncA,
        })
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        // All references dropped: every count is zero again.
        for o in 0..self.objects {
            if mem[16 * o] != 0 {
                return Err(format!("object {o}: refcount {} != 0", mem[16 * o]));
            }
        }
        // Marks are 0 or 1.
        for o in 0..self.objects {
            let m = mem[16 * o + 1];
            if m > 1 {
                return Err(format!("object {o}: mark {m} invalid"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::SystemConfig;
    use hsim_sys::{run_workload, SysParams};

    #[test]
    fn split_counter_valid_on_every_config() {
        let k = SplitCounter { blocks: 4, tpb: 4, increments: 8, sweeps: 2 };
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn ref_counter_valid_on_every_config() {
        let k = RefCounter { blocks: 4, tpb: 4, objects: 8, visits: 6 };
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn relaxed_model_overlaps_quantum_increments() {
        let k = SplitCounter::default();
        let params = SysParams::integrated();
        let d0 = run_workload(&k, SystemConfig::from_abbrev("DD0").unwrap(), &params);
        let dr = run_workload(&k, SystemConfig::from_abbrev("DDR").unwrap(), &params);
        assert!(dr.atomics_overlapped > 0);
        assert!(dr.cycles < d0.cycles, "DDR {} !< DD0 {}", dr.cycles, d0.cycles);
    }
}
