//! Flags microbenchmark (non-ordering use case, §3.3, Listing 3).
//!
//! Worker threads poll `stop` with non-ordering loads and raise `dirty`
//! with commutative stores; the main thread (block 0, thread 0) raises
//! `stop`, joins the workers through a paired exit counter, then reads
//! `dirty` with a non-ordering load.
//!
//! Both thread shapes come from the shared `flags` template in
//! [`drfrlx_bridge::templates`] — the same emitter, at single-poll
//! scale, produces the litmus use-case the axiomatic checkers
//! enumerate. The worker's poll loop and main's join loop are unrolled
//! forward with every exit test jumping to the loop's end, so a stopped
//! worker issues no further memory operations; the program carries one
//! worker body and one main body, replicated over the grid by
//! [`ProgramKernel::grid_with_layout`].

use drfrlx_bridge::templates::flags;
use drfrlx_bridge::ProgramKernel;
use drfrlx_core::program::Program;
use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Value, WorkItem};

const STOP: u64 = 0;
const DIRTY: u64 = 1;
const EXITED: u64 = 2;

/// The Flags microbenchmark (paper: 90 thread blocks).
#[derive(Debug, Clone)]
pub struct Flags {
    /// Thread blocks.
    pub blocks: usize,
    /// Threads per block.
    pub tpb: usize,
    /// Poll iterations before the main thread raises `stop`.
    pub main_delay: usize,
    /// Upper bound on worker poll iterations (deterministic exit even
    /// if `stop` propagates late).
    pub max_polls: usize,
    kernel: ProgramKernel,
}

impl Flags {
    /// Build the kernel from the `flags` template: one main thread,
    /// `blocks * tpb - 1` workers sharing a single unrolled body.
    pub fn new(blocks: usize, tpb: usize, main_delay: usize, max_polls: usize) -> Flags {
        let mut p = Program::new("Flags");
        let main = flags::main(
            &mut p,
            &flags::Main {
                delay: Some(main_delay as u32),
                stop_class: OpClass::NonOrdering,
                exited_class: OpClass::Paired,
                // Comfortably above the worst-case worker runtime (each
                // worker iteration spans at least one main join poll);
                // the differential suite pins the resulting op stream
                // against the retired state-machine implementation.
                join_polls: 4 * max_polls + 64,
                join_target: (blocks * tpb - 1) as drfrlx_core::program::Value,
                tail: flags::Tail::PublishDirty(OpClass::NonOrdering),
            },
        );
        let worker = flags::worker(
            &mut p,
            &flags::Worker {
                stop_class: OpClass::NonOrdering,
                dirty_class: OpClass::Commutative,
                polls: max_polls,
                think: 2,
                dirty_every: 4,
                last_poll_works: false,
                observe_poll: false,
                exit: flags::Exit::Fadd(OpClass::Paired),
            },
        );
        p.push_thread(main);
        p.push_thread(worker);
        let p = p.build();
        let layout: Vec<usize> = (0..blocks * tpb).map(|i| usize::from(i != 0)).collect();
        let kernel = ProgramKernel::grid_with_layout(&p, &layout, tpb, 3, 0, |n| match n {
            "stop" => STOP,
            "dirty" => DIRTY,
            _ => EXITED,
        });
        Flags { blocks, tpb, main_delay, max_polls, kernel }
    }
}

impl Default for Flags {
    fn default() -> Self {
        Flags::new(15, 16, 64, 600)
    }
}

impl Kernel for Flags {
    fn name(&self) -> String {
        self.kernel.name()
    }
    fn blocks(&self) -> usize {
        self.kernel.blocks()
    }
    fn threads_per_block(&self) -> usize {
        self.kernel.threads_per_block()
    }
    fn memory_words(&self) -> usize {
        self.kernel.memory_words()
    }
    fn init_memory(&self, mem: &mut [Value]) {
        self.kernel.init_memory(mem);
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        self.kernel.item(block, thread)
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        if mem[STOP as usize] != 1 {
            return Err("stop flag not raised".into());
        }
        // Main saw dirty (0 or 1) and published dirty + 10.
        let d = mem[DIRTY as usize];
        if d != 10 && d != 11 {
            return Err(format!("dirty endstate {d} not in {{10, 11}}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::SystemConfig;
    use hsim_sys::{run_workload, SysParams};

    #[test]
    fn flags_valid_on_every_config() {
        let k = Flags::new(4, 4, 8, 200);
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn workers_terminate_via_stop_not_poll_cap() {
        // With a long cap and a short delay, workers should exit from
        // seeing the stop flag well before the cap.
        let k = Flags::new(2, 4, 4, 100_000);
        let params = SysParams::integrated();
        let r = run_workload(&k, SystemConfig::from_abbrev("GD0").unwrap(), &params);
        k.validate(&r.memory).unwrap();
        assert!(r.cycles < 2_000_000, "stop flag must end the polling");
    }
}
