//! Flags microbenchmark (non-ordering use case, §3.3, Listing 3).
//!
//! Worker threads poll `stop` with non-ordering loads and raise `dirty`
//! with commutative stores; the main thread (block 0, thread 0) raises
//! `stop`, joins the workers through a paired exit counter, then reads
//! `dirty` with a non-ordering load.

use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Op, RmwKind, Value, WorkItem};

const STOP: u64 = 0;
const DIRTY: u64 = 1;
const EXITED: u64 = 2;

/// The Flags microbenchmark (paper: 90 thread blocks).
#[derive(Debug, Clone)]
pub struct Flags {
    /// Thread blocks.
    pub blocks: usize,
    /// Threads per block.
    pub tpb: usize,
    /// Poll iterations before the main thread raises `stop`.
    pub main_delay: usize,
    /// Upper bound on worker poll iterations (deterministic exit even
    /// if `stop` propagates late).
    pub max_polls: usize,
}

impl Default for Flags {
    fn default() -> Self {
        Flags { blocks: 15, tpb: 16, main_delay: 64, max_polls: 600 }
    }
}

enum WorkerPhase {
    Poll,
    AfterPoll,
    Work,
    MaybeDirty,
    Exit,
    Done,
}

struct Worker {
    polls: usize,
    max_polls: usize,
    phase: WorkerPhase,
}

impl WorkItem for Worker {
    fn next(&mut self, last: Option<Value>) -> Op {
        loop {
            match self.phase {
                WorkerPhase::Poll => {
                    self.phase = WorkerPhase::AfterPoll;
                    return Op::Load { addr: STOP, class: OpClass::NonOrdering };
                }
                WorkerPhase::AfterPoll => {
                    let stop = last.unwrap_or(0);
                    self.polls += 1;
                    if stop != 0 || self.polls >= self.max_polls {
                        self.phase = WorkerPhase::Exit;
                        continue;
                    }
                    self.phase = WorkerPhase::Work;
                }
                WorkerPhase::Work => {
                    self.phase = WorkerPhase::MaybeDirty;
                    return Op::Think(2);
                }
                WorkerPhase::MaybeDirty => {
                    self.phase = WorkerPhase::Poll;
                    // Every fourth iteration touches something that
                    // needs cleanup.
                    if self.polls.is_multiple_of(4) {
                        return Op::Store { addr: DIRTY, value: 1, class: OpClass::Commutative };
                    }
                }
                WorkerPhase::Exit => {
                    self.phase = WorkerPhase::Done;
                    return Op::Rmw {
                        addr: EXITED,
                        rmw: RmwKind::Add,
                        operand: 1,
                        class: OpClass::Paired,
                        use_result: false,
                    };
                }
                WorkerPhase::Done => return Op::Done,
            }
        }
    }
}

enum MainPhase {
    Delay,
    RaiseStop,
    Join,
    AfterJoin,
    ReadDirty,
    Publish,
    Done,
}

struct MainThread {
    workers: Value,
    delay: usize,
    phase: MainPhase,
}

impl WorkItem for MainThread {
    fn next(&mut self, last: Option<Value>) -> Op {
        loop {
            match self.phase {
                MainPhase::Delay => {
                    self.phase = MainPhase::RaiseStop;
                    return Op::Think(self.delay as u32);
                }
                MainPhase::RaiseStop => {
                    self.phase = MainPhase::Join;
                    return Op::Store { addr: STOP, value: 1, class: OpClass::NonOrdering };
                }
                MainPhase::Join => {
                    self.phase = MainPhase::AfterJoin;
                    return Op::Load { addr: EXITED, class: OpClass::Paired };
                }
                MainPhase::AfterJoin => {
                    if last.unwrap_or(0) < self.workers {
                        self.phase = MainPhase::Join;
                        continue;
                    }
                    self.phase = MainPhase::ReadDirty;
                }
                MainPhase::ReadDirty => {
                    self.phase = MainPhase::Publish;
                    return Op::Load { addr: DIRTY, class: OpClass::NonOrdering };
                }
                MainPhase::Publish => {
                    let dirty = last.unwrap_or(0);
                    self.phase = MainPhase::Done;
                    // "cleanup_dirty_stuff": record that we saw it.
                    return Op::Store { addr: DIRTY, value: dirty + 10, class: OpClass::Data };
                }
                MainPhase::Done => return Op::Done,
            }
        }
    }
}

impl Kernel for Flags {
    fn name(&self) -> String {
        "Flags".into()
    }
    fn blocks(&self) -> usize {
        self.blocks
    }
    fn threads_per_block(&self) -> usize {
        self.tpb
    }
    fn memory_words(&self) -> usize {
        3
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        if block == 0 && thread == 0 {
            Box::new(MainThread {
                workers: (self.blocks * self.tpb - 1) as Value,
                delay: self.main_delay,
                phase: MainPhase::Delay,
            })
        } else {
            Box::new(Worker { polls: 0, max_polls: self.max_polls, phase: WorkerPhase::Poll })
        }
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        if mem[STOP as usize] != 1 {
            return Err("stop flag not raised".into());
        }
        // Main saw dirty (0 or 1) and published dirty + 10.
        let d = mem[DIRTY as usize];
        if d != 10 && d != 11 {
            return Err(format!("dirty endstate {d} not in {{10, 11}}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::SystemConfig;
    use hsim_sys::{run_workload, SysParams};

    #[test]
    fn flags_valid_on_every_config() {
        let k = Flags { blocks: 4, tpb: 4, main_delay: 8, max_polls: 200 };
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn workers_terminate_via_stop_not_poll_cap() {
        // With a long cap and a short delay, workers should exit from
        // seeing the stop flag well before the cap.
        let k = Flags { blocks: 2, tpb: 4, main_delay: 4, max_polls: 100_000 };
        let params = SysParams::integrated();
        let r = run_workload(&k, SystemConfig::from_abbrev("GD0").unwrap(), &params);
        k.validate(&r.memory).unwrap();
        assert!(r.cycles < 2_000_000, "stop flag must end the polling");
    }
}
