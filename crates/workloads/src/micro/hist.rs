//! Histogram microbenchmarks (Event Counter use case, §3.2 / §4.4).
//!
//! * [`Hist`] — each thread bins its values in the scratchpad first,
//!   then pushes the per-block sub-histogram into the global one with
//!   commutative fetch-adds (Podlozhnyuk's CUDA histogram). Few global
//!   atomics → little for DRFrlx to overlap.
//! * [`HistGlobal`] — every value increments the global bin directly:
//!   an atomic storm with high contention.
//! * [`HistGlobalNonOrder`] — the *read* side of Listing 2's bottom:
//!   threads read the final bin values with non-ordering atomic loads
//!   (the update portion is excluded, §4.4). Under DeNovo, atomic
//!   loads take ownership, so bins ping-pong between L1s — the case
//!   where DD0 loses to GD0 in Figure 3.

use crate::util::SplitMix64;
use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Op, RmwKind, Value, WorkItem};

/// Memory map: `[0, bins)` = global histogram; `[bins, ...)` = input
/// values.
fn input_base(bins: usize) -> u64 {
    bins as u64
}

/// Generate the deterministic input stream for `(block, thread)`.
fn input_of(seed: u64, block: usize, thread: usize, i: usize, bins: usize) -> Value {
    let mut rng =
        SplitMix64::new(seed ^ ((block as u64) << 32) ^ ((thread as u64) << 16) ^ i as u64);
    rng.below(bins as u64)
}

/// Common histogram shape.
#[derive(Debug, Clone)]
pub struct HistParams {
    /// Number of bins (paper: 256).
    pub bins: usize,
    /// Values binned per thread.
    pub per_thread: usize,
    /// Thread blocks.
    pub blocks: usize,
    /// Threads per block.
    pub tpb: usize,
    /// Input seed.
    pub seed: u64,
}

impl Default for HistParams {
    fn default() -> Self {
        HistParams { bins: 256, per_thread: 64, blocks: 15, tpb: 32, seed: 0xD1CE }
    }
}

impl HistParams {
    fn expected(&self) -> Vec<Value> {
        let mut bins = vec![0; self.bins];
        for b in 0..self.blocks {
            for t in 0..self.tpb {
                for i in 0..self.per_thread {
                    bins[input_of(self.seed, b, t, i, self.bins) as usize] += 1;
                }
            }
        }
        bins
    }

    fn validate_bins(&self, mem: &[Value]) -> Result<(), String> {
        let expected = self.expected();
        for (i, &e) in expected.iter().enumerate() {
            if mem[i] != e {
                return Err(format!("bin {i}: expected {e}, got {}", mem[i]));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Hist (H): local scratchpad binning, then global merge.
// ---------------------------------------------------------------------

/// The locally-binned histogram.
#[derive(Debug, Clone, Default)]
pub struct Hist {
    /// Shape parameters.
    pub params: HistParams,
}

enum HistPhase {
    /// Reading input value `i` (load issued, waiting result).
    Read(usize),
    /// Scratch-increment for the value just loaded: (index, bin).
    BinLoad(usize, Value),
    BinStore(usize, Value),
    /// Block barrier before the cooperative merge.
    PreMerge,
    /// Cooperative merge (Podlozhnyuk): this thread owns bins
    /// `thread, thread + tpb, ...`; sum the per-thread sub-histograms
    /// for bin `b`: (bin, contributing thread, accumulator).
    MergeSum(usize, usize, Value),
    Done,
}

struct HistItem {
    p: HistParams,
    block: usize,
    thread: usize,
    phase: HistPhase,
}

impl HistItem {
    /// Each thread bins into a private scratch region (as the paper's
    /// per-thread local binning does) so scratch updates never race.
    fn scratch_bin(&self, bin: Value) -> u64 {
        (self.thread * self.p.bins) as u64 + bin
    }
}

impl WorkItem for HistItem {
    fn next(&mut self, last: Option<Value>) -> Op {
        loop {
            match self.phase {
                HistPhase::Read(i) => {
                    if i >= self.p.per_thread {
                        self.phase = HistPhase::PreMerge;
                        continue;
                    }
                    // The input load: address derived from the value
                    // stream (input array is bins..bins+stream).
                    self.phase = HistPhase::BinLoad(
                        i,
                        input_of(self.p.seed, self.block, self.thread, i, self.p.bins),
                    );
                    let addr = input_base(self.p.bins)
                        + ((self.block * self.p.tpb + self.thread) * self.p.per_thread + i) as u64;
                    return Op::Load { addr, class: OpClass::Data };
                }
                HistPhase::BinLoad(i, bin) => {
                    // last = raw input (ignored; bin precomputed
                    // deterministically). Read the scratch counter.
                    let _ = last;
                    self.phase = HistPhase::BinStore(i, bin);
                    return Op::ScratchLoad { addr: self.scratch_bin(bin) };
                }
                HistPhase::BinStore(i, bin) => {
                    let count = last.unwrap_or(0);
                    self.phase = HistPhase::Read(i + 1);
                    return Op::ScratchStore { addr: self.scratch_bin(bin), value: count + 1 };
                }
                HistPhase::PreMerge => {
                    self.phase = HistPhase::MergeSum(self.thread, 0, 0);
                    return Op::Barrier;
                }
                HistPhase::MergeSum(b, t, acc) => {
                    if b >= self.p.bins {
                        self.phase = HistPhase::Done;
                        continue;
                    }
                    let acc = acc + last.filter(|_| t > 0).unwrap_or(0);
                    if t < self.p.tpb {
                        // Read thread t's sub-count for bin b.
                        self.phase = HistPhase::MergeSum(b, t + 1, acc);
                        return Op::ScratchLoad { addr: (t * self.p.bins + b) as u64 };
                    }
                    // One commutative add per (block, bin).
                    self.phase = HistPhase::MergeSum(b + self.p.tpb, 0, 0);
                    if acc == 0 {
                        continue;
                    }
                    return Op::Rmw {
                        addr: b as u64,
                        rmw: RmwKind::Add,
                        operand: acc,
                        class: OpClass::Commutative,
                        use_result: false,
                    };
                }
                HistPhase::Done => return Op::Done,
            }
        }
    }
}

impl Kernel for Hist {
    fn name(&self) -> String {
        "H".into()
    }
    fn blocks(&self) -> usize {
        self.params.blocks
    }
    fn threads_per_block(&self) -> usize {
        self.params.tpb
    }
    fn scratch_words(&self) -> usize {
        self.params.tpb * self.params.bins
    }
    fn memory_words(&self) -> usize {
        self.params.bins + self.params.blocks * self.params.tpb * self.params.per_thread
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        Box::new(HistItem { p: self.params.clone(), block, thread, phase: HistPhase::Read(0) })
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        self.params.validate_bins(mem)
    }
}

// ---------------------------------------------------------------------
// Hist_global (HG): every value goes straight to the global bins.
// ---------------------------------------------------------------------

/// The all-global histogram.
#[derive(Debug, Clone)]
pub struct HistGlobal {
    /// Shape parameters.
    pub params: HistParams,
    /// Class annotation on the updates (Table 3: commutative; the
    /// acquire/release ablation compares `Paired` against `Release` —
    /// an increment has nothing to acquire, so the release-only RMW
    /// keeps the input lines in the L1).
    pub update_class: OpClass,
}

impl Default for HistGlobal {
    fn default() -> Self {
        HistGlobal { params: HistParams::default(), update_class: OpClass::Commutative }
    }
}

struct HgItem {
    p: HistParams,
    class: OpClass,
    block: usize,
    thread: usize,
    i: usize,
    loaded: bool,
}

impl WorkItem for HgItem {
    fn next(&mut self, _last: Option<Value>) -> Op {
        if self.i >= self.p.per_thread {
            return Op::Done;
        }
        if !self.loaded {
            self.loaded = true;
            let addr = input_base(self.p.bins)
                + ((self.block * self.p.tpb + self.thread) * self.p.per_thread + self.i) as u64;
            return Op::Load { addr, class: OpClass::Data };
        }
        let bin = input_of(self.p.seed, self.block, self.thread, self.i, self.p.bins);
        self.i += 1;
        self.loaded = false;
        Op::Rmw { addr: bin, rmw: RmwKind::Add, operand: 1, class: self.class, use_result: false }
    }
}

impl Kernel for HistGlobal {
    fn name(&self) -> String {
        "HG".into()
    }
    fn blocks(&self) -> usize {
        self.params.blocks
    }
    fn threads_per_block(&self) -> usize {
        self.params.tpb
    }
    fn memory_words(&self) -> usize {
        self.params.bins + self.params.blocks * self.params.tpb * self.params.per_thread
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        Box::new(HgItem {
            p: self.params.clone(),
            class: self.update_class,
            block,
            thread,
            i: 0,
            loaded: false,
        })
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        self.params.validate_bins(mem)
    }
}

// ---------------------------------------------------------------------
// HG-NO: read the final bins with non-ordering atomic loads.
// ---------------------------------------------------------------------

/// The bin-reading phase with non-ordering atomics.
///
/// Threads read scattered, mostly-disjoint bins (a hashed stride), so
/// an atomic load rarely finds its line already owned by its own CU.
/// Under DeNovo every read drags ownership across the mesh (the §6
/// "overhead of obtaining ownership from a remote core"), while GPU
/// coherence just round-trips to the home L2 bank — this is the
/// microbenchmark where DD0 loses to GD0 in Figure 3.
#[derive(Debug, Clone)]
pub struct HistGlobalNonOrder {
    /// Shape parameters: `bins` is the table size, `per_thread` the
    /// reads issued per thread.
    pub params: HistParams,
}

impl Default for HistGlobalNonOrder {
    fn default() -> Self {
        HistGlobalNonOrder {
            params: HistParams { bins: 4096, per_thread: 64, ..HistParams::default() },
        }
    }
}

struct HgNoItem {
    p: HistParams,
    gid: u64,
    threads: u64,
    i: usize,
}

impl WorkItem for HgNoItem {
    fn next(&mut self, _last: Option<Value>) -> Op {
        if self.i >= self.p.per_thread {
            return Op::Done;
        }
        // Odd multiplier ⇒ bijection on a power-of-two table: spreads
        // logically-adjacent reads across lines and CUs.
        let k = self.gid + self.i as u64 * self.threads;
        let bin = (k.wrapping_mul(0x9E37_79B1)) % self.p.bins as u64;
        self.i += 1;
        Op::Load { addr: bin, class: OpClass::NonOrdering }
    }
}

impl Kernel for HistGlobalNonOrder {
    fn name(&self) -> String {
        "HG-NO".into()
    }
    fn blocks(&self) -> usize {
        self.params.blocks
    }
    fn threads_per_block(&self) -> usize {
        self.params.tpb
    }
    fn memory_words(&self) -> usize {
        self.params.bins
    }
    fn init_memory(&self, mem: &mut [Value]) {
        // Pre-populated histogram (the update phase is excluded).
        for (i, m) in mem.iter_mut().enumerate().take(self.params.bins) {
            *m = (i % 7 + 1) as Value;
        }
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        Box::new(HgNoItem {
            p: self.params.clone(),
            gid: (block * self.params.tpb + thread) as u64,
            threads: (self.params.blocks * self.params.tpb) as u64,
            i: 0,
        })
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        // Read-only: bins must be untouched.
        for (i, &bin) in mem.iter().enumerate().take(self.params.bins) {
            if bin != (i % 7 + 1) as Value {
                return Err(format!("bin {i} was modified"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::SystemConfig;
    use hsim_sys::{run_workload, SysParams};

    fn small() -> HistParams {
        HistParams { bins: 32, per_thread: 8, blocks: 4, tpb: 4, seed: 1 }
    }

    #[test]
    fn hist_is_functionally_correct_on_every_config() {
        let k = Hist { params: small() };
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn hg_is_functionally_correct_on_every_config() {
        let k = HistGlobal { params: small(), ..Default::default() };
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn hg_no_reads_do_not_modify() {
        let k = HistGlobalNonOrder { params: small() };
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn hg_has_many_more_atomics_than_h() {
        // Many values over few bins: H merges each thread's nonzero
        // bins once, HG pays one atomic per value.
        let p = HistParams { bins: 16, per_thread: 64, blocks: 4, tpb: 4, seed: 1 };
        let params = SysParams::integrated();
        let cfg = SystemConfig::from_abbrev("GD0").unwrap();
        let h = run_workload(&Hist { params: p.clone() }, cfg, &params);
        let hg = run_workload(&HistGlobal { params: p, ..Default::default() }, cfg, &params);
        assert!(hg.atomics > 2 * h.atomics, "HG {} vs H {} atomics", hg.atomics, h.atomics);
    }

    #[test]
    fn hist_uses_the_scratchpad() {
        let params = SysParams::integrated();
        let cfg = SystemConfig::from_abbrev("GD0").unwrap();
        let h = run_workload(&Hist { params: small() }, cfg, &params);
        assert!(h.counters.scratch_accesses > 0);
        let hg = run_workload(&HistGlobal { params: small(), ..Default::default() }, cfg, &params);
        assert_eq!(hg.counters.scratch_accesses, 0);
    }
}
