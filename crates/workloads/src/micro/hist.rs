//! Histogram microbenchmarks (Event Counter use case, §3.2 / §4.4).
//!
//! * [`Hist`] — each thread bins its values in the scratchpad first,
//!   then pushes the per-block sub-histogram into the global one with
//!   commutative fetch-adds (Podlozhnyuk's CUDA histogram). Few global
//!   atomics → little for DRFrlx to overlap.
//! * [`HistGlobal`] — every value increments the global bin directly:
//!   an atomic storm with high contention.
//! * [`HistGlobalNonOrder`] — the *read* side of Listing 2's bottom:
//!   threads read the final bin values with non-ordering atomic loads
//!   (the update portion is excluded, §4.4). Under DeNovo, atomic
//!   loads take ownership, so bins ping-pong between L1s — the case
//!   where DD0 loses to GD0 in Figure 3.
//!
//! All three are instantiations of the `hist` templates in
//! [`drfrlx_bridge::templates`] (the scratch/barrier/merge shape, the
//! global-RMW shape, the non-ordering read walk), lowered through
//! [`ProgramKernel::grid`]. The per-value bin assignment stays here —
//! the templates take it as a closure — so the kernels share their
//! `expected()` oracle with the emitted programs by construction.

use crate::util::SplitMix64;
use drfrlx_bridge::templates::hist;
use drfrlx_bridge::ProgramKernel;
use drfrlx_core::program::Program;
use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Value, WorkItem};

/// Memory map: `[0, bins)` = global histogram; `[bins, ...)` = input
/// values.
fn input_base(bins: usize) -> u64 {
    bins as u64
}

/// Generate the deterministic input stream for `(block, thread)`.
fn input_of(seed: u64, block: usize, thread: usize, i: usize, bins: usize) -> Value {
    let mut rng =
        SplitMix64::new(seed ^ ((block as u64) << 32) ^ ((thread as u64) << 16) ^ i as u64);
    rng.below(bins as u64)
}

/// Common histogram shape.
#[derive(Debug, Clone)]
pub struct HistParams {
    /// Number of bins (paper: 256).
    pub bins: usize,
    /// Values binned per thread.
    pub per_thread: usize,
    /// Thread blocks.
    pub blocks: usize,
    /// Threads per block.
    pub tpb: usize,
    /// Input seed.
    pub seed: u64,
}

impl Default for HistParams {
    fn default() -> Self {
        HistParams { bins: 256, per_thread: 64, blocks: 15, tpb: 32, seed: 0xD1CE }
    }
}

impl HistParams {
    /// Bin addressing for the templates: global bin `b{n}` at word `n`,
    /// input value `i{k}` at word `bins + k`.
    fn addr_of(&self) -> impl Fn(&str) -> u64 {
        let bins = self.bins;
        move |n: &str| {
            if let Some(b) = n.strip_prefix('b') {
                b.parse().unwrap()
            } else {
                input_base(bins) + n[1..].parse::<u64>().unwrap()
            }
        }
    }

    fn expected(&self) -> Vec<Value> {
        let mut bins = vec![0; self.bins];
        for b in 0..self.blocks {
            for t in 0..self.tpb {
                for i in 0..self.per_thread {
                    bins[input_of(self.seed, b, t, i, self.bins) as usize] += 1;
                }
            }
        }
        bins
    }

    fn validate_bins(&self, mem: &[Value]) -> Result<(), String> {
        let expected = self.expected();
        for (i, &e) in expected.iter().enumerate() {
            if mem[i] != e {
                return Err(format!("bin {i}: expected {e}, got {}", mem[i]));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Hist (H): local scratchpad binning, then global merge.
// ---------------------------------------------------------------------

/// The locally-binned histogram.
#[derive(Debug, Clone)]
pub struct Hist {
    /// Shape parameters.
    pub params: HistParams,
    kernel: ProgramKernel,
}

impl Hist {
    /// Build the kernel: each thread bins into a private scratch region
    /// (as the paper's per-thread local binning does) so scratch updates
    /// never race; after the block barrier, thread `t` merges bins
    /// `t, t + tpb, ...` with one commutative add per non-empty bin.
    pub fn new(params: HistParams) -> Hist {
        let shape = hist::Shape {
            bins: params.bins,
            per_thread: params.per_thread,
            tpb: params.tpb,
            merge_class: OpClass::Commutative,
        };
        let seed = params.seed;
        let bins = params.bins;
        let bin_of = move |b: usize, t: usize, i: usize| input_of(seed, b, t, i, bins) as usize;
        let mut p = Program::new("H");
        for block in 0..params.blocks {
            for thread in 0..params.tpb {
                let t = hist::local_thread(&mut p, &shape, block, thread, &bin_of);
                p.push_thread(t);
            }
        }
        let p = p.build();
        let memory = params.bins + params.blocks * params.tpb * params.per_thread;
        let scratch = params.tpb * params.bins;
        let kernel = ProgramKernel::grid(&p, params.tpb, memory, scratch, params.addr_of());
        Hist { params, kernel }
    }
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new(HistParams::default())
    }
}

impl Kernel for Hist {
    fn name(&self) -> String {
        self.kernel.name()
    }
    fn blocks(&self) -> usize {
        self.kernel.blocks()
    }
    fn threads_per_block(&self) -> usize {
        self.kernel.threads_per_block()
    }
    fn scratch_words(&self) -> usize {
        self.kernel.scratch_words()
    }
    fn memory_words(&self) -> usize {
        self.kernel.memory_words()
    }
    fn init_memory(&self, mem: &mut [Value]) {
        self.kernel.init_memory(mem);
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        self.kernel.item(block, thread)
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        self.params.validate_bins(mem)
    }
}

// ---------------------------------------------------------------------
// Hist_global (HG): every value goes straight to the global bins.
// ---------------------------------------------------------------------

/// The all-global histogram.
#[derive(Debug, Clone)]
pub struct HistGlobal {
    /// Shape parameters.
    pub params: HistParams,
    /// Class annotation on the updates (Table 3: commutative; the
    /// acquire/release ablation compares `Paired` against `Release` —
    /// an increment has nothing to acquire, so the release-only RMW
    /// keeps the input lines in the L1).
    pub update_class: OpClass,
    kernel: ProgramKernel,
}

impl HistGlobal {
    /// Build the kernel: one `update_class` fetch-add straight to the
    /// global bin per value.
    pub fn new(params: HistParams, update_class: OpClass) -> HistGlobal {
        let shape = hist::Shape {
            bins: params.bins,
            per_thread: params.per_thread,
            tpb: params.tpb,
            merge_class: update_class,
        };
        let seed = params.seed;
        let bins = params.bins;
        let bin_of = move |b: usize, t: usize, i: usize| input_of(seed, b, t, i, bins) as usize;
        let mut p = Program::new("HG");
        for block in 0..params.blocks {
            for thread in 0..params.tpb {
                let t = hist::global_thread(&mut p, &shape, block, thread, update_class, &bin_of);
                p.push_thread(t);
            }
        }
        let p = p.build();
        let memory = params.bins + params.blocks * params.tpb * params.per_thread;
        let kernel = ProgramKernel::grid(&p, params.tpb, memory, 0, params.addr_of());
        HistGlobal { params, update_class, kernel }
    }
}

impl Default for HistGlobal {
    fn default() -> Self {
        HistGlobal::new(HistParams::default(), OpClass::Commutative)
    }
}

impl Kernel for HistGlobal {
    fn name(&self) -> String {
        self.kernel.name()
    }
    fn blocks(&self) -> usize {
        self.kernel.blocks()
    }
    fn threads_per_block(&self) -> usize {
        self.kernel.threads_per_block()
    }
    fn memory_words(&self) -> usize {
        self.kernel.memory_words()
    }
    fn init_memory(&self, mem: &mut [Value]) {
        self.kernel.init_memory(mem);
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        self.kernel.item(block, thread)
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        self.params.validate_bins(mem)
    }
}

// ---------------------------------------------------------------------
// HG-NO: read the final bins with non-ordering atomic loads.
// ---------------------------------------------------------------------

/// The bin-reading phase with non-ordering atomics.
///
/// Threads read scattered, mostly-disjoint bins (a hashed stride), so
/// an atomic load rarely finds its line already owned by its own CU.
/// Under DeNovo every read drags ownership across the mesh (the §6
/// "overhead of obtaining ownership from a remote core"), while GPU
/// coherence just round-trips to the home L2 bank — this is the
/// microbenchmark where DD0 loses to GD0 in Figure 3.
#[derive(Debug, Clone)]
pub struct HistGlobalNonOrder {
    /// Shape parameters: `bins` is the table size, `per_thread` the
    /// reads issued per thread.
    pub params: HistParams,
    kernel: ProgramKernel,
}

impl HistGlobalNonOrder {
    /// Build the kernel: a pre-populated histogram walked with
    /// non-ordering atomic loads (the update phase is excluded).
    pub fn new(params: HistParams) -> HistGlobalNonOrder {
        let threads = params.blocks * params.tpb;
        let mut p = Program::new("HG-NO");
        for gid in 0..threads {
            let t = hist::nonorder_thread(&mut p, params.bins, params.per_thread, gid, threads);
            p.push_thread(t);
        }
        for j in 0..params.bins {
            p.set_init(&format!("b{j}"), (j % 7 + 1) as i64);
        }
        let p = p.build();
        let kernel = ProgramKernel::grid(&p, params.tpb, params.bins, 0, params.addr_of());
        HistGlobalNonOrder { params, kernel }
    }
}

impl Default for HistGlobalNonOrder {
    fn default() -> Self {
        HistGlobalNonOrder::new(HistParams { bins: 4096, per_thread: 64, ..HistParams::default() })
    }
}

impl Kernel for HistGlobalNonOrder {
    fn name(&self) -> String {
        self.kernel.name()
    }
    fn blocks(&self) -> usize {
        self.kernel.blocks()
    }
    fn threads_per_block(&self) -> usize {
        self.kernel.threads_per_block()
    }
    fn memory_words(&self) -> usize {
        self.kernel.memory_words()
    }
    fn init_memory(&self, mem: &mut [Value]) {
        self.kernel.init_memory(mem);
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        self.kernel.item(block, thread)
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        // Read-only: bins must be untouched.
        for (i, &bin) in mem.iter().enumerate().take(self.params.bins) {
            if bin != (i % 7 + 1) as Value {
                return Err(format!("bin {i} was modified"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::SystemConfig;
    use hsim_sys::{run_workload, SysParams};

    fn small() -> HistParams {
        HistParams { bins: 32, per_thread: 8, blocks: 4, tpb: 4, seed: 1 }
    }

    #[test]
    fn hist_is_functionally_correct_on_every_config() {
        let k = Hist::new(small());
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn hg_is_functionally_correct_on_every_config() {
        let k = HistGlobal::new(small(), OpClass::Commutative);
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn hg_no_reads_do_not_modify() {
        let k = HistGlobalNonOrder::new(small());
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn hg_has_many_more_atomics_than_h() {
        // Many values over few bins: H merges each thread's nonzero
        // bins once, HG pays one atomic per value.
        let p = HistParams { bins: 16, per_thread: 64, blocks: 4, tpb: 4, seed: 1 };
        let params = SysParams::integrated();
        let cfg = SystemConfig::from_abbrev("GD0").unwrap();
        let h = run_workload(&Hist::new(p.clone()), cfg, &params);
        let hg = run_workload(&HistGlobal::new(p, OpClass::Commutative), cfg, &params);
        assert!(hg.atomics > 2 * h.atomics, "HG {} vs H {} atomics", hg.atomics, h.atomics);
    }

    #[test]
    fn hist_uses_the_scratchpad() {
        let params = SysParams::integrated();
        let cfg = SystemConfig::from_abbrev("GD0").unwrap();
        let h = run_workload(&Hist::new(small()), cfg, &params);
        assert!(h.counters.scratch_accesses > 0);
        let hg = run_workload(&HistGlobal::new(small(), OpClass::Commutative), cfg, &params);
        assert_eq!(hg.counters.scratch_accesses, 0);
    }
}
