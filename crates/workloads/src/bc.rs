//! Betweenness centrality (Pannotia-style, §4.4, Table 3).
//!
//! Brandes' algorithm from a single source: level-synchronous forward
//! BFS computing shortest-path counts (`sigma`) — the atomic-heavy
//! phase where Pannotia uses relaxed atomics — followed by the backward
//! dependency accumulation. Per the paper's Table 3, the forward phase
//! uses **commutative** atomics (fetch-min level discovery, fetch-add
//! sigma accumulation) and **non-ordering** atomic loads (level
//! checks); the paired atomics are confined to the per-level barrier.
//!
//! Dependency accumulation uses 2^12 fixed-point arithmetic and is
//! validated exactly against a sequential oracle.

use crate::graphs::Csr;
use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Op, RmwKind, Value, WorkItem};
use std::sync::Arc;

/// Fixed-point scale for dependency values.
pub const SCALE: u64 = 1 << 12;
/// "Unreached" level marker.
pub const UNSET: u64 = u64::MAX / 2;

/// The BC kernel over one graph.
#[derive(Debug, Clone)]
pub struct Bc {
    graph: Arc<Csr>,
    /// Number of BFS sources processed (vertices `0..sources`), as in
    /// Pannotia's source loop. Centrality accumulates across sources.
    pub sources: usize,
    /// Maximum BFS depth over all sources (barriers run per level).
    pub max_depth: usize,
    /// Thread blocks.
    pub blocks: usize,
    /// Threads per block.
    pub tpb: usize,
}

struct Map {
    n: usize,
}

impl Map {
    fn level(&self, v: usize) -> u64 {
        v as u64
    }
    fn sigma(&self, v: usize) -> u64 {
        (self.n + v) as u64
    }
    fn delta(&self, v: usize) -> u64 {
        (2 * self.n + v) as u64
    }
    fn bc(&self, v: usize) -> u64 {
        (3 * self.n + v) as u64
    }
    fn offsets(&self, v: usize) -> u64 {
        (4 * self.n + v) as u64
    }
    fn edge(&self, e: u64) -> u64 {
        (5 * self.n + 1) as u64 + e
    }
    fn words(&self, edges: usize) -> usize {
        5 * self.n + 1 + edges
    }
}

impl Bc {
    /// Build over a graph.
    pub fn new(graph: Csr, blocks: usize, tpb: usize) -> Bc {
        Bc::with_sources(graph, 1, blocks, tpb)
    }

    /// Build with a Pannotia-style loop over the first `sources`
    /// vertices.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is zero or exceeds the vertex count.
    pub fn with_sources(graph: Csr, sources: usize, blocks: usize, tpb: usize) -> Bc {
        assert!(sources >= 1 && sources <= graph.verts(), "bad source count");
        let max_depth = (0..sources)
            .map(|s| {
                Bc::oracle_levels(&graph, s)
                    .iter()
                    .filter(|&&l| l != UNSET)
                    .max()
                    .copied()
                    .unwrap_or(0) as usize
            })
            .max()
            .unwrap_or(0);
        Bc { graph: Arc::new(graph), sources, max_depth, blocks, tpb }
    }

    /// The graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    fn map(&self) -> Map {
        Map { n: self.graph.verts() }
    }

    fn threads(&self) -> usize {
        self.blocks * self.tpb
    }

    fn oracle_levels(graph: &Csr, source: usize) -> Vec<u64> {
        let mut level = vec![UNSET; graph.verts()];
        level[source] = 0;
        let mut frontier = vec![source];
        let mut d = 0;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &u in graph.neighbors(v) {
                    if level[u as usize] == UNSET {
                        level[u as usize] = d + 1;
                        next.push(u as usize);
                    }
                }
            }
            frontier = next;
            d += 1;
        }
        level
    }

    /// Sequential oracle for one source: (level, sigma, delta,
    /// per-source bc contribution) with identical arithmetic.
    fn oracle_one(&self, source: usize) -> (Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>) {
        let n = self.graph.verts();
        let level = Bc::oracle_levels(&self.graph, source);
        let mut sigma = vec![0u64; n];
        sigma[source] = 1;
        for d in 0..self.max_depth as u64 {
            for v in 0..n {
                if level[v] != d {
                    continue;
                }
                let sv = sigma[v];
                for &u in self.graph.neighbors(v) {
                    if level[u as usize] == d + 1 {
                        sigma[u as usize] += sv;
                    }
                }
            }
        }
        let mut delta = vec![0u64; n];
        let mut bc = vec![0u64; n];
        for d in (0..self.max_depth as u64).rev() {
            for v in 0..n {
                if level[v] != d {
                    continue;
                }
                let mut acc = 0u64;
                for &u in self.graph.neighbors(v) {
                    let u = u as usize;
                    if level[u] == d + 1 && sigma[u] > 0 {
                        acc += sigma[v] * (SCALE + delta[u]) / sigma[u];
                    }
                }
                delta[v] = acc;
                if v != source {
                    bc[v] = delta[v];
                }
            }
        }
        (level, sigma, delta, bc)
    }

    /// Sequential oracle: (last source's level, last source's sigma,
    /// last source's delta, accumulated bc over all sources).
    pub fn oracle(&self) -> (Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>) {
        let n = self.graph.verts();
        let mut total_bc = vec![0u64; n];
        let mut last = (Vec::new(), Vec::new(), Vec::new());
        for s in 0..self.sources {
            let (level, sigma, delta, bc) = self.oracle_one(s);
            for v in 0..n {
                total_bc[v] += bc[v];
            }
            last = (level, sigma, delta);
        }
        (last.0, last.1, last.2, total_bc)
    }
}

enum BcPhase {
    /// Forward level d: owned-vertex cursor.
    FwdVertex(u64, usize),
    /// last = level[v].
    FwdCheckLevel(u64, usize),
    /// last = sigma[v].
    FwdSigma(u64, usize),
    /// last = offsets[v]. Carries sv.
    FwdOff1(u64, usize, Value),
    /// last = offsets[v+1]. Carries (sv, off0).
    FwdEdges(u64, usize, Value, u64),
    /// Per-edge: fetch edges[e]. Carries (e, end, sv).
    FwdEdgeLd(u64, usize, u64, u64, Value),
    /// last = neighbour id: read its level (non-ordering).
    FwdEdgeLevel(u64, usize, u64, u64, Value),
    /// last = neighbour level. Carries the neighbour id.
    FwdEdgeDecide(u64, usize, u64, u64, Value, u64),
    /// Fetch-min issued: accumulate sigma into the neighbour.
    FwdEdgeSigma(u64, usize, u64, u64, Value, u64),
    /// Kernel-relaunch boundary, then continue with the boxed phase.
    Sync(Box<BcPhase>),
    SyncDone(Box<BcPhase>),
    /// Backward level d: owned cursor; all reads barrier-ordered data.
    BwdVertex(u64, usize),
    BwdCheckLevel(u64, usize),
    BwdSigmaV(u64, usize),
    BwdOff1(u64, usize, Value),
    BwdEdges(u64, usize, Value, u64),
    /// Per-edge: (e, end, sv, acc).
    BwdEdgeLd(u64, usize, u64, u64, Value, Value),
    /// last = neighbour id: read its level.
    BwdEdgeLevel(u64, usize, u64, u64, Value, Value),
    /// last = neighbour level; maybe read sigma[u]. Carries u.
    BwdEdgeSigmaU(u64, usize, u64, u64, Value, Value, u64),
    /// last = sigma[u]; read delta[u]. Carries (u, su).
    BwdEdgeDeltaU(u64, usize, u64, u64, Value, Value, u64, Value),
    BwdStoreDelta(u64, usize, u64),
    /// Load the running centrality for accumulation; carries delta.
    BwdBcLoad(u64, usize, u64),
    /// last = old bc[v]: store the accumulated value.
    BwdBcStore(u64, usize, u64),
    /// Between sources: reset level/sigma/delta of owned vertices.
    ReinitLevel(usize),
    ReinitSigma(usize),
    ReinitDelta(usize),
    Done,
}

struct BcItem {
    map: Map,
    verts: usize,
    tid: usize,
    threads: usize,
    max_depth: u64,
    sources: usize,
    /// Current BFS source.
    src: usize,
    phase: BcPhase,
}

impl BcItem {
    fn owned(&self, cursor: usize) -> Option<usize> {
        // Contiguous block partitioning: thread t owns vertices
        // [t*chunk, (t+1)*chunk). Mesh-like graphs then keep most
        // neighbour updates within the owning CU — the locality DeNovo's
        // ownership exploits (Pannotia partitions the same way).
        let chunk = self.verts.div_ceil(self.threads);
        let v = self.tid * chunk + cursor;
        (cursor < chunk && v < self.verts).then_some(v)
    }

    fn sync_to(&self, then: BcPhase) -> BcPhase {
        BcPhase::Sync(Box::new(then))
    }
}

impl WorkItem for BcItem {
    fn next(&mut self, last: Option<Value>) -> Op {
        loop {
            let phase = std::mem::replace(&mut self.phase, BcPhase::Done);
            match phase {
                // ---------------- forward BFS ----------------
                BcPhase::FwdVertex(d, cur) => {
                    let Some(v) = self.owned(cur) else {
                        let after = if d < self.max_depth {
                            BcPhase::FwdVertex(d + 1, 0)
                        } else {
                            BcPhase::BwdVertex(self.max_depth.saturating_sub(1), 0)
                        };
                        self.phase = self.sync_to(after);
                        continue;
                    };
                    // Own level is stable (set in an earlier, barrier-
                    // separated phase): plain data read.
                    self.phase = BcPhase::FwdCheckLevel(d, cur);
                    return Op::Load { addr: self.map.level(v), class: OpClass::Data };
                }
                BcPhase::FwdCheckLevel(d, cur) => {
                    if last.unwrap_or(UNSET) != d {
                        self.phase = BcPhase::FwdVertex(d, cur + 1);
                        continue;
                    }
                    self.phase = BcPhase::FwdSigma(d, cur);
                    let v = self.owned(cur).expect("cursor valid");
                    return Op::Load { addr: self.map.sigma(v), class: OpClass::Data };
                }
                BcPhase::FwdSigma(d, cur) => {
                    let sv = last.unwrap_or(0);
                    let v = self.owned(cur).expect("cursor valid");
                    self.phase = BcPhase::FwdOff1(d, cur, sv);
                    return Op::Load { addr: self.map.offsets(v), class: OpClass::Data };
                }
                BcPhase::FwdOff1(d, cur, sv) => {
                    let off0 = last.unwrap_or(0);
                    let v = self.owned(cur).expect("cursor valid");
                    self.phase = BcPhase::FwdEdges(d, cur, sv, off0);
                    return Op::Load { addr: self.map.offsets(v + 1), class: OpClass::Data };
                }
                BcPhase::FwdEdges(d, cur, sv, off0) => {
                    let off1 = last.unwrap_or(0);
                    self.phase = BcPhase::FwdEdgeLd(d, cur, off0, off1, sv);
                }
                BcPhase::FwdEdgeLd(d, cur, e, end, sv) => {
                    if e >= end {
                        self.phase = BcPhase::FwdVertex(d, cur + 1);
                        continue;
                    }
                    self.phase = BcPhase::FwdEdgeLevel(d, cur, e, end, sv);
                    return Op::Load { addr: self.map.edge(e), class: OpClass::Data };
                }
                BcPhase::FwdEdgeLevel(d, cur, e, end, sv) => {
                    let u = last.unwrap_or(0);
                    self.phase = BcPhase::FwdEdgeDecide(d, cur, e, end, sv, u);
                    return Op::Load {
                        addr: self.map.level(u as usize),
                        class: OpClass::NonOrdering,
                    };
                }
                BcPhase::FwdEdgeDecide(d, cur, e, end, sv, u) => {
                    let lvl = last.unwrap_or(UNSET);
                    if lvl > d {
                        // Claim with a commutative fetch-min; the sigma
                        // add follows.
                        self.phase = BcPhase::FwdEdgeSigma(d, cur, e, end, sv, u);
                        return Op::Rmw {
                            addr: self.map.level(u as usize),
                            rmw: RmwKind::Min,
                            operand: d + 1,
                            class: OpClass::Commutative,
                            use_result: false,
                        };
                    }
                    self.phase = BcPhase::FwdEdgeLd(d, cur, e + 1, end, sv);
                }
                BcPhase::FwdEdgeSigma(d, cur, e, end, sv, u) => {
                    self.phase = BcPhase::FwdEdgeLd(d, cur, e + 1, end, sv);
                    return Op::Rmw {
                        addr: self.map.sigma(u as usize),
                        rmw: RmwKind::Add,
                        operand: sv,
                        class: OpClass::Commutative,
                        use_result: false,
                    };
                }
                // ---------------- barriers ----------------
                BcPhase::Sync(then) => {
                    self.phase = BcPhase::SyncDone(then);
                    return Op::GlobalBarrier;
                }
                BcPhase::SyncDone(then) => {
                    self.phase = *then;
                }
                // ---------------- backward accumulation ----------------
                BcPhase::BwdVertex(d, cur) => {
                    let Some(v) = self.owned(cur) else {
                        let after = if d > 0 {
                            BcPhase::BwdVertex(d - 1, 0)
                        } else if self.src + 1 < self.sources {
                            // Next source: barrier, then re-initialize.
                            self.src += 1;
                            BcPhase::ReinitLevel(0)
                        } else {
                            BcPhase::Done
                        };
                        self.phase = self.sync_to(after);
                        continue;
                    };
                    self.phase = BcPhase::BwdCheckLevel(d, cur);
                    return Op::Load { addr: self.map.level(v), class: OpClass::Data };
                }
                BcPhase::BwdCheckLevel(d, cur) => {
                    if last.unwrap_or(UNSET) != d {
                        self.phase = BcPhase::BwdVertex(d, cur + 1);
                        continue;
                    }
                    self.phase = BcPhase::BwdSigmaV(d, cur);
                    let v = self.owned(cur).expect("cursor valid");
                    return Op::Load { addr: self.map.sigma(v), class: OpClass::Data };
                }
                BcPhase::BwdSigmaV(d, cur) => {
                    let sv = last.unwrap_or(0);
                    let v = self.owned(cur).expect("cursor valid");
                    self.phase = BcPhase::BwdOff1(d, cur, sv);
                    return Op::Load { addr: self.map.offsets(v), class: OpClass::Data };
                }
                BcPhase::BwdOff1(d, cur, sv) => {
                    let off0 = last.unwrap_or(0);
                    let v = self.owned(cur).expect("cursor valid");
                    self.phase = BcPhase::BwdEdges(d, cur, sv, off0);
                    return Op::Load { addr: self.map.offsets(v + 1), class: OpClass::Data };
                }
                BcPhase::BwdEdges(d, cur, sv, off0) => {
                    let off1 = last.unwrap_or(0);
                    self.phase = BcPhase::BwdEdgeLd(d, cur, off0, off1, sv, 0);
                }
                BcPhase::BwdEdgeLd(d, cur, e, end, sv, acc) => {
                    if e >= end {
                        self.phase = BcPhase::BwdStoreDelta(d, cur, acc);
                        continue;
                    }
                    self.phase = BcPhase::BwdEdgeLevel(d, cur, e, end, sv, acc);
                    return Op::Load { addr: self.map.edge(e), class: OpClass::Data };
                }
                BcPhase::BwdEdgeLevel(d, cur, e, end, sv, acc) => {
                    let u = last.unwrap_or(0);
                    self.phase = BcPhase::BwdEdgeSigmaU(d, cur, e, end, sv, acc, u);
                    return Op::Load { addr: self.map.level(u as usize), class: OpClass::Data };
                }
                BcPhase::BwdEdgeSigmaU(d, cur, e, end, sv, acc, u) => {
                    let lvl = last.unwrap_or(UNSET);
                    if lvl != d + 1 {
                        self.phase = BcPhase::BwdEdgeLd(d, cur, e + 1, end, sv, acc);
                        continue;
                    }
                    self.phase = BcPhase::BwdEdgeDeltaU(d, cur, e, end, sv, acc, u, 0);
                    return Op::Load { addr: self.map.sigma(u as usize), class: OpClass::Data };
                }
                BcPhase::BwdEdgeDeltaU(d, cur, e, end, sv, acc, u, su) => {
                    if su == 0 {
                        // First entry: last = sigma[u]; fetch delta[u].
                        let su = last.unwrap_or(0);
                        if su == 0 {
                            self.phase = BcPhase::BwdEdgeLd(d, cur, e + 1, end, sv, acc);
                            continue;
                        }
                        self.phase = BcPhase::BwdEdgeDeltaU(d, cur, e, end, sv, acc, u, su);
                        return Op::Load { addr: self.map.delta(u as usize), class: OpClass::Data };
                    }
                    let du = last.unwrap_or(0);
                    let add = sv * (SCALE + du) / su;
                    self.phase = BcPhase::BwdEdgeLd(d, cur, e + 1, end, sv, acc + add);
                }
                BcPhase::BwdStoreDelta(d, cur, acc) => {
                    let v = self.owned(cur).expect("cursor valid");
                    self.phase = BcPhase::BwdBcLoad(d, cur, acc);
                    return Op::Store { addr: self.map.delta(v), value: acc, class: OpClass::Data };
                }
                BcPhase::BwdBcLoad(d, cur, acc) => {
                    let v = self.owned(cur).expect("cursor valid");
                    if v == self.src || acc == 0 {
                        self.phase = BcPhase::BwdVertex(d, cur + 1);
                        continue;
                    }
                    self.phase = BcPhase::BwdBcStore(d, cur, acc);
                    return Op::Load { addr: self.map.bc(v), class: OpClass::Data };
                }
                BcPhase::BwdBcStore(d, cur, acc) => {
                    let v = self.owned(cur).expect("cursor valid");
                    let old = last.unwrap_or(0);
                    self.phase = BcPhase::BwdVertex(d, cur + 1);
                    return Op::Store {
                        addr: self.map.bc(v),
                        value: old + acc,
                        class: OpClass::Data,
                    };
                }
                BcPhase::ReinitLevel(cur) => {
                    let Some(v) = self.owned(cur) else {
                        self.phase = self.sync_to(BcPhase::FwdVertex(0, 0));
                        continue;
                    };
                    self.phase = BcPhase::ReinitSigma(cur);
                    let lvl = if v == self.src { 0 } else { UNSET };
                    return Op::Store { addr: self.map.level(v), value: lvl, class: OpClass::Data };
                }
                BcPhase::ReinitSigma(cur) => {
                    let v = self.owned(cur).expect("cursor valid");
                    self.phase = BcPhase::ReinitDelta(cur);
                    let sg = u64::from(v == self.src);
                    return Op::Store { addr: self.map.sigma(v), value: sg, class: OpClass::Data };
                }
                BcPhase::ReinitDelta(cur) => {
                    let v = self.owned(cur).expect("cursor valid");
                    self.phase = BcPhase::ReinitLevel(cur + 1);
                    return Op::Store { addr: self.map.delta(v), value: 0, class: OpClass::Data };
                }
                BcPhase::Done => {
                    self.phase = BcPhase::Done;
                    return Op::Done;
                }
            }
        }
    }
}

impl Kernel for Bc {
    fn name(&self) -> String {
        format!("BC[{}]", self.graph.name)
    }
    fn blocks(&self) -> usize {
        self.blocks
    }
    fn threads_per_block(&self) -> usize {
        self.tpb
    }
    fn memory_words(&self) -> usize {
        self.map().words(self.graph.num_edges())
    }
    fn init_memory(&self, mem: &mut [Value]) {
        let m = self.map();
        let n = self.graph.verts();
        for v in 0..n {
            mem[m.level(v) as usize] = if v == 0 { 0 } else { UNSET };
            mem[m.sigma(v) as usize] = u64::from(v == 0);
            mem[m.offsets(v) as usize] = self.graph.offsets[v] as Value;
        }
        mem[m.offsets(n) as usize] = self.graph.offsets[n] as Value;
        for (e, &u) in self.graph.edges.iter().enumerate() {
            mem[m.edge(e as u64) as usize] = u as Value;
        }
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        Box::new(BcItem {
            map: self.map(),
            verts: self.graph.verts(),
            tid: block * self.tpb + thread,
            threads: self.threads(),
            max_depth: self.max_depth as u64,
            sources: self.sources,
            src: 0,
            phase: BcPhase::FwdVertex(0, 0),
        })
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        let m = self.map();
        let (level, sigma, _delta, bc) = self.oracle();
        for v in 0..self.graph.verts() {
            if mem[m.level(v) as usize] != level[v] {
                return Err(format!(
                    "level[{v}]: expected {}, got {}",
                    level[v],
                    mem[m.level(v) as usize]
                ));
            }
            if mem[m.sigma(v) as usize] != sigma[v] {
                return Err(format!(
                    "sigma[{v}]: expected {}, got {}",
                    sigma[v],
                    mem[m.sigma(v) as usize]
                ));
            }
            if mem[m.bc(v) as usize] != bc[v] {
                return Err(format!("bc[{v}]: expected {}, got {}", bc[v], mem[m.bc(v) as usize]));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs;
    use drfrlx_core::SystemConfig;
    use hsim_sys::{run_workload, SysParams};

    fn tiny() -> Bc {
        Bc::new(graphs::mesh_like("tiny", 6, 4), 4, 4)
    }

    #[test]
    fn oracle_bfs_is_sane() {
        let bc = tiny();
        let (level, sigma, _, _) = bc.oracle();
        assert_eq!(level[0], 0);
        assert_eq!(sigma[0], 1);
        // Connected mesh: everything reached.
        assert!(level.iter().all(|&l| l != UNSET));
        // Neighbours of the source are at level 1 with sigma 1.
        for &u in bc.graph().neighbors(0) {
            assert_eq!(level[u as usize], 1);
        }
    }

    #[test]
    fn multi_source_bc_accumulates_centrality() {
        let bc = Bc::with_sources(graphs::mesh_like("t", 6, 4), 3, 4, 4);
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&bc, cfg, &params);
            bc.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
        // Centrality from three sources strictly exceeds one source's.
        let one = Bc::new(graphs::mesh_like("t", 6, 4), 4, 4);
        let total3: u64 = bc.oracle().3.iter().sum();
        let total1: u64 = one.oracle().3.iter().sum();
        assert!(total3 > total1);
    }

    #[test]
    fn bc_matches_oracle_on_every_config() {
        let bc = tiny();
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&bc, cfg, &params);
            bc.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }
}
