//! UTS — Unbalanced Tree Search (§4.4, Table 3: unpaired atomics).
//!
//! Dynamic load balancing over a shared work queue, the paper's Work
//! Queue use case (Listing 1) at benchmark scale: workers poll the
//! queue occupancy with cheap **unpaired** loads (no L1 invalidation,
//! no store-buffer flush under DRF1/DRFrlx) and fall back to paired
//! atomics only to actually claim or publish work.
//!
//! The unbalanced tree is precomputed deterministically (geometric
//! branching from a seed, as in the UTS benchmark); traversal *order*
//! varies with timing, but every node is processed exactly once, which
//! the kernel validates with per-node visit counters.

use crate::util::SplitMix64;
use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Op, RmwKind, Value, WorkItem};
use std::sync::Arc;

/// A precomputed unbalanced tree in CSR-like form.
#[derive(Debug, Clone)]
pub struct Tree {
    /// Child-list offsets per node (`nodes + 1`).
    pub offsets: Vec<u32>,
    /// Concatenated child ids.
    pub children: Vec<u32>,
}

impl Tree {
    /// Generate a tree of exactly `nodes` nodes with geometric
    /// branching (up to `max_kids` children, biased to leaves —
    /// unbalanced like UTS' geometric distribution).
    pub fn generate(nodes: usize, max_kids: usize, seed: u64) -> Tree {
        let mut rng = SplitMix64::new(seed);
        let mut kids: Vec<Vec<u32>> = vec![Vec::new(); nodes];
        let mut next = 1u32;
        let mut frontier = vec![0u32];
        while (next as usize) < nodes && !frontier.is_empty() {
            let parent = frontier.remove(0);
            // Geometric-ish: 0 children with p ~ 1/2, else 1..max_kids.
            let n = if rng.below(2) == 0 { 0 } else { 1 + rng.below(max_kids as u64) as usize };
            for _ in 0..n {
                if (next as usize) >= nodes {
                    break;
                }
                kids[parent as usize].push(next);
                frontier.push(next);
                next += 1;
            }
            if frontier.is_empty() && (next as usize) < nodes {
                // Keep growing from the last allocated node.
                frontier.push(next - 1);
            }
        }
        let mut offsets = Vec::with_capacity(nodes + 1);
        let mut children = Vec::new();
        offsets.push(0);
        for k in kids {
            children.extend_from_slice(&k);
            offsets.push(children.len() as u32);
        }
        Tree { offsets, children }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Children of a node.
    pub fn children_of(&self, v: usize) -> &[u32] {
        &self.children[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }
}

/// The UTS kernel (paper input: 16K nodes; default scaled to 2K).
#[derive(Debug, Clone)]
pub struct Uts {
    tree: Arc<Tree>,
    /// Thread blocks.
    pub blocks: usize,
    /// Threads per block.
    pub tpb: usize,
    /// ALU work per processed node.
    pub work_per_node: u32,
}

/// Memory map: `head(0) | alloc(1) | processed(2) | tasks[n] |
/// ready[n] | visited[n] | child offsets[n+1] | children[...]`.
struct Map {
    n: usize,
}

const HEAD: u64 = 0;
const ALLOC: u64 = 1;
const PROCESSED: u64 = 2;

impl Map {
    fn task(&self, i: u64) -> u64 {
        3 + i
    }
    fn ready(&self, i: u64) -> u64 {
        3 + self.n as u64 + i
    }
    fn visited(&self, v: u64) -> u64 {
        3 + 2 * self.n as u64 + v
    }
    fn offsets(&self, v: u64) -> u64 {
        3 + 3 * self.n as u64 + v
    }
    fn child(&self, e: u64) -> u64 {
        3 + 4 * self.n as u64 + 1 + e
    }
    fn words(&self, edges: usize) -> usize {
        3 + 4 * self.n + 1 + edges
    }
}

impl Uts {
    /// Build over a generated tree.
    pub fn new(tree: Tree, blocks: usize, tpb: usize) -> Uts {
        Uts { tree: Arc::new(tree), blocks, tpb, work_per_node: 8 }
    }

    /// The default paper-shaped instance, scaled.
    pub fn scaled(nodes: usize, blocks: usize, tpb: usize) -> Uts {
        Uts::new(Tree::generate(nodes, 4, 0x075), blocks, tpb)
    }

    /// The tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    fn map(&self) -> Map {
        Map { n: self.tree.nodes() }
    }
}

enum UtsPhase {
    /// Cheap occupancy poll: load head (unpaired).
    PollHead,
    /// `last` = head; load alloc (unpaired).
    GotHead,
    /// `last` = alloc; decide between claiming and idling.
    GotAlloc(Value),
    /// Idle path: check the processed count (unpaired).
    CheckProcessed,
    AfterProcessed,
    /// Claim an index with a paired fetch-add on head.
    Claim,
    /// `last` = claimed index.
    GotClaim,
    /// Wait for the slot to be published (paired acquire).
    WaitReadyCheck(u64),
    WaitReadyRetry(u64),
    /// Read the task (node id) from the slot.
    ReadTask(u64),
    /// `last` = node id: bump its visit counter.
    Visit,
    /// Per-node ALU work, then read the child range.
    Work(u64),
    /// Load offsets[node] (data, from simulated memory).
    ChildOff0(u64),
    /// `last` = offsets[node]; load offsets[node + 1].
    ChildOff1(u64),
    /// `last` = offsets[node + 1]; carries offsets[node].
    GotChildEnd(u64),
    /// Per-child edge cursor (e, end): load children[e].
    ChildLd(u64, u64),
    /// `last` = child id: reserve a queue slot (paired fetch-add).
    PushReserve(u64, u64),
    /// `last` = slot: store the task payload (data).
    PushStore(u64, u64, u64),
    /// Publish the slot (paired release store).
    PushPublish(u64, u64, u64),
    /// Count the node as processed (unpaired).
    Retire,
    Done,
}

struct UtsItem {
    map: Map,
    total: u64,
    work: u32,
    phase: UtsPhase,
}

impl WorkItem for UtsItem {
    fn next(&mut self, last: Option<Value>) -> Op {
        loop {
            match self.phase {
                // -------- the Work Queue pattern (Listing 1) --------
                UtsPhase::PollHead => {
                    self.phase = UtsPhase::GotHead;
                    return Op::Load { addr: HEAD, class: OpClass::Unpaired };
                }
                UtsPhase::GotHead => {
                    let head = last.unwrap_or(0);
                    self.phase = UtsPhase::GotAlloc(head);
                    return Op::Load { addr: ALLOC, class: OpClass::Unpaired };
                }
                UtsPhase::GotAlloc(head) => {
                    let alloc = last.unwrap_or(0);
                    if head < alloc {
                        // Occupancy says there is work: go claim it
                        // with a *paired* atomic (the dequeue).
                        self.phase = UtsPhase::Claim;
                    } else {
                        self.phase = UtsPhase::CheckProcessed;
                    }
                }
                UtsPhase::CheckProcessed => {
                    self.phase = UtsPhase::AfterProcessed;
                    return Op::Load { addr: PROCESSED, class: OpClass::Unpaired };
                }
                UtsPhase::AfterProcessed => {
                    if last.unwrap_or(0) >= self.total {
                        self.phase = UtsPhase::Done;
                        continue;
                    }
                    self.phase = UtsPhase::PollHead;
                    return Op::Think(4);
                }
                UtsPhase::Claim => {
                    self.phase = UtsPhase::GotClaim;
                    return Op::Rmw {
                        addr: HEAD,
                        rmw: RmwKind::Add,
                        operand: 1,
                        class: OpClass::Paired,
                        use_result: true,
                    };
                }
                UtsPhase::GotClaim => {
                    let idx = last.unwrap_or(0);
                    if idx >= self.total {
                        // Overshoot: queue exhausted; wind down.
                        self.phase = UtsPhase::CheckProcessed;
                        continue;
                    }
                    self.phase = UtsPhase::WaitReadyCheck(idx);
                    return Op::Load { addr: self.map.ready(idx), class: OpClass::Paired };
                }
                UtsPhase::WaitReadyCheck(idx) => {
                    if last.unwrap_or(0) == 0 {
                        self.phase = UtsPhase::WaitReadyRetry(idx);
                        return Op::Think(4);
                    }
                    self.phase = UtsPhase::ReadTask(idx);
                }
                UtsPhase::WaitReadyRetry(idx) => {
                    self.phase = UtsPhase::WaitReadyCheck(idx);
                    return Op::Load { addr: self.map.ready(idx), class: OpClass::Paired };
                }
                UtsPhase::ReadTask(idx) => {
                    self.phase = UtsPhase::Visit;
                    return Op::Load { addr: self.map.task(idx), class: OpClass::Data };
                }
                UtsPhase::Visit => {
                    let node = last.unwrap_or(0);
                    self.phase = UtsPhase::Work(node);
                    return Op::Rmw {
                        addr: self.map.visited(node),
                        rmw: RmwKind::Add,
                        operand: 1,
                        class: OpClass::Unpaired,
                        use_result: false,
                    };
                }
                UtsPhase::Work(node) => {
                    self.phase = UtsPhase::ChildOff0(node);
                    return Op::Think(self.work);
                }
                UtsPhase::ChildOff0(node) => {
                    self.phase = UtsPhase::ChildOff1(node);
                    return Op::Load { addr: self.map.offsets(node), class: OpClass::Data };
                }
                UtsPhase::ChildOff1(node) => {
                    let off0 = last.unwrap_or(0);
                    self.phase = UtsPhase::GotChildEnd(off0);
                    return Op::Load { addr: self.map.offsets(node + 1), class: OpClass::Data };
                }
                UtsPhase::GotChildEnd(off0) => {
                    let off1 = last.unwrap_or(0);
                    self.phase = UtsPhase::ChildLd(off0, off1);
                }
                UtsPhase::ChildLd(e, end) => {
                    if e >= end {
                        self.phase = UtsPhase::Retire;
                        continue;
                    }
                    self.phase = UtsPhase::PushReserve(e, end);
                    return Op::Load { addr: self.map.child(e), class: OpClass::Data };
                }
                UtsPhase::PushReserve(e, end) => {
                    let child = last.unwrap_or(0);
                    self.phase = UtsPhase::PushStore(e, end, child);
                    return Op::Rmw {
                        addr: ALLOC,
                        rmw: RmwKind::Add,
                        operand: 1,
                        class: OpClass::Paired,
                        use_result: true,
                    };
                }
                UtsPhase::PushStore(e, end, child) => {
                    let slot = last.unwrap_or(0);
                    self.phase = UtsPhase::PushPublish(e, end, slot);
                    return Op::Store {
                        addr: self.map.task(slot),
                        value: child,
                        class: OpClass::Data,
                    };
                }
                UtsPhase::PushPublish(e, end, slot) => {
                    self.phase = UtsPhase::ChildLd(e + 1, end);
                    return Op::Store {
                        addr: self.map.ready(slot),
                        value: 1,
                        class: OpClass::Paired,
                    };
                }
                UtsPhase::Retire => {
                    self.phase = UtsPhase::PollHead;
                    return Op::Rmw {
                        addr: PROCESSED,
                        rmw: RmwKind::Add,
                        operand: 1,
                        class: OpClass::Unpaired,
                        use_result: false,
                    };
                }
                UtsPhase::Done => return Op::Done,
            }
        }
    }
}

impl Kernel for Uts {
    fn name(&self) -> String {
        format!("UTS[{}]", self.tree.nodes())
    }
    fn blocks(&self) -> usize {
        self.blocks
    }
    fn threads_per_block(&self) -> usize {
        self.tpb
    }
    fn memory_words(&self) -> usize {
        self.map().words(self.tree.children.len())
    }
    fn init_memory(&self, mem: &mut [Value]) {
        let m = self.map();
        // Root pre-published in slot 0.
        mem[m.task(0) as usize] = 0;
        mem[m.ready(0) as usize] = 1;
        mem[ALLOC as usize] = 1;
        for v in 0..=self.tree.nodes() {
            mem[m.offsets(v as u64) as usize] = self.tree.offsets[v] as Value;
        }
        for (e, &c) in self.tree.children.iter().enumerate() {
            mem[m.child(e as u64) as usize] = c as Value;
        }
    }
    fn item(&self, _block: usize, _thread: usize) -> Box<dyn WorkItem> {
        Box::new(UtsItem {
            map: self.map(),
            total: self.tree.nodes() as u64,
            work: self.work_per_node,
            phase: UtsPhase::PollHead,
        })
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        let m = self.map();
        if mem[PROCESSED as usize] != self.tree.nodes() as Value {
            return Err(format!(
                "processed {} != {} nodes",
                mem[PROCESSED as usize],
                self.tree.nodes()
            ));
        }
        for v in 0..self.tree.nodes() {
            let visits = mem[m.visited(v as u64) as usize];
            if visits != 1 {
                return Err(format!("node {v} visited {visits} times"));
            }
        }
        if mem[ALLOC as usize] != self.tree.nodes() as Value {
            return Err(format!("alloc {} != nodes", mem[ALLOC as usize]));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::SystemConfig;
    use hsim_sys::{run_workload, SysParams};

    #[test]
    fn tree_generation_is_exact_and_connected() {
        let t = Tree::generate(200, 4, 9);
        assert_eq!(t.nodes(), 200);
        // Every node except the root is someone's child, exactly once.
        let mut seen = vec![0; 200];
        for &c in &t.children {
            seen[c as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1..].iter().all(|&s| s == 1));
    }

    #[test]
    fn uts_processes_every_node_once_on_every_config() {
        let k = Uts::scaled(64, 4, 4);
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&k, cfg, &params);
            k.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn unpaired_polling_benefits_from_drf1_on_gpu() {
        let k = Uts::scaled(128, 8, 4);
        let params = SysParams::integrated();
        let gd0 = run_workload(&k, SystemConfig::from_abbrev("GD0").unwrap(), &params);
        let gd1 = run_workload(&k, SystemConfig::from_abbrev("GD1").unwrap(), &params);
        assert!(gd1.cycles <= gd0.cycles, "GD1 {} > GD0 {}", gd1.cycles, gd0.cycles);
        // The polls stop invalidating the cache under DRF1.
        assert!(gd1.proto.invalidation_events < gd0.proto.invalidation_events);
    }
}
