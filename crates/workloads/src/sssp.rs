//! Single-source shortest paths (Pannotia-style Bellman-Ford) — an
//! *extension* workload beyond the paper's Table 3, exercising the
//! commutative class with its textbook operation: racy `fetch_min`
//! relaxations of tentative distances. (Pannotia ships SSSP alongside
//! BC and PageRank; the paper picked the latter two.)
//!
//! Round-synchronous Jacobi iteration: each round, every thread relaxes
//! its vertices' outgoing edges with commutative fetch-mins; rounds are
//! separated by kernel-relaunch barriers. Because distances only ever
//! decrease and our simulator executes functionally at issue, the run
//! converges at least as fast as the sequential Jacobi oracle, so a
//! fixed oracle-derived round count yields exact shortest paths under
//! every configuration.

use crate::graphs::Csr;
use crate::util::SplitMix64;
use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Op, RmwKind, Value, WorkItem};

/// "Unreached" distance marker.
pub const INF: u64 = u64::MAX / 4;

/// The SSSP kernel over one graph.
#[derive(Debug, Clone)]
pub struct Sssp {
    graph: Csr,
    /// Source vertex.
    pub source: usize,
    /// Relaxation rounds (≥ the Jacobi convergence count).
    pub rounds: usize,
    /// Thread blocks.
    pub blocks: usize,
    /// Threads per block.
    pub tpb: usize,
    weight_seed: u64,
}

struct Map {
    n: usize,
}

impl Map {
    fn dist(&self, v: usize) -> u64 {
        v as u64
    }
    fn offsets(&self, v: usize) -> u64 {
        (self.n + v) as u64
    }
    fn edge(&self, e: u64) -> u64 {
        (2 * self.n + 1) as u64 + 2 * e
    }
    fn weight(&self, e: u64) -> u64 {
        (2 * self.n + 1) as u64 + 2 * e + 1
    }
    fn words(&self, edges: usize) -> usize {
        2 * self.n + 1 + 2 * edges
    }
}

impl Sssp {
    /// Build over a graph; the round count is derived from the oracle.
    pub fn new(graph: Csr, blocks: usize, tpb: usize) -> Sssp {
        let mut s = Sssp { graph, source: 0, rounds: 0, blocks, tpb, weight_seed: 0x55 };
        s.rounds = s.jacobi_rounds() + 1;
        s
    }

    /// The graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// Deterministic weight of edge index `e` (1..=8).
    pub fn weight_of(&self, e: usize) -> u64 {
        1 + SplitMix64::new(self.weight_seed ^ e as u64).below(8)
    }

    /// Sequential Jacobi iterations until fixpoint; returns rounds used.
    fn jacobi_rounds(&self) -> usize {
        let (mut dist, mut rounds) = (self.oracle_init(), 0);
        loop {
            let prev = dist.clone();
            for (v, &prev_v) in prev.iter().enumerate() {
                if prev_v >= INF {
                    continue;
                }
                for (k, &u) in self.graph.neighbors(v).iter().enumerate() {
                    let e = self.graph.offsets[v] as usize + k;
                    let cand = prev_v + self.weight_of(e);
                    if cand < dist[u as usize] {
                        dist[u as usize] = cand;
                    }
                }
            }
            rounds += 1;
            if dist == prev {
                return rounds;
            }
        }
    }

    fn oracle_init(&self) -> Vec<u64> {
        let mut d = vec![INF; self.graph.verts()];
        d[self.source] = 0;
        d
    }

    /// Exact shortest-path distances (Bellman-Ford to fixpoint).
    pub fn oracle(&self) -> Vec<u64> {
        let mut dist = self.oracle_init();
        loop {
            let mut changed = false;
            for v in 0..self.graph.verts() {
                if dist[v] >= INF {
                    continue;
                }
                for (k, &u) in self.graph.neighbors(v).iter().enumerate() {
                    let e = self.graph.offsets[v] as usize + k;
                    let cand = dist[v] + self.weight_of(e);
                    if cand < dist[u as usize] {
                        dist[u as usize] = cand;
                        changed = true;
                    }
                }
            }
            if !changed {
                return dist;
            }
        }
    }

    fn map(&self) -> Map {
        Map { n: self.graph.verts() }
    }

    fn threads(&self) -> usize {
        self.blocks * self.tpb
    }
}

enum SsspPhase {
    /// Per-round vertex loop: (round, owned cursor).
    Vertex(usize, usize),
    /// last = dist[v] (non-ordering atomic read of a racing location).
    GotDist(usize, usize),
    /// last = offsets[v]; carries dv.
    Off1(usize, usize, Value),
    /// last = offsets[v+1]; carries (dv, off0).
    Edges(usize, usize, Value, u64),
    /// Per-edge: load edges[e]; carries (e, end, dv).
    EdgeLd(usize, usize, u64, u64, Value),
    /// last = neighbour; load weight. Carries u.
    WeightLd(usize, usize, u64, u64, Value),
    /// last = weight: fetch-min the neighbour's distance.
    Relax(usize, usize, u64, u64, Value, u64),
    Sync(usize),
    SyncDone(usize),
    Done,
}

struct SsspItem {
    map: Map,
    verts: usize,
    tid: usize,
    threads: usize,
    rounds: usize,
    phase: SsspPhase,
}

impl SsspItem {
    fn owned(&self, cursor: usize) -> Option<usize> {
        let chunk = self.verts.div_ceil(self.threads);
        let v = self.tid * chunk + cursor;
        (cursor < chunk && v < self.verts).then_some(v)
    }
}

impl WorkItem for SsspItem {
    fn next(&mut self, last: Option<Value>) -> Op {
        loop {
            match self.phase {
                SsspPhase::Vertex(round, cur) => {
                    let Some(v) = self.owned(cur) else {
                        self.phase = SsspPhase::Sync(round);
                        continue;
                    };
                    self.phase = SsspPhase::GotDist(round, cur);
                    // Racy read of a concurrently-min'd location: a
                    // stale value only delays convergence, never breaks
                    // it — the non-ordering contract.
                    return Op::Load { addr: self.map.dist(v), class: OpClass::NonOrdering };
                }
                SsspPhase::GotDist(round, cur) => {
                    let dv = last.unwrap_or(INF);
                    if dv >= INF {
                        self.phase = SsspPhase::Vertex(round, cur + 1);
                        continue;
                    }
                    let v = self.owned(cur).expect("cursor valid");
                    self.phase = SsspPhase::Off1(round, cur, dv);
                    return Op::Load { addr: self.map.offsets(v), class: OpClass::Data };
                }
                SsspPhase::Off1(round, cur, dv) => {
                    let off0 = last.unwrap_or(0);
                    let v = self.owned(cur).expect("cursor valid");
                    self.phase = SsspPhase::Edges(round, cur, dv, off0);
                    return Op::Load { addr: self.map.offsets(v + 1), class: OpClass::Data };
                }
                SsspPhase::Edges(round, cur, dv, off0) => {
                    let off1 = last.unwrap_or(0);
                    self.phase = SsspPhase::EdgeLd(round, cur, off0, off1, dv);
                }
                SsspPhase::EdgeLd(round, cur, e, end, dv) => {
                    if e >= end {
                        self.phase = SsspPhase::Vertex(round, cur + 1);
                        continue;
                    }
                    self.phase = SsspPhase::WeightLd(round, cur, e, end, dv);
                    return Op::Load { addr: self.map.edge(e), class: OpClass::Data };
                }
                SsspPhase::WeightLd(round, cur, e, end, dv) => {
                    let u = last.unwrap_or(0);
                    self.phase = SsspPhase::Relax(round, cur, e, end, dv, u);
                    return Op::Load { addr: self.map.weight(e), class: OpClass::Data };
                }
                SsspPhase::Relax(round, cur, e, end, dv, u) => {
                    let w = last.unwrap_or(1);
                    self.phase = SsspPhase::EdgeLd(round, cur, e + 1, end, dv);
                    return Op::Rmw {
                        addr: self.map.dist(u as usize),
                        rmw: RmwKind::Min,
                        operand: dv + w,
                        class: OpClass::Commutative,
                        use_result: false,
                    };
                }
                SsspPhase::Sync(round) => {
                    self.phase = SsspPhase::SyncDone(round);
                    return Op::GlobalBarrier;
                }
                SsspPhase::SyncDone(round) => {
                    self.phase = if round + 1 < self.rounds {
                        SsspPhase::Vertex(round + 1, 0)
                    } else {
                        SsspPhase::Done
                    };
                }
                SsspPhase::Done => return Op::Done,
            }
        }
    }
}

impl Kernel for Sssp {
    fn name(&self) -> String {
        format!("SSSP[{}]", self.graph.name)
    }
    fn blocks(&self) -> usize {
        self.blocks
    }
    fn threads_per_block(&self) -> usize {
        self.tpb
    }
    fn memory_words(&self) -> usize {
        self.map().words(self.graph.num_edges())
    }
    fn init_memory(&self, mem: &mut [Value]) {
        let m = self.map();
        let n = self.graph.verts();
        for v in 0..n {
            mem[m.dist(v) as usize] = if v == self.source { 0 } else { INF };
            mem[m.offsets(v) as usize] = self.graph.offsets[v] as Value;
        }
        mem[m.offsets(n) as usize] = self.graph.offsets[n] as Value;
        for (e, &u) in self.graph.edges.iter().enumerate() {
            mem[m.edge(e as u64) as usize] = u as Value;
            mem[m.weight(e as u64) as usize] = self.weight_of(e);
        }
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        Box::new(SsspItem {
            map: self.map(),
            verts: self.graph.verts(),
            tid: block * self.tpb + thread,
            threads: self.threads(),
            rounds: self.rounds,
            phase: SsspPhase::Vertex(0, 0),
        })
    }
    fn validate(&self, mem: &[Value]) -> Result<(), String> {
        let m = self.map();
        let oracle = self.oracle();
        for (v, &expect) in oracle.iter().enumerate() {
            let got = mem[m.dist(v) as usize];
            if got != expect {
                return Err(format!("dist[{v}]: expected {expect}, got {got}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs;
    use drfrlx_core::SystemConfig;
    use hsim_sys::{run_workload, SysParams};

    fn tiny() -> Sssp {
        Sssp::new(graphs::mesh_like("tiny", 6, 4), 4, 4)
    }

    #[test]
    fn oracle_is_a_shortest_path_metric() {
        let s = tiny();
        let dist = s.oracle();
        assert_eq!(dist[0], 0);
        // Triangle inequality over every edge.
        for v in 0..s.graph().verts() {
            for (k, &u) in s.graph().neighbors(v).iter().enumerate() {
                let e = s.graph().offsets[v] as usize + k;
                assert!(
                    dist[u as usize] <= dist[v] + s.weight_of(e),
                    "edge {v}->{u} violates optimality"
                );
            }
        }
    }

    #[test]
    fn sssp_exact_on_every_config() {
        let s = tiny();
        let params = SysParams::integrated();
        for cfg in SystemConfig::all() {
            let r = run_workload(&s, cfg, &params);
            s.validate(&r.memory).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn commutative_relaxations_benefit_from_weak_models() {
        let s = Sssp::new(graphs::contact_like("c", 256, 3, 3), 8, 8);
        let params = SysParams::integrated();
        let gd0 = run_workload(&s, SystemConfig::from_abbrev("GD0").unwrap(), &params);
        let gdr = run_workload(&s, SystemConfig::from_abbrev("GDR").unwrap(), &params);
        assert!(gdr.cycles < gd0.cycles, "GDR {} !< GD0 {}", gdr.cycles, gd0.cycles);
    }
}
