//! # drfrlx-workloads — the paper's evaluation workloads
//!
//! Rust implementations of every workload in the paper's Table 3,
//! written against the `hsim-gpu` work-item IR with the relaxed-atomic
//! annotations the paper assigns:
//!
//! | workload | paper input | atomic classes |
//! |----------|-------------|----------------|
//! | Hist (H) | 256 KB, 256 bins | commutative |
//! | Hist_global (HG) | 256 KB, 256 bins | commutative |
//! | HG-Non-Order (HG-NO) | 256 KB, 256 bins | non-ordering |
//! | Flags | 90 thread blocks | commutative + non-ordering |
//! | SplitCounter (SC) | 112 thread blocks | quantum |
//! | RefCounter (RC) | 64 thread blocks | quantum |
//! | Seqlocks (SEQ) | 512 thread blocks | speculative |
//! | UTS | 16K nodes | unpaired |
//! | BC | 4 graphs | commutative + non-ordering |
//! | PageRank (PR) | 4 graphs | commutative |
//!
//! Inputs are scaled for fast simulation (documented per workload);
//! the paper's Matrix Market graphs are replaced by deterministic
//! synthetic generators with matching degree shapes ([`graphs`]).
//! Every kernel validates its own functional result against a
//! sequential oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bc;
pub mod graphs;
pub mod micro;
pub mod pagerank;
pub mod registry;
pub mod sssp;
pub mod util;
pub mod uts;

pub use registry::{all_workloads, benchmarks, figure1_workloads, microbenchmarks, WorkloadSpec};
