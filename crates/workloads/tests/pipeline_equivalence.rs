//! Differential proof that the template-driven micro kernels (built as
//! `drfrlx_core::Program`s and lowered through
//! `drfrlx_bridge::ProgramKernel`) are call-for-call equivalent to the
//! hand-coded `WorkItem` state machines they replaced.
//!
//! The `legacy` module below preserves those state machines verbatim
//! (the pre-pipeline `counters.rs`/`flags.rs`/`seqlock.rs`/`hist.rs`
//! implementations). Every family is run under all nine protocol×model
//! configurations and the full `RunReport` observables — cycles, final
//! memory, atomic counts, overlap, energy event counters and protocol
//! statistics — must match exactly. Op-stream equality is the strongest
//! equivalence the simulator can witness: any divergence in lowering,
//! `use_result` inference, jump patching or addressing shows up as a
//! cycle or counter diff.

use drfrlx_core::SystemConfig;
use drfrlx_workloads::micro::{
    Flags, Hist, HistGlobal, HistGlobalNonOrder, HistParams, RefCounter, Seqlocks, SplitCounter,
};
use hsim_gpu::Kernel;
use hsim_sys::{run_workload, SysParams};

/// The pre-pipeline hand-coded state machines, verbatim.
mod legacy {
    use drfrlx_core::OpClass;
    use drfrlx_workloads::util::SplitMix64;
    use hsim_gpu::{Kernel, Op, RmwKind, Value, WorkItem};

    // -- SplitCounter ------------------------------------------------

    #[derive(Debug, Clone)]
    pub struct LegacySplitCounter {
        pub blocks: usize,
        pub tpb: usize,
        pub increments: usize,
        pub sweeps: usize,
    }

    struct ScUpdater {
        counter: u64,
        left: usize,
    }

    impl WorkItem for ScUpdater {
        fn next(&mut self, _last: Option<Value>) -> Op {
            if self.left == 0 {
                return Op::Done;
            }
            self.left -= 1;
            Op::Rmw {
                addr: self.counter,
                rmw: RmwKind::Add,
                operand: 1,
                class: OpClass::Quantum,
                use_result: false,
            }
        }
    }

    struct ScReader {
        counters: u64,
        i: u64,
        sweeps_left: usize,
        sum: Value,
        out: u64,
        stored: bool,
    }

    impl WorkItem for ScReader {
        fn next(&mut self, last: Option<Value>) -> Op {
            if let Some(v) = last {
                self.sum = self.sum.wrapping_add(v);
            }
            if self.i < self.counters {
                let addr = 16 * self.i;
                self.i += 1;
                return Op::Load { addr, class: OpClass::Quantum };
            }
            if self.sweeps_left > 1 {
                self.sweeps_left -= 1;
                self.i = 0;
                self.sum = 0;
                return Op::Think(8);
            }
            if !self.stored {
                self.stored = true;
                return Op::Store { addr: self.out, value: self.sum, class: OpClass::Data };
            }
            Op::Done
        }
    }

    impl Kernel for LegacySplitCounter {
        fn name(&self) -> String {
            "SC".into()
        }
        fn blocks(&self) -> usize {
            self.blocks
        }
        fn threads_per_block(&self) -> usize {
            self.tpb
        }
        fn memory_words(&self) -> usize {
            16 * (self.blocks + self.blocks)
        }
        fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
            if thread == 0 {
                Box::new(ScReader {
                    counters: self.blocks as u64,
                    i: 0,
                    sweeps_left: self.sweeps,
                    sum: 0,
                    out: (16 * (self.blocks + block)) as u64,
                    stored: false,
                })
            } else {
                Box::new(ScUpdater { counter: (16 * block) as u64, left: self.increments })
            }
        }
    }

    // -- RefCounter --------------------------------------------------

    #[derive(Debug, Clone)]
    pub struct LegacyRefCounter {
        pub blocks: usize,
        pub tpb: usize,
        pub objects: usize,
        pub visits: usize,
    }

    enum RcPhase {
        IncA,
        IncB,
        Work,
        DecA,
        MaybeMarkA,
        DecB,
        MaybeMarkB,
        Advance,
    }

    struct RcItem {
        objects: u64,
        visits_left: usize,
        obj: u64,
        obj_b: u64,
        stride: u64,
        phase: RcPhase,
    }

    impl RcItem {
        fn count_addr(&self, obj: u64) -> u64 {
            16 * obj
        }
        fn mark_addr(&self, obj: u64) -> u64 {
            16 * obj + 1
        }
    }

    impl WorkItem for RcItem {
        fn next(&mut self, last: Option<Value>) -> Op {
            loop {
                match self.phase {
                    RcPhase::IncA => {
                        if self.visits_left == 0 {
                            return Op::Done;
                        }
                        self.phase = RcPhase::IncB;
                        return Op::Rmw {
                            addr: self.count_addr(self.obj),
                            rmw: RmwKind::Add,
                            operand: 1,
                            class: OpClass::Quantum,
                            use_result: false,
                        };
                    }
                    RcPhase::IncB => {
                        self.phase = RcPhase::Work;
                        return Op::Rmw {
                            addr: self.count_addr(self.obj_b),
                            rmw: RmwKind::Add,
                            operand: 1,
                            class: OpClass::Quantum,
                            use_result: false,
                        };
                    }
                    RcPhase::Work => {
                        self.phase = RcPhase::DecA;
                        return Op::Think(4);
                    }
                    RcPhase::DecA => {
                        self.phase = RcPhase::MaybeMarkA;
                        return Op::Rmw {
                            addr: self.count_addr(self.obj),
                            rmw: RmwKind::Sub,
                            operand: 1,
                            class: OpClass::Quantum,
                            use_result: true,
                        };
                    }
                    RcPhase::MaybeMarkA => {
                        let old = last.unwrap_or(0);
                        self.phase = RcPhase::DecB;
                        if old == 1 {
                            return Op::Store {
                                addr: self.mark_addr(self.obj),
                                value: 1,
                                class: OpClass::Commutative,
                            };
                        }
                    }
                    RcPhase::DecB => {
                        self.phase = RcPhase::MaybeMarkB;
                        return Op::Rmw {
                            addr: self.count_addr(self.obj_b),
                            rmw: RmwKind::Sub,
                            operand: 1,
                            class: OpClass::Quantum,
                            use_result: true,
                        };
                    }
                    RcPhase::MaybeMarkB => {
                        let old = last.unwrap_or(0);
                        self.phase = RcPhase::Advance;
                        if old == 1 {
                            return Op::Store {
                                addr: self.mark_addr(self.obj_b),
                                value: 1,
                                class: OpClass::Commutative,
                            };
                        }
                    }
                    RcPhase::Advance => {
                        self.visits_left -= 1;
                        self.obj = (self.obj + self.stride) % self.objects;
                        self.obj_b = (self.obj + 1) % self.objects;
                        self.phase = RcPhase::IncA;
                    }
                }
            }
        }
    }

    impl Kernel for LegacyRefCounter {
        fn name(&self) -> String {
            "RC".into()
        }
        fn blocks(&self) -> usize {
            self.blocks
        }
        fn threads_per_block(&self) -> usize {
            self.tpb
        }
        fn memory_words(&self) -> usize {
            16 * self.objects
        }
        fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
            let per_block = (self.objects / self.blocks).max(1) as u64;
            let id = (block * self.tpb + thread) as u64;
            let obj = (block as u64 * per_block + id % (per_block + 1)) % self.objects as u64;
            Box::new(RcItem {
                objects: self.objects as u64,
                visits_left: self.visits,
                obj,
                obj_b: (obj + 1) % self.objects as u64,
                stride: 1,
                phase: RcPhase::IncA,
            })
        }
    }

    // -- Flags -------------------------------------------------------

    const STOP: u64 = 0;
    const DIRTY: u64 = 1;
    const EXITED: u64 = 2;

    #[derive(Debug, Clone)]
    pub struct LegacyFlags {
        pub blocks: usize,
        pub tpb: usize,
        pub main_delay: usize,
        pub max_polls: usize,
    }

    enum WorkerPhase {
        Poll,
        AfterPoll,
        Work,
        MaybeDirty,
        Exit,
        Done,
    }

    struct Worker {
        polls: usize,
        max_polls: usize,
        phase: WorkerPhase,
    }

    impl WorkItem for Worker {
        fn next(&mut self, last: Option<Value>) -> Op {
            loop {
                match self.phase {
                    WorkerPhase::Poll => {
                        self.phase = WorkerPhase::AfterPoll;
                        return Op::Load { addr: STOP, class: OpClass::NonOrdering };
                    }
                    WorkerPhase::AfterPoll => {
                        let stop = last.unwrap_or(0);
                        self.polls += 1;
                        if stop != 0 || self.polls >= self.max_polls {
                            self.phase = WorkerPhase::Exit;
                            continue;
                        }
                        self.phase = WorkerPhase::Work;
                    }
                    WorkerPhase::Work => {
                        self.phase = WorkerPhase::MaybeDirty;
                        return Op::Think(2);
                    }
                    WorkerPhase::MaybeDirty => {
                        self.phase = WorkerPhase::Poll;
                        if self.polls.is_multiple_of(4) {
                            return Op::Store {
                                addr: DIRTY,
                                value: 1,
                                class: OpClass::Commutative,
                            };
                        }
                    }
                    WorkerPhase::Exit => {
                        self.phase = WorkerPhase::Done;
                        return Op::Rmw {
                            addr: EXITED,
                            rmw: RmwKind::Add,
                            operand: 1,
                            class: OpClass::Paired,
                            use_result: false,
                        };
                    }
                    WorkerPhase::Done => return Op::Done,
                }
            }
        }
    }

    enum MainPhase {
        Delay,
        RaiseStop,
        Join,
        AfterJoin,
        ReadDirty,
        Publish,
        Done,
    }

    struct MainThread {
        workers: Value,
        delay: usize,
        phase: MainPhase,
    }

    impl WorkItem for MainThread {
        fn next(&mut self, last: Option<Value>) -> Op {
            loop {
                match self.phase {
                    MainPhase::Delay => {
                        self.phase = MainPhase::RaiseStop;
                        return Op::Think(self.delay as u32);
                    }
                    MainPhase::RaiseStop => {
                        self.phase = MainPhase::Join;
                        return Op::Store { addr: STOP, value: 1, class: OpClass::NonOrdering };
                    }
                    MainPhase::Join => {
                        self.phase = MainPhase::AfterJoin;
                        return Op::Load { addr: EXITED, class: OpClass::Paired };
                    }
                    MainPhase::AfterJoin => {
                        if last.unwrap_or(0) < self.workers {
                            self.phase = MainPhase::Join;
                            continue;
                        }
                        self.phase = MainPhase::ReadDirty;
                    }
                    MainPhase::ReadDirty => {
                        self.phase = MainPhase::Publish;
                        return Op::Load { addr: DIRTY, class: OpClass::NonOrdering };
                    }
                    MainPhase::Publish => {
                        let dirty = last.unwrap_or(0);
                        self.phase = MainPhase::Done;
                        return Op::Store { addr: DIRTY, value: dirty + 10, class: OpClass::Data };
                    }
                    MainPhase::Done => return Op::Done,
                }
            }
        }
    }

    impl Kernel for LegacyFlags {
        fn name(&self) -> String {
            "Flags".into()
        }
        fn blocks(&self) -> usize {
            self.blocks
        }
        fn threads_per_block(&self) -> usize {
            self.tpb
        }
        fn memory_words(&self) -> usize {
            3
        }
        fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
            if block == 0 && thread == 0 {
                Box::new(MainThread {
                    workers: (self.blocks * self.tpb - 1) as Value,
                    delay: self.main_delay,
                    phase: MainPhase::Delay,
                })
            } else {
                Box::new(Worker { polls: 0, max_polls: self.max_polls, phase: WorkerPhase::Poll })
            }
        }
    }

    // -- Seqlocks ----------------------------------------------------

    const SEQ: u64 = 0;
    const DATA_BASE: u64 = 1;

    #[derive(Debug, Clone)]
    pub struct LegacySeqlocks {
        pub acqrel: bool,
        pub blocks: usize,
        pub tpb: usize,
        pub payload: usize,
        pub writes: usize,
        pub reads: usize,
        pub max_retries: usize,
    }

    enum WriterPhase {
        TryLock,
        CheckLock,
        StorePayload(usize),
        Unlock,
        Done,
    }

    struct Writer {
        payload: usize,
        writes_left: usize,
        seq_even: Value,
        lock_class: OpClass,
        unlock_class: OpClass,
        phase: WriterPhase,
    }

    impl WorkItem for Writer {
        fn next(&mut self, last: Option<Value>) -> Op {
            loop {
                match self.phase {
                    WriterPhase::TryLock => {
                        if self.writes_left == 0 {
                            self.phase = WriterPhase::Done;
                            continue;
                        }
                        self.phase = WriterPhase::CheckLock;
                        return Op::Rmw {
                            addr: SEQ,
                            rmw: RmwKind::Cas { expected: self.seq_even },
                            operand: self.seq_even + 1,
                            class: self.lock_class,
                            use_result: true,
                        };
                    }
                    WriterPhase::CheckLock => {
                        let old = last.unwrap_or(0);
                        if old != self.seq_even {
                            self.seq_even = old & !1;
                            self.phase = WriterPhase::TryLock;
                            continue;
                        }
                        self.phase = WriterPhase::StorePayload(0);
                    }
                    WriterPhase::StorePayload(i) => {
                        if i >= self.payload {
                            self.phase = WriterPhase::Unlock;
                            continue;
                        }
                        self.phase = WriterPhase::StorePayload(i + 1);
                        let value = self.seq_even + 2 + i as Value;
                        return Op::Store {
                            addr: DATA_BASE + i as u64,
                            value,
                            class: OpClass::Speculative,
                        };
                    }
                    WriterPhase::Unlock => {
                        self.writes_left -= 1;
                        self.seq_even += 2;
                        self.phase = WriterPhase::TryLock;
                        return Op::Store {
                            addr: SEQ,
                            value: self.seq_even,
                            class: self.unlock_class,
                        };
                    }
                    WriterPhase::Done => return Op::Done,
                }
            }
        }
    }

    enum ReaderPhase {
        Seq0,
        Payload(usize),
        Seq1,
        Check,
        Done,
    }

    struct Reader {
        seq0_class: OpClass,
        seq1_class: OpClass,
        payload: usize,
        reads_left: usize,
        retries: usize,
        max_retries: usize,
        seq0: Value,
        vals: Vec<Value>,
        phase: ReaderPhase,
    }

    impl WorkItem for Reader {
        fn next(&mut self, last: Option<Value>) -> Op {
            loop {
                match self.phase {
                    ReaderPhase::Seq0 => {
                        if self.reads_left == 0 {
                            self.phase = ReaderPhase::Done;
                            continue;
                        }
                        self.phase = ReaderPhase::Payload(0);
                        return Op::Load { addr: SEQ, class: self.seq0_class };
                    }
                    ReaderPhase::Payload(i) => {
                        if i == 0 {
                            self.seq0 = last.unwrap_or(0);
                            self.vals.clear();
                        } else {
                            self.vals.push(last.unwrap_or(0));
                        }
                        if i >= self.payload {
                            self.phase = ReaderPhase::Seq1;
                            continue;
                        }
                        self.phase = ReaderPhase::Payload(i + 1);
                        return Op::Load {
                            addr: DATA_BASE + i as u64,
                            class: OpClass::Speculative,
                        };
                    }
                    ReaderPhase::Seq1 => {
                        self.phase = ReaderPhase::Check;
                        return Op::Rmw {
                            addr: SEQ,
                            rmw: RmwKind::Add,
                            operand: 0,
                            class: self.seq1_class,
                            use_result: true,
                        };
                    }
                    ReaderPhase::Check => {
                        let seq1 = last.unwrap_or(0);
                        let ok = seq1 == self.seq0 && self.seq0.is_multiple_of(2);
                        if ok {
                            self.reads_left -= 1;
                            self.retries = 0;
                        } else {
                            self.retries += 1;
                            if self.retries >= self.max_retries {
                                self.reads_left -= 1;
                                self.retries = 0;
                            }
                        }
                        self.phase = ReaderPhase::Seq0;
                    }
                    ReaderPhase::Done => return Op::Done,
                }
            }
        }
    }

    impl Kernel for LegacySeqlocks {
        fn name(&self) -> String {
            "SEQ".into()
        }
        fn blocks(&self) -> usize {
            self.blocks
        }
        fn threads_per_block(&self) -> usize {
            self.tpb
        }
        fn memory_words(&self) -> usize {
            1 + self.payload
        }
        fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
            let (acq, rel) = if self.acqrel {
                (OpClass::Acquire, OpClass::Release)
            } else {
                (OpClass::Paired, OpClass::Paired)
            };
            if block == 0 && thread == 0 {
                Box::new(Writer {
                    payload: self.payload,
                    writes_left: self.writes,
                    seq_even: 0,
                    lock_class: acq,
                    unlock_class: rel,
                    phase: WriterPhase::TryLock,
                })
            } else {
                Box::new(Reader {
                    seq0_class: acq,
                    seq1_class: rel,
                    payload: self.payload,
                    reads_left: self.reads,
                    retries: 0,
                    max_retries: self.max_retries,
                    seq0: 0,
                    vals: Vec::new(),
                    phase: ReaderPhase::Seq0,
                })
            }
        }
    }

    // -- Histograms --------------------------------------------------

    fn input_base(bins: usize) -> u64 {
        bins as u64
    }

    fn input_of(seed: u64, block: usize, thread: usize, i: usize, bins: usize) -> Value {
        let mut rng =
            SplitMix64::new(seed ^ ((block as u64) << 32) ^ ((thread as u64) << 16) ^ i as u64);
        rng.below(bins as u64)
    }

    #[derive(Debug, Clone)]
    pub struct LegacyHistParams {
        pub bins: usize,
        pub per_thread: usize,
        pub blocks: usize,
        pub tpb: usize,
        pub seed: u64,
    }

    #[derive(Debug, Clone)]
    pub struct LegacyHist {
        pub params: LegacyHistParams,
    }

    enum HistPhase {
        Read(usize),
        BinLoad(usize, Value),
        BinStore(usize, Value),
        PreMerge,
        MergeSum(usize, usize, Value),
        Done,
    }

    struct HistItem {
        p: LegacyHistParams,
        block: usize,
        thread: usize,
        phase: HistPhase,
    }

    impl HistItem {
        fn scratch_bin(&self, bin: Value) -> u64 {
            (self.thread * self.p.bins) as u64 + bin
        }
    }

    impl WorkItem for HistItem {
        fn next(&mut self, last: Option<Value>) -> Op {
            loop {
                match self.phase {
                    HistPhase::Read(i) => {
                        if i >= self.p.per_thread {
                            self.phase = HistPhase::PreMerge;
                            continue;
                        }
                        self.phase = HistPhase::BinLoad(
                            i,
                            input_of(self.p.seed, self.block, self.thread, i, self.p.bins),
                        );
                        let addr = input_base(self.p.bins)
                            + ((self.block * self.p.tpb + self.thread) * self.p.per_thread + i)
                                as u64;
                        return Op::Load { addr, class: OpClass::Data };
                    }
                    HistPhase::BinLoad(i, bin) => {
                        let _ = last;
                        self.phase = HistPhase::BinStore(i, bin);
                        return Op::ScratchLoad { addr: self.scratch_bin(bin) };
                    }
                    HistPhase::BinStore(i, bin) => {
                        let count = last.unwrap_or(0);
                        self.phase = HistPhase::Read(i + 1);
                        return Op::ScratchStore { addr: self.scratch_bin(bin), value: count + 1 };
                    }
                    HistPhase::PreMerge => {
                        self.phase = HistPhase::MergeSum(self.thread, 0, 0);
                        return Op::Barrier;
                    }
                    HistPhase::MergeSum(b, t, acc) => {
                        if b >= self.p.bins {
                            self.phase = HistPhase::Done;
                            continue;
                        }
                        let acc = acc + last.filter(|_| t > 0).unwrap_or(0);
                        if t < self.p.tpb {
                            self.phase = HistPhase::MergeSum(b, t + 1, acc);
                            return Op::ScratchLoad { addr: (t * self.p.bins + b) as u64 };
                        }
                        self.phase = HistPhase::MergeSum(b + self.p.tpb, 0, 0);
                        if acc == 0 {
                            continue;
                        }
                        return Op::Rmw {
                            addr: b as u64,
                            rmw: RmwKind::Add,
                            operand: acc,
                            class: OpClass::Commutative,
                            use_result: false,
                        };
                    }
                    HistPhase::Done => return Op::Done,
                }
            }
        }
    }

    impl Kernel for LegacyHist {
        fn name(&self) -> String {
            "H".into()
        }
        fn blocks(&self) -> usize {
            self.params.blocks
        }
        fn threads_per_block(&self) -> usize {
            self.params.tpb
        }
        fn scratch_words(&self) -> usize {
            self.params.tpb * self.params.bins
        }
        fn memory_words(&self) -> usize {
            self.params.bins + self.params.blocks * self.params.tpb * self.params.per_thread
        }
        fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
            Box::new(HistItem { p: self.params.clone(), block, thread, phase: HistPhase::Read(0) })
        }
    }

    #[derive(Debug, Clone)]
    pub struct LegacyHistGlobal {
        pub params: LegacyHistParams,
        pub update_class: OpClass,
    }

    struct HgItem {
        p: LegacyHistParams,
        class: OpClass,
        block: usize,
        thread: usize,
        i: usize,
        loaded: bool,
    }

    impl WorkItem for HgItem {
        fn next(&mut self, _last: Option<Value>) -> Op {
            if self.i >= self.p.per_thread {
                return Op::Done;
            }
            if !self.loaded {
                self.loaded = true;
                let addr = input_base(self.p.bins)
                    + ((self.block * self.p.tpb + self.thread) * self.p.per_thread + self.i) as u64;
                return Op::Load { addr, class: OpClass::Data };
            }
            let bin = input_of(self.p.seed, self.block, self.thread, self.i, self.p.bins);
            self.i += 1;
            self.loaded = false;
            Op::Rmw {
                addr: bin,
                rmw: RmwKind::Add,
                operand: 1,
                class: self.class,
                use_result: false,
            }
        }
    }

    impl Kernel for LegacyHistGlobal {
        fn name(&self) -> String {
            "HG".into()
        }
        fn blocks(&self) -> usize {
            self.params.blocks
        }
        fn threads_per_block(&self) -> usize {
            self.params.tpb
        }
        fn memory_words(&self) -> usize {
            self.params.bins + self.params.blocks * self.params.tpb * self.params.per_thread
        }
        fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
            Box::new(HgItem {
                p: self.params.clone(),
                class: self.update_class,
                block,
                thread,
                i: 0,
                loaded: false,
            })
        }
    }

    #[derive(Debug, Clone)]
    pub struct LegacyHistGlobalNonOrder {
        pub params: LegacyHistParams,
    }

    struct HgNoItem {
        p: LegacyHistParams,
        gid: u64,
        threads: u64,
        i: usize,
    }

    impl WorkItem for HgNoItem {
        fn next(&mut self, _last: Option<Value>) -> Op {
            if self.i >= self.p.per_thread {
                return Op::Done;
            }
            let k = self.gid + self.i as u64 * self.threads;
            let bin = (k.wrapping_mul(0x9E37_79B1)) % self.p.bins as u64;
            self.i += 1;
            Op::Load { addr: bin, class: OpClass::NonOrdering }
        }
    }

    impl Kernel for LegacyHistGlobalNonOrder {
        fn name(&self) -> String {
            "HG-NO".into()
        }
        fn blocks(&self) -> usize {
            self.params.blocks
        }
        fn threads_per_block(&self) -> usize {
            self.params.tpb
        }
        fn memory_words(&self) -> usize {
            self.params.bins
        }
        fn init_memory(&self, mem: &mut [Value]) {
            for (i, m) in mem.iter_mut().enumerate().take(self.params.bins) {
                *m = (i % 7 + 1) as Value;
            }
        }
        fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
            Box::new(HgNoItem {
                p: self.params.clone(),
                gid: (block * self.params.tpb + thread) as u64,
                threads: (self.params.blocks * self.params.tpb) as u64,
                i: 0,
            })
        }
    }
}

use legacy::*;

/// Run both kernels under `cfg` and require every observable of the
/// report to match.
fn assert_equiv_on(new: &dyn Kernel, old: &dyn Kernel, cfg: SystemConfig) {
    let params = SysParams::integrated();
    let a = run_workload(new, cfg, &params);
    let b = run_workload(old, cfg, &params);
    let who = format!("{} on {cfg}", old.name());
    assert_eq!(a.cycles, b.cycles, "{who}: cycles diverged");
    assert_eq!(a.memory, b.memory, "{who}: final memory diverged");
    assert_eq!(a.atomics, b.atomics, "{who}: atomic count diverged");
    assert_eq!(a.atomics_overlapped, b.atomics_overlapped, "{who}: overlap diverged");
    assert_eq!(a.counters, b.counters, "{who}: energy event counters diverged");
    assert_eq!(a.proto, b.proto, "{who}: protocol statistics diverged");
}

/// All nine protocol×model configurations (the paper's six plus the
/// MESI-WB extension).
fn assert_equiv(new: &dyn Kernel, old: &dyn Kernel) {
    for cfg in SystemConfig::extended() {
        assert_equiv_on(new, old, cfg);
    }
}

fn cfg(abbrev: &str) -> SystemConfig {
    SystemConfig::from_abbrev(abbrev).unwrap()
}

#[test]
fn split_counter_matches_legacy_machine() {
    let new = SplitCounter::new(4, 4, 8, 2);
    let old = LegacySplitCounter { blocks: 4, tpb: 4, increments: 8, sweeps: 2 };
    assert_equiv(&new, &old);
}

#[test]
fn split_counter_matches_legacy_at_full_scale() {
    // Default parameters guard the golden sweep: the overlap and cycle
    // observables behind the figures must be bit-identical.
    let new = SplitCounter::default();
    let old = LegacySplitCounter {
        blocks: new.blocks,
        tpb: new.tpb,
        increments: new.increments,
        sweeps: new.sweeps,
    };
    assert_equiv_on(&new, &old, cfg("DD0"));
    assert_equiv_on(&new, &old, cfg("DDR"));
}

#[test]
fn ref_counter_matches_legacy_machine() {
    let new = RefCounter::new(4, 4, 8, 6);
    let old = LegacyRefCounter { blocks: 4, tpb: 4, objects: 8, visits: 6 };
    assert_equiv(&new, &old);
}

#[test]
fn flags_matches_legacy_machine() {
    let new = Flags::new(4, 4, 8, 200);
    let old = LegacyFlags { blocks: 4, tpb: 4, main_delay: 8, max_polls: 200 };
    assert_equiv(&new, &old);
}

#[test]
fn flags_matches_legacy_at_full_scale() {
    let new = Flags::default();
    let old = LegacyFlags {
        blocks: new.blocks,
        tpb: new.tpb,
        main_delay: new.main_delay,
        max_polls: new.max_polls,
    };
    assert_equiv_on(&new, &old, cfg("GD0"));
    assert_equiv_on(&new, &old, cfg("DDR"));
}

#[test]
fn seqlocks_matches_legacy_machine() {
    let new = Seqlocks::new(false, 4, 4, 3, 4, 4, 64);
    let old = LegacySeqlocks {
        acqrel: false,
        blocks: 4,
        tpb: 4,
        payload: 3,
        writes: 4,
        reads: 4,
        max_retries: 64,
    };
    assert_equiv(&new, &old);
}

#[test]
fn seqlocks_acqrel_matches_legacy_machine() {
    // The acquire/release ablation flips the seq-access classes.
    let new = Seqlocks::new(true, 4, 4, 3, 4, 4, 64);
    let old = LegacySeqlocks {
        acqrel: true,
        blocks: 4,
        tpb: 4,
        payload: 3,
        writes: 4,
        reads: 4,
        max_retries: 64,
    };
    assert_equiv(&new, &old);
}

#[test]
fn seqlocks_matches_legacy_at_full_scale() {
    let new = Seqlocks::default();
    let old = LegacySeqlocks {
        acqrel: new.acqrel,
        blocks: new.blocks,
        tpb: new.tpb,
        payload: new.payload,
        writes: new.writes,
        reads: new.reads,
        max_retries: new.max_retries,
    };
    assert_equiv_on(&new, &old, cfg("DD1"));
    assert_equiv_on(&new, &old, cfg("DDR"));
}

fn small_hist() -> HistParams {
    HistParams { bins: 32, per_thread: 8, blocks: 4, tpb: 4, seed: 1 }
}

fn legacy_hist_params(p: &HistParams) -> LegacyHistParams {
    LegacyHistParams {
        bins: p.bins,
        per_thread: p.per_thread,
        blocks: p.blocks,
        tpb: p.tpb,
        seed: p.seed,
    }
}

#[test]
fn hist_matches_legacy_machine() {
    let p = small_hist();
    let new = Hist::new(p.clone());
    let old = LegacyHist { params: legacy_hist_params(&p) };
    assert_equiv(&new, &old);
}

#[test]
fn hist_global_matches_legacy_machine() {
    let p = small_hist();
    let new = HistGlobal::new(p.clone(), drfrlx_core::OpClass::Commutative);
    let old = LegacyHistGlobal {
        params: legacy_hist_params(&p),
        update_class: drfrlx_core::OpClass::Commutative,
    };
    assert_equiv(&new, &old);
}

#[test]
fn hist_global_release_class_matches_legacy_machine() {
    // The acquire/release ablation runs HG with release-only updates.
    let p = small_hist();
    let new = HistGlobal::new(p.clone(), drfrlx_core::OpClass::Release);
    let old = LegacyHistGlobal {
        params: legacy_hist_params(&p),
        update_class: drfrlx_core::OpClass::Release,
    };
    assert_equiv(&new, &old);
}

#[test]
fn hist_global_nonorder_matches_legacy_machine() {
    let p = small_hist();
    let new = HistGlobalNonOrder::new(p.clone());
    let old = LegacyHistGlobalNonOrder { params: legacy_hist_params(&p) };
    assert_equiv(&new, &old);
}

#[test]
#[ignore = "full-scale histogram sweep; run explicitly in release"]
fn histograms_match_legacy_at_full_scale() {
    let p = HistParams::default();
    assert_equiv_on(
        &Hist::new(p.clone()),
        &LegacyHist { params: legacy_hist_params(&p) },
        cfg("GD0"),
    );
    assert_equiv_on(
        &HistGlobal::new(p.clone(), drfrlx_core::OpClass::Commutative),
        &LegacyHistGlobal {
            params: legacy_hist_params(&p),
            update_class: drfrlx_core::OpClass::Commutative,
        },
        cfg("GD0"),
    );
    let pn = HistParams { bins: 4096, ..p };
    assert_equiv_on(
        &HistGlobalNonOrder::new(pn.clone()),
        &LegacyHistGlobalNonOrder { params: legacy_hist_params(&pn) },
        cfg("GD0"),
    );
}
