//! # hsim-energy — event-based energy accounting
//!
//! Substitute for GPUWattch (GPU CUs) + McPAT (NoC) used by the paper
//! (§4.2). The paper's energy *trends* come from event counts — extra
//! cache invalidations cause refetches (more L2 + network energy),
//! ownership requests move lines between L1s, overlapped atomics add
//! memory-system traffic — so we charge a fixed energy per event and
//! report the same five-way breakdown as Figures 3(b)/4(b):
//! GPU core+, scratchpad, L1, L2, and network (DRAM folded into L2 as
//! the paper's "L2" stack includes LLC-side traffic).
//!
//! Per-event energies are ballpark 28 nm numbers (pJ); absolute joules
//! are not meaningful, ratios are.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Add, AddAssign};

/// Per-event energy costs in picojoules.
#[derive(Debug, Clone)]
pub struct EnergyParams {
    /// One executed instruction in the CU pipeline (incl. fetch/RF).
    pub core_op_pj: f64,
    /// One scratchpad access.
    pub scratch_pj: f64,
    /// One L1 access (hit or fill).
    pub l1_pj: f64,
    /// One L1 tag-only operation (invalidation sweep per line).
    pub l1_tag_pj: f64,
    /// One L2 bank access.
    pub l2_pj: f64,
    /// One DRAM access (charged to the L2/memory stack).
    pub dram_pj: f64,
    /// One flit traversing one link.
    pub flit_hop_pj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            core_op_pj: 12.0,
            scratch_pj: 4.0,
            l1_pj: 10.0,
            l1_tag_pj: 1.5,
            l2_pj: 28.0,
            dram_pj: 180.0,
            flit_hop_pj: 6.0,
        }
    }
}

/// Raw event counts, accumulated by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyCounters {
    /// Instructions executed on CUs.
    pub core_ops: u64,
    /// Scratchpad accesses.
    pub scratch_accesses: u64,
    /// L1 data accesses.
    pub l1_accesses: u64,
    /// L1 lines swept by invalidations.
    pub l1_tag_ops: u64,
    /// L2 bank accesses (including atomics performed at L2).
    pub l2_accesses: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// NoC flit-hops.
    pub noc_flit_hops: u64,
}

impl Add for EnergyCounters {
    type Output = EnergyCounters;
    fn add(self, o: EnergyCounters) -> EnergyCounters {
        EnergyCounters {
            core_ops: self.core_ops + o.core_ops,
            scratch_accesses: self.scratch_accesses + o.scratch_accesses,
            l1_accesses: self.l1_accesses + o.l1_accesses,
            l1_tag_ops: self.l1_tag_ops + o.l1_tag_ops,
            l2_accesses: self.l2_accesses + o.l2_accesses,
            dram_accesses: self.dram_accesses + o.dram_accesses,
            noc_flit_hops: self.noc_flit_hops + o.noc_flit_hops,
        }
    }
}

impl AddAssign for EnergyCounters {
    fn add_assign(&mut self, o: EnergyCounters) {
        *self = *self + o;
    }
}

/// The Figure 3(b)/4(b) component breakdown, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// "GPU core+": pipeline, register file, fetch.
    pub core: f64,
    /// Scratchpad.
    pub scratch: f64,
    /// L1 caches.
    pub l1: f64,
    /// L2 banks + memory-side traffic.
    pub l2: f64,
    /// Network.
    pub network: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.core + self.scratch + self.l1 + self.l2 + self.network
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core={:.1}nJ scratch={:.1}nJ l1={:.1}nJ l2={:.1}nJ net={:.1}nJ (total {:.1}nJ)",
            self.core,
            self.scratch,
            self.l1,
            self.l2,
            self.network,
            self.total()
        )
    }
}

/// Convert counters to a breakdown under the given per-event costs.
///
/// ```
/// use hsim_energy::{breakdown, EnergyCounters, EnergyParams};
///
/// let counters = EnergyCounters { l2_accesses: 1000, ..Default::default() };
/// let b = breakdown(&EnergyParams::default(), &counters);
/// assert!(b.l2 > 0.0 && b.network == 0.0);
/// assert_eq!(b.total(), b.l2);
/// ```
pub fn breakdown(params: &EnergyParams, c: &EnergyCounters) -> EnergyBreakdown {
    let pj = |n: u64, cost: f64| (n as f64) * cost / 1000.0;
    EnergyBreakdown {
        core: pj(c.core_ops, params.core_op_pj),
        scratch: pj(c.scratch_accesses, params.scratch_pj),
        l1: pj(c.l1_accesses, params.l1_pj) + pj(c.l1_tag_ops, params.l1_tag_pj),
        l2: pj(c.l2_accesses, params.l2_pj) + pj(c.dram_accesses, params.dram_pj),
        network: pj(c.noc_flit_hops, params.flit_hop_pj),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_is_linear_in_counts() {
        let p = EnergyParams::default();
        let c1 = EnergyCounters { l2_accesses: 10, ..Default::default() };
        let c2 = EnergyCounters { l2_accesses: 20, ..Default::default() };
        let b1 = breakdown(&p, &c1);
        let b2 = breakdown(&p, &c2);
        assert!((b2.l2 - 2.0 * b1.l2).abs() < 1e-9);
        assert_eq!(b1.core, 0.0);
    }

    #[test]
    fn counters_add() {
        let a = EnergyCounters { core_ops: 5, noc_flit_hops: 3, ..Default::default() };
        let b = EnergyCounters { core_ops: 2, l1_accesses: 1, ..Default::default() };
        let s = a + b;
        assert_eq!(s.core_ops, 7);
        assert_eq!(s.noc_flit_hops, 3);
        assert_eq!(s.l1_accesses, 1);
    }

    #[test]
    fn dram_charged_to_l2_stack() {
        let p = EnergyParams::default();
        let c = EnergyCounters { dram_accesses: 1, ..Default::default() };
        let b = breakdown(&p, &c);
        assert!(b.l2 > 0.0);
        assert_eq!(b.network, 0.0);
    }

    #[test]
    fn total_sums_components() {
        let p = EnergyParams::default();
        let c = EnergyCounters {
            core_ops: 1,
            scratch_accesses: 1,
            l1_accesses: 1,
            l1_tag_ops: 1,
            l2_accesses: 1,
            dram_accesses: 1,
            noc_flit_hops: 1,
        };
        let b = breakdown(&p, &c);
        let expected = b.core + b.scratch + b.l1 + b.l2 + b.network;
        assert!((b.total() - expected).abs() < 1e-12);
    }
}
