//! Corpus-wide emit→parse fixpoint and golden emitted-text check.
//!
//! The fixtures under `tests/golden_emit/` were captured from the
//! hand-written litmus builders before the template rewiring; this test
//! is the proof that the `drfrlx_bridge::templates` instantiations are
//! instruction-identical to them (see `crate::fixtures`).

use drfrlx_litmus::fixtures::{assert_fixture, fixture_tests};

#[test]
fn every_corpus_program_emits_its_golden_fixture_and_round_trips() {
    for t in fixture_tests() {
        assert_fixture(&t);
    }
}
