//! Run every corpus entry against its declared expectations — the
//! paper's §3.8 validation, one named test per litmus program.

use drfrlx_litmus::suite::{all_tests, run};

macro_rules! litmus {
    ($($name:ident),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                let tests = all_tests();
                let t = tests
                    .iter()
                    .find(|t| t.name == stringify!($name))
                    .expect("test registered in suite");
                run(t).unwrap();
            }
        )*
    };
}

litmus!(
    work_queue,
    work_queue_multi_quantum,
    event_counter,
    flags,
    split_counter,
    ref_counter,
    seqlock,
    work_queue_no_recheck,
    event_counter_data,
    event_counter_observed,
    event_counter_noncommuting,
    flags_conflicting_dirty,
    flags_ordering_through_stop,
    split_counter_mixed,
    ref_counter_data_mark,
    seqlock_unconditional_use,
    seqlock_double_writer,
    flags_stop_data,
    work_queue_unpublished_slot,
    seqlock_relaxed_unlock,
    mp_paired,
    mp_unpaired,
    mp_non_ordering,
    mp_release_acquire,
    sb_release_acquire,
    sb_paired,
    sb_non_ordering,
    lb_non_ordering,
    corr_non_ordering,
    iriw_paired,
    iriw_non_ordering,
    figure2a,
    figure2b,
    wrc_paired,
    wrc_non_ordering,
    isa2_paired,
    two_plus_two_w_non_ordering,
    iriw_release_acquire,
    unpaired_contention,
);

#[test]
fn every_registered_test_is_exercised_above() {
    // Guards against adding suite entries without a named test: the
    // macro list must cover the registry exactly.
    assert_eq!(all_tests().len(), 39);
}
