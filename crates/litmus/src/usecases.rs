//! The Table 1 use cases as litmus programs, each annotated the way the
//! paper argues is correct. Every one must be race-free under DRFrlx.

use drfrlx_core::program::{BinOp, Expr, Program, RmwOp};
use drfrlx_core::OpClass;

/// Work Queue (Listing 1): a client enqueues a task and raises the
/// occupancy with a paired store; the service thread polls occupancy
/// with an **unpaired** load and, only if non-zero, re-checks with a
/// paired load before touching the task data. The unpaired poll never
/// orders data — the paired dequeue does.
pub fn work_queue() -> Program {
    let mut p = Program::new("work_queue");
    {
        // Client: publish the task, then raise occupancy.
        let mut t = p.thread();
        t.store(OpClass::Data, "task", 42);
        t.store(OpClass::Paired, "occupancy", 1);
    }
    {
        // Service: cheap unpaired poll; paired re-check orders the data.
        let mut t = p.thread();
        let occ = t.load(OpClass::Unpaired, "occupancy");
        t.if_nz(occ, |t| {
            let occ2 = t.load(OpClass::Paired, "occupancy");
            t.if_nz(occ2, |t| {
                let task = t.load(OpClass::Data, "task");
                t.observe(task);
            });
        });
    }
    p.build()
}

/// Event Counter (Listing 2): workers bump shared counters with
/// **commutative** fetch-adds whose return values are ignored; the main
/// thread reads the totals only after paired join flags.
pub fn event_counter() -> Program {
    let mut p = Program::new("event_counter");
    {
        let mut t = p.thread();
        t.rmw(OpClass::Commutative, "bin", RmwOp::FetchAdd, 1);
        t.store(OpClass::Paired, "done0", 1);
    }
    {
        let mut t = p.thread();
        t.rmw(OpClass::Commutative, "bin", RmwOp::FetchAdd, 2);
        t.store(OpClass::Paired, "done1", 1);
    }
    {
        // Main: join on both workers, then read the counter.
        let mut t = p.thread();
        let d0 = t.load(OpClass::Paired, "done0");
        let d1 = t.load(OpClass::Paired, "done1");
        let both = Expr::bin(BinOp::And, d0.into(), d1.into());
        t.if_nz(both, |t| {
            let total = t.load(OpClass::Data, "bin");
            t.observe(total);
        });
    }
    p.build()
}

/// Flags (Listing 3): a worker polls `stop` with a **non-ordering**
/// load and raises `dirty` with a **commutative** store (always the
/// same value, hence commuting); the main thread raises `stop`
/// (non-ordering store), joins through a paired flag, and only then
/// reads `dirty` with a non-ordering load. The global barrier — not the
/// flags — orders everything that must be ordered.
pub fn flags() -> Program {
    let mut p = Program::new("flags");
    {
        // Worker: one unrolled poll iteration, then signal exit.
        let mut t = p.thread();
        let stop = t.load(OpClass::NonOrdering, "stop");
        t.if_z(stop, |t| {
            t.store(OpClass::Commutative, "dirty", 1);
        });
        t.store(OpClass::Paired, "exited", 1);
    }
    {
        // Main: request stop, join, then inspect dirty.
        let mut t = p.thread();
        t.store(OpClass::NonOrdering, "stop", 1);
        let joined = t.load(OpClass::Paired, "exited");
        t.if_nz(joined, |t| {
            let d = t.load(OpClass::NonOrdering, "dirty");
            t.observe(d);
        });
    }
    p.build()
}

/// Split Counter (Listing 4): updaters bump per-thread counters and a
/// reader sums them, all with **quantum** atomics — the reader accepts
/// any approximate partial sum.
pub fn split_counter() -> Program {
    let mut p = Program::new("split_counter");
    p.thread().rmw(OpClass::Quantum, "c0", RmwOp::FetchAdd, 1);
    p.thread().rmw(OpClass::Quantum, "c1", RmwOp::FetchAdd, 1);
    {
        let mut t = p.thread();
        let r0 = t.load(OpClass::Quantum, "c0");
        let r1 = t.load(OpClass::Quantum, "c1");
        let sum = Expr::bin(BinOp::Add, r0.into(), r1.into());
        t.observe(sum);
    }
    p.build()
}

/// Reference Counter (Listing 5, reduced to one counter): threads
/// increment and decrement with **quantum** RMWs; whoever sees the
/// count drop to zero marks the object for deletion with a commutative
/// store (same value — the actual deletion happens after a barrier, not
/// shown, as the paper requires).
pub fn ref_counter() -> Program {
    let mut p = Program::new("ref_counter");
    for _ in 0..2 {
        let mut t = p.thread();
        t.rmw(OpClass::Quantum, "refcount", RmwOp::FetchAdd, 1);
        let old = t.rmw(OpClass::Quantum, "refcount", RmwOp::FetchSub, 1);
        // old == 1 means this decrement dropped the count to zero.
        let last = Expr::bin(BinOp::Eq, old.into(), 1.into());
        t.if_nz(last, |t| {
            t.store(OpClass::Commutative, "marked", 1);
        });
    }
    p.build()
}

/// Work Queue over *multiple* queues (the paper's footnote 4): with
/// several occupancy counters, relaxed polls could violate SC — but the
/// counters are amenable to approximation and the dequeue double-checks
/// with paired atomics, so distinguishing the polls as **quantum**
/// retains SC-centric semantics.
pub fn work_queue_multi_quantum() -> Program {
    let mut p = Program::new("work_queue_multi_quantum");
    {
        // Client: publish one task on queue 1.
        let mut t = p.thread();
        t.store(OpClass::Data, "task1", 42);
        t.store(OpClass::Paired, "occ1", 1);
    }
    {
        // Service thread: approximate polls of both queues, paired
        // re-check before touching data.
        let mut t = p.thread();
        let o0 = t.load(OpClass::Quantum, "occ0");
        let o1 = t.load(OpClass::Quantum, "occ1");
        let any = Expr::bin(BinOp::Or, o0.into(), o1.into());
        t.if_nz(any, |t| {
            let real = t.load(OpClass::Paired, "occ1");
            t.if_nz(real, |t| {
                let v = t.load(OpClass::Data, "task1");
                t.observe(v);
            });
        });
    }
    p.build()
}

/// Seqlocks (Listing 6): the writer bumps `seq` to odd with a paired
/// CAS, updates the data with **speculative** stores, and publishes by
/// setting `seq` even again; the reader brackets speculative data loads
/// between a paired load of `seq` and the odd "read-don't-modify-write"
/// (`fetch_add 0`), and uses the values only when the sequence numbers
/// match and are even.
pub fn seqlock() -> Program {
    let mut p = Program::new("seqlock");
    {
        // Writer.
        let mut t = p.thread();
        let old = t.cas(OpClass::Paired, "seq", 0, 1);
        let locked = Expr::bin(BinOp::Eq, old.into(), 0.into());
        t.if_nz(locked, |t| {
            t.store(OpClass::Speculative, "data1", 10);
            t.store(OpClass::Speculative, "data2", 20);
            t.store(OpClass::Paired, "seq", 2);
        });
    }
    {
        // Reader.
        let mut t = p.thread();
        let seq0 = t.load(OpClass::Paired, "seq");
        let r1 = t.load(OpClass::Speculative, "data1");
        let r2 = t.load(OpClass::Speculative, "data2");
        // "read-don't-modify-write": fetch_add(0) gives the read release
        // ordering (paper footnote 7 / Boehm 2012).
        let seq1 = t.rmw(OpClass::Paired, "seq", RmwOp::FetchAdd, 0);
        let same = Expr::bin(BinOp::Eq, seq0.into(), seq1.into());
        let even = Expr::bin(BinOp::Eq, Expr::bin(BinOp::And, seq0.into(), 1.into()), 0.into());
        let ok = Expr::bin(BinOp::And, same, even);
        t.if_nz(ok, |t| {
            t.observe(r1);
            t.observe(r2);
        });
    }
    p.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::{check_program, MemoryModel};

    #[test]
    fn all_use_cases_are_drfrlx_race_free() {
        for (name, p) in [
            ("work_queue", work_queue()),
            ("work_queue_multi_quantum", work_queue_multi_quantum()),
            ("event_counter", event_counter()),
            ("flags", flags()),
            ("split_counter", split_counter()),
            ("ref_counter", ref_counter()),
            ("seqlock", seqlock()),
        ] {
            let r = check_program(&p, MemoryModel::Drfrlx);
            assert!(
                r.is_race_free(),
                "{name} must be race-free under DRFrlx; found: {:?}",
                r.races.iter().map(|f| &f.description).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn quantum_use_cases_are_transformed() {
        let r = check_program(&split_counter(), MemoryModel::Drfrlx);
        assert!(r.quantum_transformed);
        let r = check_program(&ref_counter(), MemoryModel::Drfrlx);
        assert!(r.quantum_transformed);
        let r = check_program(&seqlock(), MemoryModel::Drfrlx);
        assert!(!r.quantum_transformed);
    }
}
