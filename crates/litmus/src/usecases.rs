//! The Table 1 use cases as litmus programs, each annotated the way the
//! paper argues is correct. Every one must be race-free under DRFrlx.
//!
//! Each program is a *scaled-down instantiation* of the shared shape
//! templates in [`drfrlx_bridge::templates`] — the same emitters that,
//! at full grid scale, produce the micro workloads the simulator runs
//! (`crates/workloads/src/micro/`). The golden fixtures under
//! `tests/golden_emit/` pin these instances to the historical
//! hand-written builders instruction for instruction, so the checker,
//! the simulator, and the conformance harness all study one source of
//! truth.

use drfrlx_bridge::templates::{
    event_counter, flags as flags_t, ref_counter, seqlock, split_counter, work_queue,
};
use drfrlx_core::program::Program;
use drfrlx_core::OpClass;

/// Work Queue (Listing 1): a client enqueues a task and raises the
/// occupancy with a paired store; the service thread polls occupancy
/// with an **unpaired** load and, only if non-zero, re-checks with a
/// paired load before touching the task data. The unpaired poll never
/// orders data — the paired dequeue does.
pub fn work_queue() -> Program {
    let mut p = Program::new("work_queue");
    {
        let mut t = p.thread();
        work_queue::producer(
            &mut t,
            "task",
            42,
            &work_queue::Publish::Store(OpClass::Paired, "occupancy".into()),
        );
    }
    {
        let mut t = p.thread();
        work_queue::consumer(
            &mut t,
            &[(OpClass::Unpaired, "occupancy".into())],
            Some((OpClass::Paired, "occupancy".into())),
            "task",
        );
    }
    p.build()
}

/// Event Counter (Listing 2): workers bump shared counters with
/// **commutative** fetch-adds whose return values are ignored; the main
/// thread reads the totals only after paired join flags.
pub fn event_counter() -> Program {
    let mut p = Program::new("event_counter");
    for (amount, done) in [(1, "done0"), (2, "done1")] {
        let mut t = p.thread();
        event_counter::worker(
            &mut t,
            &event_counter::Worker {
                bin_class: OpClass::Commutative,
                op: drfrlx_core::RmwOp::FetchAdd,
                amount,
                observe: false,
                done: Some((OpClass::Paired, done.into())),
            },
        );
    }
    {
        let mut t = p.thread();
        event_counter::main(
            &mut t,
            &[(OpClass::Paired, "done0".into()), (OpClass::Paired, "done1".into())],
            OpClass::Data,
        );
    }
    p.build()
}

/// Flags (Listing 3): a worker polls `stop` with a **non-ordering**
/// load and raises `dirty` with a **commutative** store (always the
/// same value, hence commuting); the main thread raises `stop`
/// (non-ordering store), joins through a paired flag, and only then
/// reads `dirty` with a non-ordering load. The global barrier — not the
/// flags — orders everything that must be ordered.
pub fn flags() -> Program {
    let mut p = Program::new("flags");
    let worker = flags_t::worker(
        &mut p,
        &flags_t::Worker {
            stop_class: OpClass::NonOrdering,
            dirty_class: OpClass::Commutative,
            polls: 1,
            think: 0,
            dirty_every: 1,
            last_poll_works: true,
            observe_poll: false,
            exit: flags_t::Exit::Store(OpClass::Paired),
        },
    );
    p.push_thread(worker);
    let main = flags_t::main(
        &mut p,
        &flags_t::Main {
            delay: None,
            stop_class: OpClass::NonOrdering,
            exited_class: OpClass::Paired,
            join_polls: 1,
            join_target: 1,
            tail: flags_t::Tail::GuardedObserveDirty(OpClass::NonOrdering),
        },
    );
    p.push_thread(main);
    p.build()
}

/// Split Counter (Listing 4): updaters bump per-thread counters and a
/// reader sums them, all with **quantum** atomics — the reader accepts
/// any approximate partial sum.
pub fn split_counter() -> Program {
    let shape = split_counter::Shape {
        counters: vec!["c0".into(), "c1".into()],
        increments: 1,
        sweeps: 1,
        think_between_sweeps: 0,
        update_class: OpClass::Quantum,
        read_class: OpClass::Quantum,
    };
    let mut p = Program::new("split_counter");
    for c in ["c0", "c1"] {
        let mut t = p.thread();
        split_counter::updater(&mut t, &shape, c);
    }
    {
        let mut t = p.thread();
        split_counter::reader(&mut t, &shape, None);
    }
    p.build()
}

/// Reference Counter (Listing 5, reduced to one counter): threads
/// increment and decrement with **quantum** RMWs; whoever sees the
/// count drop to zero marks the object for deletion with a commutative
/// store (same value — the actual deletion happens after a barrier, not
/// shown, as the paper requires).
pub fn ref_counter() -> Program {
    let shape = ref_counter::Shape {
        count_class: OpClass::Quantum,
        mark_class: OpClass::Commutative,
        think: 0,
    };
    let mut p = Program::new("ref_counter");
    for _ in 0..2 {
        let mut t = p.thread();
        let obj =
            [ref_counter::Obj { count: "refcount".into(), mark: "marked".into(), mark_value: 1 }];
        ref_counter::visit(&mut t, &shape, &obj);
    }
    p.build()
}

/// Work Queue over *multiple* queues (the paper's footnote 4): with
/// several occupancy counters, relaxed polls could violate SC — but the
/// counters are amenable to approximation and the dequeue double-checks
/// with paired atomics, so distinguishing the polls as **quantum**
/// retains SC-centric semantics.
pub fn work_queue_multi_quantum() -> Program {
    let mut p = Program::new("work_queue_multi_quantum");
    {
        let mut t = p.thread();
        work_queue::producer(
            &mut t,
            "task1",
            42,
            &work_queue::Publish::Store(OpClass::Paired, "occ1".into()),
        );
    }
    {
        let mut t = p.thread();
        work_queue::consumer(
            &mut t,
            &[(OpClass::Quantum, "occ0".into()), (OpClass::Quantum, "occ1".into())],
            Some((OpClass::Paired, "occ1".into())),
            "task1",
        );
    }
    p.build()
}

/// Seqlocks (Listing 6): the writer bumps `seq` to odd with a paired
/// CAS, updates the data with **speculative** stores, and publishes by
/// setting `seq` even again; the reader brackets speculative data loads
/// between a paired load of `seq` and the odd "read-don't-modify-write"
/// (`fetch_add 0`), and uses the values only when the sequence numbers
/// match and are even.
pub fn seqlock() -> Program {
    let payloads: Vec<String> = vec!["data1".into(), "data2".into()];
    let mut p = Program::new("seqlock");
    {
        let mut t = p.thread();
        seqlock::writer(
            &mut t,
            &seqlock::Writer {
                lock: true,
                lock_class: OpClass::Paired,
                unlock_class: OpClass::Paired,
                payload_class: OpClass::Speculative,
                payloads: payloads.clone(),
                writes: 1,
            },
            |_, i| (10 * (i + 1)) as i64,
        );
    }
    let reader = seqlock::reader(
        &mut p,
        &seqlock::Reader {
            seq0_class: OpClass::Paired,
            seq1_class: OpClass::Paired,
            payload_class: OpClass::Speculative,
            payloads,
            reads: 1,
            max_retries: 1,
            tail: seqlock::Tail::ObserveChecked,
        },
    );
    p.push_thread(reader);
    p.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::{check_program, MemoryModel};

    #[test]
    fn all_use_cases_are_drfrlx_race_free() {
        for (name, p) in [
            ("work_queue", work_queue()),
            ("work_queue_multi_quantum", work_queue_multi_quantum()),
            ("event_counter", event_counter()),
            ("flags", flags()),
            ("split_counter", split_counter()),
            ("ref_counter", ref_counter()),
            ("seqlock", seqlock()),
        ] {
            let r = check_program(&p, MemoryModel::Drfrlx);
            assert!(
                r.is_race_free(),
                "{name} must be race-free under DRFrlx; found: {:?}",
                r.races.iter().map(|f| &f.description).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn quantum_use_cases_are_transformed() {
        let r = check_program(&split_counter(), MemoryModel::Drfrlx);
        assert!(r.quantum_transformed);
        let r = check_program(&ref_counter(), MemoryModel::Drfrlx);
        assert!(r.quantum_transformed);
        let r = check_program(&seqlock(), MemoryModel::Drfrlx);
        assert!(!r.quantum_transformed);
    }
}
