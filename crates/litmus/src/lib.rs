//! # drfrlx-litmus — litmus corpus for the DRFrlx memory model
//!
//! The paper validates its Herd formalization on "numerous litmus tests
//! ... the use cases in Table 1, incorrectly labeled versions of these
//! use cases, and various other tests designed to stress various racy
//! and non-racy patterns" (§3.8). This crate is that corpus:
//!
//! * [`usecases`] — the Table 1 use cases as executable litmus programs:
//!   Work Queue (Listing 1), Event Counter (Listing 2), Flags
//!   (Listing 3), Split Counter (Listing 4), Reference Counter
//!   (Listing 5), Seqlocks (Listing 6).
//! * [`mislabeled`] — the same programs with deliberately wrong
//!   annotations, each expected to be flagged with a specific race kind.
//! * [`classic`] — classic weak-memory shapes (MP, SB, LB, CoRR, IRIW,
//!   Figure 2) with varying labels.
//! * [`stress`] — 4-thread stress variants (IRIW, event counter,
//!   seqlock) sized past the default execution budget for exhaustive
//!   enumeration; only the streaming checker's partial-order reduction
//!   finishes them.
//! * [`suite`] — a declarative registry of all tests with their expected
//!   verdicts under DRF0 / DRF1 / DRFrlx, and a runner that checks both
//!   the programmer-centric model (race detection) and the
//!   system-centric model (SC-only results for race-free programs —
//!   Theorem 3.1).
//!
//! ```
//! use drfrlx_litmus::suite;
//!
//! let tests = suite::all_tests();
//! assert!(tests.len() >= 20);
//! let seqlock = tests.iter().find(|t| t.name == "seqlock").unwrap();
//! suite::run(seqlock).expect("seqlock matches the paper's verdicts");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classic;
pub mod fixtures;
pub mod mislabeled;
pub mod stress;
pub mod suite;
pub mod usecases;

pub use suite::{all_tests, run, stress_tests, Category, LitmusTest};
