//! Deliberately mislabeled variants of the Table 1 use cases. Each must
//! be flagged by the DRFrlx programmer-centric model with a specific
//! race kind — this is the paper's negative validation (§3.8).
//!
//! Like [`crate::usecases`], every variant that shares a shape with a
//! use case instantiates the same [`drfrlx_bridge::templates`] emitter
//! with the *wrong* knob — a class left as data, a dropped re-check, a
//! missing lock — so the mislabeling is expressed as a one-knob diff
//! against the correct program rather than a separate hand-written
//! copy. `flags_ordering_through_stop` alone stays hand-built: its
//! branch-on-poll shape exposes the relaxed machine's reordering and
//! corresponds to no template.

use drfrlx_bridge::templates::{
    event_counter, flags as flags_t, ref_counter, seqlock, split_counter, work_queue,
};
use drfrlx_core::program::{Program, RmwOp};
use drfrlx_core::OpClass;

/// One template event-counter worker as its own thread.
fn ec_worker(p: &mut Program, w: &event_counter::Worker) {
    let mut t = p.thread();
    event_counter::worker(&mut t, w);
}

/// Work Queue where the service thread touches the task data after only
/// the *unpaired* poll (skipping the paired re-check, the scenario of
/// the paper's footnote 4 without quantum protection): the task
/// accesses form a data race.
pub fn work_queue_no_recheck() -> Program {
    let mut p = Program::new("work_queue_no_recheck");
    {
        let mut t = p.thread();
        work_queue::producer(
            &mut t,
            "task",
            42,
            &work_queue::Publish::Store(OpClass::Paired, "occupancy".into()),
        );
    }
    {
        let mut t = p.thread();
        work_queue::consumer(&mut t, &[(OpClass::Unpaired, "occupancy".into())], None, "task");
    }
    p.build()
}

/// Event Counter where the counters are left as plain data: a textbook
/// data race.
pub fn event_counter_data() -> Program {
    let mut p = Program::new("event_counter_data");
    for amount in [1, 2] {
        ec_worker(
            &mut p,
            &event_counter::Worker {
                bin_class: OpClass::Data,
                op: RmwOp::FetchAdd,
                amount,
                observe: false,
                done: None,
            },
        );
    }
    p.build()
}

/// Event Counter where a worker *observes* the fetch-add's return value
/// — the commutative contract forbids using the loaded value.
pub fn event_counter_observed() -> Program {
    let mut p = Program::new("event_counter_observed");
    for (amount, observe) in [(1, true), (2, false)] {
        ec_worker(
            &mut p,
            &event_counter::Worker {
                bin_class: OpClass::Commutative,
                op: RmwOp::FetchAdd,
                amount,
                observe,
                done: None,
            },
        );
    }
    p.build()
}

/// Event Counter mixing exchange with fetch-add under commutative
/// labels: the operations do not commute.
pub fn event_counter_noncommuting() -> Program {
    let mut p = Program::new("event_counter_noncommuting");
    for (op, amount) in [(RmwOp::Exchange, 7), (RmwOp::FetchAdd, 2)] {
        ec_worker(
            &mut p,
            &event_counter::Worker {
                bin_class: OpClass::Commutative,
                op,
                amount,
                observe: false,
                done: None,
            },
        );
    }
    p.build()
}

/// Flags where two workers raise `dirty` with *different* values:
/// same-location commutative stores of different values do not commute.
pub fn flags_conflicting_dirty() -> Program {
    let mut p = Program::new("flags_conflicting_dirty");
    for value in [1, 2] {
        let t = flags_t::dirty_only(&mut p, OpClass::Commutative, value);
        p.push_thread(t);
    }
    p.build()
}

/// Flags where `stop` is misused as the *only* ordering between data
/// accesses: the non-ordering atomic now sits on the unique ordering
/// path, which is exactly what non-ordering atomics must not do.
/// (Hand-built: the branch-on-poll shape has no template counterpart.)
pub fn flags_ordering_through_stop() -> Program {
    let mut p = Program::new("flags_ordering_through_stop");
    {
        let mut t = p.thread();
        t.store(OpClass::Unpaired, "x", 3);
        t.store(OpClass::NonOrdering, "stop", 1);
    }
    {
        let mut t = p.thread();
        let s = t.load(OpClass::NonOrdering, "stop");
        t.branch_on(s);
        let x = t.load(OpClass::Unpaired, "x");
        // Expose the outcome in memory: stop == 1 with stale x == 0 is
        // the non-SC result the relaxed machine can produce.
        t.store(OpClass::Data, "out_stop", s);
        t.store(OpClass::Data, "out_x", x);
    }
    p.build()
}

/// Split Counter where the reader uses paired loads against quantum
/// updates: quantum atomics may only race with quantum atomics.
pub fn split_counter_mixed() -> Program {
    let shape = split_counter::Shape {
        counters: vec!["c0".into()],
        increments: 1,
        sweeps: 1,
        think_between_sweeps: 0,
        update_class: OpClass::Quantum,
        read_class: OpClass::Paired,
    };
    let mut p = Program::new("split_counter_mixed");
    {
        let mut t = p.thread();
        split_counter::updater(&mut t, &shape, "c0");
    }
    {
        let mut t = p.thread();
        split_counter::reader(&mut t, &shape, None);
    }
    p.build()
}

/// Reference Counter where the "last one marks" store is plain data:
/// in the quantum-equivalent program both decrements can return 1, so
/// the marking stores race.
pub fn ref_counter_data_mark() -> Program {
    let shape =
        ref_counter::Shape { count_class: OpClass::Quantum, mark_class: OpClass::Data, think: 0 };
    let mut p = Program::new("ref_counter_data_mark");
    for tid in 0..2 {
        let mut t = p.thread();
        // Different values ⇒ plain stores that really conflict.
        let obj = [ref_counter::Obj {
            count: "refcount".into(),
            mark: "marked".into(),
            mark_value: tid + 1,
        }];
        ref_counter::visit(&mut t, &shape, &obj);
    }
    p.build()
}

/// Seqlock where the reader observes the speculative values
/// unconditionally (ignoring the sequence check): a speculative race.
pub fn seqlock_unconditional_use() -> Program {
    let payloads: Vec<String> = vec!["data1".into()];
    let mut p = Program::new("seqlock_unconditional_use");
    {
        let mut t = p.thread();
        seqlock::writer(
            &mut t,
            &seqlock::Writer {
                lock: true,
                lock_class: OpClass::Paired,
                unlock_class: OpClass::Paired,
                payload_class: OpClass::Speculative,
                payloads: payloads.clone(),
                writes: 1,
            },
            |_, _| 10,
        );
    }
    let reader = seqlock::reader(
        &mut p,
        &seqlock::Reader {
            seq0_class: OpClass::Paired,
            seq1_class: OpClass::Paired,
            payload_class: OpClass::Speculative,
            payloads,
            reads: 1,
            max_retries: 1,
            // Used without checking the sequence number.
            tail: seqlock::Tail::ObserveUnchecked,
        },
    );
    p.push_thread(reader);
    p.build()
}

/// Two seqlock writers racing on the speculative data (both forgot the
/// lock): write-write speculative race.
pub fn seqlock_double_writer() -> Program {
    let mut p = Program::new("seqlock_double_writer");
    for value in [10, 30] {
        let mut t = p.thread();
        seqlock::writer(
            &mut t,
            &seqlock::Writer {
                lock: false,
                lock_class: OpClass::Paired,
                unlock_class: OpClass::Paired,
                payload_class: OpClass::Speculative,
                payloads: vec!["data1".into()],
                writes: 1,
            },
            move |_, _| value,
        );
    }
    p.build()
}

/// Flags where `stop` is left as plain data: the polling loads race
/// with the main thread's store — a data race under every model.
pub fn flags_stop_data() -> Program {
    let mut p = Program::new("flags_stop_data");
    let worker = flags_t::worker(
        &mut p,
        &flags_t::Worker {
            stop_class: OpClass::Data,
            dirty_class: OpClass::Commutative,
            polls: 1,
            think: 0,
            dirty_every: 0,
            last_poll_works: false,
            observe_poll: true,
            exit: flags_t::Exit::Store(OpClass::Paired),
        },
    );
    p.push_thread(worker);
    let main = flags_t::main(
        &mut p,
        &flags_t::Main {
            delay: None,
            stop_class: OpClass::Data,
            exited_class: OpClass::Paired,
            join_polls: 1,
            join_target: 1,
            tail: flags_t::Tail::ObserveJoin,
        },
    );
    p.push_thread(main);
    p.build()
}

/// A work queue where the producer forgets the paired publish: the
/// consumer's data read of the slot is guarded only by the unpaired
/// occupancy counter — a data race (the UTS bug this corpus guards
/// against).
pub fn work_queue_unpublished_slot() -> Program {
    let mut p = Program::new("work_queue_unpublished_slot");
    {
        let mut t = p.thread();
        // Should be Paired (release); mislabeled as unpaired.
        work_queue::producer(
            &mut t,
            "slot",
            42,
            &work_queue::Publish::Fadd(OpClass::Unpaired, "tail".into()),
        );
    }
    {
        let mut t = p.thread();
        work_queue::consumer(&mut t, &[(OpClass::Unpaired, "tail".into())], None, "slot");
    }
    p.build()
}

/// Seqlock whose writer publishes with a *non-ordering* unlock: the
/// reader's sequence check can pass without any happens-before to the
/// payload stores, so the observed speculative loads race.
pub fn seqlock_relaxed_unlock() -> Program {
    let payloads: Vec<String> = vec!["data1".into()];
    let mut p = Program::new("seqlock_relaxed_unlock");
    {
        let mut t = p.thread();
        seqlock::writer(
            &mut t,
            &seqlock::Writer {
                lock: true,
                lock_class: OpClass::Paired,
                // Should be Paired (release); mislabeled as non-ordering.
                unlock_class: OpClass::NonOrdering,
                payload_class: OpClass::Speculative,
                payloads: payloads.clone(),
                writes: 1,
            },
            |_, _| 10,
        );
    }
    let reader = seqlock::reader(
        &mut p,
        &seqlock::Reader {
            seq0_class: OpClass::Paired,
            seq1_class: OpClass::Paired,
            payload_class: OpClass::Speculative,
            payloads,
            reads: 1,
            max_retries: 1,
            tail: seqlock::Tail::ObserveChecked,
        },
    );
    p.push_thread(reader);
    p.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::{check_program, MemoryModel, RaceKind};

    fn expect_kind(p: Program, kind: RaceKind) {
        let r = check_program(&p, MemoryModel::Drfrlx);
        assert!(!r.is_race_free(), "{} must be flagged", r.program);
        assert!(
            r.has_race_kind(kind),
            "{} must contain a {kind}; found {:?}",
            r.program,
            r.race_kinds()
        );
    }

    #[test]
    fn each_mislabeling_is_flagged_with_its_kind() {
        expect_kind(work_queue_no_recheck(), RaceKind::Data);
        expect_kind(event_counter_data(), RaceKind::Data);
        expect_kind(event_counter_observed(), RaceKind::Commutative);
        expect_kind(event_counter_noncommuting(), RaceKind::Commutative);
        expect_kind(flags_conflicting_dirty(), RaceKind::Commutative);
        expect_kind(flags_ordering_through_stop(), RaceKind::NonOrdering);
        expect_kind(split_counter_mixed(), RaceKind::Quantum);
        expect_kind(ref_counter_data_mark(), RaceKind::Data);
        expect_kind(seqlock_unconditional_use(), RaceKind::Speculative);
        expect_kind(seqlock_double_writer(), RaceKind::Speculative);
        expect_kind(flags_stop_data(), RaceKind::Data);
        expect_kind(work_queue_unpublished_slot(), RaceKind::Data);
        expect_kind(seqlock_relaxed_unlock(), RaceKind::Speculative);
    }
}
