//! Deliberately mislabeled variants of the Table 1 use cases. Each must
//! be flagged by the DRFrlx programmer-centric model with a specific
//! race kind — this is the paper's negative validation (§3.8).

use drfrlx_core::program::{BinOp, Expr, Program, RmwOp};
use drfrlx_core::OpClass;

/// Work Queue where the service thread touches the task data after only
/// the *unpaired* poll (skipping the paired re-check, the scenario of
/// the paper's footnote 4 without quantum protection): the task
/// accesses form a data race.
pub fn work_queue_no_recheck() -> Program {
    let mut p = Program::new("work_queue_no_recheck");
    {
        let mut t = p.thread();
        t.store(OpClass::Data, "task", 42);
        t.store(OpClass::Paired, "occupancy", 1);
    }
    {
        let mut t = p.thread();
        let occ = t.load(OpClass::Unpaired, "occupancy");
        t.if_nz(occ, |t| {
            let task = t.load(OpClass::Data, "task");
            t.observe(task);
        });
    }
    p.build()
}

/// Event Counter where the counters are left as plain data: a textbook
/// data race.
pub fn event_counter_data() -> Program {
    let mut p = Program::new("event_counter_data");
    p.thread().rmw(OpClass::Data, "bin", RmwOp::FetchAdd, 1);
    p.thread().rmw(OpClass::Data, "bin", RmwOp::FetchAdd, 2);
    p.build()
}

/// Event Counter where a worker *observes* the fetch-add's return value
/// — the commutative contract forbids using the loaded value.
pub fn event_counter_observed() -> Program {
    let mut p = Program::new("event_counter_observed");
    {
        let mut t = p.thread();
        let old = t.rmw(OpClass::Commutative, "bin", RmwOp::FetchAdd, 1);
        t.observe(old);
    }
    p.thread().rmw(OpClass::Commutative, "bin", RmwOp::FetchAdd, 2);
    p.build()
}

/// Event Counter mixing exchange with fetch-add under commutative
/// labels: the operations do not commute.
pub fn event_counter_noncommuting() -> Program {
    let mut p = Program::new("event_counter_noncommuting");
    p.thread().rmw(OpClass::Commutative, "bin", RmwOp::Exchange, 7);
    p.thread().rmw(OpClass::Commutative, "bin", RmwOp::FetchAdd, 2);
    p.build()
}

/// Flags where two workers raise `dirty` with *different* values:
/// same-location commutative stores of different values do not commute.
pub fn flags_conflicting_dirty() -> Program {
    let mut p = Program::new("flags_conflicting_dirty");
    p.thread().store(OpClass::Commutative, "dirty", 1);
    p.thread().store(OpClass::Commutative, "dirty", 2);
    p.build()
}

/// Flags where `stop` is misused as the *only* ordering between data
/// accesses: the non-ordering atomic now sits on the unique ordering
/// path, which is exactly what non-ordering atomics must not do.
pub fn flags_ordering_through_stop() -> Program {
    let mut p = Program::new("flags_ordering_through_stop");
    {
        let mut t = p.thread();
        t.store(OpClass::Unpaired, "x", 3);
        t.store(OpClass::NonOrdering, "stop", 1);
    }
    {
        let mut t = p.thread();
        let s = t.load(OpClass::NonOrdering, "stop");
        t.branch_on(s);
        let x = t.load(OpClass::Unpaired, "x");
        // Expose the outcome in memory: stop == 1 with stale x == 0 is
        // the non-SC result the relaxed machine can produce.
        t.store(OpClass::Data, "out_stop", s);
        t.store(OpClass::Data, "out_x", x);
    }
    p.build()
}

/// Split Counter where the reader uses paired loads against quantum
/// updates: quantum atomics may only race with quantum atomics.
pub fn split_counter_mixed() -> Program {
    let mut p = Program::new("split_counter_mixed");
    p.thread().rmw(OpClass::Quantum, "c0", RmwOp::FetchAdd, 1);
    {
        let mut t = p.thread();
        let r0 = t.load(OpClass::Paired, "c0");
        t.observe(r0);
    }
    p.build()
}

/// Reference Counter where the "last one marks" store is plain data:
/// in the quantum-equivalent program both decrements can return 1, so
/// the marking stores race.
pub fn ref_counter_data_mark() -> Program {
    let mut p = Program::new("ref_counter_data_mark");
    for tid in 0..2 {
        let mut t = p.thread();
        t.rmw(OpClass::Quantum, "refcount", RmwOp::FetchAdd, 1);
        let old = t.rmw(OpClass::Quantum, "refcount", RmwOp::FetchSub, 1);
        let last = Expr::bin(BinOp::Eq, old.into(), 1.into());
        t.if_nz(last, move |t| {
            // Different values ⇒ plain stores that really conflict.
            t.store(OpClass::Data, "marked", tid + 1);
        });
    }
    p.build()
}

/// Seqlock where the reader observes the speculative values
/// unconditionally (ignoring the sequence check): a speculative race.
pub fn seqlock_unconditional_use() -> Program {
    let mut p = Program::new("seqlock_unconditional_use");
    {
        let mut t = p.thread();
        let old = t.cas(OpClass::Paired, "seq", 0, 1);
        let locked = Expr::bin(BinOp::Eq, old.into(), 0.into());
        t.if_nz(locked, |t| {
            t.store(OpClass::Speculative, "data1", 10);
            t.store(OpClass::Paired, "seq", 2);
        });
    }
    {
        let mut t = p.thread();
        let _seq0 = t.load(OpClass::Paired, "seq");
        let r1 = t.load(OpClass::Speculative, "data1");
        t.observe(r1); // used without checking the sequence number
    }
    p.build()
}

/// Two seqlock writers racing on the speculative data (both forgot the
/// lock): write-write speculative race.
pub fn seqlock_double_writer() -> Program {
    let mut p = Program::new("seqlock_double_writer");
    p.thread().store(OpClass::Speculative, "data1", 10);
    p.thread().store(OpClass::Speculative, "data1", 30);
    p.build()
}

/// Flags where `stop` is left as plain data: the polling loads race
/// with the main thread's store — a data race under every model.
pub fn flags_stop_data() -> Program {
    let mut p = Program::new("flags_stop_data");
    {
        let mut t = p.thread();
        let s = t.load(OpClass::Data, "stop");
        t.observe(s);
        t.store(OpClass::Paired, "exited", 1);
    }
    {
        let mut t = p.thread();
        t.store(OpClass::Data, "stop", 1);
        let j = t.load(OpClass::Paired, "exited");
        t.observe(j);
    }
    p.build()
}

/// A work queue where the producer forgets the paired publish: the
/// consumer's data read of the slot is guarded only by the unpaired
/// occupancy counter — a data race (the UTS bug this corpus guards
/// against).
pub fn work_queue_unpublished_slot() -> Program {
    let mut p = Program::new("work_queue_unpublished_slot");
    {
        let mut t = p.thread();
        t.store(OpClass::Data, "slot", 42);
        // Should be Paired (release); mislabeled as unpaired.
        t.rmw(OpClass::Unpaired, "tail", RmwOp::FetchAdd, 1);
    }
    {
        let mut t = p.thread();
        let tail = t.load(OpClass::Unpaired, "tail");
        t.if_nz(tail, |t| {
            let v = t.load(OpClass::Data, "slot");
            t.observe(v);
        });
    }
    p.build()
}

/// Seqlock whose writer publishes with a *non-ordering* unlock: the
/// reader's sequence check can pass without any happens-before to the
/// payload stores, so the observed speculative loads race.
pub fn seqlock_relaxed_unlock() -> Program {
    let mut p = Program::new("seqlock_relaxed_unlock");
    {
        let mut t = p.thread();
        let old = t.cas(OpClass::Paired, "seq", 0, 1);
        let locked = Expr::bin(BinOp::Eq, old.into(), 0.into());
        t.if_nz(locked, |t| {
            t.store(OpClass::Speculative, "data1", 10);
            // Should be Paired (release); mislabeled as non-ordering.
            t.store(OpClass::NonOrdering, "seq", 2);
        });
    }
    {
        let mut t = p.thread();
        let seq0 = t.load(OpClass::Paired, "seq");
        let r1 = t.load(OpClass::Speculative, "data1");
        let seq1 = t.rmw(OpClass::Paired, "seq", RmwOp::FetchAdd, 0);
        let same = Expr::bin(BinOp::Eq, seq0.into(), seq1.into());
        let even = Expr::bin(BinOp::Eq, Expr::bin(BinOp::And, seq0.into(), 1.into()), 0.into());
        let ok = Expr::bin(BinOp::And, same, even);
        t.if_nz(ok, |t| {
            t.observe(r1);
        });
    }
    p.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::{check_program, MemoryModel, RaceKind};

    fn expect_kind(p: Program, kind: RaceKind) {
        let r = check_program(&p, MemoryModel::Drfrlx);
        assert!(!r.is_race_free(), "{} must be flagged", r.program);
        assert!(
            r.has_race_kind(kind),
            "{} must contain a {kind}; found {:?}",
            r.program,
            r.race_kinds()
        );
    }

    #[test]
    fn each_mislabeling_is_flagged_with_its_kind() {
        expect_kind(work_queue_no_recheck(), RaceKind::Data);
        expect_kind(event_counter_data(), RaceKind::Data);
        expect_kind(event_counter_observed(), RaceKind::Commutative);
        expect_kind(event_counter_noncommuting(), RaceKind::Commutative);
        expect_kind(flags_conflicting_dirty(), RaceKind::Commutative);
        expect_kind(flags_ordering_through_stop(), RaceKind::NonOrdering);
        expect_kind(split_counter_mixed(), RaceKind::Quantum);
        expect_kind(ref_counter_data_mark(), RaceKind::Data);
        expect_kind(seqlock_unconditional_use(), RaceKind::Speculative);
        expect_kind(seqlock_double_writer(), RaceKind::Speculative);
        expect_kind(flags_stop_data(), RaceKind::Data);
        expect_kind(work_queue_unpublished_slot(), RaceKind::Data);
        expect_kind(seqlock_relaxed_unlock(), RaceKind::Speculative);
    }
}
