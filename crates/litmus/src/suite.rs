//! Declarative registry of the whole corpus with expected verdicts, and
//! a runner that checks every expectation against both models.

use crate::{classic, mislabeled, stress, usecases};
use drfrlx_core::checker::{check_program_with, CheckOptions};
use drfrlx_core::exec::{EnumLimits, Reduction};
use drfrlx_core::program::Program;
use drfrlx_core::syscentric::compare_with_sc;
use drfrlx_core::{MemoryModel, RaceKind};

/// Which part of the corpus a test belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// A Table 1 use case with the paper's labeling.
    UseCase,
    /// A deliberately mislabeled variant.
    Mislabeled,
    /// A classic weak-memory shape.
    Classic,
}

/// One litmus test and its expected verdicts.
#[derive(Debug, Clone)]
pub struct LitmusTest {
    /// Unique name.
    pub name: &'static str,
    /// Corpus category.
    pub category: Category,
    /// What the test demonstrates.
    pub description: &'static str,
    /// Program constructor.
    pub build: fn() -> Program,
    /// Expected race-freedom under [DRF0, DRF1, DRFrlx].
    pub race_free: [bool; 3],
    /// Race kinds expected under DRFrlx (empty when race-free).
    pub drfrlx_kinds: &'static [RaceKind],
    /// The weakest reduction under which the test fits the default
    /// execution budget. Everything enumerable with sleep sets alone
    /// stays on [`Reduction::SleepSet`]; compound stress programs
    /// whose conflicting clusters defeat sleep sets declare
    /// [`Reduction::SleepSetMemo`].
    pub reduction: Reduction,
    /// Expected verdict of the system-centric comparison under DRFrlx
    /// (`None` = skip: too expensive or the outcome lives only in
    /// registers).
    pub sc_only: Option<bool>,
}

/// The full corpus.
pub fn all_tests() -> Vec<LitmusTest> {
    use Category::*;
    use RaceKind::*;
    vec![
        // ---- Table 1 use cases ----
        LitmusTest {
            name: "work_queue",
            category: UseCase,
            description: "Listing 1: unpaired occupancy poll, paired dequeue",
            build: usecases::work_queue,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "work_queue_multi_quantum",
            category: UseCase,
            description: "footnote 4: multi-queue polls as quantum atomics",
            build: usecases::work_queue_multi_quantum,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: None, // quantum-equivalent result comparison needs a custom domain
        },
        LitmusTest {
            name: "event_counter",
            category: UseCase,
            description: "Listing 2: commutative histogram increments",
            build: usecases::event_counter,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "flags",
            category: UseCase,
            description: "Listing 3: non-ordering stop/dirty flags around a barrier",
            build: usecases::flags,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "split_counter",
            category: UseCase,
            description: "Listing 4: quantum partial sums",
            build: usecases::split_counter,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "ref_counter",
            category: UseCase,
            description: "Listing 5: quantum inc/dec, commutative marking",
            build: usecases::ref_counter,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            // The quantum-equivalent result set comparison needs a
            // domain covering every reachable count; skipped for cost.
            sc_only: None,
        },
        LitmusTest {
            name: "seqlock",
            category: UseCase,
            description: "Listing 6: speculative data loads bracketed by seq checks",
            build: usecases::seqlock,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        // ---- Mislabeled variants ----
        LitmusTest {
            name: "work_queue_no_recheck",
            category: Mislabeled,
            description: "task data guarded only by the unpaired poll",
            build: mislabeled::work_queue_no_recheck,
            race_free: [true, false, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Data],
            sc_only: None,
        },
        LitmusTest {
            name: "event_counter_data",
            category: Mislabeled,
            description: "counter left as plain data",
            build: mislabeled::event_counter_data,
            race_free: [false, false, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Data],
            sc_only: None,
        },
        LitmusTest {
            name: "event_counter_observed",
            category: Mislabeled,
            description: "commutative fetch-add return value observed",
            build: mislabeled::event_counter_observed,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Commutative],
            sc_only: None,
        },
        LitmusTest {
            name: "event_counter_noncommuting",
            category: Mislabeled,
            description: "exchange vs fetch-add under commutative labels",
            build: mislabeled::event_counter_noncommuting,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Commutative],
            sc_only: None,
        },
        LitmusTest {
            name: "flags_conflicting_dirty",
            category: Mislabeled,
            description: "commutative stores of different values",
            build: mislabeled::flags_conflicting_dirty,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Commutative],
            sc_only: None,
        },
        LitmusTest {
            name: "flags_ordering_through_stop",
            category: Mislabeled,
            description: "non-ordering flag on the unique ordering path",
            build: mislabeled::flags_ordering_through_stop,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[NonOrdering],
            sc_only: Some(false),
        },
        LitmusTest {
            name: "split_counter_mixed",
            category: Mislabeled,
            description: "paired reader against quantum updates",
            build: mislabeled::split_counter_mixed,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Quantum],
            sc_only: None,
        },
        LitmusTest {
            name: "ref_counter_data_mark",
            category: Mislabeled,
            description: "deletion mark as plain data in the quantum-equivalent program",
            build: mislabeled::ref_counter_data_mark,
            // Both decrements can see old == 1 even under SC (inc, dec,
            // inc, dec), so the data marking stores race under every
            // model.
            race_free: [false, false, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Data],
            sc_only: None,
        },
        LitmusTest {
            name: "seqlock_unconditional_use",
            category: Mislabeled,
            description: "speculative value used without the sequence check",
            build: mislabeled::seqlock_unconditional_use,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Speculative],
            sc_only: None,
        },
        LitmusTest {
            name: "seqlock_double_writer",
            category: Mislabeled,
            description: "two speculative writers",
            build: mislabeled::seqlock_double_writer,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Speculative],
            sc_only: None,
        },
        LitmusTest {
            name: "flags_stop_data",
            category: Mislabeled,
            description: "stop flag left as plain data",
            build: mislabeled::flags_stop_data,
            race_free: [false, false, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Data],
            sc_only: None,
        },
        LitmusTest {
            name: "work_queue_unpublished_slot",
            category: Mislabeled,
            description: "producer forgets the paired publish",
            build: mislabeled::work_queue_unpublished_slot,
            race_free: [true, false, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Data],
            sc_only: None,
        },
        LitmusTest {
            name: "seqlock_relaxed_unlock",
            category: Mislabeled,
            description: "writer unlocks with a non-ordering store",
            build: mislabeled::seqlock_relaxed_unlock,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            // Both contracts break: the payload race becomes observable
            // (speculative) and the unlock store carries ordering it
            // must not (non-ordering).
            drfrlx_kinds: &[NonOrdering, Speculative],
            sc_only: None,
        },
        // ---- Classic shapes ----
        LitmusTest {
            name: "mp_paired",
            category: Classic,
            description: "message passing, paired flag",
            build: classic::mp_paired,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "mp_unpaired",
            category: Classic,
            description: "message passing through an unpaired flag",
            build: classic::mp_unpaired,
            race_free: [true, false, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Data],
            sc_only: None,
        },
        LitmusTest {
            name: "mp_non_ordering",
            category: Classic,
            description: "message passing through a non-ordering flag",
            build: classic::mp_non_ordering,
            race_free: [true, false, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[Data],
            sc_only: None,
        },
        LitmusTest {
            name: "mp_release_acquire",
            category: Classic,
            description: "message passing with one-sided release/acquire (§7 extension)",
            build: classic::mp_release_acquire,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "sb_release_acquire",
            category: Classic,
            description: "store buffering with one-sided fences: hb-consistent but non-SC",
            build: classic::sb_release_acquire,
            // Legal under every model (the rel/acq pairs synchronize in
            // the executions where they read each other), yet the
            // relaxed machine reaches the non-SC outcome: one-sided
            // atomics promise happens-before, not SC — exactly C++'s
            // release/acquire semantics, and why the paper defers these
            // orderings to PLpc (§7).
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(false),
        },
        LitmusTest {
            name: "sb_paired",
            category: Classic,
            description: "store buffering, paired",
            build: || classic::sb("sb_paired", drfrlx_core::OpClass::Paired),
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "sb_non_ordering",
            category: Classic,
            description: "store buffering, non-ordering labels",
            build: || classic::sb("sb_non_ordering", drfrlx_core::OpClass::NonOrdering),
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[NonOrdering],
            sc_only: Some(false),
        },
        LitmusTest {
            name: "lb_non_ordering",
            category: Classic,
            description: "load buffering with data dependencies",
            build: classic::lb_non_ordering,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[NonOrdering],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "corr_non_ordering",
            category: Classic,
            description: "read-read coherence, absolved by per-location SC",
            build: classic::corr_non_ordering,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "iriw_paired",
            category: Classic,
            description: "IRIW with paired atomics",
            build: classic::iriw_paired,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "iriw_non_ordering",
            category: Classic,
            description: "IRIW with non-ordering atomics",
            build: classic::iriw_non_ordering,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[NonOrdering],
            sc_only: None,
        },
        LitmusTest {
            name: "figure2a",
            category: Classic,
            description: "Figure 2(a): unabsolved non-ordering path",
            build: classic::figure2a,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[NonOrdering],
            sc_only: Some(false),
        },
        LitmusTest {
            name: "figure2b",
            category: Classic,
            description: "Figure 2(b): paired path absolves the flags",
            build: classic::figure2b,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "wrc_paired",
            category: Classic,
            description: "write-to-read causality through paired flags",
            build: classic::wrc_paired,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "wrc_non_ordering",
            category: Classic,
            description: "WRC causality carried by non-ordering atomics",
            build: classic::wrc_non_ordering,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[NonOrdering],
            sc_only: Some(false),
        },
        LitmusTest {
            name: "isa2_paired",
            category: Classic,
            description: "three-thread transitivity (ISA2) with paired flags",
            build: classic::isa2_paired,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "two_plus_two_w_non_ordering",
            category: Classic,
            description: "2+2W: opposite-order non-ordering write pairs",
            build: classic::two_plus_two_w_non_ordering,
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[NonOrdering],
            sc_only: Some(false),
        },
        LitmusTest {
            name: "iriw_release_acquire",
            category: Classic,
            description: "IRIW with one-sided fences: a one-sided race",
            build: classic::iriw_release_acquire,
            // The checker flags the readers' reliance on one-sided
            // fences for cross-reader write ordering — sound, because
            // IRIW under release/acquire is genuinely non-SC on
            // non-multi-copy-atomic hardware. Our relaxed machine has a
            // single shared memory (multi-copy atomic), so it cannot
            // exhibit the disagreement; sc_only documents that the
            // machine under-approximates here.
            race_free: [true, true, false],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[OneSided],
            sc_only: Some(true),
        },
        LitmusTest {
            name: "unpaired_contention",
            category: Classic,
            description: "racing unpaired RMWs (legal)",
            build: classic::unpaired_contention,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: Some(true),
        },
    ]
}

/// The 4-thread stress corpus: programs whose exhaustive interleaving
/// counts blow the default execution budget but which the streaming
/// checker finishes comfortably with sleep-set partial-order reduction.
/// Kept out of [`all_tests`] so the committed `results/listing7.txt`
/// artifact (generated from that registry) is untouched; they get their
/// own artifact, `results/checker_stress.txt`.
pub fn stress_tests() -> Vec<LitmusTest> {
    use Category::*;
    vec![
        LitmusTest {
            name: "iriw_stress",
            category: Classic,
            description: "IRIW, 2 writers x 4 paired stores, 2 readers x 3 loads",
            build: stress::iriw_stress,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: None, // 4.2M exhaustive interleavings: relaxed machine too costly
        },
        LitmusTest {
            name: "event_counter_stress",
            category: UseCase,
            description: "3 workers on 2 commutative bins, main joins 3 paired flags",
            build: stress::event_counter_stress,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: None, // join fan-in makes the relaxed exploration explode
        },
        LitmusTest {
            name: "seqlock_stress",
            category: UseCase,
            description: "seqlock, 1 writer + 3 speculative readers",
            build: stress::seqlock_stress,
            race_free: [true, true, true],
            reduction: Reduction::SleepSet,
            drfrlx_kinds: &[],
            sc_only: None, // 369,600 exhaustive interleavings before branching
        },
        LitmusTest {
            name: "seqlock_counter_stress",
            category: UseCase,
            description: "seqlock + 2 counter/tick workers; needs memoization",
            build: stress::seqlock_counter_stress,
            race_free: [true, true, true],
            // 20.1M sleep-set interleavings: only duplicate-state
            // memoization fits the default budget.
            reduction: Reduction::SleepSetMemo,
            drfrlx_kinds: &[],
            sc_only: None,
        },
    ]
}

/// Run one test: check the programmer-centric verdict under all three
/// models and, when expected, the system-centric comparison.
///
/// # Errors
///
/// Returns a description of the first expectation that failed.
pub fn run(t: &LitmusTest) -> Result<(), String> {
    let p = (t.build)();
    let limits = EnumLimits::default();
    let opts =
        CheckOptions { limits: limits.clone(), reduction: t.reduction, ..CheckOptions::default() };
    for (i, model) in MemoryModel::ALL.iter().enumerate() {
        let report = check_program_with(&p, *model, &opts)
            .map_err(|e| format!("{}: enumeration failed under {model}: {e}", t.name))?;
        if report.is_race_free() != t.race_free[i] {
            return Err(format!(
                "{}: expected race_free={} under {model}, got {} ({:?})",
                t.name,
                t.race_free[i],
                report.is_race_free(),
                report.race_kinds(),
            ));
        }
        if *model == MemoryModel::Drfrlx {
            let kinds = report.race_kinds();
            let mut expected: Vec<RaceKind> = t.drfrlx_kinds.to_vec();
            expected.sort();
            if kinds != expected {
                return Err(format!(
                    "{}: expected DRFrlx race kinds {expected:?}, got {kinds:?}",
                    t.name
                ));
            }
        }
    }
    if let Some(expected_sc) = t.sc_only {
        let cmp = compare_with_sc(&p, MemoryModel::Drfrlx, &limits)
            .map_err(|e| format!("{}: relaxed exploration failed: {e}", t.name))?;
        if cmp.is_sc_only() != expected_sc {
            return Err(format!(
                "{}: expected sc_only={expected_sc}, got {} (non-SC results: {:?})",
                t.name,
                cmp.is_sc_only(),
                cmp.non_sc_results,
            ));
        }
        // Theorem 3.1 (empirical): race-free ⇒ SC-only results. The
        // theorem is scoped to programs without one-sided atomics:
        // release/acquire provide happens-before, not SC (the paper
        // defers these orderings to PLpc, §7).
        let one_sided = p
            .classes_used()
            .iter()
            .any(|c| matches!(c, drfrlx_core::OpClass::Acquire | drfrlx_core::OpClass::Release));
        if t.race_free[2] && !cmp.is_sc_only() && !one_sided {
            return Err(format!("{}: violates Theorem 3.1", t.name));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_corpus_matches_expected_verdicts() {
        for t in stress_tests() {
            run(&t).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn corpus_is_well_formed() {
        let mut tests = all_tests();
        assert!(tests.len() >= 25);
        tests.extend(stress_tests());
        // Unique names.
        for (i, a) in tests.iter().enumerate() {
            for b in &tests[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
        // Race-free tests expect no kinds; racy tests expect some.
        for t in &tests {
            assert_eq!(t.race_free[2], t.drfrlx_kinds.is_empty(), "{}", t.name);
            // Model strength is monotone: racy under DRF0 ⇒ racy under
            // DRF1 ⇒ racy under DRFrlx for our corpus (DRF0's view is
            // the strongest labeling).
            if !t.race_free[0] {
                assert!(!t.race_free[1], "{}", t.name);
            }
            if !t.race_free[1] {
                assert!(!t.race_free[2], "{}", t.name);
            }
        }
    }
}
