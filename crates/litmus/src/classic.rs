//! Classic weak-memory litmus shapes under various labelings, plus the
//! paper's Figure 2 executions.

use drfrlx_core::program::{Program, RmwOp};
use drfrlx_core::OpClass;

/// Message passing with a paired flag and conditional data read — the
/// canonical DRF0 idiom, race-free.
pub fn mp_paired() -> Program {
    mp_with_flag_class("mp_paired", OpClass::Paired)
}

/// Message passing through an *unpaired* flag: unpaired atomics do not
/// order data (DRF1's whole point) — a data race.
pub fn mp_unpaired() -> Program {
    mp_with_flag_class("mp_unpaired", OpClass::Unpaired)
}

/// Message passing through a *non-ordering* flag: likewise a data race.
pub fn mp_non_ordering() -> Program {
    mp_with_flag_class("mp_non_ordering", OpClass::NonOrdering)
}

/// Message passing with one-sided synchronization (the §7 extension):
/// a release store publishes, an acquire load subscribes — race-free
/// without full SC atomics.
pub fn mp_release_acquire() -> Program {
    let mut p = Program::new("mp_release_acquire");
    {
        let mut t = p.thread();
        t.store(OpClass::Data, "x", 42);
        t.store(OpClass::Release, "flag", 1);
    }
    {
        let mut t = p.thread();
        let f = t.load(OpClass::Acquire, "flag");
        t.if_nz(f, |t| {
            let d = t.load(OpClass::Data, "x");
            t.observe(d);
        });
    }
    p.build()
}

/// Store buffering with acquire loads and release stores: one-sided
/// fences famously do NOT forbid the store-buffering outcome, but the
/// data stores to the out variables race with nothing, and the x/y
/// accesses are ordering atomics — legal raciness, non-SC results.
pub fn sb_release_acquire() -> Program {
    let mut p = Program::new("sb_release_acquire");
    {
        let mut t = p.thread();
        t.store(OpClass::Release, "x", 1);
        let r = t.load(OpClass::Acquire, "y");
        t.store(OpClass::Data, "out0", r);
    }
    {
        let mut t = p.thread();
        t.store(OpClass::Release, "y", 1);
        let r = t.load(OpClass::Acquire, "x");
        t.store(OpClass::Data, "out1", r);
    }
    p.build()
}

fn mp_with_flag_class(name: &str, flag: OpClass) -> Program {
    let mut p = Program::new(name);
    {
        let mut t = p.thread();
        t.store(OpClass::Data, "x", 42);
        t.store(flag, "flag", 1);
    }
    {
        let mut t = p.thread();
        let f = t.load(flag, "flag");
        t.if_nz(f, |t| {
            let d = t.load(OpClass::Data, "x");
            t.observe(d);
        });
    }
    p.build()
}

/// Store buffering with the given class on all four accesses, results
/// written to per-thread out variables so the system-centric machine's
/// outcomes are visible in memory.
pub fn sb(name: &str, class: OpClass) -> Program {
    let mut p = Program::new(name);
    {
        let mut t = p.thread();
        t.store(class, "x", 1);
        let r = t.load(class, "y");
        t.store(OpClass::Data, "out0", r);
    }
    {
        let mut t = p.thread();
        t.store(class, "y", 1);
        let r = t.load(class, "x");
        t.store(OpClass::Data, "out1", r);
    }
    p.build()
}

/// Load buffering with data dependencies, relaxed labels: the machine
/// must not fabricate out-of-thin-air values.
pub fn lb_non_ordering() -> Program {
    let mut p = Program::new("lb_non_ordering");
    {
        let mut t = p.thread();
        let r = t.load(OpClass::NonOrdering, "x");
        t.store(OpClass::NonOrdering, "y", r);
    }
    {
        let mut t = p.thread();
        let r = t.load(OpClass::NonOrdering, "y");
        t.store(OpClass::NonOrdering, "x", r);
    }
    p.build()
}

/// Coherence of read-read (CoRR) with non-ordering labels: the ordering
/// path lies entirely within one location, so the same-address valid
/// path (per-location SC) absolves the relaxed atomics.
pub fn corr_non_ordering() -> Program {
    let mut p = Program::new("corr_non_ordering");
    p.thread().store(OpClass::NonOrdering, "x", 1);
    {
        let mut t = p.thread();
        let r1 = t.load(OpClass::NonOrdering, "x");
        let r2 = t.load(OpClass::NonOrdering, "x");
        t.observe(r1);
        t.observe(r2);
    }
    p.build()
}

/// Independent reads of independent writes, paired everywhere: legal
/// (atomics may race) and SC.
pub fn iriw_paired() -> Program {
    iriw("iriw_paired", OpClass::Paired)
}

/// IRIW with non-ordering labels: the readers' program order edges are
/// the unique ordering paths between the writes — a non-ordering race.
pub fn iriw_non_ordering() -> Program {
    iriw("iriw_non_ordering", OpClass::NonOrdering)
}

fn iriw(name: &str, class: OpClass) -> Program {
    let mut p = Program::new(name);
    p.thread().store(class, "x", 1);
    p.thread().store(class, "y", 1);
    {
        let mut t = p.thread();
        let r1 = t.load(class, "x");
        let r2 = t.load(class, "y");
        t.observe(r1);
        t.observe(r2);
    }
    {
        let mut t = p.thread();
        let r3 = t.load(class, "y");
        let r4 = t.load(class, "x");
        t.observe(r3);
        t.observe(r4);
    }
    p.build()
}

/// Figure 2(a): conflicting unpaired accesses whose only ordering path
/// runs through non-ordering atomics — a non-ordering race.
pub fn figure2a() -> Program {
    let mut p = Program::new("figure2a");
    {
        let mut t = p.thread();
        t.store(OpClass::Unpaired, "x", 3);
        t.store(OpClass::NonOrdering, "y", 2);
    }
    {
        let mut t = p.thread();
        let r1 = t.load(OpClass::NonOrdering, "y");
        t.branch_on(r1);
        let r2 = t.load(OpClass::Unpaired, "x");
        // Make the outcome part of the memory state so the
        // system-centric comparison can see the non-SC result
        // (r1 == 2 with a stale r2 == 0).
        t.store(OpClass::Data, "out_y", r1);
        t.store(OpClass::Data, "out_x", r2);
    }
    p.build()
}

/// Figure 2(b): the same shape with an added paired location Z whose
/// accesses provide a valid ordering path — no race.
pub fn figure2b() -> Program {
    let mut p = Program::new("figure2b");
    {
        let mut t = p.thread();
        t.store(OpClass::Unpaired, "x", 3);
        t.store(OpClass::NonOrdering, "y", 2);
        t.store(OpClass::Paired, "z", 1);
    }
    {
        let mut t = p.thread();
        let r0 = t.load(OpClass::Paired, "z");
        t.if_nz(r0, |t| {
            let r1 = t.load(OpClass::NonOrdering, "y");
            t.branch_on(r1);
            let r2 = t.load(OpClass::Unpaired, "x");
            t.observe(r2);
        });
    }
    p.build()
}

/// Write-to-read causality (WRC) with paired flags: T0 publishes, T1
/// observes and republishes, T2 observes transitively — race-free.
pub fn wrc_paired() -> Program {
    let mut p = Program::new("wrc_paired");
    p.thread().store(OpClass::Paired, "x", 1);
    {
        let mut t = p.thread();
        let r = t.load(OpClass::Paired, "x");
        t.if_nz(r, |t| {
            t.store(OpClass::Paired, "y", 1);
        });
    }
    {
        let mut t = p.thread();
        let ry = t.load(OpClass::Paired, "y");
        let rx = t.load(OpClass::Paired, "x");
        t.observe(ry);
        t.observe(rx);
    }
    p.build()
}

/// WRC with non-ordering atomics and a real data dependency: the
/// causality chain is exactly what non-ordering atomics must not be
/// asked to carry — a non-ordering race, and the relaxed machine can
/// show y observed without x.
pub fn wrc_non_ordering() -> Program {
    let mut p = Program::new("wrc_non_ordering");
    p.thread().store(OpClass::NonOrdering, "x", 1);
    {
        let mut t = p.thread();
        let r = t.load(OpClass::NonOrdering, "x");
        t.store(OpClass::NonOrdering, "y", r);
    }
    {
        let mut t = p.thread();
        let ry = t.load(OpClass::NonOrdering, "y");
        let rx = t.load(OpClass::NonOrdering, "x");
        t.store(OpClass::Data, "out_y", ry);
        t.store(OpClass::Data, "out_x", rx);
    }
    p.build()
}

/// ISA2: three-thread transitivity through two paired flags guarding a
/// data payload — race-free, exercising hb1's transitive closure.
pub fn isa2_paired() -> Program {
    let mut p = Program::new("isa2_paired");
    {
        let mut t = p.thread();
        t.store(OpClass::Data, "x", 7);
        t.store(OpClass::Paired, "f1", 1);
    }
    {
        let mut t = p.thread();
        let r = t.load(OpClass::Paired, "f1");
        t.if_nz(r, |t| {
            t.store(OpClass::Paired, "f2", 1);
        });
    }
    {
        let mut t = p.thread();
        let r = t.load(OpClass::Paired, "f2");
        t.if_nz(r, |t| {
            let d = t.load(OpClass::Data, "x");
            t.observe(d);
        });
    }
    p.build()
}

/// 2+2W with non-ordering stores: opposite-order write pairs. The final
/// state (x, y) = (1, 1) is unreachable under SC but reachable once the
/// stores reorder — a non-ordering race.
pub fn two_plus_two_w_non_ordering() -> Program {
    let mut p = Program::new("two_plus_two_w_non_ordering");
    {
        let mut t = p.thread();
        t.store(OpClass::NonOrdering, "x", 1);
        t.store(OpClass::NonOrdering, "y", 2);
    }
    {
        let mut t = p.thread();
        t.store(OpClass::NonOrdering, "y", 1);
        t.store(OpClass::NonOrdering, "x", 2);
    }
    p.build()
}

/// IRIW with release stores and acquire loads. On real hardware this
/// admits the reader-disagreement outcome; our relaxed machine is
/// multi-copy atomic (one shared memory), so it cannot exhibit it —
/// a documented modelling boundary, like Herd's SC-execution base.
pub fn iriw_release_acquire() -> Program {
    let mut p = Program::new("iriw_release_acquire");
    p.thread().store(OpClass::Release, "x", 1);
    p.thread().store(OpClass::Release, "y", 1);
    {
        let mut t = p.thread();
        let r1 = t.load(OpClass::Acquire, "x");
        let r2 = t.load(OpClass::Acquire, "y");
        t.store(OpClass::Data, "out20", r1);
        t.store(OpClass::Data, "out21", r2);
    }
    {
        let mut t = p.thread();
        let r3 = t.load(OpClass::Acquire, "y");
        let r4 = t.load(OpClass::Acquire, "x");
        t.store(OpClass::Data, "out30", r3);
        t.store(OpClass::Data, "out31", r4);
    }
    p.build()
}

/// Unpaired RMWs contending on a lock-free stack top counter — legal
/// raciness between atomics (no data involvement).
pub fn unpaired_contention() -> Program {
    let mut p = Program::new("unpaired_contention");
    p.thread().rmw(OpClass::Unpaired, "top", RmwOp::FetchAdd, 1);
    p.thread().rmw(OpClass::Unpaired, "top", RmwOp::FetchSub, 1);
    p.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::{check_program, MemoryModel, RaceKind};

    #[test]
    fn mp_verdicts_depend_on_flag_class() {
        assert!(check_program(&mp_paired(), MemoryModel::Drfrlx).is_race_free());
        let r = check_program(&mp_unpaired(), MemoryModel::Drfrlx);
        assert!(r.has_race_kind(RaceKind::Data));
        let r = check_program(&mp_non_ordering(), MemoryModel::Drfrlx);
        assert!(r.has_race_kind(RaceKind::Data));
        // Viewed through DRF0 eyes (flag treated as an SC atomic), the
        // unpaired variant would be fine — which is why DRF1 needed the
        // paired/unpaired distinction in the first place.
        assert!(check_program(&mp_unpaired(), MemoryModel::Drf0).is_race_free());
    }

    #[test]
    fn corr_is_absolved_by_per_location_sc() {
        let r = check_program(&corr_non_ordering(), MemoryModel::Drfrlx);
        assert!(r.is_race_free(), "found {:?}", r.race_kinds());
    }

    #[test]
    fn iriw_needs_ordering_atomics() {
        assert!(check_program(&iriw_paired(), MemoryModel::Drfrlx).is_race_free());
        let r = check_program(&iriw_non_ordering(), MemoryModel::Drfrlx);
        assert!(r.has_race_kind(RaceKind::NonOrdering), "found {:?}", r.race_kinds());
    }

    #[test]
    fn figure2_matches_the_paper() {
        let r = check_program(&figure2a(), MemoryModel::Drfrlx);
        assert!(r.has_race_kind(RaceKind::NonOrdering));
        let r = check_program(&figure2b(), MemoryModel::Drfrlx);
        assert!(r.is_race_free(), "found {:?}", r.race_kinds());
    }
}
