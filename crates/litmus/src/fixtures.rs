//! Golden emitted-text fixtures for the corpus.
//!
//! Every litmus program's canonical [`emit`](drfrlx_core::emit::emit)
//! text is pinned under `tests/golden_emit/`. The fixtures were captured
//! from the hand-written program builders *before* `usecases.rs` and
//! `mislabeled.rs` were rewired onto the shared
//! [`drfrlx_bridge::templates`], so a byte-for-byte match proves the
//! template instantiations reproduce the historical programs
//! instruction for instruction — the same role the differential
//! simulator test plays for the micro workloads.
//!
//! Regenerate with `UPDATE_GOLDEN_EMIT=1 cargo test -p drfrlx-litmus`
//! (only legitimate when a program change is *intended*; the conform
//! artifacts must be regenerated with it).

use crate::suite::{all_tests, stress_tests, LitmusTest};
use drfrlx_core::emit::emit;
use drfrlx_core::parse::parse;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden_emit")
}

/// Every corpus entry, fixture-named.
pub fn fixture_tests() -> Vec<LitmusTest> {
    let mut v = all_tests();
    v.extend(stress_tests());
    v
}

/// Check (or, with `UPDATE_GOLDEN_EMIT=1`, rewrite) one test's fixture.
///
/// # Panics
///
/// Panics when the emitted text diverges from the committed fixture, or
/// when emit→parse→emit is not a fixpoint.
pub fn assert_fixture(t: &LitmusTest) {
    let p = (t.build)();
    let text = emit(&p);
    // Fixpoint: the canonical text round-trips through the parser.
    let reparsed =
        parse(&text).unwrap_or_else(|e| panic!("{}: emitted text unparseable: {e}", t.name));
    assert_eq!(text, emit(&reparsed), "{}: emit→parse→emit must be a fixpoint", t.name);
    let path = fixture_dir().join(format!("{}.litmus", t.name));
    if std::env::var_os("UPDATE_GOLDEN_EMIT").is_some() {
        std::fs::create_dir_all(fixture_dir()).unwrap();
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: missing fixture {} ({e})", t.name, path.display()));
    assert_eq!(text, golden, "{}: emitted program drifted from the pre-template fixture", t.name);
}
