//! Four-thread stress corpus for the streaming checker.
//!
//! These programs are deliberately sized past what the seed's
//! materialize-then-check enumerator can finish under the default
//! execution budget: exhaustive interleaving counts run into the
//! millions, while sleep-set partial-order reduction collapses them by
//! orders of magnitude because most adjacent steps touch different
//! locations (or are both reads) and therefore commute. They are the
//! workload behind `results/checker_stress.txt` and the
//! `checker-bench` CI job.

use drfrlx_core::program::{BinOp, Expr, Program, RmwOp};
use drfrlx_core::OpClass;

/// IRIW with two writers publishing several values each and two readers
/// polling both locations — all paired, so race-free under every model.
/// 14 memory operations across 4 threads: 4,204,200 exhaustive
/// interleavings, far past the default execution budget.
pub fn iriw_stress() -> Program {
    let mut p = Program::new("iriw_stress");
    {
        let mut t = p.thread();
        for v in 1..=4 {
            t.store(OpClass::Paired, "x", v);
        }
    }
    {
        let mut t = p.thread();
        for v in 1..=4 {
            t.store(OpClass::Paired, "y", v);
        }
    }
    for (first, second) in [("x", "y"), ("y", "x")] {
        let mut t = p.thread();
        let r1 = t.load(OpClass::Paired, first);
        let r2 = t.load(OpClass::Paired, second);
        let r3 = t.load(OpClass::Paired, first);
        t.observe(r1);
        t.observe(r2);
        t.observe(r3);
    }
    p.build()
}

/// Event counter with three workers bumping two commutative histogram
/// bins and a main thread joining on all three paired done flags before
/// reading the bins. Race-free under every model; small enough that the
/// materializing reference still finishes, which makes it the
/// apples-to-apples timing case in `checker_bench`.
pub fn event_counter_stress() -> Program {
    let mut p = Program::new("event_counter_stress");
    for (i, bin) in ["bin0", "bin1", "bin0"].into_iter().enumerate() {
        let mut t = p.thread();
        t.rmw(OpClass::Commutative, bin, RmwOp::FetchAdd, 1 + i as i64);
        t.store(OpClass::Paired, &format!("done{i}"), 1);
    }
    {
        let mut t = p.thread();
        let d0 = t.load(OpClass::Paired, "done0");
        let d1 = t.load(OpClass::Paired, "done1");
        let d2 = t.load(OpClass::Paired, "done2");
        let joined = Expr::bin(BinOp::And, Expr::bin(BinOp::And, d0.into(), d1.into()), d2.into());
        t.if_nz(joined, |t| {
            let b0 = t.load(OpClass::Data, "bin0");
            let b1 = t.load(OpClass::Data, "bin1");
            t.observe(b0);
            t.observe(b1);
        });
    }
    p.build()
}

/// Seqlock with one writer and three concurrent readers, each doing the
/// full check-read-recheck dance over a speculative payload. Race-free
/// under every model: misspeculated payload values are never observed.
pub fn seqlock_stress() -> Program {
    let mut p = Program::new("seqlock_stress");
    {
        let mut t = p.thread();
        let old = t.cas(OpClass::Paired, "seq", 0, 1);
        let locked = Expr::bin(BinOp::Eq, old.into(), 0.into());
        t.if_nz(locked, |t| {
            t.store(OpClass::Speculative, "data", 10);
            t.store(OpClass::Paired, "seq", 2);
        });
    }
    for _ in 0..3 {
        let mut t = p.thread();
        let seq0 = t.load(OpClass::Paired, "seq");
        let r = t.load(OpClass::Speculative, "data");
        let seq1 = t.rmw(OpClass::Paired, "seq", RmwOp::FetchAdd, 0);
        let same = Expr::bin(BinOp::Eq, seq0.into(), seq1.into());
        let even = Expr::bin(BinOp::Eq, Expr::bin(BinOp::And, seq0.into(), 1.into()), 0.into());
        let ok = Expr::bin(BinOp::And, same, even);
        t.if_nz(ok, |t| {
            t.observe(r);
        });
    }
    p.build()
}

/// Rounds per counter worker in [`seqlock_counter_stress`]. Each round
/// is one commutative counter bump followed by five idempotent paired
/// progress ticks. Sized so sleep sets alone blow the default
/// execution budget (every bump conflicts with every bump and every
/// tick with every tick) while duplicate-state memoization collapses
/// the tree under every model view — including DRF0, whose all-paired
/// view pins the synchronization order of the RMW bumps and therefore
/// merges only the tick cluster. The DRF0 tree must stay within the
/// sharding probe budget so the program runs serially (and therefore
/// in identical wall-clock) at any worker count.
const COUNTER_ROUNDS: usize = 2;

/// The compound memoization workload: a seqlock writer/reader pair
/// sharing the machine with two counter workers. Thread 0 publishes a
/// speculative payload under a paired seqlock; threads 1–2 each run
/// [`COUNTER_ROUNDS`] rounds of bump-the-commutative-counter plus five
/// idempotent paired `tick <- 1` progress signals, then raise a paired
/// done flag; thread 3 runs the full seqlock check-read-recheck dance
/// and then joins on both done flags before reading the counter as
/// plain data. Race-free under every model, but the bumps and ticks
/// conflict pairwise across the workers, so sleep-set reduction alone
/// exceeds the default execution budget — only
/// `Reduction::SleepSetMemo` finishes, by merging interleavings that
/// reach the same abstract state (the bumps commute in value, the
/// ticks store the same value, and the order of same-value paired
/// stores is invisible to every race detector).
pub fn seqlock_counter_stress() -> Program {
    let mut p = Program::new("seqlock_counter_stress");
    {
        let mut t = p.thread();
        let old = t.cas(OpClass::Paired, "seq", 0, 1);
        let locked = Expr::bin(BinOp::Eq, old.into(), 0.into());
        t.if_nz(locked, |t| {
            t.store(OpClass::Speculative, "snap", 7);
            t.store(OpClass::Paired, "seq", 2);
        });
    }
    for flag in ["done0", "done1"] {
        let mut t = p.thread();
        for _ in 0..COUNTER_ROUNDS {
            t.rmw(OpClass::Commutative, "count", RmwOp::FetchAdd, 1);
            for _ in 0..5 {
                t.store(OpClass::Paired, "tick", 1);
            }
        }
        t.store(OpClass::Paired, flag, 1);
    }
    {
        let mut t = p.thread();
        let s0 = t.load(OpClass::Paired, "seq");
        let snap = t.load(OpClass::Speculative, "snap");
        let s1 = t.rmw(OpClass::Paired, "seq", RmwOp::FetchAdd, 0);
        let same = Expr::bin(BinOp::Eq, s0.into(), s1.into());
        let even = Expr::bin(BinOp::Eq, Expr::bin(BinOp::And, s0.into(), 1.into()), 0.into());
        let ok = Expr::bin(BinOp::And, same, even);
        t.if_nz(ok, |t| {
            t.observe(snap);
        });
        let d0 = t.load(OpClass::Paired, "done0");
        let d1 = t.load(OpClass::Paired, "done1");
        let joined = Expr::bin(BinOp::And, d0.into(), d1.into());
        t.if_nz(joined, |t| {
            let c = t.load(OpClass::Data, "count");
            t.observe(c);
        });
    }
    p.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::exec::{
        visit_sc, EnumError, EnumLimits, EnumStats, Execution, ExecutionVisitor, Reduction,
    };

    struct Count;
    impl ExecutionVisitor for Count {
        fn visit(&mut self, _e: &Execution) -> bool {
            true
        }
    }

    fn por_stats(p: &Program) -> EnumStats {
        visit_sc(p, &EnumLimits::default(), false, Reduction::SleepSet, &mut Count)
            .expect("partial-order reduction fits the default budget")
    }

    /// The headline acceptance property: with sleep sets every stress
    /// program finishes under the default execution budget, while the
    /// exhaustive reference enumerator blows it on the IRIW and seqlock
    /// variants.
    #[test]
    fn por_finishes_where_exhaustive_exceeds_the_budget() {
        let limits = EnumLimits::default();
        for p in [iriw_stress(), seqlock_stress()] {
            let stats = por_stats(&p);
            assert!(
                stats.explored < limits.max_executions,
                "{}: POR explored {} >= budget",
                p.name(),
                stats.explored
            );
            assert!(stats.pruned > 0, "{}: nothing pruned", p.name());
            let exhaustive = visit_sc(&p, &limits, false, Reduction::Exhaustive, &mut Count);
            assert_eq!(
                exhaustive.unwrap_err(),
                EnumError::TooManyExecutions { limit: limits.max_executions },
                "{}: exhaustive enumeration was expected to exceed the budget",
                p.name()
            );
        }
    }

    /// The PR-7 acceptance property: `seqlock_counter_stress` defeats
    /// sleep sets (20.1M explored executions, far past the default
    /// budget) but duplicate-state memoization collapses the tree —
    /// under the hardest model view too (DRF0's all-paired view pins
    /// the synchronization order of the RMW bumps and merges least).
    #[test]
    fn memoization_finishes_where_sleep_sets_exceed_the_budget() {
        use drfrlx_core::OpClass;
        let p = seqlock_counter_stress();
        let limits = EnumLimits::default();
        let sleep = visit_sc(&p, &limits, false, Reduction::SleepSet, &mut Count);
        assert_eq!(
            sleep.unwrap_err(),
            EnumError::TooManyExecutions { limit: limits.max_executions },
            "sleep sets alone were expected to exceed the budget"
        );
        // The DRF0 view is the stress case for the memo: every atomic
        // becomes paired, so the counter bumps stop merging and only
        // the idempotent tick cluster collapses.
        let drf0 = p.map_classes(|c| if c.is_atomic() { OpClass::Paired } else { OpClass::Data });
        for view in [&p, &drf0] {
            let memo = visit_sc(view, &limits, false, Reduction::SleepSetMemo, &mut Count)
                .expect("memoization collapses the tree under the default budget");
            assert!(memo.explored < limits.max_executions, "{}", memo.explored);
            assert!(memo.memo_pruned > 0, "nothing memo-pruned");
            assert!(memo.table_peak > 0, "empty visited table");
        }
    }

    /// `seqlock_stress` under memoization is big enough to fail the
    /// sharding probe, so it exercises the sharded memo path (per-shard
    /// visited tables). The report — verdict, counts, memo statistics,
    /// race descriptions — must still be bit-identical at any worker
    /// count.
    #[test]
    fn sharded_memoization_is_thread_count_invariant() {
        use drfrlx_core::checker::{check_program_with, CheckOptions};
        use drfrlx_core::MemoryModel;
        let p = seqlock_stress();
        let mut reports = Vec::new();
        for threads in [1usize, 2, 4] {
            let opts = CheckOptions {
                threads,
                reduction: Reduction::SleepSetMemo,
                ..CheckOptions::default()
            };
            let r = check_program_with(&p, MemoryModel::Drfrlx, &opts)
                .expect("memoized seqlock_stress fits the default budget");
            assert!(r.is_race_free());
            assert!(r.memo_pruned > 0, "nothing memo-pruned");
            reports.push((threads, format!("{r:?}")));
        }
        let (_, first) = &reports[0];
        for (threads, debug) in &reports[1..] {
            assert_eq!(debug, first, "memoized report differs at {threads} threads");
        }
    }

    /// `event_counter_stress` is the timing control: both enumerators
    /// finish, and they agree on the interleaving count modulo pruning.
    #[test]
    fn event_counter_stress_fits_both_enumerators() {
        let p = event_counter_stress();
        let por = por_stats(&p);
        let full = visit_sc(&p, &EnumLimits::default(), false, Reduction::Exhaustive, &mut Count)
            .expect("exhaustive enumeration fits the default budget");
        assert!(por.explored < full.explored, "POR should shrink the tree");
        assert_eq!(full.pruned, 0);
    }
}
