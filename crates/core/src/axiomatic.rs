//! An *axiomatic* formulation of the system-centric model.
//!
//! The paper's system-centric Herd model is axiomatic: it enumerates
//! candidate executions (reads-from and coherence-order choices) and
//! keeps those satisfying the system's reordering invariants. This
//! module is that formulation for our DRFrlx system, complementing the
//! operational machine in [`crate::syscentric`]:
//!
//! 1. enumerate every `rf` assignment (each read picks a same-location
//!    write or the initial value) and every per-location `co` order;
//! 2. derive values by propagating through `rf` and intra-thread
//!    dependencies (cyclic value dependencies are out-of-thin-air
//!    candidates and are discarded — our system never speculates);
//! 3. keep candidates where `ppo ∪ rf ∪ co ∪ fr` is acyclic, where
//!    `ppo` is exactly the program order the machine preserves (paired
//!    fences, one-sided fences, atomic-atomic order, same-address
//!    order, data dependencies) — for a multi-copy-atomic system this
//!    acyclicity is equivalent (Shasha & Snir) to the existence of a
//!    perform order in which every read returns the latest write;
//! 4. additionally require RMW atomicity (the read's source is the
//!    immediate coherence predecessor).
//!
//! The two formulations are proven against each other empirically: a
//! property test in the workspace checks that they produce identical
//! result sets on random straight-line programs.

use crate::classes::{MemoryModel, Strength};
use crate::exec::ExecResult;
use crate::program::{Expr, Instr, Loc, Program, Reg, RmwOp, Value};
use crate::relation::Relation;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why axiomatic enumeration refused to run or gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiomaticError {
    /// The program has control flow; candidate-execution enumeration
    /// needs a fixed event set per thread (use the operational machine).
    ControlFlow,
    /// More candidates than the configured limit.
    TooManyCandidates {
        /// The configured limit.
        limit: usize,
    },
    /// The program uses block constructs (barrier / scratchpad) that
    /// the candidate-execution enumeration does not model; use the
    /// streaming SC enumerator instead.
    BlockConstructs,
}

impl fmt::Display for AxiomaticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxiomaticError::ControlFlow => {
                f.write_str("axiomatic enumeration requires straight-line programs")
            }
            AxiomaticError::TooManyCandidates { limit } => {
                write!(f, "more than {limit} candidate executions")
            }
            AxiomaticError::BlockConstructs => {
                f.write_str("axiomatic enumeration does not model barrier/scratch constructs")
            }
        }
    }
}

impl std::error::Error for AxiomaticError {}

/// A static memory event of a straight-line program.
struct SEvent {
    tid: usize,
    /// Index of the instruction within its thread.
    iid: usize,
    loc: Loc,
    strength: Strength,
    reads: bool,
    writes: bool,
}

/// One thread's local evaluation plan: for each instruction, which
/// event (if any) it corresponds to.
struct Plan {
    events: Vec<SEvent>,
    /// Per thread: instruction list (borrowed from the program).
    threads: usize,
}

fn plan(p: &Program, model: MemoryModel) -> Result<Plan, AxiomaticError> {
    let mut events = Vec::new();
    for (tid, t) in p.threads().iter().enumerate() {
        for (iid, i) in t.instrs.iter().enumerate() {
            match i {
                Instr::JumpIfZero { .. } => return Err(AxiomaticError::ControlFlow),
                // Think is an axiomatic no-op (falls to the `_` arm);
                // barrier/scratch need the streaming enumerator.
                Instr::Barrier | Instr::ScratchLoad { .. } | Instr::ScratchStore { .. } => {
                    return Err(AxiomaticError::BlockConstructs)
                }
                Instr::Load { class, loc, .. } => events.push(SEvent {
                    tid,
                    iid,
                    loc: *loc,
                    strength: model.strength_of(*class),
                    reads: true,
                    writes: false,
                }),
                Instr::Store { class, loc, .. } => events.push(SEvent {
                    tid,
                    iid,
                    loc: *loc,
                    strength: model.strength_of(*class),
                    reads: false,
                    writes: true,
                }),
                Instr::Rmw { class, loc, .. } => events.push(SEvent {
                    tid,
                    iid,
                    loc: *loc,
                    strength: model.strength_of(*class),
                    reads: true,
                    writes: true,
                }),
                _ => {}
            }
        }
    }
    Ok(Plan { events, threads: p.threads().len() })
}

/// The program order the DRFrlx system preserves — mirrors the
/// operational machine's `ready` predicate, plus data dependencies.
fn preserved_po(p: &Program, plan: &Plan) -> Relation {
    let n = plan.events.len();
    let mut ppo = Relation::empty(n);
    // Static taint: which event defines each register's current value,
    // propagated through Assigns per thread.
    for tid in 0..plan.threads {
        let idx: Vec<usize> = (0..n).filter(|&e| plan.events[e].tid == tid).collect();
        // taint: register -> set of source event indices.
        let mut taint: BTreeMap<Reg, BTreeSet<usize>> = BTreeMap::new();
        let mut cursor = 0usize;
        for (iid, instr) in p.threads()[tid].instrs.iter().enumerate() {
            let expr_sources = |e: &Expr, taint: &BTreeMap<Reg, BTreeSet<usize>>| {
                let mut regs = Vec::new();
                e.regs_read(&mut regs);
                let mut out = BTreeSet::new();
                for r in regs {
                    if let Some(s) = taint.get(&r) {
                        out.extend(s.iter().copied());
                    }
                }
                out
            };
            match instr {
                Instr::Assign { dst, expr } => {
                    let src = expr_sources(expr, &taint);
                    taint.insert(*dst, src);
                }
                Instr::BranchOn { .. } | Instr::Observe { .. } | Instr::Think { .. } => {}
                Instr::JumpIfZero { .. }
                | Instr::Barrier
                | Instr::ScratchLoad { .. }
                | Instr::ScratchStore { .. } => unreachable!("rejected in plan()"),
                Instr::Load { dst, .. } => {
                    let e = idx[cursor];
                    debug_assert_eq!(plan.events[e].iid, iid);
                    taint.insert(*dst, BTreeSet::from([e]));
                    cursor += 1;
                }
                Instr::Store { val, .. } => {
                    let e = idx[cursor];
                    for src in expr_sources(val, &taint) {
                        ppo.insert(src, e);
                    }
                    cursor += 1;
                }
                Instr::Rmw { operand, operand2, dst, .. } => {
                    let e = idx[cursor];
                    let mut src = expr_sources(operand, &taint);
                    src.extend(expr_sources(operand2, &taint));
                    for s in src {
                        ppo.insert(s, e);
                    }
                    taint.insert(*dst, BTreeSet::from([e]));
                    cursor += 1;
                }
            }
        }
        // Ordering constraints between memory events.
        for (a_pos, &a) in idx.iter().enumerate() {
            for &b in &idx[a_pos + 1..] {
                let (ea, eb) = (&plan.events[a], &plan.events[b]);
                let (s1, s2) = (ea.strength, eb.strength);
                let same_loc = ea.loc == eb.loc;
                let two_sided = |s: Strength| matches!(s, Strength::Paired | Strength::Unpaired);
                let ordered = same_loc
                    || s2 == Strength::Paired
                    || s2 == Strength::Release
                    || s1 == Strength::Paired
                    || s1 == Strength::Acquire
                    || (two_sided(s1) && two_sided(s2));
                if ordered {
                    ppo.insert(a, b);
                }
            }
        }
    }
    ppo
}

/// Enumerate the reachable results of `p` under `model` axiomatically.
///
/// # Errors
///
/// [`AxiomaticError::ControlFlow`] for programs with conditionals;
/// [`AxiomaticError::TooManyCandidates`] past `max_candidates`.
pub fn enumerate_axiomatic(
    p: &Program,
    model: MemoryModel,
    max_candidates: usize,
) -> Result<BTreeSet<ExecResult>, AxiomaticError> {
    let plan = plan(p, model)?;
    let n = plan.events.len();
    let ppo = preserved_po(p, &plan);

    // Per location: write event indices (in program order — co will
    // permute them).
    let mut writes_of: BTreeMap<Loc, Vec<usize>> = BTreeMap::new();
    for (e, ev) in plan.events.iter().enumerate() {
        if ev.writes {
            writes_of.entry(ev.loc).or_default().push(e);
        }
    }
    let reads: Vec<usize> = (0..n).filter(|&e| plan.events[e].reads).collect();

    let mut results = BTreeSet::new();
    let mut candidates = 0usize;

    // rf choice per read: usize::MAX = initial value.
    let mut rf: Vec<usize> = vec![usize::MAX; reads.len()];
    enumerate_rf(
        p,
        &plan,
        &ppo,
        &writes_of,
        &reads,
        0,
        &mut rf,
        &mut results,
        &mut candidates,
        max_candidates,
    )?;
    Ok(results)
}

#[allow(clippy::too_many_arguments)]
fn enumerate_rf(
    p: &Program,
    plan: &Plan,
    ppo: &Relation,
    writes_of: &BTreeMap<Loc, Vec<usize>>,
    reads: &[usize],
    depth: usize,
    rf: &mut Vec<usize>,
    results: &mut BTreeSet<ExecResult>,
    candidates: &mut usize,
    max_candidates: usize,
) -> Result<(), AxiomaticError> {
    if depth == reads.len() {
        let empty = Vec::new();
        let locs: Vec<&Vec<usize>> = writes_of.values().collect();
        let mut co: Vec<Vec<usize>> = locs.iter().map(|_| Vec::new()).collect();
        return enumerate_co(
            p,
            plan,
            ppo,
            writes_of,
            reads,
            rf,
            &locs,
            &mut co,
            0,
            results,
            candidates,
            max_candidates,
            &empty,
        );
    }
    let r = reads[depth];
    let loc = plan.events[r].loc;
    let sources = writes_of.get(&loc).cloned().unwrap_or_default();
    // Initial value source.
    rf[depth] = usize::MAX;
    enumerate_rf(
        p,
        plan,
        ppo,
        writes_of,
        reads,
        depth + 1,
        rf,
        results,
        candidates,
        max_candidates,
    )?;
    for w in sources {
        if w == r {
            continue; // an RMW cannot read its own write
        }
        rf[depth] = w;
        enumerate_rf(
            p,
            plan,
            ppo,
            writes_of,
            reads,
            depth + 1,
            rf,
            results,
            candidates,
            max_candidates,
        )?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn enumerate_co(
    p: &Program,
    plan: &Plan,
    ppo: &Relation,
    writes_of: &BTreeMap<Loc, Vec<usize>>,
    reads: &[usize],
    rf: &[usize],
    locs: &[&Vec<usize>],
    co: &mut Vec<Vec<usize>>,
    loc_idx: usize,
    results: &mut BTreeSet<ExecResult>,
    candidates: &mut usize,
    max_candidates: usize,
    _e: &[usize],
) -> Result<(), AxiomaticError> {
    if loc_idx == locs.len() {
        *candidates += 1;
        if *candidates > max_candidates {
            return Err(AxiomaticError::TooManyCandidates { limit: max_candidates });
        }
        if let Some(result) = check_candidate(p, plan, ppo, writes_of, reads, rf, co) {
            results.insert(result);
        }
        return Ok(());
    }
    // All permutations of this location's writes.
    let ws = locs[loc_idx].clone();
    permute(&ws, &mut Vec::new(), &mut |perm| {
        co[loc_idx] = perm.to_vec();
        enumerate_co(
            p,
            plan,
            ppo,
            writes_of,
            reads,
            rf,
            locs,
            co,
            loc_idx + 1,
            results,
            candidates,
            max_candidates,
            _e,
        )
    })
}

fn permute(
    rest: &[usize],
    acc: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]) -> Result<(), AxiomaticError>,
) -> Result<(), AxiomaticError> {
    if rest.is_empty() {
        return f(acc);
    }
    for (i, &x) in rest.iter().enumerate() {
        let mut next: Vec<usize> = rest.to_vec();
        next.remove(i);
        acc.push(x);
        permute(&next, acc, f)?;
        acc.pop();
    }
    Ok(())
}

/// Check one (rf, co) candidate; return its result if consistent.
fn check_candidate(
    p: &Program,
    plan: &Plan,
    ppo: &Relation,
    writes_of: &BTreeMap<Loc, Vec<usize>>,
    reads: &[usize],
    rf: &[usize],
    co: &[Vec<usize>],
) -> Option<ExecResult> {
    let n = plan.events.len();
    let rf_of = |e: usize| -> Option<usize> {
        reads.iter().position(|&r| r == e).and_then(|i| {
            if rf[i] == usize::MAX {
                None
            } else {
                Some(rf[i])
            }
        })
    };

    // Per-location co position.
    let mut co_pos: BTreeMap<usize, usize> = BTreeMap::new();
    for perm in co {
        for (pos, &w) in perm.iter().enumerate() {
            co_pos.insert(w, pos);
        }
    }

    // RMW atomicity: the source is the immediate co-predecessor.
    for (li, (_loc, _ws)) in writes_of.iter().enumerate() {
        for &w in &co[li] {
            let ev = &plan.events[w];
            if ev.reads && ev.writes {
                let pos = co_pos[&w];
                match rf_of(w) {
                    None if pos != 0 => return None,
                    Some(src) if co_pos.get(&src) != Some(&(pos.wrapping_sub(1))) => return None,
                    _ => {}
                }
            }
        }
    }

    // Value propagation: evaluate threads in program order, reading
    // loaded values from rf sources; iterate until stable (rf chains
    // can point "forward"; value cycles never stabilize and are
    // rejected below via ghb acyclicity, but we bound the iteration).
    let mut values: Vec<Option<Value>> = vec![None; n]; // written value per event
    let mut read_vals: Vec<Option<Value>> = vec![None; n];
    for _round in 0..n + 1 {
        let mut changed = false;
        for tid in 0..plan.threads {
            let mut regs: BTreeMap<Reg, Value> = BTreeMap::new();
            let mut cursor: Vec<usize> = (0..n).filter(|&e| plan.events[e].tid == tid).collect();
            cursor.reverse(); // pop from the back = program order
            for instr in &p.threads()[tid].instrs {
                match instr {
                    Instr::Assign { dst, expr } => {
                        let v = expr.eval(&regs);
                        regs.insert(*dst, v);
                    }
                    Instr::BranchOn { .. } | Instr::Observe { .. } | Instr::Think { .. } => {}
                    Instr::JumpIfZero { .. }
                    | Instr::Barrier
                    | Instr::ScratchLoad { .. }
                    | Instr::ScratchStore { .. } => unreachable!(),
                    Instr::Load { loc, dst, .. } => {
                        let e = cursor.pop().expect("event planned");
                        let v = match rf_of(e) {
                            None => p.init_value(*loc),
                            Some(src) => values[src].unwrap_or(0),
                        };
                        if read_vals[e] != Some(v) {
                            read_vals[e] = Some(v);
                            changed = true;
                        }
                        regs.insert(*dst, v);
                    }
                    Instr::Store { val, .. } => {
                        let e = cursor.pop().expect("event planned");
                        let v = val.eval(&regs);
                        if values[e] != Some(v) {
                            values[e] = Some(v);
                            changed = true;
                        }
                    }
                    Instr::Rmw { loc, op, operand, operand2, dst, .. } => {
                        let e = cursor.pop().expect("event planned");
                        let old = match rf_of(e) {
                            None => p.init_value(*loc),
                            Some(src) => values[src].unwrap_or(0),
                        };
                        let new = op.apply(old, operand.eval(&regs), operand2.eval(&regs));
                        if read_vals[e] != Some(old) || values[e] != Some(new) {
                            read_vals[e] = Some(old);
                            values[e] = Some(new);
                            changed = true;
                        }
                        regs.insert(*dst, old);
                        let _ = op;
                        debug_assert!(matches!(
                            op,
                            RmwOp::FetchAdd
                                | RmwOp::FetchSub
                                | RmwOp::FetchAnd
                                | RmwOp::FetchOr
                                | RmwOp::FetchXor
                                | RmwOp::FetchMin
                                | RmwOp::FetchMax
                                | RmwOp::Exchange
                                | RmwOp::Cas
                        ));
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Build the communication relations.
    let mut com = Relation::empty(n);
    for (i, &r) in reads.iter().enumerate() {
        let loc = plan.events[r].loc;
        let li = writes_of.keys().position(|&l| l == loc);
        match (rf.get(i).copied(), li) {
            (Some(usize::MAX) | None, Some(li)) => {
                // reads init: fr to every write of the location.
                for &w in &co[li] {
                    if w != r {
                        com.insert(r, w);
                    }
                }
            }
            (Some(usize::MAX) | None, None) => {} // never-written location
            (Some(src), Some(li)) => {
                com.insert(src, r); // rf
                let pos = co_pos[&src];
                for &w in &co[li][pos + 1..] {
                    if w != r {
                        com.insert(r, w); // fr
                    }
                }
            }
            (Some(_), None) => unreachable!("rf source implies the location has writes"),
        }
    }
    for perm in co {
        for i in 0..perm.len() {
            for j in (i + 1)..perm.len() {
                com.insert(perm[i], perm[j]);
            }
        }
    }

    // Multi-copy-atomic consistency: ghb = ppo ∪ com must be acyclic.
    let ghb = ppo.union(&com);
    if !ghb.is_acyclic() {
        return None;
    }

    // Result: co-last write per location, plus final registers.
    let mut memory: BTreeMap<Loc, Value> =
        (0..p.num_locs() as u32).map(|l| (Loc(l), p.init_value(Loc(l)))).collect();
    for (li, (loc, _)) in writes_of.iter().enumerate() {
        if let Some(&last) = co[li].last() {
            memory.insert(*loc, values[last].unwrap_or(0));
        }
    }
    let mut regs_out: Vec<BTreeMap<Reg, Value>> = vec![BTreeMap::new(); plan.threads];
    for (tid, out_slot) in regs_out.iter_mut().enumerate() {
        let mut regs: BTreeMap<Reg, Value> = BTreeMap::new();
        let mut cursor: Vec<usize> = (0..n).filter(|&e| plan.events[e].tid == tid).collect();
        cursor.reverse();
        for instr in &p.threads()[tid].instrs {
            match instr {
                Instr::Assign { dst, expr } => {
                    let v = expr.eval(&regs);
                    regs.insert(*dst, v);
                }
                Instr::Load { dst, .. } | Instr::Rmw { dst, .. } => {
                    let e = cursor.pop().expect("event planned");
                    regs.insert(*dst, read_vals[e].unwrap_or(0));
                }
                Instr::Store { .. } => {
                    cursor.pop();
                }
                _ => {}
            }
        }
        *out_slot = regs;
    }
    Some(ExecResult { memory, regs: regs_out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::OpClass;
    use crate::exec::EnumLimits;
    use crate::syscentric::explore_relaxed;

    fn results_match(p: &Program, model: MemoryModel) {
        let ax = enumerate_axiomatic(p, model, 2_000_000).expect("axiomatic enumerable");
        let op = explore_relaxed(p, model, &EnumLimits::default()).expect("machine enumerable");
        let ax_mem: BTreeSet<BTreeMap<Loc, Value>> = ax.iter().map(|r| r.memory.clone()).collect();
        assert_eq!(
            ax_mem,
            op.memory_results(),
            "{model}: axiomatic and operational formulations disagree"
        );
    }

    fn sb(class: OpClass) -> Program {
        let mut p = Program::new("sb");
        {
            let mut t = p.thread();
            t.store(class, "x", 1);
            let r = t.load(class, "y");
            t.store(OpClass::Data, "out0", r);
        }
        {
            let mut t = p.thread();
            t.store(class, "y", 1);
            let r = t.load(class, "x");
            t.store(OpClass::Data, "out1", r);
        }
        p.build()
    }

    #[test]
    fn matches_operational_on_store_buffering() {
        for class in [OpClass::Paired, OpClass::Unpaired, OpClass::NonOrdering] {
            for model in MemoryModel::ALL {
                results_match(&sb(class), model);
            }
        }
    }

    #[test]
    fn relaxed_sb_admits_the_non_sc_outcome() {
        let p = sb(OpClass::NonOrdering);
        let ax = enumerate_axiomatic(&p, MemoryModel::Drfrlx, 2_000_000).unwrap();
        let out0 = p.find_loc("out0").unwrap();
        let out1 = p.find_loc("out1").unwrap();
        assert!(
            ax.iter().any(|r| r.memory[&out0] == 0 && r.memory[&out1] == 0),
            "axiomatic model must admit the SB reordering"
        );
    }

    #[test]
    fn dependencies_block_thin_air() {
        let mut p = Program::new("lb");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::NonOrdering, "x");
            t.store(OpClass::NonOrdering, "y", r);
        }
        {
            let mut t = p.thread();
            let r = t.load(OpClass::NonOrdering, "y");
            t.store(OpClass::NonOrdering, "x", r);
        }
        let p = p.build();
        let ax = enumerate_axiomatic(&p, MemoryModel::Drfrlx, 2_000_000).unwrap();
        let x = p.find_loc("x").unwrap();
        for r in &ax {
            assert_eq!(r.memory[&x], 0, "no out-of-thin-air values");
        }
        results_match(&p, MemoryModel::Drfrlx);
    }

    #[test]
    fn rmws_are_atomic() {
        let mut p = Program::new("inc");
        p.thread().rmw(OpClass::Commutative, "c", crate::program::RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Commutative, "c", crate::program::RmwOp::FetchAdd, 1);
        let p = p.build();
        let ax = enumerate_axiomatic(&p, MemoryModel::Drfrlx, 2_000_000).unwrap();
        let c = p.find_loc("c").unwrap();
        for r in &ax {
            assert_eq!(r.memory[&c], 2, "increments never lost");
        }
        results_match(&p, MemoryModel::Drfrlx);
    }

    #[test]
    fn control_flow_is_rejected() {
        let mut p = Program::new("cond");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Paired, "x");
            t.if_nz(r, |t| {
                t.store(OpClass::Data, "y", 1);
            });
        }
        assert_eq!(
            enumerate_axiomatic(&p.build(), MemoryModel::Drfrlx, 1000),
            Err(AxiomaticError::ControlFlow)
        );
    }

    #[test]
    fn acquire_release_one_sidedness_matches() {
        for model in MemoryModel::ALL {
            let mut p = Program::new("ra_sb");
            {
                let mut t = p.thread();
                t.store(OpClass::Release, "x", 1);
                let r = t.load(OpClass::Acquire, "y");
                t.store(OpClass::Data, "out0", r);
            }
            {
                let mut t = p.thread();
                t.store(OpClass::Release, "y", 1);
                let r = t.load(OpClass::Acquire, "x");
                t.store(OpClass::Data, "out1", r);
            }
            results_match(&p.build(), model);
        }
    }
}
