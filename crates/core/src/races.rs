//! The programmer-centric DRFrlx model: race detection over SC
//! executions (the paper's Listing 7, reimplemented natively).
//!
//! Given an [`Execution`], [`analyze`] computes the synchronization
//! order `so1`, happens-before `hb1`, and the five illegal race
//! relations:
//!
//! * **data race** — a race involving a data operation (DRF0/DRF1 §2.3.2);
//! * **commutative race** — a race involving a commutative atomic whose
//!   operations do not pairwise commute, or whose loaded value is
//!   observed (§3.2.3);
//! * **non-ordering race** — a race whose ordering path through a
//!   non-ordering atomic has no alternate *valid* path (§3.3.3);
//! * **quantum race** — a quantum atomic racing with a non-quantum
//!   access (§3.4.3);
//! * **speculative race** — a race involving a speculative atomic where
//!   both sides write or the speculative load's value is observed
//!   (§3.5.3).
//!
//! The non-ordering path predicates are computed *exactly* with a
//! product-automaton reachability search (state = ⟨event, seen-po-edge,
//! seen-required-event⟩), where the paper's Herd encoding had to
//! approximate paths with a bounded composition; the two agree on all
//! litmus tests in `drfrlx-litmus`.

use crate::classes::OpClass;
use crate::exec::Execution;
use crate::program::Program;
use crate::relation::Relation;
use std::fmt;

/// The kind of an illegal race (paper Listing 7's `illegal-race` union).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaceKind {
    /// At least one side is a data operation.
    Data,
    /// Illegal race on a commutative atomic.
    Commutative,
    /// Unabsolved ordering path through a non-ordering atomic.
    NonOrdering,
    /// Quantum atomic racing with a non-quantum access.
    Quantum,
    /// Observable race on a speculative atomic.
    Speculative,
    /// Unabsolved ordering path through a one-sided (acquire/release)
    /// atomic — the §7 extension's analogue of the non-ordering race:
    /// one-sided fences synchronize through release→acquire reads-from,
    /// but racing them inside a cycle (e.g. rel/acq store buffering)
    /// does not restore SC, so such programs must be rejected.
    OneSided,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RaceKind::Data => "data race",
            RaceKind::Commutative => "commutative race",
            RaceKind::NonOrdering => "non-ordering race",
            RaceKind::Quantum => "quantum race",
            RaceKind::Speculative => "speculative race",
            RaceKind::OneSided => "one-sided race",
        })
    }
}

/// A reported race between two events of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Race {
    /// Race kind.
    pub kind: RaceKind,
    /// Lower event id of the pair.
    pub a: usize,
    /// Higher event id of the pair.
    pub b: usize,
}

/// All relations Listing 7 derives for one execution.
#[derive(Debug, Clone)]
pub struct RaceAnalysis {
    /// Synchronization order 1: paired write → conflicting paired read,
    /// ordered by the SC total order.
    pub so1: Relation,
    /// Happens-before-1: `(po ∪ so1)+`.
    pub hb1: Relation,
    /// Plain races: conflicting, cross-thread, hb1-unordered pairs.
    pub race: Relation,
    /// Data races.
    pub data: Relation,
    /// Commutative races.
    pub commutative: Relation,
    /// Non-ordering races (reported between ordering-path endpoints, as
    /// in the paper's Herd construction).
    pub non_ordering: Relation,
    /// Quantum races.
    pub quantum: Relation,
    /// Speculative races.
    pub speculative: Relation,
    /// One-sided (acquire/release) races.
    pub one_sided: Relation,
}

impl RaceAnalysis {
    /// Union of all illegal race relations.
    pub fn illegal(&self) -> Relation {
        self.data
            .union(&self.commutative)
            .union(&self.non_ordering)
            .union(&self.quantum)
            .union(&self.speculative)
            .union(&self.one_sided)
    }

    /// Is the execution free of illegal races?
    pub fn is_race_free(&self) -> bool {
        self.illegal().is_empty()
    }

    /// Deduplicated race list (each unordered pair once per kind,
    /// ordered `a < b`).
    pub fn races(&self) -> Vec<Race> {
        let mut out = Vec::new();
        let mut push = |rel: &Relation, kind: RaceKind| {
            for (x, y) in rel.iter() {
                let (a, b) = if x < y { (x, y) } else { (y, x) };
                let r = Race { kind, a, b };
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        };
        push(&self.data, RaceKind::Data);
        push(&self.commutative, RaceKind::Commutative);
        push(&self.non_ordering, RaceKind::NonOrdering);
        push(&self.quantum, RaceKind::Quantum);
        push(&self.speculative, RaceKind::Speculative);
        push(&self.one_sided, RaceKind::OneSided);
        out.sort();
        out
    }
}

/// Herd's `at-least-one` filter: keep pairs with at least one side in
/// `set`.
fn at_least_one(rel: &Relation, set: &[bool]) -> Relation {
    rel.filter(|a, b| set[a] || set[b])
}

/// Per-program race detector.
///
/// The Listing 7 detectors split into cheap relational algebra (so1,
/// hb1, the data/commutative/quantum/speculative filters) and three
/// expensive product-automaton path searches that only matter when the
/// program uses non-ordering or one-sided atomics. A `RaceDetector`
/// hoists that class-presence decision out of the per-execution loop:
/// build it once per program with [`RaceDetector::for_program`], then
/// call [`RaceDetector::analyze`] on each enumerated execution.
///
/// Program-level presence is a safe superset of per-execution presence
/// (every event comes from an instruction, and the quantum
/// transformation never introduces new non-ordering or one-sided
/// operations), so gating on it can only skip searches whose result
/// would have been empty.
#[derive(Debug, Clone, Copy)]
pub struct RaceDetector {
    has_non_ordering: bool,
    has_one_sided: bool,
}

impl RaceDetector {
    /// Detector for every execution of `p` (or of its quantum-equivalent
    /// program).
    pub fn for_program(p: &Program) -> RaceDetector {
        let classes = p.classes_used();
        RaceDetector {
            has_non_ordering: classes.contains(&OpClass::NonOrdering),
            has_one_sided: classes.iter().any(|c| matches!(c, OpClass::Acquire | OpClass::Release)),
        }
    }

    /// Detector scoped to one execution (used by the [`analyze`] free
    /// function when no program is at hand).
    pub fn for_execution(e: &Execution) -> RaceDetector {
        RaceDetector {
            has_non_ordering: e.events.iter().any(|ev| ev.class == OpClass::NonOrdering),
            has_one_sided: e
                .events
                .iter()
                .any(|ev| matches!(ev.class, OpClass::Acquire | OpClass::Release)),
        }
    }

    /// Run the programmer-centric model of Listing 7 on one SC
    /// execution.
    pub fn analyze(&self, e: &Execution) -> RaceAnalysis {
        let n = e.len();
        let pos: Vec<usize> = {
            let mut p = vec![0; n];
            for (i, &ev) in e.order.iter().enumerate() {
                p[ev] = i;
            }
            p
        };

        // One pass over the events builds every membership vector the
        // detectors need (the seed scanned the event list once per
        // class), plus the release-write / acquire-read candidate lists
        // that so1 is built from.
        let mut data_set = vec![false; n];
        let mut comm_set = vec![false; n];
        let mut no_set = vec![false; n];
        let mut quantum_set = vec![false; n];
        let mut spec_set = vec![false; n];
        let mut pu_set = vec![false; n];
        let mut os_set = vec![false; n];
        let mut writes = vec![false; n];
        let mut rel_writes: Vec<usize> = Vec::new();
        let mut acq_reads: Vec<usize> = Vec::new();
        for (i, ev) in e.events.iter().enumerate() {
            match ev.class {
                OpClass::Data => data_set[i] = true,
                OpClass::Commutative => comm_set[i] = true,
                OpClass::NonOrdering => no_set[i] = true,
                OpClass::Quantum => quantum_set[i] = true,
                OpClass::Speculative => spec_set[i] = true,
                OpClass::Paired | OpClass::Unpaired => pu_set[i] = true,
                OpClass::Acquire | OpClass::Release => os_set[i] = true,
            }
            writes[i] = ev.access.writes();
            if ev.class.is_release_side() && ev.access.writes() {
                rel_writes.push(i);
            }
            if ev.class.is_acquire_side() && ev.access.reads() {
                acq_reads.push(i);
            }
        }

        // so1: conflicting release-side write before acquire-side read
        // in T (paired atomics are both sides; acquire/release are the
        // paper's §7 one-sided extension).
        let mut so1 = Relation::empty(n);
        for &x in &rel_writes {
            for &y in &acq_reads {
                if x != y && e.events[x].loc == e.events[y].loc && pos[x] < pos[y] {
                    so1.insert(x, y);
                }
            }
        }
        // Block barriers synchronize everything before the rendezvous
        // with everything after it: each cut is an event-count
        // watermark recorded at release (see `Execution::barrier_cuts`).
        let mut bar = Relation::empty(n);
        for &cut in &e.barrier_cuts {
            for a in 0..cut.min(n) {
                for b in cut..n {
                    bar.insert(a, b);
                }
            }
        }
        let hb1 = e.po.union(&so1).union(&bar).transitive_closure();

        // conflict & ext & unordered ⇒ race.
        let conflict = Relation::full(n).filter(|a, b| {
            a != b && e.events[a].loc == e.events[b].loc && (writes[a] || writes[b])
        });
        let hb_sym = hb1.union(&hb1.inverse());
        let race = conflict.filter(|a, b| e.events[a].tid != e.events[b].tid).minus(&hb_sym);

        // Data race.
        let data = at_least_one(&race, &data_set);

        // Commutative race: not pairwise commutative, or a loaded value
        // is observed by another instruction in its thread.
        let comm_candidates = at_least_one(&race, &comm_set);
        let commutative = comm_candidates.filter(|a, b| {
            let (ea, eb) = (&e.events[a], &e.events[b]);
            let pairwise = match (ea.write_fn, eb.write_fn) {
                (Some(fa), Some(fb)) => fa.commutes_with(fb),
                // A conflicting pair with a pure load is never commutative.
                _ => false,
            };
            let observed = (ea.access.reads() && e.value_observed(a))
                || (eb.access.reads() && e.value_observed(b));
            !pairwise || observed
        });

        // Quantum race: quantum racing with non-quantum.
        let quantum =
            at_least_one(&race, &quantum_set).filter(|a, b| !(quantum_set[a] && quantum_set[b]));

        // Speculative race: both write, or the load's value is observed.
        let spec_candidates = at_least_one(&race, &spec_set);
        let speculative = spec_candidates.filter(|a, b| {
            let both_write = writes[a] && writes[b];
            let observed = (e.events[a].access.reads() && e.value_observed(a))
                || (e.events[b].access.reads() && e.value_observed(b));
            both_write || observed
        });

        // Path-based detectors. `residual` is the candidate set both
        // draw from; the three reachability searches (and the shared
        // valid1/valid2 absolution relations) run only when the program
        // uses the relevant classes and a candidate race survived the
        // cheap filters — the common all-data/paired case skips them
        // entirely.
        //
        // Non-ordering race (Listing 7): among races not already data
        // or commutative, endpoints of an ordering path that visits a
        // non-ordering atomic, with no valid alternate path.
        //
        // One-sided race (§7 extension): like the non-ordering race,
        // but the unabsolved path runs through acquire/release atomics.
        // The synchronizing direction (release-write → acquire-read) is
        // already folded into hb1 via so1, so any pair still racing
        // here relies on a one-sided fence for an ordering it does not
        // provide.
        let residual = race.minus(&data).minus(&commutative);
        let need_no = self.has_non_ordering && !residual.is_empty();
        let need_os = self.has_one_sided && !residual.is_empty();
        let (non_ordering, one_sided) = if need_no || need_os {
            let valid1 = path_relation(e, EdgeSet::SameLoc, None).intersect(&conflict);
            let valid2 =
                path_relation(e, EdgeSet::PairedUnpaired(&pu_set), None).intersect(&conflict);
            let non_ordering = if need_no {
                let opath_alo_no =
                    path_relation(e, EdgeSet::All, Some(&no_set)).intersect(&conflict);
                residual.intersect(&opath_alo_no).minus(&valid1).minus(&valid2)
            } else {
                Relation::empty(n)
            };
            let one_sided = if need_os {
                let opath_alo_os =
                    path_relation(e, EdgeSet::All, Some(&os_set)).intersect(&conflict);
                residual.minus(&non_ordering).intersect(&opath_alo_os).minus(&valid1).minus(&valid2)
            } else {
                Relation::empty(n)
            };
            (non_ordering, one_sided)
        } else {
            (Relation::empty(n), Relation::empty(n))
        };

        RaceAnalysis {
            so1,
            hb1,
            race,
            data,
            commutative,
            non_ordering,
            quantum,
            speculative,
            one_sided,
        }
    }
}

/// Run the programmer-centric model of Listing 7 on one SC execution.
///
/// Convenience wrapper over [`RaceDetector::for_execution`]; callers
/// analyzing many executions of one program should build a
/// [`RaceDetector::for_program`] once and reuse it.
pub fn analyze(e: &Execution) -> RaceAnalysis {
    RaceDetector::for_execution(e).analyze(e)
}

/// A sound upper bound on the race kinds any execution of `p` can
/// exhibit, from the classes the program uses.
///
/// Every Listing 7 race relation is gated on membership of its class:
/// a data race needs a `Data` event on at least one side, a commutative
/// race a `Commutative` event, and so on — so a kind whose class is
/// absent from the program can never be reported. The streaming checker
/// uses this to exit early: once every attainable kind has been
/// witnessed, the verdict (racy, and with which kinds) can no longer
/// change, so remaining executions need not be visited. The bound is a
/// superset of what is actually reachable (class presence does not
/// imply a race), which only costs pruning opportunity, never
/// soundness.
pub fn attainable_kinds(p: &Program) -> Vec<RaceKind> {
    let classes = p.classes_used();
    let has = |c: OpClass| classes.contains(&c);
    let mut out = Vec::new();
    if has(OpClass::Data) {
        out.push(RaceKind::Data);
    }
    if has(OpClass::Commutative) {
        out.push(RaceKind::Commutative);
    }
    if has(OpClass::NonOrdering) {
        out.push(RaceKind::NonOrdering);
    }
    if has(OpClass::Quantum) {
        out.push(RaceKind::Quantum);
    }
    if has(OpClass::Speculative) {
        out.push(RaceKind::Speculative);
    }
    if has(OpClass::Acquire) || has(OpClass::Release) {
        out.push(RaceKind::OneSided);
    }
    out
}

/// Which program/conflict-graph edges a path search may use.
enum EdgeSet<'a> {
    /// All of po, co, rf, fr (the `pco` relation).
    All,
    /// Only edges whose endpoints access the same location
    /// (Listing 7's `valid-pco1`).
    SameLoc,
    /// Only edges between paired/unpaired accesses (`valid-pco2`).
    PairedUnpaired(&'a [bool]),
}

/// Pairs `(a, b)` connected by a path whose edges are drawn from
/// `po | co | rf | fr` (restricted per `edges`), containing at least one
/// program-order edge (an *ordering path*), and — if `required` is given
/// — visiting at least one event in `required` (endpoints included).
///
/// Exact product-automaton reachability: state =
/// ⟨event, seen po edge, seen required event⟩.
fn path_relation(e: &Execution, edges: EdgeSet<'_>, required: Option<&[bool]>) -> Relation {
    let n = e.len();
    let com = [&e.co, &e.rf, &e.fr];
    let edge_ok = |a: usize, b: usize| -> bool {
        match &edges {
            EdgeSet::All => true,
            EdgeSet::SameLoc => e.events[a].loc == e.events[b].loc,
            EdgeSet::PairedUnpaired(pu) => pu[a] && pu[b],
        }
    };
    let req = |x: usize| required.is_none_or(|r| r[x]);
    let mut out = Relation::empty(n);
    for start in 0..n {
        // visited[node][seen_po][seen_req]
        let mut visited = vec![[[false; 2]; 2]; n];
        let mut stack = vec![(start, false, req(start))];
        visited[start][0][req(start) as usize] = true;
        while let Some((cur, seen_po, seen_req)) = stack.pop() {
            let mut step = |next: usize, is_po: bool| {
                let sp = seen_po || is_po;
                let sr = seen_req || req(next);
                if !visited[next][sp as usize][sr as usize] {
                    visited[next][sp as usize][sr as usize] = true;
                    if sp && sr && next != start {
                        out.insert(start, next);
                    }
                    stack.push((next, sp, sr));
                }
            };
            for next in 0..n {
                if e.po.contains(cur, next) && edge_ok(cur, next) {
                    step(next, true);
                }
                for rel in com {
                    if rel.contains(cur, next) && edge_ok(cur, next) {
                        step(next, false);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{enumerate_sc, EnumLimits};
    use crate::program::{Program, RmwOp};

    fn all_races(p: Program) -> Vec<Race> {
        let execs = enumerate_sc(&p, &EnumLimits::default()).unwrap();
        let mut out = Vec::new();
        for e in &execs {
            for r in analyze(e).races() {
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        out
    }

    fn has_kind(races: &[Race], kind: RaceKind) -> bool {
        races.iter().any(|r| r.kind == kind)
    }

    #[test]
    fn unsynchronized_data_accesses_race() {
        let mut p = Program::new("racy");
        p.thread().store(OpClass::Data, "x", 1);
        {
            let mut t = p.thread();
            t.load(OpClass::Data, "x");
        }
        let races = all_races(p.build());
        assert!(has_kind(&races, RaceKind::Data));
    }

    #[test]
    fn same_thread_accesses_never_race() {
        let mut p = Program::new("seq");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 1);
            t.load(OpClass::Data, "x");
        }
        p.thread().store(OpClass::Data, "y", 1);
        assert!(all_races(p.build()).is_empty());
    }

    #[test]
    fn message_passing_with_paired_flag_is_race_free() {
        // MP: the classic DRF0 idiom.
        let mut p = Program::new("mp");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 42);
            t.store(OpClass::Paired, "flag", 1);
        }
        {
            let mut t = p.thread();
            let f = t.load(OpClass::Paired, "flag");
            t.branch_on(f);
            let d = t.load(OpClass::Data, "x");
            t.observe(d);
        }
        // NOTE: without real control flow the data load always executes,
        // so the execution where flag==0 still loads x — under DRF0 that
        // IS a data race (the unsynchronized path). The race-free idiom
        // needs conditional execution; litmus practice checks the
        // synchronized path. Here both accesses to x race in executions
        // where the flag read is not so1-ordered after the flag write.
        let races = all_races(p.build());
        assert!(has_kind(&races, RaceKind::Data));
    }

    #[test]
    fn paired_atomics_synchronize_mp_when_flag_observed() {
        // Restrict to the post-synchronization path by initializing the
        // flag write before the data read via a single interleaving
        // check: with paired flag, executions where the read sees 1 have
        // hb1 between the data accesses.
        let mut p = Program::new("mp_hb");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 42);
            t.store(OpClass::Paired, "flag", 1);
        }
        {
            let mut t = p.thread();
            let _f = t.load(OpClass::Paired, "flag");
            let d = t.load(OpClass::Data, "x");
            t.observe(d);
        }
        let execs = enumerate_sc(&p.build(), &EnumLimits::default()).unwrap();
        for e in &execs {
            let flag_read = e.events.iter().find(|ev| ev.tid == 1 && ev.iid == 0).unwrap();
            if flag_read.rval == Some(1) {
                let a = analyze(e);
                assert!(a.is_race_free(), "synchronized path must be race-free");
                // And the data accesses are hb1-ordered.
                let wx = e.events.iter().find(|ev| ev.tid == 0 && ev.iid == 0).unwrap();
                let rx = e.events.iter().find(|ev| ev.tid == 1 && ev.iid == 1).unwrap();
                assert!(a.hb1.contains(wx.id, rx.id));
            }
        }
    }

    #[test]
    fn racing_paired_atomics_are_legal() {
        let mut p = Program::new("pp");
        p.thread().store(OpClass::Paired, "x", 1);
        p.thread().store(OpClass::Paired, "x", 2);
        assert!(all_races(p.build()).is_empty());
    }

    #[test]
    fn commutative_increments_are_race_free() {
        let mut p = Program::new("inc");
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 2);
        assert!(all_races(p.build()).is_empty());
    }

    #[test]
    fn observed_commutative_increment_races() {
        let mut p = Program::new("inc_obs");
        {
            let mut t = p.thread();
            let old = t.rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 1);
            t.observe(old);
        }
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 2);
        let races = all_races(p.build());
        assert!(has_kind(&races, RaceKind::Commutative));
    }

    #[test]
    fn non_commuting_commutative_ops_race() {
        // exchange does not commute with fetch_add.
        let mut p = Program::new("mix");
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::Exchange, 5);
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 1);
        let races = all_races(p.build());
        assert!(has_kind(&races, RaceKind::Commutative));
    }

    #[test]
    fn same_value_commutative_stores_do_not_race() {
        let mut p = Program::new("same");
        p.thread().store(OpClass::Commutative, "dirty", 1);
        p.thread().store(OpClass::Commutative, "dirty", 1);
        assert!(all_races(p.build()).is_empty());
    }

    #[test]
    fn different_value_commutative_stores_race() {
        let mut p = Program::new("diff");
        p.thread().store(OpClass::Commutative, "dirty", 1);
        p.thread().store(OpClass::Commutative, "dirty", 2);
        let races = all_races(p.build());
        assert!(has_kind(&races, RaceKind::Commutative));
    }

    #[test]
    fn quantum_racing_with_quantum_is_legal() {
        let mut p = Program::new("qq");
        p.thread().rmw(OpClass::Quantum, "c", RmwOp::FetchAdd, 1);
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Quantum, "c");
            t.observe(r);
        }
        assert!(all_races(p.build()).is_empty());
    }

    #[test]
    fn quantum_racing_with_paired_is_illegal() {
        let mut p = Program::new("qp");
        p.thread().rmw(OpClass::Quantum, "c", RmwOp::FetchAdd, 1);
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Paired, "c");
            t.observe(r);
        }
        let races = all_races(p.build());
        assert!(has_kind(&races, RaceKind::Quantum));
    }

    #[test]
    fn speculative_discarded_load_is_legal() {
        let mut p = Program::new("spec_ok");
        p.thread().store(OpClass::Speculative, "d", 7);
        {
            let mut t = p.thread();
            let _r = t.load(OpClass::Speculative, "d"); // value discarded
        }
        assert!(all_races(p.build()).is_empty());
    }

    #[test]
    fn speculative_observed_load_races() {
        let mut p = Program::new("spec_bad");
        p.thread().store(OpClass::Speculative, "d", 7);
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Speculative, "d");
            t.observe(r);
        }
        let races = all_races(p.build());
        assert!(has_kind(&races, RaceKind::Speculative));
    }

    #[test]
    fn speculative_write_write_races() {
        let mut p = Program::new("spec_ww");
        p.thread().store(OpClass::Speculative, "d", 1);
        p.thread().store(OpClass::Speculative, "d", 2);
        let races = all_races(p.build());
        assert!(has_kind(&races, RaceKind::Speculative));
    }

    /// Figure 2(a): ordering path through non-ordering atomics with no
    /// valid alternative ⇒ non-ordering race between the unpaired X
    /// accesses.
    #[test]
    fn figure2a_non_ordering_race() {
        let mut p = Program::new("fig2a");
        {
            let mut t = p.thread();
            t.store(OpClass::Unpaired, "x", 3);
            t.store(OpClass::NonOrdering, "y", 2);
        }
        {
            let mut t = p.thread();
            let r1 = t.load(OpClass::NonOrdering, "y");
            t.branch_on(r1);
            let r2 = t.load(OpClass::Unpaired, "x");
            t.observe(r2);
        }
        let races = all_races(p.build());
        assert!(has_kind(&races, RaceKind::NonOrdering), "races: {races:?}");
        assert!(!has_kind(&races, RaceKind::Data));
    }

    /// Figure 2(b): adding a paired path between the X accesses absolves
    /// the non-ordering atomics.
    #[test]
    fn figure2b_valid_path_absolves() {
        let mut p = Program::new("fig2b");
        {
            let mut t = p.thread();
            t.store(OpClass::Unpaired, "x", 3);
            t.store(OpClass::NonOrdering, "y", 2);
            t.store(OpClass::Paired, "z", 1);
        }
        {
            let mut t = p.thread();
            let r0 = t.load(OpClass::Paired, "z");
            t.branch_on(r0);
            let r1 = t.load(OpClass::NonOrdering, "y");
            t.branch_on(r1);
            let r2 = t.load(OpClass::Unpaired, "x");
            t.observe(r2);
        }
        let execs = enumerate_sc(&p.build(), &EnumLimits::default()).unwrap();
        // In executions where the paired z chain orders the threads
        // (r0 reads 1), there must be no non-ordering race.
        let mut saw_synced = false;
        for e in &execs {
            let z_read = e.events.iter().find(|ev| ev.tid == 1 && ev.iid == 0).unwrap();
            if z_read.rval == Some(1) {
                saw_synced = true;
                let a = analyze(e);
                assert!(a.non_ordering.is_empty(), "valid paired path must absolve the NO atomics");
            }
        }
        assert!(saw_synced);
    }

    #[test]
    fn so1_matches_herd_formulation() {
        // so1 computed from T must equal (rf|fr|co)+ ∩ (PairedW×PairedR).
        let mut p = Program::new("so1eq");
        {
            let mut t = p.thread();
            t.store(OpClass::Paired, "x", 1);
            t.load(OpClass::Paired, "y");
        }
        {
            let mut t = p.thread();
            t.store(OpClass::Paired, "y", 1);
            t.load(OpClass::Paired, "x");
        }
        let execs = enumerate_sc(&p.build(), &EnumLimits::default()).unwrap();
        for e in &execs {
            let a = analyze(e);
            let n = e.len();
            let pw = e.class_set(|ev| ev.class == OpClass::Paired && ev.access.writes());
            let pr = e.class_set(|ev| ev.class == OpClass::Paired && ev.access.reads());
            let herd_so1 = e.com().transitive_closure().intersect(&Relation::product(n, &pw, &pr));
            assert_eq!(a.so1.pairs(), herd_so1.pairs());
        }
    }
}
