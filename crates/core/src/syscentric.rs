//! The system-centric model: an operational machine that performs
//! memory operations out of order, restricted exactly by the reordering
//! invariants a DRFrlx-compliant system preserves (paper §3.8):
//!
//! * successive **unpaired** (and paired) atomics perform in program
//!   order with respect to each other;
//! * a **paired read** may not be reordered with subsequent memory
//!   accesses (acquire);
//! * a **paired write** may not be reordered with prior memory accesses
//!   (release; we model paired atomics as full fences, which is what the
//!   evaluated GPU systems implement);
//! * same-address accesses of one thread perform in program order
//!   (per-location SC / coherence);
//! * an operation cannot perform before the loads feeding its operands
//!   or its governing branches (no value or control speculation);
//! * an **acquire** blocks everything po-later; a **release** waits for
//!   everything po-earlier (the one-sided §7 extension);
//! * **data** and **relaxed** operations are otherwise free to perform
//!   out of order — this is precisely the "overlap atomics in the memory
//!   system" optimization of Table 4.
//!
//! [`explore_relaxed`] enumerates every schedule of this machine and
//! collects the reachable results. Comparing against the SC results of
//! the (quantum-equivalent) program gives an empirical check of the
//! paper's Theorem 3.1: race-free programs only ever produce SC
//! results, while illegally-racy programs can produce non-SC ones.

use crate::classes::{MemoryModel, Strength};
use crate::exec::{
    visit_sc, EnumError, EnumLimits, ExecResult, Execution, ExecutionVisitor, Reduction,
};
use crate::program::{Expr, Instr, Loc, Program, Reg, Value};
use crate::quantum::has_quantum;
use std::collections::{BTreeMap, BTreeSet};

/// Outcomes reachable on the relaxed machine.
#[derive(Debug, Clone)]
pub struct RelaxedOutcomes {
    /// Distinct final results (memory + registers).
    pub results: BTreeSet<ExecResult>,
    /// Number of complete schedules explored.
    pub schedules: usize,
}

impl RelaxedOutcomes {
    /// Final memory states only — the paper's notion of "result"
    /// (§3.2.2: the memory state at the end of the execution).
    pub fn memory_results(&self) -> BTreeSet<BTreeMap<Loc, Value>> {
        self.results.iter().map(|r| r.memory.clone()).collect()
    }

    /// Do all outcomes satisfy a predicate (for seqlock-style
    /// conditional-consistency assertions)?
    pub fn all_satisfy(&self, pred: impl Fn(&ExecResult) -> bool) -> bool {
        self.results.iter().all(pred)
    }
}

/// Verdict of comparing relaxed-machine results against SC results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScComparison {
    /// Memory results the relaxed machine can produce that no SC
    /// execution of the (quantum-equivalent) program produces.
    pub non_sc_results: Vec<BTreeMap<Loc, Value>>,
    /// Total relaxed results.
    pub relaxed_count: usize,
    /// Total SC results.
    pub sc_count: usize,
}

impl ScComparison {
    /// True iff every relaxed result is an SC result (the DRFrlx model
    /// guarantee).
    pub fn is_sc_only(&self) -> bool {
        self.non_sc_results.is_empty()
    }
}

#[derive(Clone)]
struct MachineThread {
    /// Per-instruction performed/executed flag.
    done: Vec<bool>,
    regs: BTreeMap<Reg, Value>,
}

#[derive(Clone)]
struct Machine {
    threads: Vec<MachineThread>,
    memory: BTreeMap<Loc, Value>,
    /// Block-shared scratchpad. Programs keep cross-thread slot reuse
    /// separated by barriers (the scratch discipline), so the values
    /// read are schedule-independent.
    scratch: BTreeMap<Value, Value>,
}

/// Number of performed [`Instr::Barrier`]s in thread `tid`.
fn barriers_done(prog: &Program, m: &Machine, tid: usize) -> usize {
    prog.threads()[tid]
        .instrs
        .iter()
        .zip(&m.threads[tid].done)
        .filter(|(i, &d)| d && matches!(i, Instr::Barrier))
        .count()
}

/// Is thread `tid` parked at a barrier (its earliest undone
/// instruction is a barrier)?
fn parked_at_barrier(prog: &Program, m: &Machine, tid: usize) -> bool {
    let thread = &prog.threads()[tid].instrs;
    let st = &m.threads[tid];
    match st.done.iter().position(|&d| !d) {
        Some(idx) => matches!(thread[idx], Instr::Barrier),
        None => false,
    }
}

fn expr_ready(e: &Expr, regs: &BTreeMap<Reg, Value>) -> bool {
    let mut rs = Vec::new();
    e.regs_read(&mut rs);
    rs.iter().all(|r| regs.contains_key(r))
}

/// Strength of instruction `i` under `model`.
fn strength(model: MemoryModel, i: &Instr) -> Strength {
    match i.class() {
        Some(c) => model.strength_of(c),
        None => Strength::Data,
    }
}

/// May instruction `idx` of thread `t` perform now?
fn ready(model: MemoryModel, prog: &Program, m: &Machine, tid: usize, idx: usize) -> bool {
    let thread = &prog.threads()[tid].instrs;
    let st = &m.threads[tid];
    if st.done[idx] {
        return false;
    }
    let instr = &thread[idx];
    // Operand availability (no value speculation).
    let ok = match instr {
        Instr::Load { .. } => true,
        Instr::Store { val, .. } => expr_ready(val, &st.regs),
        Instr::Rmw { operand, operand2, .. } => {
            expr_ready(operand, &st.regs) && expr_ready(operand2, &st.regs)
        }
        Instr::Assign { expr, .. }
        | Instr::BranchOn { cond: expr }
        | Instr::Observe { expr }
        | Instr::JumpIfZero { cond: expr, .. }
        | Instr::ScratchLoad { addr: expr, .. } => expr_ready(expr, &st.regs),
        Instr::Think { .. } | Instr::Barrier => true,
        Instr::ScratchStore { addr, val } => {
            expr_ready(addr, &st.regs) && expr_ready(val, &st.regs)
        }
    };
    if !ok {
        return false;
    }
    // A barrier is a full fence plus a rendezvous: everything po-earlier
    // must have performed, and every other thread must have reached the
    // same rendezvous (parked at its matching barrier) or moved past it.
    if matches!(instr, Instr::Barrier) {
        if !st.done[..idx].iter().all(|&d| d) {
            return false;
        }
        let k = barriers_done(prog, m, tid);
        return (0..m.threads.len()).all(|u| {
            u == tid
                || barriers_done(prog, m, u) > k
                || (barriers_done(prog, m, u) == k && parked_at_barrier(prog, m, u))
        });
    }
    // Local bookkeeping instructions execute in order relative to other
    // local instructions (registers may be reused).
    if !instr.is_memory() {
        return thread[..idx]
            .iter()
            .enumerate()
            .all(|(j, earlier)| st.done[j] || earlier.is_memory());
    }
    let s = strength(model, instr);
    for (j, earlier) in thread[..idx].iter().enumerate() {
        if st.done[j] {
            continue;
        }
        // No control speculation: a pending branch blocks later memory
        // ops. A pending barrier is a full fence and does too.
        if matches!(earlier, Instr::BranchOn { .. } | Instr::JumpIfZero { .. } | Instr::Barrier) {
            return false;
        }
        if !earlier.is_memory() {
            continue;
        }
        let es = strength(model, earlier);
        // Per-location SC: same-address accesses stay in program order.
        if earlier.loc() == instr.loc() {
            return false;
        }
        // Paired ops are full fences; a release waits for everything
        // po-earlier (one-way fence on the write side).
        if s == Strength::Paired || s == Strength::Release {
            return false;
        }
        // A pending paired op, or a pending acquire, blocks everything
        // po-later (one-way fence on the read side).
        if es == Strength::Paired || es == Strength::Acquire {
            return false;
        }
        // Atomic-atomic program order among paired/unpaired (DRF1's
        // guarantee). One-sided fences deliberately stay out of this
        // set: a release followed by an acquire to a different location
        // may reorder, which is why rel/acq store buffering admits the
        // non-SC outcome.
        let two_sided = |x: Strength| matches!(x, Strength::Paired | Strength::Unpaired);
        if two_sided(s) && two_sided(es) {
            return false;
        }
    }
    true
}

/// Perform instruction `idx` of thread `tid`.
fn perform(prog: &Program, m: &mut Machine, tid: usize, idx: usize) {
    let instr = &prog.threads()[tid].instrs[idx];
    let st = &mut m.threads[tid];
    match instr {
        Instr::Load { loc, dst, .. } => {
            let v = *m.memory.get(loc).unwrap_or(&0);
            st.regs.insert(*dst, v);
        }
        Instr::Store { loc, val, .. } => {
            let v = val.eval(&st.regs);
            m.memory.insert(*loc, v);
        }
        Instr::Rmw { loc, op, operand, operand2, dst, .. } => {
            let old = *m.memory.get(loc).unwrap_or(&0);
            let new = op.apply(old, operand.eval(&st.regs), operand2.eval(&st.regs));
            m.memory.insert(*loc, new);
            st.regs.insert(*dst, old);
        }
        Instr::Assign { dst, expr } => {
            let v = expr.eval(&st.regs);
            st.regs.insert(*dst, v);
        }
        Instr::BranchOn { .. } | Instr::Observe { .. } | Instr::Think { .. } | Instr::Barrier => {}
        Instr::JumpIfZero { cond, skip } => {
            if cond.eval(&st.regs) == 0 {
                // Mark the skipped body done: its instructions never
                // perform on this path.
                for d in &mut st.done[idx + 1..=idx + skip] {
                    *d = true;
                }
            }
        }
        Instr::ScratchLoad { addr, dst } => {
            let a = addr.eval(&st.regs);
            let v = *m.scratch.get(&a).unwrap_or(&0);
            st.regs.insert(*dst, v);
        }
        Instr::ScratchStore { addr, val } => {
            let a = addr.eval(&st.regs);
            let v = val.eval(&st.regs);
            m.scratch.insert(a, v);
        }
    }
    m.threads[tid].done[idx] = true;
}

/// Enumerate all schedules of the relaxed machine under `model`.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] if the number of complete
/// schedules exceeds `limits.max_executions`.
pub fn explore_relaxed(
    p: &Program,
    model: MemoryModel,
    limits: &EnumLimits,
) -> Result<RelaxedOutcomes, EnumError> {
    let init = Machine {
        threads: p
            .threads()
            .iter()
            .map(|t| MachineThread { done: vec![false; t.instrs.len()], regs: BTreeMap::new() })
            .collect(),
        memory: (0..p.num_locs() as u32).map(|l| (Loc(l), p.init_value(Loc(l)))).collect(),
        scratch: BTreeMap::new(),
    };
    let mut results = BTreeSet::new();
    let mut schedules = 0usize;
    // Memoize visited machine states to prune confluent schedules.
    let mut seen: BTreeSet<Vec<u8>> = BTreeSet::new();
    dfs(p, model, limits, init, &mut results, &mut schedules, &mut seen)?;
    Ok(RelaxedOutcomes { results, schedules })
}

fn fingerprint(m: &Machine) -> Vec<u8> {
    // Cheap structural hash of the full machine state.
    let mut out = Vec::new();
    for t in &m.threads {
        for &d in &t.done {
            out.push(d as u8);
        }
        for (r, v) in &t.regs {
            out.extend_from_slice(&r.0.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.push(0xFF);
    }
    for (l, v) in &m.memory {
        out.extend_from_slice(&l.0.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.push(0xFE);
    for (a, v) in &m.scratch {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn dfs(
    p: &Program,
    model: MemoryModel,
    limits: &EnumLimits,
    m: Machine,
    results: &mut BTreeSet<ExecResult>,
    schedules: &mut usize,
    seen: &mut BTreeSet<Vec<u8>>,
) -> Result<(), EnumError> {
    let mut any = false;
    for tid in 0..m.threads.len() {
        for idx in 0..p.threads()[tid].instrs.len() {
            if ready(model, p, &m, tid, idx) {
                any = true;
                let mut next = m.clone();
                perform(p, &mut next, tid, idx);
                if seen.insert(fingerprint(&next)) {
                    dfs(p, model, limits, next, results, schedules, seen)?;
                }
            }
        }
    }
    if !any {
        // All instructions done (straight-line programs cannot deadlock:
        // the earliest undone instruction of any thread is always ready
        // once its inputs resolve, and inputs resolve in program order).
        // The exception is mismatched barrier counts: threads park at a
        // rendezvous nobody else reaches. Such stuck states produce no
        // result.
        if m.threads.iter().any(|t| t.done.iter().any(|&d| !d)) {
            return Ok(());
        }
        *schedules += 1;
        if *schedules > limits.max_executions {
            return Err(EnumError::TooManyExecutions { limit: limits.max_executions });
        }
        results.insert(ExecResult {
            memory: m.memory,
            regs: m.threads.into_iter().map(|t| t.regs).collect(),
        });
    }
    Ok(())
}

/// Compare the relaxed machine's reachable memory results against the
/// SC memory results of the (quantum-equivalent, when quantum atomics
/// are present) program — the empirical form of Theorem 3.1.
///
/// # Errors
///
/// Returns [`EnumError`] if either enumeration exceeds limits.
pub fn compare_with_sc(
    p: &Program,
    model: MemoryModel,
    limits: &EnumLimits,
) -> Result<ScComparison, EnumError> {
    let relaxed = explore_relaxed(p, model, limits)?;
    // The SC result set streams out of the reduced enumerator: no
    // execution is materialized, and sleep-set reduction is sound here
    // because the set of reachable final-memory states is an invariant
    // of commuting adjacent independent steps.
    struct MemoryResults(BTreeSet<BTreeMap<Loc, Value>>);
    impl ExecutionVisitor for MemoryResults {
        fn visit(&mut self, e: &Execution) -> bool {
            self.0.insert(e.result.memory.clone());
            true
        }
    }
    let quantum = model == MemoryModel::Drfrlx && has_quantum(p);
    let mut sc = MemoryResults(BTreeSet::new());
    visit_sc(p, limits, quantum, Reduction::SleepSet, &mut sc)?;
    let sc_mem = sc.0;
    let relaxed_mem = relaxed.memory_results();
    let non_sc = relaxed_mem.iter().filter(|m| !sc_mem.contains(*m)).cloned().collect();
    Ok(ScComparison {
        non_sc_results: non_sc,
        relaxed_count: relaxed_mem.len(),
        sc_count: sc_mem.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::OpClass;
    use crate::program::RmwOp;

    fn limits() -> EnumLimits {
        EnumLimits::default()
    }

    /// Store buffering with the given class on all four accesses.
    fn sb(class: OpClass) -> Program {
        let mut p = Program::new("sb");
        {
            let mut t = p.thread();
            t.store(class, "x", 1);
            let r = t.load(class, "y");
            t.store(OpClass::Data, "out0", r);
        }
        {
            let mut t = p.thread();
            t.store(class, "y", 1);
            let r = t.load(class, "x");
            t.store(OpClass::Data, "out1", r);
        }
        p.build()
    }

    fn outs(p: &Program, res: &ExecResult) -> (Value, Value) {
        let o0 = p.find_loc("out0").unwrap();
        let o1 = p.find_loc("out1").unwrap();
        (*res.memory.get(&o0).unwrap_or(&0), *res.memory.get(&o1).unwrap_or(&0))
    }

    #[test]
    fn paired_sb_stays_sc() {
        let p = sb(OpClass::Paired);
        let out = explore_relaxed(&p, MemoryModel::Drfrlx, &limits()).unwrap();
        for r in &out.results {
            assert_ne!(outs(&p, r), (0, 0), "paired atomics forbid the SB outcome");
        }
    }

    #[test]
    fn unpaired_sb_stays_in_order() {
        // Unpaired atomics execute in program order w.r.t. each other,
        // so the machine cannot produce the store-buffering outcome
        // either — the performance win is elsewhere (no inval/flush).
        let p = sb(OpClass::Unpaired);
        let out = explore_relaxed(&p, MemoryModel::Drfrlx, &limits()).unwrap();
        for r in &out.results {
            assert_ne!(outs(&p, r), (0, 0));
        }
    }

    #[test]
    fn relaxed_sb_shows_non_sc_outcome() {
        // With non-ordering atomics (illegal here: they form unique
        // ordering paths) the machine overlaps them and exposes r0==r1==0.
        let p = sb(OpClass::NonOrdering);
        let out = explore_relaxed(&p, MemoryModel::Drfrlx, &limits()).unwrap();
        assert!(
            out.results.iter().any(|r| outs(&p, r) == (0, 0)),
            "relaxed atomics must allow the SB reordering"
        );
    }

    #[test]
    fn drf1_view_keeps_relaxed_annotations_in_order() {
        // The same non-ordering-annotated program run on a DRF1 system
        // degrades the annotations to unpaired — no SB outcome.
        let p = sb(OpClass::NonOrdering);
        let out = explore_relaxed(&p, MemoryModel::Drf1, &limits()).unwrap();
        for r in &out.results {
            assert_ne!(outs(&p, r), (0, 0));
        }
    }

    #[test]
    fn data_dependency_blocks_thin_air() {
        // Load-buffering with data dependencies: no out-of-thin-air.
        let mut p = Program::new("lb");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::NonOrdering, "x");
            t.store(OpClass::NonOrdering, "y", r);
        }
        {
            let mut t = p.thread();
            let r = t.load(OpClass::NonOrdering, "y");
            t.store(OpClass::NonOrdering, "x", r);
        }
        let p = p.build();
        let out = explore_relaxed(&p, MemoryModel::Drfrlx, &limits()).unwrap();
        let x = p.find_loc("x").unwrap();
        for r in &out.results {
            assert_eq!(r.memory[&x], 0, "value cannot appear out of thin air");
        }
    }

    #[test]
    fn race_free_commutative_program_is_sc_only() {
        // Theorem 3.1, empirically: legal commutative increments only
        // produce SC results on the relaxed machine.
        let mut p = Program::new("inc");
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 2);
        let cmp = compare_with_sc(&p.build(), MemoryModel::Drfrlx, &limits()).unwrap();
        assert!(cmp.is_sc_only(), "non-SC results: {:?}", cmp.non_sc_results);
    }

    #[test]
    fn mislabeled_program_can_go_non_sc() {
        // The SB program with non-ordering labels has a non-ordering
        // race; the machine produces a result set strictly larger than SC.
        let p = sb(OpClass::NonOrdering);
        let cmp = compare_with_sc(&p, MemoryModel::Drfrlx, &limits()).unwrap();
        assert!(!cmp.is_sc_only());
    }

    #[test]
    fn paired_read_blocks_subsequent_access() {
        // acquire: a data load after a paired load cannot perform first.
        // Construct: T0: paired load of flag; data load of x.
        //            T1: store x=1; paired store flag=1.
        // If the paired read could be bypassed, T0 could see flag=1 but
        // x=0. The machine must never produce that.
        let mut p = Program::new("acq");
        {
            let mut t = p.thread();
            let f = t.load(OpClass::Paired, "flag");
            let x = t.load(OpClass::Data, "x");
            t.store(OpClass::Data, "outf", f);
            t.store(OpClass::Data, "outx", x);
        }
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 1);
            t.store(OpClass::Paired, "flag", 1);
        }
        let p = p.build();
        let out = explore_relaxed(&p, MemoryModel::Drfrlx, &limits()).unwrap();
        let outf = p.find_loc("outf").unwrap();
        let outx = p.find_loc("outx").unwrap();
        for r in &out.results {
            if r.memory[&outf] == 1 {
                assert_eq!(r.memory[&outx], 1, "message passing must work with paired flag");
            }
        }
    }

    #[test]
    fn release_acquire_sb_reorders_but_paired_does_not() {
        // One-sided fences allow the store-buffering outcome.
        let p = sb(OpClass::NonOrdering); // baseline sanity above
        let _ = p;
        let mut p = Program::new("ra_sb");
        {
            let mut t = p.thread();
            t.store(OpClass::Release, "x", 1);
            let r = t.load(OpClass::Acquire, "y");
            t.store(OpClass::Data, "out0", r);
        }
        {
            let mut t = p.thread();
            t.store(OpClass::Release, "y", 1);
            let r = t.load(OpClass::Acquire, "x");
            t.store(OpClass::Data, "out1", r);
        }
        let p = p.build();
        let out = explore_relaxed(&p, MemoryModel::Drfrlx, &limits()).unwrap();
        assert!(
            out.results.iter().any(|r| outs(&p, r) == (0, 0)),
            "rel/acq permits the SB outcome (it is not SC)"
        );
        // Under DRF1 the one-sided atomics degrade to paired: SC again.
        let out = explore_relaxed(&p, MemoryModel::Drf1, &limits()).unwrap();
        for r in &out.results {
            assert_ne!(outs(&p, r), (0, 0));
        }
    }

    #[test]
    fn acquire_blocks_later_release_waits_earlier() {
        // MP with one-sided fences stays correct.
        let mut p = Program::new("ra_mp");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 1);
            t.store(OpClass::Release, "flag", 1);
        }
        {
            let mut t = p.thread();
            let f = t.load(OpClass::Acquire, "flag");
            let x = t.load(OpClass::Data, "x");
            t.store(OpClass::Data, "outf", f);
            t.store(OpClass::Data, "outx", x);
        }
        let p = p.build();
        let out = explore_relaxed(&p, MemoryModel::Drfrlx, &limits()).unwrap();
        let outf = p.find_loc("outf").unwrap();
        let outx = p.find_loc("outx").unwrap();
        for r in &out.results {
            if r.memory[&outf] == 1 {
                assert_eq!(r.memory[&outx], 1, "release/acquire must pass the message");
            }
        }
    }

    #[test]
    fn schedules_counted_and_machine_terminates() {
        let mut p = Program::new("tiny");
        p.thread().store(OpClass::Data, "x", 1);
        let out = explore_relaxed(&p.build(), MemoryModel::Drf0, &limits()).unwrap();
        assert_eq!(out.schedules, 1);
        assert_eq!(out.results.len(), 1);
    }
}
