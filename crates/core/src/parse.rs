//! A textual litmus format, in the spirit of Herd's `.litmus` files.
//!
//! The paper's Herd models consume small concurrent programs written in
//! a text syntax; this module provides the same workflow for DRFrlx:
//! write a program in the format below, [`parse`] it, and feed it to
//! the checker or the relaxed machine (the `drfrlx` CLI wraps exactly
//! that).
//!
//! ```text
//! litmus mp_paired
//! init { x = 0 }
//!
//! thread producer {
//!     store.data x 42;
//!     store.paired flag 1;
//! }
//!
//! thread consumer {
//!     r0 = load.paired flag;
//!     if r0 {
//!         r1 = load.data x;
//!         observe r1;
//!     }
//! }
//! ```
//!
//! Statements: `store.<class> <loc> <expr>`, `<reg> = load.<class>
//! <loc>`, `<reg> = fadd|fsub|fand|for|fxor|fmin|fmax|xchg.<class>
//! <loc> <expr>`, `<reg> = cas.<class> <loc> <expected> <new>`,
//! `<reg> = <expr>` (local), `branch <expr>`, `observe <expr>`,
//! `if <expr> { ... }`, `ifz <expr> { ... }`, `think <n>` (timing
//! hint), `barrier` (block barrier), `<reg> = sload <addr>` and
//! `sstore <addr> <val>` (block-shared scratch). Classes: `data`,
//! `paired`, `unpaired`, `commutative`, `nonordering`, `quantum`,
//! `speculative`, `acquire`, `release` (unambiguous prefixes
//! accepted). Comments start with
//! `//` or `#`. Expressions support `+ - & | ^ == != < min max`,
//! parentheses, signed integers and registers.

use crate::classes::OpClass;
use crate::program::{BinOp, Expr, Program, RmwOp, ThreadBuilder};
use std::collections::BTreeMap;
use std::fmt;

/// A parse error with full source position and the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column (in bytes) of the offending token; 0 when no
    /// position applies (e.g. an empty program).
    pub col: usize,
    /// The offending token's text, or `end of input`.
    pub token: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {} (at `{}`)", self.line, self.col, self.message, self.token)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(&'static str),
}

impl Tok {
    /// The token's source text (best-effort for integers, which render
    /// in decimal regardless of the literal's base).
    fn render(&self) -> String {
        match self {
            Tok::Ident(s) => s.clone(),
            Tok::Int(v) => v.to_string(),
            Tok::Sym(s) => (*s).to_string(),
        }
    }
}

struct Lexer {
    toks: Vec<(usize, usize, Tok)>,
    pos: usize,
}

const SYMBOLS: [&str; 14] =
    ["==", "!=", "{", "}", "(", ")", "=", ";", ".", "+", "-", "&", "|", "^"];

fn lex(src: &str) -> Result<Lexer, ParseError> {
    let mut toks = Vec::new();
    for (lno, raw) in src.lines().enumerate() {
        let line = lno + 1;
        let code = raw.split("//").next().unwrap_or("");
        let code = code.split('#').next().unwrap_or("");
        let mut rest = code.trim_start();
        'outer: while !rest.is_empty() {
            // `rest` is a suffix of `code`, so the 1-based byte column
            // of the token about to start is the consumed prefix + 1.
            let col = code.len() - rest.len() + 1;
            for sym in SYMBOLS {
                if let Some(r) = rest.strip_prefix(sym) {
                    // A '-' immediately followed by a digit after a
                    // non-value token is a negative literal; handled in
                    // the number branch below by peeking here.
                    if sym == "-"
                        && r.starts_with(|c: char| c.is_ascii_digit())
                        && !matches!(toks.last(), Some((_, _, Tok::Int(_) | Tok::Ident(_))))
                        && !matches!(toks.last(), Some((_, _, Tok::Sym(")"))))
                    {
                        break; // fall through to the number branch
                    }
                    toks.push((line, col, Tok::Sym(sym)));
                    rest = r.trim_start();
                    continue 'outer;
                }
            }
            if rest.starts_with(|c: char| c.is_ascii_digit())
                || (rest.starts_with('-') && rest[1..].starts_with(|c: char| c.is_ascii_digit()))
            {
                let neg = rest.starts_with('-');
                let body = if neg { &rest[1..] } else { rest };
                let end = body
                    .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                    .unwrap_or(body.len());
                let text: String = body[..end].chars().filter(|&c| c != '_').collect();
                let magnitude =
                    if let Some(hex) = text.strip_prefix("0x").or(text.strip_prefix("0X")) {
                        i64::from_str_radix(hex, 16)
                    } else {
                        text.parse()
                    }
                    .map_err(|_| ParseError {
                        line,
                        col,
                        token: body[..end].to_string(),
                        message: format!("bad integer literal `{}`", &body[..end]),
                    })?;
                toks.push((line, col, Tok::Int(if neg { -magnitude } else { magnitude })));
                rest = body[end..].trim_start();
                continue;
            }
            if rest.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_') {
                let end = rest
                    .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                    .unwrap_or(rest.len());
                toks.push((line, col, Tok::Ident(rest[..end].to_string())));
                rest = rest[end..].trim_start();
                continue;
            }
            let ch = rest.chars().next().unwrap();
            return Err(ParseError {
                line,
                col,
                token: ch.to_string(),
                message: format!("unexpected character `{ch}`"),
            });
        }
    }
    Ok(Lexer { toks, pos: 0 })
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, _, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, _, t)| t.clone());
        self.pos += 1;
        t
    }

    /// The `(line, col, rendered token)` triple for the token at `idx`,
    /// clamping past-the-end positions to the last token (rendered as
    /// `end of input`).
    fn position(&self, idx: usize) -> (usize, usize, String) {
        match self.toks.get(idx) {
            Some((line, col, tok)) => (*line, *col, tok.render()),
            None => match self.toks.last() {
                Some((line, col, tok)) => {
                    (*line, col + tok.render().len(), "end of input".to_string())
                }
                None => (0, 0, "end of input".to_string()),
            },
        }
    }

    fn err_at(&self, idx: usize, message: impl Into<String>) -> ParseError {
        let (line, col, token) = self.position(idx);
        ParseError { line, col, token, message: message.into() }
    }

    /// An error blaming the *next* (unconsumed) token.
    fn err(&self, message: impl Into<String>) -> ParseError {
        self.err_at(self.pos, message)
    }

    /// An error blaming the token just consumed by [`Lexer::next`].
    fn err_prev(&self, message: impl Into<String>) -> ParseError {
        self.err_at(self.pos.saturating_sub(1), message)
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Sym(s)) if s == sym => Ok(()),
            _ => Err(self.err_prev(format!("expected `{sym}`"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err_prev("expected identifier")),
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

fn parse_class(lx: &Lexer, word: &str) -> Result<OpClass, ParseError> {
    let lower = word.to_ascii_lowercase();
    let matches: Vec<OpClass> = [
        ("data", OpClass::Data),
        ("paired", OpClass::Paired),
        ("unpaired", OpClass::Unpaired),
        ("commutative", OpClass::Commutative),
        ("nonordering", OpClass::NonOrdering),
        ("quantum", OpClass::Quantum),
        ("speculative", OpClass::Speculative),
        ("acquire", OpClass::Acquire),
        ("release", OpClass::Release),
    ]
    .iter()
    .filter(|(name, _)| name.starts_with(&lower))
    .map(|(_, c)| *c)
    .collect();
    match matches.as_slice() {
        [one] => Ok(*one),
        [] => Err(lx.err_prev(format!("unknown operation class `{word}`"))),
        _ => Err(lx.err_prev(format!("ambiguous operation class `{word}`"))),
    }
}

/// Registers named in the source, mapped to builder registers.
struct RegEnv {
    map: BTreeMap<String, crate::program::Reg>,
}

impl RegEnv {
    fn get(&self, lx: &Lexer, name: &str) -> Result<Expr, ParseError> {
        self.map
            .get(name)
            .map(|r| Expr::Reg(*r))
            .ok_or_else(|| lx.err_prev(format!("register `{name}` used before definition")))
    }
}

/// Expression grammar: comparison > additive/bitwise > atoms. `min` and
/// `max` are two-argument function calls.
fn parse_expr(lx: &mut Lexer, regs: &RegEnv) -> Result<Expr, ParseError> {
    let lhs = parse_sum(lx, regs)?;
    if lx.eat_sym("==") {
        let rhs = parse_sum(lx, regs)?;
        return Ok(Expr::bin(BinOp::Eq, lhs, rhs));
    }
    if lx.eat_sym("!=") {
        let rhs = parse_sum(lx, regs)?;
        return Ok(Expr::bin(BinOp::Ne, lhs, rhs));
    }
    Ok(lhs)
}

fn parse_sum(lx: &mut Lexer, regs: &RegEnv) -> Result<Expr, ParseError> {
    let mut acc = parse_atom(lx, regs)?;
    loop {
        let op = match lx.peek() {
            Some(Tok::Sym("+")) => BinOp::Add,
            Some(Tok::Sym("-")) => BinOp::Sub,
            Some(Tok::Sym("&")) => BinOp::And,
            Some(Tok::Sym("|")) => BinOp::Or,
            Some(Tok::Sym("^")) => BinOp::Xor,
            _ => return Ok(acc),
        };
        lx.next();
        let rhs = parse_atom(lx, regs)?;
        acc = Expr::bin(op, acc, rhs);
    }
}

fn parse_atom(lx: &mut Lexer, regs: &RegEnv) -> Result<Expr, ParseError> {
    match lx.next() {
        Some(Tok::Int(v)) => Ok(Expr::Const(v)),
        Some(Tok::Sym("(")) => {
            let e = parse_expr(lx, regs)?;
            lx.expect_sym(")")?;
            Ok(e)
        }
        Some(Tok::Ident(name)) if name == "min" || name == "max" => {
            lx.expect_sym("(")?;
            let a = parse_expr(lx, regs)?;
            // Optional comma would be nice; we accept whitespace only,
            // so the two arguments are juxtaposed expressions.
            let b = parse_expr(lx, regs)?;
            lx.expect_sym(")")?;
            let op = if name == "min" { BinOp::Min } else { BinOp::Max };
            Ok(Expr::bin(op, a, b))
        }
        Some(Tok::Ident(name)) => regs.get(lx, &name),
        _ => Err(lx.err_prev("expected expression")),
    }
}

const RMW_NAMES: [(&str, RmwOp); 8] = [
    ("fadd", RmwOp::FetchAdd),
    ("fsub", RmwOp::FetchSub),
    ("fand", RmwOp::FetchAnd),
    ("for", RmwOp::FetchOr),
    ("fxor", RmwOp::FetchXor),
    ("fmin", RmwOp::FetchMin),
    ("fmax", RmwOp::FetchMax),
    ("xchg", RmwOp::Exchange),
];

fn parse_block(
    lx: &mut Lexer,
    t: &mut ThreadBuilder<'_>,
    regs: &mut RegEnv,
) -> Result<(), ParseError> {
    lx.expect_sym("{")?;
    loop {
        if lx.eat_sym("}") {
            return Ok(());
        }
        let word = match lx.next() {
            Some(Tok::Ident(w)) => w,
            _ => return Err(lx.err_prev("expected statement")),
        };
        match word.as_str() {
            "store" => {
                lx.expect_sym(".")?;
                let cw = lx.expect_ident()?;
                let class = parse_class(lx, &cw)?;
                let loc = lx.expect_ident()?;
                let val = parse_expr(lx, regs)?;
                lx.expect_sym(";")?;
                t.store(class, &loc, val);
            }
            "branch" => {
                let cond = parse_expr(lx, regs)?;
                lx.expect_sym(";")?;
                t.branch_on(cond);
            }
            "think" => {
                let cycles = match lx.next() {
                    Some(Tok::Int(v)) if (0..=u32::MAX as i64).contains(&v) => v as u32,
                    _ => return Err(lx.err_prev("expected cycle count after `think`")),
                };
                lx.expect_sym(";")?;
                t.think(cycles);
            }
            "barrier" => {
                lx.expect_sym(";")?;
                t.barrier();
            }
            "sstore" => {
                let addr = parse_expr(lx, regs)?;
                let val = parse_expr(lx, regs)?;
                lx.expect_sym(";")?;
                t.scratch_store(addr, val);
            }
            "observe" => {
                let e = parse_expr(lx, regs)?;
                lx.expect_sym(";")?;
                t.observe(e);
            }
            "if" | "ifz" => {
                let cond = parse_expr(lx, regs)?;
                // Structured bodies need two passes over the builder;
                // we lower by emitting the jump ourselves via if_nz /
                // if_z with a recursive closure — but closures cannot
                // borrow the lexer mutably twice, so parse the body
                // into a sub-program... Instead, lower directly:
                // collect body statements recursively with a manual
                // jump patch.
                parse_if(lx, t, regs, cond, word == "ifz")?;
            }
            reg_name => {
                // `<reg> = ...`
                lx.expect_sym("=")?;
                if matches!(lx.peek(), Some(Tok::Ident(op)) if op == "sload") {
                    lx.next();
                    let addr = parse_expr(lx, regs)?;
                    lx.expect_sym(";")?;
                    let reg = t.scratch_load(addr);
                    regs.map.insert(reg_name.to_string(), reg);
                    continue;
                }
                let is_memop = matches!(
                    lx.peek(),
                    Some(Tok::Ident(op))
                        if op == "load" || op == "cas" || RMW_NAMES.iter().any(|(n, _)| n == op)
                );
                match is_memop {
                    true => {
                        let op = lx.expect_ident()?;
                        lx.expect_sym(".")?;
                        let cw = lx.expect_ident()?;
                        let class = parse_class(lx, &cw)?;
                        let loc = lx.expect_ident()?;
                        let reg = if op == "load" {
                            t.load(class, &loc)
                        } else if op == "cas" {
                            let expected = parse_expr(lx, regs)?;
                            let new = parse_expr(lx, regs)?;
                            t.cas(class, &loc, expected, new)
                        } else {
                            let rmw = RMW_NAMES
                                .iter()
                                .find(|(n, _)| *n == op)
                                .map(|(_, r)| *r)
                                .expect("matched above");
                            let operand = parse_expr(lx, regs)?;
                            t.rmw(class, &loc, rmw, operand)
                        };
                        lx.expect_sym(";")?;
                        regs.map.insert(reg_name.to_string(), reg);
                    }
                    false => {
                        let e = parse_expr(lx, regs)?;
                        lx.expect_sym(";")?;
                        let reg = t.assign(e);
                        regs.map.insert(reg_name.to_string(), reg);
                    }
                }
            }
        }
    }
}

/// `if`/`ifz` bodies: parsed recursively inside the closure the builder
/// gives us. The borrow checker prevents capturing the lexer in the
/// closure and also using it afterwards, so we snapshot the body's
/// token range first, then replay it.
fn parse_if(
    lx: &mut Lexer,
    t: &mut ThreadBuilder<'_>,
    regs: &mut RegEnv,
    cond: Expr,
    invert: bool,
) -> Result<(), ParseError> {
    // Find the body's token span (balanced braces) without consuming.
    let start = lx.pos;
    if !matches!(lx.peek(), Some(Tok::Sym("{"))) {
        return Err(lx.err("expected `{` after if condition"));
    }
    let mut depth = 0usize;
    let mut end = start;
    loop {
        match lx.toks.get(end).map(|(_, _, t)| t) {
            Some(Tok::Sym("{")) => depth += 1,
            Some(Tok::Sym("}")) => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            None => return Err(lx.err_at(lx.toks.len(), "unterminated if body")),
            _ => {}
        }
        end += 1;
    }
    // Parse the body with a sub-lexer over the same token buffer.
    let mut result = Ok(());
    let body_toks = lx.toks[start..=end].to_vec();
    let build_body = |t: &mut ThreadBuilder<'_>| {
        let mut sub = Lexer { toks: body_toks, pos: 0 };
        result = parse_block(&mut sub, t, regs);
    };
    if invert {
        t.if_z(cond, build_body);
    } else {
        t.if_nz(cond, build_body);
    }
    lx.pos = end + 1;
    result
}

/// Parse a litmus program from its textual form.
///
/// ```
/// use drfrlx_core::parse::parse;
/// use drfrlx_core::{check_program, MemoryModel};
///
/// let p = parse(
///     "litmus inc\n\
///      thread a { r = fadd.commutative c 1; }\n\
///      thread b { s = fadd.commutative c 2; }",
/// )?;
/// assert!(check_program(&p, MemoryModel::Drfrlx).is_race_free());
/// # Ok::<(), drfrlx_core::parse::ParseError>(())
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the offending token plus its
/// 1-based line and byte column on malformed input.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let mut lx = lex(src)?;
    match lx.next() {
        Some(Tok::Ident(kw)) if kw == "litmus" => {}
        _ => return Err(lx.err_prev("expected `litmus <name>` header")),
    }
    let name = lx.expect_ident()?;
    let mut p = Program::new(name);
    // Optional init block.
    if matches!(lx.peek(), Some(Tok::Ident(k)) if k == "init") {
        lx.next();
        lx.expect_sym("{")?;
        while !lx.eat_sym("}") {
            let loc = lx.expect_ident()?;
            lx.expect_sym("=")?;
            let v = match lx.next() {
                Some(Tok::Int(v)) => v,
                _ => return Err(lx.err_prev("expected integer")),
            };
            p.set_init(&loc, v);
            lx.eat_sym(";");
        }
    }
    let mut any = false;
    while let Some(tok) = lx.next() {
        match tok {
            Tok::Ident(kw) if kw == "thread" => {
                let _tname = lx.expect_ident()?;
                let mut regs = RegEnv { map: BTreeMap::new() };
                let mut t = p.thread();
                parse_block(&mut lx, &mut t, &mut regs)?;
                any = true;
            }
            _ => return Err(lx.err_prev("expected `thread`")),
        }
    }
    if !any {
        return Err(ParseError {
            line: 0,
            col: 0,
            token: "end of input".into(),
            message: "program has no threads".into(),
        });
    }
    Ok(p.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_program;
    use crate::classes::MemoryModel;
    use crate::exec::{enumerate_sc, EnumLimits};

    const MP: &str = r#"
litmus mp_paired
init { x = 0 }

thread producer {
    store.data x 42;
    store.paired flag 1;
}

thread consumer {
    r0 = load.paired flag;
    if r0 {
        r1 = load.data x;
        observe r1;
    }
}
"#;

    #[test]
    fn parses_message_passing_and_checks_clean() {
        let p = parse(MP).unwrap();
        assert_eq!(p.name(), "mp_paired");
        assert_eq!(p.threads().len(), 2);
        assert!(check_program(&p, MemoryModel::Drfrlx).is_race_free());
    }

    #[test]
    fn parses_all_statement_forms() {
        let src = r#"
litmus kitchen_sink
init { c = 5; d = 1 }
thread t0 {
    old = fadd.commutative c 2;
    swapped = xchg.paired d 9;
    r = cas.unpaired c 7 8;
    sum = old + swapped - 1;
    branch sum == 8;
    observe r;
    ifz r {
        store.nonordering flag 1;
    }
}
"#;
        let p = parse(src).unwrap();
        let execs = enumerate_sc(&p, &EnumLimits::default()).unwrap();
        assert_eq!(execs.len(), 1);
        let e = &execs[0];
        // fadd 5+2, xchg -> 9, cas expected 7 on c==7 succeeds -> 8.
        assert_eq!(e.result.memory.values().copied().collect::<Vec<_>>().len(), 3);
        let c = p.find_loc("c").unwrap();
        let d = p.find_loc("d").unwrap();
        assert_eq!(e.result.memory[&c], 8);
        assert_eq!(e.result.memory[&d], 9);
        // r = old c value at the cas = 7 -> ifz not taken -> flag never written.
        let flag = p.find_loc("flag").unwrap();
        assert_eq!(e.result.memory[&flag], 0);
    }

    #[test]
    fn class_prefixes_resolve() {
        let p =
            parse("litmus t\nthread a { store.comm x 1; store.spec y 1; store.non z 1; }").unwrap();
        use OpClass::*;
        assert_eq!(p.classes_used(), vec![Commutative, Speculative, NonOrdering]);
    }

    #[test]
    fn negative_and_hex_literals() {
        let p = parse("litmus t\ninit { x = -3 }\nthread a { store.data y 0x10; }").unwrap();
        let x = p.find_loc("x").unwrap();
        assert_eq!(p.init_value(x), -3);
        let e = &enumerate_sc(&p, &EnumLimits::default()).unwrap()[0];
        let y = p.find_loc("y").unwrap();
        assert_eq!(e.result.memory[&y], 16);
    }

    #[test]
    fn subtraction_vs_negative_literal() {
        let p = parse("litmus t\nthread a { r = 5 - 3; store.data x r; }").unwrap();
        let e = &enumerate_sc(&p, &EnumLimits::default()).unwrap()[0];
        let x = p.find_loc("x").unwrap();
        assert_eq!(e.result.memory[&x], 2);
    }

    #[test]
    fn min_max_calls() {
        let p =
            parse("litmus t\nthread a { r = min(4 7); s = max(r 9); store.data x s; }").unwrap();
        let e = &enumerate_sc(&p, &EnumLimits::default()).unwrap()[0];
        let x = p.find_loc("x").unwrap();
        assert_eq!(e.result.memory[&x], 9);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("litmus t\nthread a {\n  store.data x @;\n}").unwrap_err();
        assert_eq!(err.line, 3);
        let err = parse("litmus t\nthread a {\n  r = load.bogus x;\n}").unwrap_err();
        assert!(err.message.contains("unknown operation class"));
        let err = parse("litmus t\nthread a { observe nope; }").unwrap_err();
        assert!(err.message.contains("before definition"));
    }

    /// One assertion per reachable [`ParseError`] variant: each reports
    /// the right line, column and offending token.
    #[test]
    fn error_unexpected_character_positions_token() {
        let err = parse("litmus t\nthread a {\n  store.data x @;\n}").unwrap_err();
        assert_eq!((err.line, err.col), (3, 16));
        assert_eq!(err.token, "@");
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn error_bad_integer_literal() {
        let err = parse("litmus t\nthread a { store.data x 0xgg; }").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.token, "0xgg");
        assert_eq!(err.col, 25);
        assert!(err.message.contains("bad integer literal"));
    }

    #[test]
    fn error_expected_symbol_names_found_token() {
        // `store` must be followed by `.<class>`.
        let err = parse("litmus t\nthread a { store data x 1; }").unwrap_err();
        assert!(err.message.contains("expected `.`"), "{err}");
        assert_eq!(err.token, "data");
        assert_eq!((err.line, err.col), (2, 18));
        // Missing semicolon at end of input blames past the last token.
        let err = parse("litmus t\nthread a { store.data x 1 }").unwrap_err();
        assert!(err.message.contains("expected `;`"), "{err}");
        assert_eq!(err.token, "}");
    }

    #[test]
    fn error_expected_identifier() {
        let err = parse("litmus t\nthread a { store.7 x 1; }").unwrap_err();
        assert!(err.message.contains("expected identifier"), "{err}");
        assert_eq!(err.token, "7");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn error_unknown_operation_class() {
        let err = parse("litmus t\nthread a {\n  r = load.bogus x;\n}").unwrap_err();
        assert!(err.message.contains("unknown operation class `bogus`"), "{err}");
        assert_eq!(err.token, "bogus");
        assert_eq!((err.line, err.col), (3, 12));
    }

    #[test]
    fn error_ambiguous_operation_class() {
        // Unreachable through `parse` (every class has a unique first
        // letter), but the arm is kept defensively; exercise it direct.
        let lx = Lexer { toks: Vec::new(), pos: 0 };
        let err = parse_class(&lx, "").unwrap_err();
        assert!(err.message.contains("ambiguous operation class"), "{err}");
    }

    #[test]
    fn error_register_before_definition() {
        let err = parse("litmus t\nthread a { observe nope; }").unwrap_err();
        assert!(err.message.contains("register `nope` used before definition"), "{err}");
        assert_eq!(err.token, "nope");
        assert_eq!((err.line, err.col), (2, 20));
    }

    #[test]
    fn error_expected_expression() {
        let err = parse("litmus t\nthread a { store.data x ; }").unwrap_err();
        assert!(err.message.contains("expected expression"), "{err}");
        assert_eq!(err.token, ";");
        assert_eq!((err.line, err.col), (2, 25));
    }

    #[test]
    fn error_expected_statement() {
        let err = parse("litmus t\nthread a { 5; }").unwrap_err();
        assert!(err.message.contains("expected statement"), "{err}");
        assert_eq!(err.token, "5");
    }

    #[test]
    fn error_expected_brace_after_if() {
        let err = parse("litmus t\nthread a { r = 1; if r observe r; }").unwrap_err();
        assert!(err.message.contains("expected `{` after if condition"), "{err}");
        assert_eq!(err.token, "observe");
    }

    #[test]
    fn error_unterminated_if_body() {
        let err = parse("litmus t\nthread a { r = 1; if r { store.data x 1;").unwrap_err();
        assert!(err.message.contains("unterminated if body"), "{err}");
        assert_eq!(err.token, "end of input");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn error_expected_litmus_header() {
        let err = parse("nonsense here").unwrap_err();
        assert!(err.message.contains("expected `litmus <name>` header"), "{err}");
        assert_eq!(err.token, "nonsense");
        assert_eq!((err.line, err.col), (1, 1));
    }

    #[test]
    fn error_expected_integer_in_init() {
        let err = parse("litmus t\ninit { x = y }\nthread a { observe 0; }").unwrap_err();
        assert!(err.message.contains("expected integer"), "{err}");
        assert_eq!(err.token, "y");
        assert_eq!((err.line, err.col), (2, 12));
    }

    #[test]
    fn error_expected_thread() {
        let err = parse("litmus t\nthread a { }\nbogus").unwrap_err();
        assert!(err.message.contains("expected `thread`"), "{err}");
        assert_eq!(err.token, "bogus");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn error_program_has_no_threads() {
        let err = parse("litmus empty").unwrap_err();
        assert!(err.message.contains("program has no threads"), "{err}");
        assert_eq!((err.line, err.col), (0, 0));
        assert_eq!(err.token, "end of input");
    }

    #[test]
    fn error_display_includes_position_and_token() {
        let err = parse("litmus t\nthread a { store data x 1; }").unwrap_err();
        let shown = err.to_string();
        assert!(shown.contains("line 2:18"), "{shown}");
        assert!(shown.contains("(at `data`)"), "{shown}");
    }

    #[test]
    fn nested_ifs_parse() {
        let src = r#"
litmus nested
thread a {
    r = load.paired flag;
    if r {
        s = load.paired inner;
        if s {
            store.data x 1;
        }
    }
}
thread b {
    store.paired flag 1;
}
"#;
        let p = parse(src).unwrap();
        // flag=0 path: only the loads guarded away; enumerate to be sure
        // control flow nests correctly.
        let execs = enumerate_sc(&p, &EnumLimits::default()).unwrap();
        assert!(!execs.is_empty());
    }

    #[test]
    fn missing_threads_rejected() {
        assert!(parse("litmus empty").is_err());
        assert!(parse("nonsense").is_err());
    }
}
