//! Whole-program DRF checking — the streaming race-check pipeline.
//!
//! A DRF-family model is a contract: *if* the program is race-free in
//! every SC execution (of its quantum-equivalent program, for DRFrlx),
//! *then* the system guarantees SC (quantum-equivalent) results.
//! [`check_program`] discharges the programmer's half of the contract
//! by streaming every SC execution through the Listing 7 race
//! detectors:
//!
//! * **DRF0** — every atomic is viewed as paired; illegal = data races
//!   (§2.3.2 with only data/atomic distinguished).
//! * **DRF1** — relaxed classes are viewed as unpaired (sound: stronger
//!   than annotated); illegal = data races.
//! * **DRFrlx** — classes as annotated; illegal = data, commutative,
//!   non-ordering, quantum and speculative races, detected on the
//!   quantum-equivalent program when quantum atomics are present.
//!
//! The default path ([`check_program_with`]) runs the sharded streaming
//! enumerator with sleep-set partial-order reduction: executions are
//! analyzed as they complete, nothing is materialized, and the check
//! exits early once every [`crate::races::attainable_kinds`] kind has a
//! witness (the verdict can no longer change). The materializing
//! pre-streaming behavior survives as [`check_program_reference`] for
//! differential testing and benchmarking.

use crate::classes::{MemoryModel, OpClass};
use crate::exec::{
    enumerate_sc, enumerate_sc_quantum, visit_sc_resilient, visit_sc_sharded, EnumError,
    EnumLimits, EnumStats, Execution, ExecutionVisitor, Reduction, ResilienceOptions,
};
use crate::program::Program;
use crate::quantum::has_quantum;
use crate::races::{attainable_kinds, Race, RaceDetector, RaceKind};
use crate::resilience::{FaultPlan, RunStatus};
use std::collections::BTreeSet;

/// The verdict of a whole-program check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every SC execution (of the quantum-equivalent program) is free of
    /// illegal races: the program upholds its half of the contract and
    /// the system must appear SC.
    RaceFree,
    /// At least one SC execution contains an illegal race: the model
    /// makes no guarantee for this program.
    Racy,
}

/// One illegal race found during checking, with its provenance.
#[derive(Debug, Clone)]
pub struct FoundRace {
    /// Index of the execution (in explored order) exhibiting it.
    pub exec_index: usize,
    /// The racing pair and race kind.
    pub race: Race,
    /// Static identity of the race (see [`RaceKey`]) — the stable way
    /// to compare races across reductions and thread counts.
    pub key: RaceKey,
    /// Human-readable description of the two events.
    pub description: String,
}

/// Result of [`check_program`].
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Program name.
    pub program: String,
    /// Model the program was checked against.
    pub model: MemoryModel,
    /// Number of SC executions explored (analyzed). With partial-order
    /// reduction or early exit this is the work actually done, not the
    /// full interleaving count.
    pub executions: usize,
    /// Scheduling subtrees skipped by partial-order reduction.
    pub pruned: usize,
    /// Subtrees skipped by duplicate-state memoization
    /// ([`Reduction::SleepSetMemo`]); zero otherwise.
    pub memo_pruned: usize,
    /// Peak number of entries in the memo visited-table across shards.
    pub table_peak: usize,
    /// Whether the quantum transformation was applied.
    pub quantum_transformed: bool,
    /// Distinct illegal races — one representative per
    /// `(kind, instruction pair)`, keyed by static `(tid, iid)` so the
    /// list is stable under partial-order reduction.
    pub races: Vec<FoundRace>,
    /// The overall verdict.
    pub verdict: Verdict,
}

impl CheckReport {
    /// Did the program uphold the contract?
    pub fn is_race_free(&self) -> bool {
        self.verdict == Verdict::RaceFree
    }

    /// Distinct race kinds found.
    pub fn race_kinds(&self) -> Vec<RaceKind> {
        let mut out: Vec<RaceKind> = Vec::new();
        for r in &self.races {
            if !out.contains(&r.race.kind) {
                out.push(r.race.kind);
            }
        }
        out.sort();
        out
    }

    /// Does the report contain a race of the given kind?
    pub fn has_race_kind(&self, kind: RaceKind) -> bool {
        self.races.iter().any(|r| r.race.kind == kind)
    }
}

/// How the streaming checker runs.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Enumeration limits (execution budget, quantum domain).
    pub limits: EnumLimits,
    /// Worker threads for the sharded walk. The result is identical at
    /// any thread count; more threads only finish sooner.
    pub threads: usize,
    /// Search-space pruning. [`Reduction::SleepSet`] is sound for
    /// verdicts, race kinds and result sets (see DESIGN.md).
    pub reduction: Reduction,
    /// Stop exploring once every attainable race kind has a witness.
    pub early_exit: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            limits: EnumLimits::default(),
            threads: 1,
            reduction: Reduction::SleepSet,
            early_exit: true,
        }
    }
}

/// How each model views a program's annotations (see module docs).
fn model_view(p: &Program, model: MemoryModel) -> Program {
    match model {
        MemoryModel::Drf0 => {
            p.map_classes(|c| if c.is_atomic() { OpClass::Paired } else { OpClass::Data })
        }
        MemoryModel::Drf1 => p.map_classes(|c| match c {
            c if c.is_relaxed() => OpClass::Unpaired,
            // DRF1 predates one-sided synchronization: upgraded to paired.
            OpClass::Acquire | OpClass::Release => OpClass::Paired,
            c => c,
        }),
        MemoryModel::Drfrlx => p.clone(),
    }
}

/// Static identity of a racing pair: kind plus the two `(tid, iid)`
/// instruction coordinates, order-normalized. Stable across
/// interleavings, shards, reduction strategy and thread count — unlike
/// event ids or execution indices.
pub type RaceKey = (RaceKind, (usize, usize), (usize, usize));

/// The streaming race checker: one per shard. Analyzes each execution
/// as it completes and keeps one witness per static race key.
struct RaceCollector<'p> {
    view: &'p Program,
    detector: RaceDetector,
    attainable: &'p [RaceKind],
    early_exit: bool,
    explored: usize,
    keys: BTreeSet<RaceKey>,
    races: Vec<(RaceKey, FoundRace)>,
    found_kinds: BTreeSet<RaceKind>,
}

impl<'p> RaceCollector<'p> {
    fn new(view: &'p Program, attainable: &'p [RaceKind], early_exit: bool) -> RaceCollector<'p> {
        RaceCollector {
            view,
            detector: RaceDetector::for_program(view),
            attainable,
            early_exit,
            explored: 0,
            keys: BTreeSet::new(),
            races: Vec::new(),
            found_kinds: BTreeSet::new(),
        }
    }

    /// Can this collector's verdict still change? Once every attainable
    /// kind has a witness the answer is no.
    fn saturated(&self) -> bool {
        !self.attainable.is_empty() && self.attainable.iter().all(|k| self.found_kinds.contains(k))
    }
}

impl ExecutionVisitor for RaceCollector<'_> {
    fn visit(&mut self, e: &Execution) -> bool {
        let analysis = self.detector.analyze(e);
        for race in analysis.races() {
            let (ea, eb) = (&e.events[race.a], &e.events[race.b]);
            let mut pair = [(ea.tid, ea.iid), (eb.tid, eb.iid)];
            pair.sort_unstable();
            let key = (race.kind, pair[0], pair[1]);
            if self.keys.insert(key) {
                self.found_kinds.insert(race.kind);
                self.races.push((
                    key,
                    FoundRace {
                        exec_index: self.explored,
                        key,
                        description: format!(
                            "{}: {} between {} and {}",
                            self.view.name(),
                            race.kind,
                            crate::pretty::event_label(self.view, ea),
                            crate::pretty::event_label(self.view, eb),
                        ),
                        race,
                    },
                ));
            }
        }
        self.explored += 1;
        !(self.early_exit && self.saturated())
    }
}

/// Check `p` against `model` on the streaming pipeline, with explicit
/// options: sharded enumeration, partial-order reduction, parallel
/// workers and early exit. The report is deterministic — identical at
/// any `threads`.
///
/// # Errors
///
/// Returns [`EnumError`] if enumeration exceeds the configured limits.
pub fn check_program_with(
    p: &Program,
    model: MemoryModel,
    opts: &CheckOptions,
) -> Result<CheckReport, EnumError> {
    let view = model_view(p, model);
    let quantum = model == MemoryModel::Drfrlx && has_quantum(&view);
    let attainable = attainable_kinds(&view);
    // More workers than cores is pure oversubscription: the shards are
    // CPU-bound and the report is worker-count-invariant, so extra
    // threads can only add scheduling overhead.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let run = visit_sc_sharded(
        &view,
        &opts.limits,
        quantum,
        opts.reduction,
        opts.threads.min(cores.max(1)),
        &|| RaceCollector::new(&view, &attainable, opts.early_exit),
        &|v: &RaceCollector| opts.early_exit && v.saturated(),
    )?;
    // Deterministic merge: shards in DFS-frontier order, races deduped
    // by static key, execution indices offset by prior shards' work.
    let mut keys: BTreeSet<RaceKey> = BTreeSet::new();
    let mut races: Vec<FoundRace> = Vec::new();
    let mut offset = 0;
    for (v, stats) in run.shards {
        for (key, mut f) in v.races {
            if keys.insert(key) {
                f.exec_index += offset;
                races.push(f);
            }
        }
        offset += stats.explored;
    }
    let verdict = if races.is_empty() { Verdict::RaceFree } else { Verdict::Racy };
    Ok(CheckReport {
        program: p.name().to_string(),
        model,
        executions: run.stats.explored,
        pruned: run.stats.pruned,
        memo_pruned: run.stats.memo_pruned,
        table_peak: run.stats.table_peak,
        quantum_transformed: quantum,
        races,
        verdict,
    })
}

/// One completed shard of a resilient check — the unit of
/// checkpoint/resume. The shard plan is a deterministic function of
/// the program and options, so an index recorded by one process names
/// the same subtree in the next.
#[derive(Debug, Clone)]
pub struct ShardRecord {
    /// Index in the deterministic shard plan.
    pub index: usize,
    /// The shard's explored/pruned counts.
    pub stats: EnumStats,
    /// Did this shard alone witness every attainable race kind?
    pub saturated: bool,
    /// Races found in this shard, shard-local `exec_index`.
    pub races: Vec<FoundRace>,
}

/// Resilience options for [`check_program_resilient`]. The budget
/// (deadline / cancel / memory cap) travels inside
/// [`CheckOptions::limits`] so the DFS hot loop can poll it.
#[derive(Debug, Clone, Default)]
pub struct CheckResilience {
    /// Deterministic fault injection (chaos testing only).
    pub fault_plan: Option<FaultPlan>,
    /// Completed-shard records from a previous run's checkpoint; they
    /// are not re-run and merge into the final report as-is.
    pub completed: Vec<ShardRecord>,
}

/// Result of a resilient check: the (possibly partial) report plus how
/// the run ended and the per-shard state a checkpoint serializes.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The merged report. Under [`RunStatus::Inconclusive`] or
    /// [`RunStatus::Degraded`] it covers the completed shards — a
    /// sound prefix: every listed race is real (races are only ever
    /// found by exploring real executions), but absence of races is
    /// not yet a verdict.
    pub report: CheckReport,
    /// How the run ended.
    pub status: RunStatus,
    /// Every completed shard — previous runs' (from the checkpoint)
    /// plus this run's — in index order. This is the checkpoint
    /// payload.
    pub shards: Vec<ShardRecord>,
    /// Size of the deterministic shard plan.
    pub total_shards: usize,
}

impl CheckOutcome {
    /// Did every shard finish (report is exactly the non-resilient
    /// one)?
    pub fn is_complete(&self) -> bool {
        self.status.is_complete()
    }
}

/// [`check_program_with`], resilient: panic-isolated shards with one
/// retry (backing off [`Reduction::SleepSetMemo`] to
/// [`Reduction::SleepSet`]), cooperative budgets with a deadline
/// watchdog, deterministic fault injection, and resume over a
/// checkpoint's completed shards. Infallible — exhaustion comes back
/// as [`RunStatus::Inconclusive`], lost shards as
/// [`RunStatus::Degraded`], never an error or abort.
///
/// Determinism: with the same program, options, fault plan and
/// completed set, the merged report and status are identical at
/// `threads: 1`; at higher thread counts the *completed* prefix under
/// a real budget trip depends on timing, but every reported race is
/// still drawn from the same deterministic per-shard sets
/// (prefix-soundness).
pub fn check_program_resilient(
    p: &Program,
    model: MemoryModel,
    opts: &CheckOptions,
    res: &CheckResilience,
) -> CheckOutcome {
    let view = model_view(p, model);
    let quantum = model == MemoryModel::Drfrlx && has_quantum(&view);
    let attainable = attainable_kinds(&view);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let completed_cutoff = if opts.early_exit {
        res.completed.iter().filter(|r| r.saturated).map(|r| r.index).min()
    } else {
        None
    };
    let ropts = ResilienceOptions {
        fault_plan: res.fault_plan,
        completed: res.completed.iter().map(|r| r.index).collect(),
        completed_explored: res.completed.iter().map(|r| r.stats.explored).sum(),
        completed_cutoff,
    };
    let run = visit_sc_resilient(
        &view,
        &opts.limits,
        quantum,
        opts.reduction,
        opts.threads.min(cores.max(1)),
        &|| RaceCollector::new(&view, &attainable, opts.early_exit),
        &|v: &RaceCollector| opts.early_exit && v.saturated(),
        &ropts,
    );
    let frontier_pruned = run.frontier_pruned;
    let mut shards: Vec<ShardRecord> = res.completed.clone();
    for (index, v, stats) in run.shards {
        let saturated = v.saturated();
        shards.push(ShardRecord {
            index,
            stats,
            saturated,
            races: v.races.into_iter().map(|(_, f)| f).collect(),
        });
    }
    shards.sort_by_key(|r| r.index);
    // The same deterministic merge as the non-resilient path: shards
    // in index order, races deduped by static key, execution indices
    // offset by prior shards' work — so a resumed run reproduces the
    // uninterrupted report exactly.
    let mut keys: BTreeSet<RaceKey> = BTreeSet::new();
    let mut races: Vec<FoundRace> = Vec::new();
    let mut offset = 0;
    let mut agg = EnumStats::default();
    for r in &shards {
        for f in &r.races {
            if keys.insert(f.key) {
                let mut f = f.clone();
                f.exec_index += offset;
                races.push(f);
            }
        }
        offset += r.stats.explored;
        agg.absorb(r.stats);
    }
    agg.pruned += frontier_pruned;
    let verdict = if races.is_empty() { Verdict::RaceFree } else { Verdict::Racy };
    CheckOutcome {
        report: CheckReport {
            program: p.name().to_string(),
            model,
            executions: agg.explored,
            pruned: agg.pruned,
            memo_pruned: agg.memo_pruned,
            table_peak: agg.table_peak,
            quantum_transformed: quantum,
            races,
            verdict,
        },
        status: run.status,
        shards,
        total_shards: run.total_shards,
    }
}

/// Check `p` against `model` with explicit limits on the default
/// streaming pipeline (POR on, early exit on, single worker).
///
/// # Errors
///
/// Returns [`EnumError`] if enumeration exceeds the configured limits.
pub fn try_check_program(
    p: &Program,
    model: MemoryModel,
    limits: &EnumLimits,
) -> Result<CheckReport, EnumError> {
    check_program_with(
        p,
        model,
        &CheckOptions { limits: limits.clone(), ..CheckOptions::default() },
    )
}

/// The retained materializing reference checker: enumerate **every** SC
/// execution into a `Vec`, then analyze the vector. Differential tests
/// and the checker benchmark compare the streaming pipeline against
/// this; new code should use [`check_program_with`].
///
/// # Errors
///
/// Returns [`EnumError`] if enumeration exceeds the configured limits.
pub fn check_program_reference(
    p: &Program,
    model: MemoryModel,
    limits: &EnumLimits,
) -> Result<CheckReport, EnumError> {
    let view = model_view(p, model);
    let quantum = model == MemoryModel::Drfrlx && has_quantum(&view);
    let execs: Vec<Execution> =
        if quantum { enumerate_sc_quantum(&view, limits)? } else { enumerate_sc(&view, limits)? };
    let attainable = attainable_kinds(&view);
    let mut collector = RaceCollector::new(&view, &attainable, false);
    for e in &execs {
        collector.visit(e);
    }
    let races = collector.races.into_iter().map(|(_, f)| f).collect::<Vec<_>>();
    let verdict = if races.is_empty() { Verdict::RaceFree } else { Verdict::Racy };
    Ok(CheckReport {
        program: p.name().to_string(),
        model,
        executions: execs.len(),
        pruned: 0,
        memo_pruned: 0,
        table_peak: 0,
        quantum_transformed: quantum,
        races,
        verdict,
    })
}

/// Check `p` against `model` with default limits.
///
/// # Panics
///
/// Panics if enumeration exceeds the default execution limit; use
/// [`try_check_program`] to control limits and handle the error.
pub fn check_program(p: &Program, model: MemoryModel) -> CheckReport {
    try_check_program(p, model, &EnumLimits::default())
        .expect("SC enumeration exceeded default limits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RmwOp;

    /// Event counter (Listing 2, reduced): racy commutative increments.
    fn event_counter() -> Program {
        let mut p = Program::new("event_counter");
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 1);
        p.build()
    }

    #[test]
    fn event_counter_fails_drf0_and_drf1_as_relaxed() {
        // Viewed as DRF0/DRF1 the increments become paired/unpaired
        // atomics — atomics may race, so the program is legal under
        // those models too (just slower on hardware). The interesting
        // contrast is with a *data*-annotated version.
        assert!(check_program(&event_counter(), MemoryModel::Drf0).is_race_free());
        assert!(check_program(&event_counter(), MemoryModel::Drf1).is_race_free());
        assert!(check_program(&event_counter(), MemoryModel::Drfrlx).is_race_free());
    }

    #[test]
    fn data_annotated_counter_is_racy_under_every_model() {
        let mut p = Program::new("data_counter");
        p.thread().rmw(OpClass::Data, "c", RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Data, "c", RmwOp::FetchAdd, 1);
        let p = p.build();
        for model in MemoryModel::ALL {
            let r = check_program(&p, model);
            assert!(!r.is_race_free(), "{model} must flag the data race");
            assert!(r.has_race_kind(RaceKind::Data));
        }
    }

    #[test]
    fn quantum_program_is_checked_on_equivalent_program() {
        let mut p = Program::new("split_counter_read");
        p.thread().rmw(OpClass::Quantum, "c0", RmwOp::FetchAdd, 1);
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Quantum, "c0");
            t.observe(r);
        }
        let r = check_program(&p.build(), MemoryModel::Drfrlx);
        assert!(r.quantum_transformed);
        assert!(r.is_race_free());
    }

    #[test]
    fn report_metadata_is_populated() {
        let r = check_program(&event_counter(), MemoryModel::Drfrlx);
        assert_eq!(r.program, "event_counter");
        assert_eq!(r.model, MemoryModel::Drfrlx);
        assert_eq!(r.executions, 2);
        assert!(!r.quantum_transformed);
        assert!(r.race_kinds().is_empty());
    }

    #[test]
    fn mislabeled_commutative_exchange_flagged_only_by_drfrlx() {
        // DRF0/DRF1 view the exchanges as paired/unpaired atomics —
        // legal. DRFrlx checks the commutative contract and rejects.
        let mut p = Program::new("bad_comm");
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::Exchange, 5);
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 1);
        let p = p.build();
        assert!(check_program(&p, MemoryModel::Drf0).is_race_free());
        assert!(check_program(&p, MemoryModel::Drf1).is_race_free());
        let r = check_program(&p, MemoryModel::Drfrlx);
        assert!(r.has_race_kind(RaceKind::Commutative));
    }

    #[test]
    fn streaming_agrees_with_reference_on_every_model() {
        let mut p = Program::new("mixed");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 1);
            t.store(OpClass::Unpaired, "f", 1);
        }
        {
            let mut t = p.thread();
            let f = t.load(OpClass::Unpaired, "f");
            t.observe(f);
            let d = t.load(OpClass::Data, "x");
            t.observe(d);
        }
        let p = p.build();
        let limits = EnumLimits::default();
        for model in MemoryModel::ALL {
            let reference = check_program_reference(&p, model, &limits).unwrap();
            for threads in [1usize, 4] {
                let opts = CheckOptions { threads, ..CheckOptions::default() };
                let streamed = check_program_with(&p, model, &opts).unwrap();
                assert_eq!(streamed.verdict, reference.verdict, "{model} t={threads}");
                assert_eq!(streamed.race_kinds(), reference.race_kinds(), "{model} t={threads}");
                assert_eq!(
                    streamed.races.is_empty(),
                    reference.races.is_empty(),
                    "{model} t={threads}"
                );
            }
        }
    }

    #[test]
    fn early_exit_stops_after_saturation() {
        // Data-only program: the data race saturates the attainable
        // kinds on the first racy execution.
        let mut p = Program::new("dd");
        p.thread().store(OpClass::Data, "x", 1);
        p.thread().store(OpClass::Data, "x", 2);
        let p = p.build();
        let eager = check_program_with(&p, MemoryModel::Drfrlx, &CheckOptions::default()).unwrap();
        assert!(!eager.is_race_free());
        let full = check_program_with(
            &p,
            MemoryModel::Drfrlx,
            &CheckOptions { early_exit: false, ..CheckOptions::default() },
        )
        .unwrap();
        assert!(eager.executions <= full.executions);
        assert_eq!(eager.race_kinds(), full.race_kinds());
    }
}
