//! Whole-program DRF checking.
//!
//! A DRF-family model is a contract: *if* the program is race-free in
//! every SC execution (of its quantum-equivalent program, for DRFrlx),
//! *then* the system guarantees SC (quantum-equivalent) results.
//! [`check_program`] discharges the programmer's half of the contract
//! by enumerating every SC execution and running the Listing 7 race
//! detectors on each:
//!
//! * **DRF0** — every atomic is viewed as paired; illegal = data races
//!   (§2.3.2 with only data/atomic distinguished).
//! * **DRF1** — relaxed classes are viewed as unpaired (sound: stronger
//!   than annotated); illegal = data races.
//! * **DRFrlx** — classes as annotated; illegal = data, commutative,
//!   non-ordering, quantum and speculative races, detected on the
//!   quantum-equivalent program when quantum atomics are present.

use crate::classes::{MemoryModel, OpClass};
use crate::exec::{enumerate_sc, enumerate_sc_quantum, EnumError, EnumLimits, Execution};
use crate::program::Program;
use crate::quantum::has_quantum;
use crate::races::{Race, RaceDetector, RaceKind};

/// The verdict of a whole-program check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every SC execution (of the quantum-equivalent program) is free of
    /// illegal races: the program upholds its half of the contract and
    /// the system must appear SC.
    RaceFree,
    /// At least one SC execution contains an illegal race: the model
    /// makes no guarantee for this program.
    Racy,
}

/// One illegal race found during checking, with its provenance.
#[derive(Debug, Clone)]
pub struct FoundRace {
    /// Index of the execution (in enumeration order) exhibiting it.
    pub exec_index: usize,
    /// The racing pair and race kind.
    pub race: Race,
    /// Human-readable description of the two events.
    pub description: String,
}

/// Result of [`check_program`].
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Program name.
    pub program: String,
    /// Model the program was checked against.
    pub model: MemoryModel,
    /// Number of SC executions enumerated.
    pub executions: usize,
    /// Whether the quantum transformation was applied.
    pub quantum_transformed: bool,
    /// Distinct illegal races (one representative per (kind, a, b) per
    /// first execution exhibiting it).
    pub races: Vec<FoundRace>,
    /// The overall verdict.
    pub verdict: Verdict,
}

impl CheckReport {
    /// Did the program uphold the contract?
    pub fn is_race_free(&self) -> bool {
        self.verdict == Verdict::RaceFree
    }

    /// Distinct race kinds found.
    pub fn race_kinds(&self) -> Vec<RaceKind> {
        let mut out: Vec<RaceKind> = Vec::new();
        for r in &self.races {
            if !out.contains(&r.race.kind) {
                out.push(r.race.kind);
            }
        }
        out.sort();
        out
    }

    /// Does the report contain a race of the given kind?
    pub fn has_race_kind(&self, kind: RaceKind) -> bool {
        self.races.iter().any(|r| r.race.kind == kind)
    }
}

/// How each model views a program's annotations (see module docs).
fn model_view(p: &Program, model: MemoryModel) -> Program {
    match model {
        MemoryModel::Drf0 => {
            p.map_classes(|c| if c.is_atomic() { OpClass::Paired } else { OpClass::Data })
        }
        MemoryModel::Drf1 => p.map_classes(|c| match c {
            c if c.is_relaxed() => OpClass::Unpaired,
            // DRF1 predates one-sided synchronization: upgraded to paired.
            OpClass::Acquire | OpClass::Release => OpClass::Paired,
            c => c,
        }),
        MemoryModel::Drfrlx => p.clone(),
    }
}

/// Check `p` against `model` with explicit limits.
///
/// # Errors
///
/// Returns [`EnumError`] if enumeration exceeds the configured limits.
pub fn try_check_program(
    p: &Program,
    model: MemoryModel,
    limits: &EnumLimits,
) -> Result<CheckReport, EnumError> {
    let view = model_view(p, model);
    let quantum = model == MemoryModel::Drfrlx && has_quantum(&view);
    let execs: Vec<Execution> =
        if quantum { enumerate_sc_quantum(&view, limits)? } else { enumerate_sc(&view, limits)? };
    let detector = RaceDetector::for_program(&view);
    let mut races: Vec<FoundRace> = Vec::new();
    for (i, e) in execs.iter().enumerate() {
        let analysis = detector.analyze(e);
        for race in analysis.races() {
            let dup = races
                .iter()
                .any(|f| f.race.kind == race.kind && f.race.a == race.a && f.race.b == race.b);
            if !dup {
                races.push(FoundRace {
                    exec_index: i,
                    description: format!(
                        "{}: {} between {} and {}",
                        view.name(),
                        race.kind,
                        crate::pretty::event_label(&view, &e.events[race.a]),
                        crate::pretty::event_label(&view, &e.events[race.b]),
                    ),
                    race,
                });
            }
        }
    }
    let verdict = if races.is_empty() { Verdict::RaceFree } else { Verdict::Racy };
    Ok(CheckReport {
        program: p.name().to_string(),
        model,
        executions: execs.len(),
        quantum_transformed: quantum,
        races,
        verdict,
    })
}

/// Check `p` against `model` with default limits.
///
/// # Panics
///
/// Panics if enumeration exceeds the default execution limit; use
/// [`try_check_program`] to control limits and handle the error.
pub fn check_program(p: &Program, model: MemoryModel) -> CheckReport {
    try_check_program(p, model, &EnumLimits::default())
        .expect("SC enumeration exceeded default limits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RmwOp;

    /// Event counter (Listing 2, reduced): racy commutative increments.
    fn event_counter() -> Program {
        let mut p = Program::new("event_counter");
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 1);
        p.build()
    }

    #[test]
    fn event_counter_fails_drf0_and_drf1_as_relaxed() {
        // Viewed as DRF0/DRF1 the increments become paired/unpaired
        // atomics — atomics may race, so the program is legal under
        // those models too (just slower on hardware). The interesting
        // contrast is with a *data*-annotated version.
        assert!(check_program(&event_counter(), MemoryModel::Drf0).is_race_free());
        assert!(check_program(&event_counter(), MemoryModel::Drf1).is_race_free());
        assert!(check_program(&event_counter(), MemoryModel::Drfrlx).is_race_free());
    }

    #[test]
    fn data_annotated_counter_is_racy_under_every_model() {
        let mut p = Program::new("data_counter");
        p.thread().rmw(OpClass::Data, "c", RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Data, "c", RmwOp::FetchAdd, 1);
        let p = p.build();
        for model in MemoryModel::ALL {
            let r = check_program(&p, model);
            assert!(!r.is_race_free(), "{model} must flag the data race");
            assert!(r.has_race_kind(RaceKind::Data));
        }
    }

    #[test]
    fn quantum_program_is_checked_on_equivalent_program() {
        let mut p = Program::new("split_counter_read");
        p.thread().rmw(OpClass::Quantum, "c0", RmwOp::FetchAdd, 1);
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Quantum, "c0");
            t.observe(r);
        }
        let r = check_program(&p.build(), MemoryModel::Drfrlx);
        assert!(r.quantum_transformed);
        assert!(r.is_race_free());
    }

    #[test]
    fn report_metadata_is_populated() {
        let r = check_program(&event_counter(), MemoryModel::Drfrlx);
        assert_eq!(r.program, "event_counter");
        assert_eq!(r.model, MemoryModel::Drfrlx);
        assert_eq!(r.executions, 2);
        assert!(!r.quantum_transformed);
        assert!(r.race_kinds().is_empty());
    }

    #[test]
    fn mislabeled_commutative_exchange_flagged_only_by_drfrlx() {
        // DRF0/DRF1 view the exchanges as paired/unpaired atomics —
        // legal. DRFrlx checks the commutative contract and rejects.
        let mut p = Program::new("bad_comm");
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::Exchange, 5);
        p.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 1);
        let p = p.build();
        assert!(check_program(&p, MemoryModel::Drf0).is_race_free());
        assert!(check_program(&p, MemoryModel::Drf1).is_race_free());
        let r = check_program(&p, MemoryModel::Drfrlx);
        assert!(r.has_race_kind(RaceKind::Commutative));
    }
}
