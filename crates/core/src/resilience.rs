//! Resilience primitives shared by the three compute engines: budgets
//! with cooperative cancellation, structured exhaustion reasons, and
//! deterministic fault injection.
//!
//! The execution layer treats resource exhaustion as a *first-class
//! outcome* rather than a crash (herd reports partial exploration when
//! enumeration is cut short; this layer does the same). Three pieces
//! compose:
//!
//! * [`Budget`] — a shared, cooperatively-polled resource bound:
//!   wall-clock deadline, approximate memory high-water and an
//!   explicit cancel flag. The enumerator polls it amortized in the
//!   DFS hot loop ([`crate::exec`]); the sweep pool polls it per job.
//!   A watchdog thread past the deadline only has to call
//!   [`Budget::cancel`] — every poll site then unwinds with
//!   [`crate::exec::EnumError::Cancelled`].
//! * [`ExhaustReason`] / [`RunStatus`] — the structured vocabulary for
//!   "the run did not finish": `Inconclusive` carries what was
//!   explored and which shards remain (the frontier), `Degraded`
//!   names the shards lost to panics after retry. Both are reports,
//!   never aborts.
//! * [`FaultPlan`] — seeded, deterministic fault injection (SplitMix64,
//!   the same discipline as `drfrlx_conform::schedule_params`):
//!   whether shard `u` of engine `e` panics, stalls or exhausts on
//!   attempt `a` is a pure function of `(seed, e, u, a)`, so every
//!   chaos run is replayable from its seed alone. All injection is off
//!   unless a plan is supplied.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// SplitMix64 finalizer — the same mixer as the in-tree PRNG.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A shared resource bound polled cooperatively by the engines.
///
/// The execution-count budget stays where it always lived
/// ([`crate::exec::EnumLimits::max_executions`], a shared atomic
/// counter); `Budget` adds the bounds that need wall-clock or external
/// intervention: a deadline, an approximate per-engine memory
/// high-water, and a cancel flag anyone (a watchdog, a signal handler,
/// a test) may set.
#[derive(Debug, Default)]
pub struct Budget {
    cancel: AtomicBool,
    deadline: Option<Instant>,
    max_memory_bytes: Option<usize>,
}

impl Budget {
    /// A budget with no bounds — only explicit [`Budget::cancel`] can
    /// trip it.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A budget that expires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget { deadline: Some(Instant::now() + timeout), ..Budget::default() }
    }

    /// Cap the approximate per-engine memory high-water (journal,
    /// memo table, relation carriers — an estimate, not an allocator
    /// measurement).
    pub fn with_max_memory(mut self, bytes: usize) -> Budget {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Request cooperative cancellation; every poll site unwinds soon
    /// after.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Has someone called [`Budget::cancel`]?
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// One cooperative poll: `Err` when the budget is exhausted.
    /// `approx_memory_bytes` is the caller's current memory estimate
    /// (pass 0 to skip the memory check).
    ///
    /// # Errors
    ///
    /// [`ExhaustReason::Cancelled`] if the cancel flag is set,
    /// [`ExhaustReason::Deadline`] past the deadline,
    /// [`ExhaustReason::Memory`] past the memory cap.
    pub fn check(&self, approx_memory_bytes: usize) -> Result<(), ExhaustReason> {
        if self.cancelled() {
            return Err(ExhaustReason::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(ExhaustReason::Deadline);
            }
        }
        if let Some(cap) = self.max_memory_bytes {
            if approx_memory_bytes > cap {
                return Err(ExhaustReason::Memory { limit: cap });
            }
        }
        Ok(())
    }
}

/// Why a run stopped short of full exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustReason {
    /// The shared execution counter hit
    /// [`crate::exec::EnumLimits::max_executions`].
    Executions {
        /// The configured limit.
        limit: usize,
    },
    /// The wall-clock deadline passed.
    Deadline,
    /// Someone called [`Budget::cancel`] (watchdog, signal, test).
    Cancelled,
    /// The approximate memory high-water passed its cap.
    Memory {
        /// The configured cap in bytes.
        limit: usize,
    },
}

impl fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExhaustReason::Executions { limit } => {
                write!(f, "execution budget ({limit}) exhausted")
            }
            ExhaustReason::Deadline => write!(f, "wall-clock deadline expired"),
            ExhaustReason::Cancelled => write!(f, "cancelled"),
            ExhaustReason::Memory { limit } => {
                write!(f, "approximate memory high-water passed {limit} bytes")
            }
        }
    }
}

/// How a resilient run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Every unit of work finished; the report is exactly what the
    /// non-resilient path would have produced.
    Complete,
    /// Some units were lost to panics (or injected faults) even after
    /// retry; the report covers every other unit.
    Degraded {
        /// Indices of the lost units (shards or jobs), ascending.
        lost: Vec<usize>,
    },
    /// A global budget ran out before every unit finished. The report
    /// covers the completed units — a sound prefix — and `frontier`
    /// names the units still to run (the input to `--resume`).
    Inconclusive {
        /// What ran out.
        reason: ExhaustReason,
        /// Indices of units not completed, ascending.
        frontier: Vec<usize>,
    },
}

impl RunStatus {
    /// Did every unit finish?
    pub fn is_complete(&self) -> bool {
        matches!(self, RunStatus::Complete)
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunStatus::Complete => write!(f, "complete"),
            RunStatus::Degraded { lost } => {
                write!(f, "degraded ({} unit(s) lost: {lost:?})", lost.len())
            }
            RunStatus::Inconclusive { reason, frontier } => {
                write!(f, "inconclusive ({reason}; {} unit(s) unfinished)", frontier.len())
            }
        }
    }
}

/// Which compute engine a fault-injection point belongs to. Part of
/// the [`FaultPlan`] hash input, so one seed drives distinct fault
/// schedules per engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineId {
    /// The streaming checker's shard pool (`drfrlx-core::exec`).
    Checker,
    /// The simulation sweep pool (`hsim-sys::run_matrix`).
    Sweep,
    /// The conformance harness (`drfrlx-conform`).
    Conform,
}

impl EngineId {
    fn tag(self) -> u64 {
        match self {
            EngineId::Checker => 0x1000_0001,
            EngineId::Sweep => 0x1000_0002,
            EngineId::Conform => 0x1000_0003,
        }
    }
}

/// A fault a [`FaultPlan`] may inject at a shard/job boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The unit panics (caught by the unit's `catch_unwind`).
    Panic,
    /// The unit stalls until the watchdog cancels it (or a bounded
    /// fallback wait elapses) and is then treated as failed.
    Stall,
    /// The unit reports budget exhaustion without doing its work.
    Exhaust,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Fault::Panic => "injected panic",
            Fault::Stall => "injected stall",
            Fault::Exhaust => "injected budget exhaustion",
        })
    }
}

/// Deterministic fault injection: a pure function from
/// `(seed, engine, unit, attempt)` to an optional [`Fault`], SplitMix64
/// through and through — the same replayability discipline as the
/// conformance harness's `schedule_params`. With no plan (the
/// default everywhere) nothing is ever injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    mode: Mode,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Seeded(u64),
    Pinned { engine: EngineId, unit: usize, attempts: usize, fault: Fault },
}

impl FaultPlan {
    /// The seeded plan: roughly one unit-attempt in five draws a
    /// fault, split evenly across the three kinds.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { mode: Mode::Seeded(seed) }
    }

    /// A surgical plan for tests: inject `fault` at `(engine, unit)`
    /// for the first `attempts` attempts, nothing anywhere else. With
    /// `attempts == 1` the retry succeeds; with `attempts >= 2` the
    /// unit is lost.
    pub fn pinned(engine: EngineId, unit: usize, attempts: usize, fault: Fault) -> FaultPlan {
        FaultPlan { mode: Mode::Pinned { engine, unit, attempts, fault } }
    }

    /// The fault (if any) to inject when `engine` starts `unit` on
    /// `attempt` (0 = first try, 1 = retry).
    pub fn fault_for(&self, engine: EngineId, unit: usize, attempt: usize) -> Option<Fault> {
        match self.mode {
            Mode::Pinned { engine: e, unit: u, attempts, fault } => {
                (e == engine && u == unit && attempt < attempts).then_some(fault)
            }
            Mode::Seeded(seed) => {
                let h = mix64(
                    mix64(seed ^ engine.tag())
                        ^ mix64(unit as u64 ^ 0x5851_F42D_4C95_7F2D)
                        ^ mix64(attempt as u64 ^ 0x1405_7B7E_F767_814F),
                );
                match h % 16 {
                    0 => Some(Fault::Panic),
                    1 => Some(Fault::Stall),
                    2 => Some(Fault::Exhaust),
                    _ => None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.check(usize::MAX / 2).is_ok());
        assert!(!b.cancelled());
    }

    #[test]
    fn cancel_trips_every_poll() {
        let b = Budget::unlimited();
        b.cancel();
        assert_eq!(b.check(0), Err(ExhaustReason::Cancelled));
    }

    #[test]
    fn elapsed_deadline_trips() {
        let b = Budget::with_timeout(Duration::from_secs(0));
        assert_eq!(b.check(0), Err(ExhaustReason::Deadline));
    }

    #[test]
    fn memory_cap_compares_the_estimate() {
        let b = Budget::unlimited().with_max_memory(1000);
        assert!(b.check(1000).is_ok());
        assert_eq!(b.check(1001), Err(ExhaustReason::Memory { limit: 1000 }));
    }

    #[test]
    fn fault_plan_is_a_pure_function() {
        let plan = FaultPlan::seeded(42);
        for unit in 0..64 {
            for attempt in 0..2 {
                for engine in [EngineId::Checker, EngineId::Sweep, EngineId::Conform] {
                    assert_eq!(
                        plan.fault_for(engine, unit, attempt),
                        plan.fault_for(engine, unit, attempt),
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_plans_inject_every_fault_kind_somewhere() {
        let plan = FaultPlan::seeded(1);
        let mut kinds = std::collections::BTreeSet::new();
        for unit in 0..512 {
            if let Some(f) = plan.fault_for(EngineId::Checker, unit, 0) {
                kinds.insert(format!("{f:?}"));
            }
        }
        assert_eq!(kinds.len(), 3, "512 units should draw all three fault kinds");
    }

    #[test]
    fn engines_get_distinct_fault_schedules() {
        let plan = FaultPlan::seeded(7);
        let per_engine = |e: EngineId| -> Vec<Option<Fault>> {
            (0..256).map(|u| plan.fault_for(e, u, 0)).collect()
        };
        assert_ne!(per_engine(EngineId::Checker), per_engine(EngineId::Sweep));
        assert_ne!(per_engine(EngineId::Sweep), per_engine(EngineId::Conform));
    }

    #[test]
    fn pinned_plan_is_surgical() {
        let plan = FaultPlan::pinned(EngineId::Sweep, 3, 1, Fault::Panic);
        assert_eq!(plan.fault_for(EngineId::Sweep, 3, 0), Some(Fault::Panic));
        assert_eq!(plan.fault_for(EngineId::Sweep, 3, 1), None, "retry succeeds");
        assert_eq!(plan.fault_for(EngineId::Sweep, 2, 0), None);
        assert_eq!(plan.fault_for(EngineId::Checker, 3, 0), None);
    }

    #[test]
    fn run_status_displays() {
        assert_eq!(RunStatus::Complete.to_string(), "complete");
        let d = RunStatus::Degraded { lost: vec![2, 5] };
        assert!(d.to_string().contains("[2, 5]"));
        let i = RunStatus::Inconclusive {
            reason: ExhaustReason::Executions { limit: 10 },
            frontier: vec![1],
        };
        assert!(i.to_string().contains("execution budget (10)"));
        assert!(!i.is_complete());
    }
}
