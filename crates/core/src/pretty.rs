//! Human-readable rendering of events, executions and program/conflict
//! graphs (used by the Figure 2 harness and in race descriptions).

use crate::exec::{Access, Event, Execution};
use crate::program::Program;
use std::fmt::Write as _;

/// A compact label for one event, e.g. `T0.i1: W(NO) y=2`.
pub fn event_label(p: &Program, ev: &Event) -> String {
    let loc = p.loc_name(ev.loc);
    match ev.access {
        Access::Read => {
            format!("T{}.i{}: R({}) {}={}", ev.tid, ev.iid, ev.class, loc, ev.rval.unwrap_or(0))
        }
        Access::Write => {
            format!("T{}.i{}: W({}) {}={}", ev.tid, ev.iid, ev.class, loc, ev.wval.unwrap_or(0))
        }
        Access::Rmw => format!(
            "T{}.i{}: RMW({}) {}:{}->{}",
            ev.tid,
            ev.iid,
            ev.class,
            loc,
            ev.rval.unwrap_or(0),
            ev.wval.unwrap_or(0)
        ),
    }
}

/// Render an execution: the SC total order, one event per line.
pub fn format_execution(p: &Program, e: &Execution) -> String {
    let mut out = String::new();
    for (i, &ev) in e.order.iter().enumerate() {
        let _ = writeln!(out, "  {:>2}. {}", i + 1, event_label(p, &e.events[ev]));
    }
    out
}

/// Render the program/conflict graph of an execution as an edge list
/// (po edges are reduced to cover adjacent instructions for
/// readability; communication edges are printed in full).
pub fn format_conflict_graph(p: &Program, e: &Execution) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "events:");
    for ev in &e.events {
        let _ = writeln!(out, "  e{}: {}", ev.id, event_label(p, ev));
    }
    let _ = writeln!(out, "edges:");
    // Reduced po: skip pairs implied transitively.
    for (a, b) in e.po.iter_pairs() {
        let implied = (0..e.len()).any(|m| e.po.contains(a, m) && e.po.contains(m, b));
        if !implied {
            let _ = writeln!(out, "  e{a} --po--> e{b}");
        }
    }
    for (a, b) in e.rf.iter_pairs() {
        let _ = writeln!(out, "  e{a} --rf--> e{b}");
    }
    for (a, b) in e.co.iter_pairs() {
        let implied = (0..e.len()).any(|m| e.co.contains(a, m) && e.co.contains(m, b));
        if !implied {
            let _ = writeln!(out, "  e{a} --co--> e{b}");
        }
    }
    for (a, b) in e.fr.iter_pairs() {
        let _ = writeln!(out, "  e{a} --fr--> e{b}");
    }
    out
}

/// Render the graph in Graphviz DOT syntax.
pub fn format_dot(p: &Program, e: &Execution) -> String {
    let mut out = String::from("digraph pcg {\n  rankdir=TB;\n");
    for ev in &e.events {
        let _ = writeln!(
            out,
            "  e{} [label=\"{}\", shape=box];",
            ev.id,
            event_label(p, ev).replace('"', "'")
        );
    }
    for (a, b) in e.po.iter_pairs() {
        let implied = (0..e.len()).any(|m| e.po.contains(a, m) && e.po.contains(m, b));
        if !implied {
            let _ = writeln!(out, "  e{a} -> e{b} [label=\"po\"];");
        }
    }
    for (label, rel) in [("rf", &e.rf), ("fr", &e.fr)] {
        for (a, b) in rel.iter_pairs() {
            let _ = writeln!(out, "  e{a} -> e{b} [label=\"{label}\", style=dashed];");
        }
    }
    for (a, b) in e.co.iter_pairs() {
        let implied = (0..e.len()).any(|m| e.co.contains(a, m) && e.co.contains(m, b));
        if !implied {
            let _ = writeln!(out, "  e{a} -> e{b} [label=\"co\", style=dashed];");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::OpClass;
    use crate::exec::{enumerate_sc, EnumLimits};
    use crate::program::Program;

    fn sample() -> (Program, Execution) {
        let mut p = Program::new("pretty");
        {
            let mut t = p.thread();
            t.store(OpClass::Unpaired, "x", 3);
            t.store(OpClass::NonOrdering, "y", 2);
        }
        {
            let mut t = p.thread();
            t.load(OpClass::NonOrdering, "y");
            t.load(OpClass::Unpaired, "x");
        }
        let p = p.build();
        let e = enumerate_sc(&p, &EnumLimits::default()).unwrap().remove(0);
        (p, e)
    }

    #[test]
    fn labels_name_threads_classes_and_locations() {
        let (p, e) = sample();
        let label = event_label(&p, &e.events[0]);
        assert!(label.contains("T0"));
        assert!(label.contains("UNP"));
        assert!(label.contains("x=3"));
    }

    #[test]
    fn execution_listing_has_one_line_per_event() {
        let (p, e) = sample();
        let s = format_execution(&p, &e);
        assert_eq!(s.lines().count(), e.len());
    }

    #[test]
    fn graph_contains_po_and_com_edges() {
        let (p, e) = sample();
        let s = format_conflict_graph(&p, &e);
        assert!(s.contains("--po-->"));
        // Some communication edge must exist (rf or fr on x / y).
        assert!(s.contains("--rf-->") || s.contains("--fr-->") || s.contains("--co-->"));
    }

    #[test]
    fn dot_output_is_wellformed() {
        let (p, e) = sample();
        let s = format_dot(&p, &e);
        assert!(s.starts_with("digraph"));
        assert!(s.trim_end().ends_with('}'));
        for ev in &e.events {
            assert!(s.contains(&format!("e{} [label=", ev.id)));
        }
    }
}
