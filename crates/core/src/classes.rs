//! Shared vocabulary of the paper: operation classes, memory models,
//! coherence protocols and the six evaluated system configurations.

use std::fmt;

/// How a memory operation is distinguished to the system (paper §3.6).
///
/// DRFrlx requires every memory operation to be distinguished as `Data`
/// or as one of six atomic classes. `Paired` corresponds to C++ SC
/// atomics; `Unpaired` comes from DRF1; the remaining four are the
/// relaxed-atomic use cases the paper identifies (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// An ordinary, never-racing access (DRF0's "data" operations).
    Data,
    /// An SC atomic (C++ `memory_order_seq_cst`); DRF1's paired atomic.
    Paired,
    /// DRF1's unpaired atomic: racy, but never orders data operations.
    Unpaired,
    /// Racy interactions only via commuting operations whose loaded
    /// values are unobserved (§3.2, event counters).
    Commutative,
    /// Racy, but never responsible for creating an order between other
    /// accesses (§3.3, flags).
    NonOrdering,
    /// Truly non-SC; the program must be correct for *any* loaded value
    /// (§3.4, split/reference counters).
    Quantum,
    /// Racy loads whose misspeculated values are discarded (§3.5,
    /// seqlocks).
    Speculative,
    /// One-sided synchronization: orders this operation before
    /// everything po-later (like C++ `memory_order_acquire`). Paper §7
    /// future work, modelled after PLpc; synchronizes when it reads
    /// from a [`OpClass::Release`] or [`OpClass::Paired`] write.
    ///
    /// **Guarantee caveat**: one-sided atomics provide happens-before
    /// ordering, not full SC — programs whose only synchronization
    /// around a cycle is one-sided (e.g. rel/acq store buffering) can
    /// observe non-SC results, exactly as in C++. The SC-centric
    /// guarantee (Theorem 3.1) applies to programs without one-sided
    /// atomics; PLpc's unessential/loop characterizations would be
    /// needed to recover SC reasoning here.
    Acquire,
    /// One-sided synchronization: orders everything po-earlier before
    /// this operation (like C++ `memory_order_release`).
    Release,
}

impl OpClass {
    /// All nine classes: the paper's seven plus the §7 acquire/release
    /// extension.
    pub const ALL: [OpClass; 9] = [
        OpClass::Data,
        OpClass::Paired,
        OpClass::Unpaired,
        OpClass::Commutative,
        OpClass::NonOrdering,
        OpClass::Quantum,
        OpClass::Speculative,
        OpClass::Acquire,
        OpClass::Release,
    ];

    /// Is this any kind of atomic (i.e. not a data access)?
    pub fn is_atomic(self) -> bool {
        self != OpClass::Data
    }

    /// Is this one of the four relaxed-atomic categories DRFrlx adds
    /// beyond DRF1? (§3.6: for system optimization these merge into a
    /// single "relaxed" category.)
    pub fn is_relaxed(self) -> bool {
        matches!(
            self,
            OpClass::Commutative | OpClass::NonOrdering | OpClass::Quantum | OpClass::Speculative
        )
    }

    /// Does this class carry synchronization (create happens-before
    /// edges) on its read side?
    pub fn is_acquire_side(self) -> bool {
        matches!(self, OpClass::Paired | OpClass::Acquire)
    }

    /// Does this class carry synchronization on its write side?
    pub fn is_release_side(self) -> bool {
        matches!(self, OpClass::Paired | OpClass::Release)
    }

    /// Is this an ordering atomic (participates in the atomic-atomic
    /// program-order guarantee: paired, unpaired, acquire, release)?
    pub fn is_ordering_atomic(self) -> bool {
        matches!(self, OpClass::Paired | OpClass::Unpaired | OpClass::Acquire | OpClass::Release)
    }

    /// Short label used in printed executions ("P", "UNP", "NO", ...).
    pub fn short(self) -> &'static str {
        match self {
            OpClass::Data => "D",
            OpClass::Paired => "P",
            OpClass::Unpaired => "UNP",
            OpClass::Commutative => "COM",
            OpClass::NonOrdering => "NO",
            OpClass::Quantum => "Q",
            OpClass::Speculative => "SPEC",
            OpClass::Acquire => "ACQ",
            OpClass::Release => "REL",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short())
    }
}

/// What an operation's class means to the *hardware* once a memory model
/// is fixed (paper Table 4 / §3.6).
///
/// The four relaxed categories are indistinguishable to the system: they
/// allow the same optimizations. Only the programmer-facing contract
/// differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strength {
    /// Plain data access.
    Data,
    /// Invalidate at loads, flush store buffer at stores, no overlap.
    Paired,
    /// No invalidate / flush, but executes in program order with respect
    /// to other atomics.
    Unpaired,
    /// May additionally overlap with other atomics in the memory system.
    Relaxed,
    /// Acquire half of paired: invalidates, never flushes; blocks
    /// po-later operations only.
    Acquire,
    /// Release half of paired: flushes, never invalidates; waits for
    /// po-earlier operations only.
    Release,
}

/// The three consistency models evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemoryModel {
    /// SC-for-DRF: all atomics are paired.
    Drf0,
    /// Adds unpaired atomics (Adve & Hill 1993).
    Drf1,
    /// This paper: adds commutative, non-ordering, quantum and
    /// speculative atomics.
    Drfrlx,
}

impl MemoryModel {
    /// All three models, weakest-guarantee last.
    pub const ALL: [MemoryModel; 3] = [MemoryModel::Drf0, MemoryModel::Drf1, MemoryModel::Drfrlx];

    /// Map a programmer annotation to the strength the system enforces
    /// under this model.
    ///
    /// * DRF0 knows only data/atomic, so every atomic is paired.
    /// * DRF1 knows paired/unpaired, so the relaxed classes degrade to
    ///   unpaired (sound: stronger than required).
    /// * DRFrlx enforces exactly the annotated strength.
    pub fn strength_of(self, class: OpClass) -> Strength {
        match (self, class) {
            (_, OpClass::Data) => Strength::Data,
            (MemoryModel::Drf0, _) => Strength::Paired,
            (_, OpClass::Paired) => Strength::Paired,
            // DRF1 has no one-sided synchronization: acquire/release
            // degrade (soundly) to paired, everything else to unpaired.
            (MemoryModel::Drf1, OpClass::Acquire | OpClass::Release) => Strength::Paired,
            (MemoryModel::Drf1, _) => Strength::Unpaired,
            (_, OpClass::Unpaired) => Strength::Unpaired,
            (MemoryModel::Drfrlx, OpClass::Acquire) => Strength::Acquire,
            (MemoryModel::Drfrlx, OpClass::Release) => Strength::Release,
            (MemoryModel::Drfrlx, _) => Strength::Relaxed,
        }
    }

    /// The classes a program may use under this model, i.e. the classes
    /// whose contract the model defines.
    pub fn admits(self, class: OpClass) -> bool {
        match self {
            MemoryModel::Drf0 => matches!(class, OpClass::Data | OpClass::Paired),
            MemoryModel::Drf1 => {
                matches!(class, OpClass::Data | OpClass::Paired | OpClass::Unpaired)
            }
            MemoryModel::Drfrlx => true,
        }
    }
}

impl fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemoryModel::Drf0 => "DRF0",
            MemoryModel::Drf1 => "DRF1",
            MemoryModel::Drfrlx => "DRFrlx",
        })
    }
}

/// The coherence protocols the simulator implements: the paper's two
/// (§2.1, §2.2) plus a writeback MESI-style baseline (the CPU-class
/// protocol §2 contrasts against).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Protocol {
    /// Conventional GPU coherence: write-through, full self-invalidation
    /// on paired loads, store-buffer flush on paired stores, all atomics
    /// performed at the shared L2.
    Gpu,
    /// DeNovo: ownership for stores and atomics at the L1, writeback,
    /// selective self-invalidation, atomic reuse and MSHR coalescing.
    DeNovo,
    /// Writeback MESI-style ownership coherence (CPU-class baseline):
    /// a directory tracks sharers, stores invalidate them, reads of
    /// dirty lines recall the owner, atomics execute at an owned L1,
    /// and acquires are free (the hardware keeps caches coherent, so
    /// nothing needs self-invalidation).
    MesiWb,
}

impl Protocol {
    /// The two protocols evaluated in the paper. Everything keyed to the
    /// paper's presentation (six-config sweeps, committed artifacts)
    /// iterates this set.
    pub const ALL: [Protocol; 2] = [Protocol::Gpu, Protocol::DeNovo];

    /// Every implemented protocol, paper pair first.
    pub const WITH_EXTENSIONS: [Protocol; 3] = [Protocol::Gpu, Protocol::DeNovo, Protocol::MesiWb];

    /// Parse a protocol name as accepted by the CLI `--protocol` flag
    /// (case-insensitive: "gpu", "denovo", "mesi" / "mesi-wb").
    pub fn from_name(s: &str) -> Option<Protocol> {
        match s.to_ascii_lowercase().as_str() {
            "gpu" => Some(Protocol::Gpu),
            "denovo" | "de-novo" => Some(Protocol::DeNovo),
            "mesi" | "mesi-wb" | "mesiwb" => Some(Protocol::MesiWb),
            _ => None,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Protocol::Gpu => "GPU",
            Protocol::DeNovo => "DeNovo",
            Protocol::MesiWb => "MESI-WB",
        })
    }
}

/// One of the six evaluated protocol × model configurations (§4.3):
/// GD0, GD1, GDR, DD0, DD1, DDR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SystemConfig {
    /// Coherence protocol.
    pub protocol: Protocol,
    /// Consistency model.
    pub model: MemoryModel,
}

impl SystemConfig {
    /// Construct a configuration.
    pub fn new(protocol: Protocol, model: MemoryModel) -> Self {
        SystemConfig { protocol, model }
    }

    /// All six configurations in the paper's presentation order:
    /// GD0, GD1, GDR, DD0, DD1, DDR.
    pub fn all() -> [SystemConfig; 6] {
        let mut out = [SystemConfig::new(Protocol::Gpu, MemoryModel::Drf0); 6];
        let mut i = 0;
        for protocol in Protocol::ALL {
            for model in MemoryModel::ALL {
                out[i] = SystemConfig { protocol, model };
                i += 1;
            }
        }
        out
    }

    /// Every implemented configuration: the paper's six followed by the
    /// MESI-WB extension (MD0, MD1, MDR).
    pub fn extended() -> [SystemConfig; 9] {
        let mut out = [SystemConfig::new(Protocol::Gpu, MemoryModel::Drf0); 9];
        let mut i = 0;
        for protocol in Protocol::WITH_EXTENSIONS {
            for model in MemoryModel::ALL {
                out[i] = SystemConfig { protocol, model };
                i += 1;
            }
        }
        out
    }

    /// The abbreviation for this configuration: the paper's for its six
    /// ("GD0"), the same scheme for the MESI-WB extension ("MD0").
    pub fn abbrev(self) -> &'static str {
        match (self.protocol, self.model) {
            (Protocol::Gpu, MemoryModel::Drf0) => "GD0",
            (Protocol::Gpu, MemoryModel::Drf1) => "GD1",
            (Protocol::Gpu, MemoryModel::Drfrlx) => "GDR",
            (Protocol::DeNovo, MemoryModel::Drf0) => "DD0",
            (Protocol::DeNovo, MemoryModel::Drf1) => "DD1",
            (Protocol::DeNovo, MemoryModel::Drfrlx) => "DDR",
            (Protocol::MesiWb, MemoryModel::Drf0) => "MD0",
            (Protocol::MesiWb, MemoryModel::Drf1) => "MD1",
            (Protocol::MesiWb, MemoryModel::Drfrlx) => "MDR",
        }
    }

    /// Parse an abbreviation ("GD0".."DDR", "MD0".."MDR";
    /// case-insensitive).
    pub fn from_abbrev(s: &str) -> Option<SystemConfig> {
        SystemConfig::extended().into_iter().find(|c| c.abbrev().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drf0_pairs_every_atomic() {
        for class in OpClass::ALL {
            let s = MemoryModel::Drf0.strength_of(class);
            if class == OpClass::Data {
                assert_eq!(s, Strength::Data);
            } else {
                assert_eq!(s, Strength::Paired, "{class:?} must be paired under DRF0");
            }
        }
    }

    #[test]
    fn drf1_degrades_relaxed_to_unpaired() {
        assert_eq!(MemoryModel::Drf1.strength_of(OpClass::Commutative), Strength::Unpaired);
        assert_eq!(MemoryModel::Drf1.strength_of(OpClass::Quantum), Strength::Unpaired);
        assert_eq!(MemoryModel::Drf1.strength_of(OpClass::Paired), Strength::Paired);
        assert_eq!(MemoryModel::Drf1.strength_of(OpClass::Unpaired), Strength::Unpaired);
    }

    #[test]
    fn drfrlx_merges_relaxed_categories() {
        for class in
            [OpClass::Commutative, OpClass::NonOrdering, OpClass::Quantum, OpClass::Speculative]
        {
            assert_eq!(MemoryModel::Drfrlx.strength_of(class), Strength::Relaxed);
        }
        assert_eq!(MemoryModel::Drfrlx.strength_of(OpClass::Unpaired), Strength::Unpaired);
    }

    #[test]
    fn admits_is_monotone_in_model() {
        for class in OpClass::ALL {
            if MemoryModel::Drf0.admits(class) {
                assert!(MemoryModel::Drf1.admits(class));
            }
            if MemoryModel::Drf1.admits(class) {
                assert!(MemoryModel::Drfrlx.admits(class));
            }
        }
    }

    #[test]
    fn config_abbrevs_roundtrip() {
        for cfg in SystemConfig::extended() {
            assert_eq!(SystemConfig::from_abbrev(cfg.abbrev()), Some(cfg));
        }
        assert_eq!(SystemConfig::from_abbrev("gdr").unwrap().abbrev(), "GDR");
        assert_eq!(SystemConfig::from_abbrev("mdr").unwrap().abbrev(), "MDR");
        assert_eq!(SystemConfig::from_abbrev("XYZ"), None);
    }

    #[test]
    fn six_distinct_configs() {
        let all = SystemConfig::all();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn extended_configs_prefix_matches_paper_set() {
        let ext = SystemConfig::extended();
        assert_eq!(&ext[..6], &SystemConfig::all()[..], "paper set must come first, unchanged");
        for cfg in &ext[6..] {
            assert_eq!(cfg.protocol, Protocol::MesiWb);
        }
    }

    #[test]
    fn protocol_names_parse() {
        assert_eq!(Protocol::from_name("gpu"), Some(Protocol::Gpu));
        assert_eq!(Protocol::from_name("DeNovo"), Some(Protocol::DeNovo));
        assert_eq!(Protocol::from_name("mesi"), Some(Protocol::MesiWb));
        assert_eq!(Protocol::from_name("MESI-WB"), Some(Protocol::MesiWb));
        assert_eq!(Protocol::from_name("mose"), None);
    }

    #[test]
    fn relaxed_classification() {
        assert!(!OpClass::Data.is_relaxed());
        assert!(!OpClass::Paired.is_relaxed());
        assert!(!OpClass::Unpaired.is_relaxed());
        assert!(OpClass::Speculative.is_relaxed());
        assert!(!OpClass::Data.is_atomic());
        assert!(OpClass::Unpaired.is_atomic());
    }
}
