//! A small relation-algebra toolkit.
//!
//! Herd models (like the paper's Listing 7) are written as expressions
//! over binary relations on events: unions, intersections, differences,
//! sequential composition (`;`), transitive closure (`+`), inverses, and
//! restrictions to classes of events (`Paired * PairedR`, `at-least-one
//! W`...). [`Relation`] provides exactly those combinators over a dense
//! bit matrix, which is the right representation for litmus-sized
//! executions (tens of events).
//!
//! Rows are packed into `u64` words, so the set operations, sequential
//! composition and the O(n³) transitive closure all work on 64 event
//! pairs per instruction — the closure in particular is row-OR
//! Floyd–Warshall, which is what makes running the race detectors over
//! millions of enumerated executions affordable.

use std::fmt;

/// Bits per packed word.
const WORD: usize = 64;

/// Words kept inline before spilling to the heap. 24 words is one row
/// set for a 24-event execution at stride 1 (or 3 rows at 8 events) —
/// enough for the whole litmus corpus including the 4-thread stress
/// programs, so the streaming enumerator's six incrementally-maintained
/// relations never touch the allocator on the hot path.
const INLINE_WORDS: usize = 24;

/// Packed word storage: inline for litmus-sized carriers, heap beyond.
/// Equality is by content (two storages with the same words are equal
/// regardless of where they live), so [`Relation`]'s derived `Eq` stays
/// exact even when a scratch buffer keeps a heap allocation across
/// [`Relation::reset`] calls.
#[derive(Clone)]
enum Words {
    Inline { len: u8, buf: [u64; INLINE_WORDS] },
    Heap(Vec<u64>),
}

impl Words {
    fn zeroed(len: usize) -> Words {
        if len <= INLINE_WORDS {
            Words::Inline { len: len as u8, buf: [0; INLINE_WORDS] }
        } else {
            Words::Heap(vec![0; len])
        }
    }

    fn as_slice(&self) -> &[u64] {
        match self {
            Words::Inline { len, buf } => &buf[..*len as usize],
            Words::Heap(v) => v,
        }
    }

    fn as_mut(&mut self) -> &mut [u64] {
        match self {
            Words::Inline { len, buf } => &mut buf[..*len as usize],
            Words::Heap(v) => v,
        }
    }

    /// Zero and resize in place, reusing a heap buffer when one exists.
    fn reset(&mut self, len: usize) {
        match self {
            Words::Heap(v) => {
                v.clear();
                v.resize(len, 0);
            }
            Words::Inline { .. } if len <= INLINE_WORDS => {
                *self = Words::Inline { len: len as u8, buf: [0; INLINE_WORDS] };
            }
            Words::Inline { .. } => *self = Words::Heap(vec![0; len]),
        }
    }
}

impl PartialEq for Words {
    fn eq(&self, other: &Words) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Words {}

/// A binary relation over event ids `0..n`.
///
/// ```
/// use drfrlx_core::relation::Relation;
///
/// let po = Relation::from_pairs(3, [(0, 1), (1, 2)]);
/// let hb = po.transitive_closure();
/// assert!(hb.contains(0, 2));
/// assert!(hb.is_acyclic());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    n: usize,
    /// Words per row (`ceil(n / 64)`).
    stride: usize,
    /// Row-major packed bits; tail bits of each row beyond `n` are
    /// always zero (an invariant every operation preserves, so derived
    /// equality is exact).
    words: Words,
}

impl Relation {
    /// The empty relation over `n` events.
    pub fn empty(n: usize) -> Relation {
        let stride = n.div_ceil(WORD);
        Relation { n, stride, words: Words::zeroed(n * stride) }
    }

    /// Reset in place to the empty relation over `n`, reusing storage.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.stride = n.div_ceil(WORD);
        self.words.reset(n * self.stride);
    }

    /// Mask selecting the valid bits of a row's last word.
    fn tail_mask(&self) -> u64 {
        if self.n.is_multiple_of(WORD) {
            !0
        } else {
            (1u64 << (self.n % WORD)) - 1
        }
    }

    /// Zero the tail bits of every row (after a whole-word operation
    /// that may have set them).
    fn clear_tail(&mut self) {
        if self.stride == 0 {
            return;
        }
        let mask = self.tail_mask();
        let stride = self.stride;
        let words = self.words.as_mut();
        for row in 0..self.n {
            words[row * stride + stride - 1] &= mask;
        }
    }

    /// The full relation (every ordered pair, including reflexive ones).
    pub fn full(n: usize) -> Relation {
        let mut r = Relation::empty(n);
        r.words.as_mut().fill(!0);
        r.clear_tail();
        r
    }

    /// The identity relation.
    pub fn identity(n: usize) -> Relation {
        let mut r = Relation::empty(n);
        for i in 0..n {
            r.insert(i, i);
        }
        r
    }

    /// Build from an explicit pair list.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Relation {
        let mut r = Relation::empty(n);
        for (a, b) in pairs {
            r.insert(a, b);
        }
        r
    }

    /// The product `A × B` of two event sets, as a relation.
    pub fn product(n: usize, a: &[bool], b: &[bool]) -> Relation {
        debug_assert_eq!(a.len(), n);
        debug_assert_eq!(b.len(), n);
        let mut r = Relation::empty(n);
        // Pack B once, then copy it into every row of a member of A.
        let mut brow = vec![0u64; r.stride];
        for (j, &bj) in b.iter().enumerate() {
            if bj {
                brow[j / WORD] |= 1u64 << (j % WORD);
            }
        }
        let stride = r.stride;
        let words = r.words.as_mut();
        for (i, &ai) in a.iter().enumerate() {
            if ai {
                words[i * stride..(i + 1) * stride].copy_from_slice(&brow);
            }
        }
        r
    }

    /// Number of events in the carrier.
    pub fn carrier(&self) -> usize {
        self.n
    }

    /// Add a pair.
    pub fn insert(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "pair out of carrier");
        self.words.as_mut()[a * self.stride + b / WORD] |= 1u64 << (b % WORD);
    }

    /// Remove a pair (no-op if absent). The retract half of the
    /// streaming enumerator's push/pop relation maintenance.
    pub fn remove(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "pair out of carrier");
        self.words.as_mut()[a * self.stride + b / WORD] &= !(1u64 << (b % WORD));
    }

    /// Test membership.
    pub fn contains(&self, a: usize, b: usize) -> bool {
        self.words.as_slice()[a * self.stride + b / WORD] & (1u64 << (b % WORD)) != 0
    }

    /// The restriction of the relation to the carrier prefix `0..m`.
    ///
    /// The streaming enumerator maintains relations over a carrier
    /// sized for the whole program; a completed execution only uses the
    /// events actually performed, so its relations are the prefix
    /// restriction. Requires `m <= carrier()` and that no pair touches
    /// an event `>= m` (which holds by construction for the enumerator:
    /// events are appended and edges only reference existing events).
    pub fn restrict(&self, m: usize) -> Relation {
        let mut out = Relation::empty(m);
        self.restrict_into(m, &mut out);
        out
    }

    /// [`Relation::restrict`] into a caller-provided scratch relation,
    /// reusing its storage (the streaming enumerator's per-emit path).
    pub fn restrict_into(&self, m: usize, out: &mut Relation) {
        assert!(m <= self.n, "restriction larger than carrier");
        out.reset(m);
        let src_all = self.words.as_slice();
        let dst_stride = out.stride;
        let dst = out.words.as_mut();
        for row in 0..m {
            let src = &src_all[row * self.stride..row * self.stride + dst_stride];
            dst[row * dst_stride..(row + 1) * dst_stride].copy_from_slice(src);
        }
        out.clear_tail();
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.words.as_slice().iter().all(|&w| w == 0)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.words.as_slice().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over pairs in row-major order without allocating.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let words = self.words.as_slice();
        (0..self.n).flat_map(move |row| {
            words[row * self.stride..(row + 1) * self.stride].iter().enumerate().flat_map(
                move |(wi, &w)| BitIter { word: w, base: wi * WORD }.map(move |col| (row, col)),
            )
        })
    }

    /// Iterate over pairs in row-major order (alias of
    /// [`Relation::iter_pairs`], kept for existing callers).
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.iter_pairs()
    }

    /// Collect into a pair vector (useful in tests).
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        self.iter_pairs().collect()
    }

    /// Union.
    pub fn union(&self, other: &Relation) -> Relation {
        self.zip(other, |a, b| a | b)
    }

    /// Intersection (`&` in Herd).
    pub fn intersect(&self, other: &Relation) -> Relation {
        self.zip(other, |a, b| a & b)
    }

    /// Set difference (`\` in Herd).
    pub fn minus(&self, other: &Relation) -> Relation {
        self.zip(other, |a, b| a & !b)
    }

    /// Word-parallel binary combinator. `f` must map (0, 0) to 0 so the
    /// tail-bit invariant is preserved (union/intersect/minus all do).
    fn zip(&self, other: &Relation, f: impl Fn(u64, u64) -> u64) -> Relation {
        assert_eq!(self.n, other.n, "relations over different carriers");
        let mut out = Relation::empty(self.n);
        let dst = out.words.as_mut();
        for ((d, &a), &b) in dst.iter_mut().zip(self.words.as_slice()).zip(other.words.as_slice()) {
            *d = f(a, b);
        }
        out
    }

    /// Sequential composition (`;` in Herd): `(a, c)` iff there is `b`
    /// with `self(a, b)` and `other(b, c)`. Row-OR: for every `b` in
    /// row `a` of `self`, OR `other`'s row `b` into the output row.
    pub fn seq(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "relations over different carriers");
        let mut out = Relation::empty(self.n);
        let stride = self.stride;
        let (mine, theirs, ws) =
            (self.words.as_slice(), other.words.as_slice(), out.words.as_mut());
        for a in 0..self.n {
            let row = &mine[a * stride..(a + 1) * stride];
            for (wi, &w) in row.iter().enumerate() {
                for b in (BitIter { word: w, base: wi * WORD }) {
                    let (dst, src) = (a * stride, b * stride);
                    for k in 0..stride {
                        ws[dst + k] |= theirs[src + k];
                    }
                }
            }
        }
        out
    }

    /// Inverse (`^-1` in Herd).
    pub fn inverse(&self) -> Relation {
        let mut out = Relation::empty(self.n);
        for (a, b) in self.iter_pairs() {
            out.insert(b, a);
        }
        out
    }

    /// Complement (`~` in Herd).
    pub fn complement(&self) -> Relation {
        let mut out = Relation::empty(self.n);
        for (d, &w) in out.words.as_mut().iter_mut().zip(self.words.as_slice()) {
            *d = !w;
        }
        out.clear_tail();
        out
    }

    /// Irreflexive transitive closure (`+` in Herd): row-OR
    /// Floyd–Warshall, 64 pairs per word operation.
    pub fn transitive_closure(&self) -> Relation {
        let mut r = self.clone();
        let stride = r.stride;
        for k in 0..r.n {
            for i in 0..r.n {
                if i == k || !r.contains(i, k) {
                    continue;
                }
                let (krow, irow) = (k * stride, i * stride);
                // Rows are disjoint slices of one buffer; split to OR
                // one into the other without cloning.
                let (lo, hi, dst_is_lo) =
                    if irow < krow { (irow, krow, true) } else { (krow, irow, false) };
                let (head, tail) = r.words.as_mut().split_at_mut(hi);
                let (a, b) = (&mut head[lo..lo + stride], &mut tail[..stride]);
                let (dst, src) = if dst_is_lo { (a, b) } else { (b, a) };
                for w in 0..stride {
                    dst[w] |= src[w];
                }
            }
        }
        r
    }

    /// Keep only pairs `(a, b)` where `pred(a, b)`.
    pub fn filter(&self, pred: impl Fn(usize, usize) -> bool) -> Relation {
        let mut out = Relation::empty(self.n);
        for (a, b) in self.iter_pairs() {
            if pred(a, b) {
                out.insert(a, b);
            }
        }
        out
    }

    /// Is the relation acyclic (no event reaches itself through 1+ edges)?
    pub fn is_acyclic(&self) -> bool {
        let c = self.transitive_closure();
        (0..self.n).all(|i| !c.contains(i, i))
    }

    /// Remove reflexive pairs.
    pub fn irreflexive(&self) -> Relation {
        let mut out = self.clone();
        let stride = out.stride;
        let words = out.words.as_mut();
        for i in 0..out.n {
            words[i * stride + i / WORD] &= !(1u64 << (i % WORD));
        }
        out
    }
}

/// Iterator over the set bit positions of one word, offset by `base`.
struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation{{n={}, pairs={:?}}}", self.n, self.pairs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: usize, pairs: &[(usize, usize)]) -> Relation {
        Relation::from_pairs(n, pairs.iter().copied())
    }

    #[test]
    fn union_intersect_minus() {
        let a = r(3, &[(0, 1), (1, 2)]);
        let b = r(3, &[(1, 2), (2, 0)]);
        assert_eq!(a.union(&b).pairs(), vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(a.intersect(&b).pairs(), vec![(1, 2)]);
        assert_eq!(a.minus(&b).pairs(), vec![(0, 1)]);
    }

    #[test]
    fn composition() {
        let a = r(4, &[(0, 1), (2, 3)]);
        let b = r(4, &[(1, 2), (3, 0)]);
        assert_eq!(a.seq(&b).pairs(), vec![(0, 2), (2, 0)]);
    }

    #[test]
    fn closure_is_transitive_and_minimal_superset() {
        let a = r(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = a.transitive_closure();
        for (x, y) in c.pairs() {
            for (y2, z) in c.pairs() {
                if y == y2 {
                    assert!(c.contains(x, z), "closure not transitive at ({x},{y},{z})");
                }
            }
        }
        assert!(c.contains(0, 3));
        assert!(!c.contains(3, 0));
        assert!(!c.contains(0, 0));
    }

    #[test]
    fn acyclicity() {
        assert!(r(3, &[(0, 1), (1, 2)]).is_acyclic());
        assert!(!r(3, &[(0, 1), (1, 2), (2, 0)]).is_acyclic());
        // Self-loop is a cycle.
        assert!(!r(2, &[(0, 0)]).is_acyclic());
    }

    #[test]
    fn inverse_and_complement() {
        let a = r(2, &[(0, 1)]);
        assert_eq!(a.inverse().pairs(), vec![(1, 0)]);
        let comp = a.complement();
        assert!(comp.contains(1, 0) && comp.contains(0, 0) && !comp.contains(0, 1));
    }

    #[test]
    fn product_of_sets() {
        let writes = vec![true, false, true];
        let reads = vec![false, true, false];
        let p = Relation::product(3, &writes, &reads);
        assert_eq!(p.pairs(), vec![(0, 1), (2, 1)]);
    }

    #[test]
    fn identity_and_irreflexive() {
        let id = Relation::identity(3);
        assert_eq!(id.len(), 3);
        assert!(id.irreflexive().is_empty());
    }

    #[test]
    fn demorgan_like_laws() {
        // (A ∪ B) \ B ⊆ A ; (A ∩ B) ⊆ A ; closure idempotent.
        let a = r(4, &[(0, 1), (1, 3), (3, 2)]);
        let b = r(4, &[(1, 3), (2, 2)]);
        for (x, y) in a.union(&b).minus(&b).pairs() {
            assert!(a.contains(x, y));
        }
        for (x, y) in a.intersect(&b).pairs() {
            assert!(a.contains(x, y) && b.contains(x, y));
        }
        let c = a.transitive_closure();
        assert_eq!(c.transitive_closure(), c);
    }

    /// Cross-check the packed operations against a naive `Vec<bool>`
    /// model on carriers that straddle word boundaries.
    #[test]
    fn packed_ops_match_naive_model_across_word_boundaries() {
        // Deterministic pseudo-random pairs (SplitMix64 mixing).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for n in [1usize, 7, 63, 64, 65] {
            let gen = |next: &mut dyn FnMut() -> u64, density: u64| -> Vec<Vec<bool>> {
                (0..n).map(|_| (0..n).map(|_| next() % 100 < density).collect()).collect()
            };
            let ma = gen(&mut next, 15);
            let mb = gen(&mut next, 15);
            let pack = |m: &Vec<Vec<bool>>| {
                Relation::from_pairs(
                    n,
                    m.iter().enumerate().flat_map(|(i, r)| {
                        r.iter().enumerate().filter(|(_, &b)| b).map(move |(j, _)| (i, j))
                    }),
                )
            };
            let (a, b) = (pack(&ma), pack(&mb));
            let (u, x_, m_, c_, s_) =
                (a.union(&b), a.intersect(&b), a.minus(&b), a.complement(), a.seq(&b));
            for x in 0..n {
                for y in 0..n {
                    assert_eq!(a.contains(x, y), ma[x][y]);
                    assert_eq!(u.contains(x, y), ma[x][y] || mb[x][y]);
                    assert_eq!(x_.contains(x, y), ma[x][y] && mb[x][y]);
                    assert_eq!(m_.contains(x, y), ma[x][y] && !mb[x][y]);
                    assert_eq!(c_.contains(x, y), !ma[x][y]);
                    let naive_seq = (0..n).any(|mid| ma[x][mid] && mb[mid][y]);
                    assert_eq!(s_.contains(x, y), naive_seq, "seq mismatch n={n}");
                }
            }
            // Naive boolean Floyd–Warshall closure.
            let mut cl = ma.clone();
            for k in 0..n {
                for i in 0..n {
                    if cl[i][k] {
                        let row_k = cl[k].clone();
                        cl[i].iter_mut().zip(&row_k).for_each(|(c, &r)| *c |= r);
                    }
                }
            }
            let packed = a.transitive_closure();
            for (x, row) in cl.iter().enumerate() {
                for (y, &bit) in row.iter().enumerate() {
                    assert_eq!(packed.contains(x, y), bit, "closure mismatch ({x},{y}) n={n}");
                }
            }
            assert_eq!(a.pairs().len(), a.len());
        }
    }

    #[test]
    fn full_and_tail_bits_stay_clean() {
        for n in [1usize, 63, 64, 65, 100] {
            let f = Relation::full(n);
            assert_eq!(f.len(), n * n);
            assert_eq!(f.complement(), Relation::empty(n));
            assert_eq!(Relation::empty(n).complement(), f);
            assert_eq!(f.irreflexive().len(), n * n - n);
        }
    }

    #[test]
    #[should_panic(expected = "pair out of carrier")]
    fn out_of_carrier_insert_rejected() {
        let mut a = Relation::empty(3);
        a.insert(0, 3);
    }

    #[test]
    fn remove_undoes_insert_exactly() {
        for n in [3usize, 64, 65, 130] {
            let mut a = r(n, &[(0, 1), (1, 2), (2, 0)]);
            let before = a.clone();
            a.insert(0, n - 1);
            a.insert(n - 1, 1);
            assert_ne!(a, before);
            a.remove(0, n - 1);
            a.remove(n - 1, 1);
            assert_eq!(a, before);
            // Removing an absent pair is a no-op.
            a.remove(1, 0);
            assert_eq!(a, before);
        }
    }

    /// `reset`/`restrict_into` must agree with the allocating paths no
    /// matter what storage the scratch previously held — including
    /// across the inline/heap boundary in both directions.
    #[test]
    fn reset_and_restrict_into_reuse_storage_exactly() {
        let mut scratch = Relation::empty(0);
        // Sizes chosen to bounce between inline (small) and heap
        // (129-event carriers need 3 words/row) storage.
        for (n, m) in [(6usize, 3usize), (24, 24), (129, 65), (30, 7), (129, 129), (5, 0)] {
            let mut a = Relation::empty(n);
            for i in 0..n {
                for j in 0..n {
                    if (i * 11 + j * 5) % 4 == 0 {
                        a.insert(i, j);
                    }
                }
            }
            a.restrict_into(m, &mut scratch);
            assert_eq!(scratch, a.restrict(m), "n={n} m={m}");
            scratch.reset(m);
            assert_eq!(scratch, Relation::empty(m), "reset n={n} m={m}");
        }
    }

    #[test]
    fn restrict_keeps_the_carrier_prefix() {
        for (n, m) in [(6usize, 3usize), (100, 64), (130, 65), (70, 70), (5, 0)] {
            let mut a = Relation::empty(n);
            for i in 0..m {
                for j in 0..m {
                    if (i * 7 + j * 13) % 3 == 0 {
                        a.insert(i, j);
                    }
                }
            }
            let small = a.restrict(m);
            assert_eq!(small.carrier(), m);
            assert_eq!(small.len(), a.len());
            for i in 0..m {
                for j in 0..m {
                    assert_eq!(small.contains(i, j), a.contains(i, j), "({i},{j}) n={n} m={m}");
                }
            }
        }
    }
}
