//! A small relation-algebra toolkit.
//!
//! Herd models (like the paper's Listing 7) are written as expressions
//! over binary relations on events: unions, intersections, differences,
//! sequential composition (`;`), transitive closure (`+`), inverses, and
//! restrictions to classes of events (`Paired * PairedR`, `at-least-one
//! W`...). [`Relation`] provides exactly those combinators over a dense
//! boolean matrix, which is the right representation for litmus-sized
//! executions (tens of events).

use std::fmt;

/// A binary relation over event ids `0..n`.
///
/// ```
/// use drfrlx_core::relation::Relation;
///
/// let po = Relation::from_pairs(3, [(0, 1), (1, 2)]);
/// let hb = po.transitive_closure();
/// assert!(hb.contains(0, 2));
/// assert!(hb.is_acyclic());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    n: usize,
    bits: Vec<bool>,
}

impl Relation {
    /// The empty relation over `n` events.
    pub fn empty(n: usize) -> Relation {
        Relation { n, bits: vec![false; n * n] }
    }

    /// The full relation (every ordered pair, including reflexive ones).
    pub fn full(n: usize) -> Relation {
        Relation { n, bits: vec![true; n * n] }
    }

    /// The identity relation.
    pub fn identity(n: usize) -> Relation {
        let mut r = Relation::empty(n);
        for i in 0..n {
            r.insert(i, i);
        }
        r
    }

    /// Build from an explicit pair list.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Relation {
        let mut r = Relation::empty(n);
        for (a, b) in pairs {
            r.insert(a, b);
        }
        r
    }

    /// The product `A × B` of two event sets, as a relation.
    pub fn product(n: usize, a: &[bool], b: &[bool]) -> Relation {
        debug_assert_eq!(a.len(), n);
        debug_assert_eq!(b.len(), n);
        let mut r = Relation::empty(n);
        for (i, &ai) in a.iter().enumerate() {
            if !ai {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                if bj {
                    r.insert(i, j);
                }
            }
        }
        r
    }

    /// Number of events in the carrier.
    pub fn carrier(&self) -> usize {
        self.n
    }

    /// Add a pair.
    pub fn insert(&mut self, a: usize, b: usize) {
        self.bits[a * self.n + b] = true;
    }

    /// Test membership.
    pub fn contains(&self, a: usize, b: usize) -> bool {
        self.bits[a * self.n + b]
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        !self.bits.iter().any(|&b| b)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Iterate over pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.n;
        self.bits.iter().enumerate().filter(|(_, &b)| b).map(move |(i, _)| (i / n, i % n))
    }

    /// Collect into a pair vector (useful in tests).
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        self.iter().collect()
    }

    /// Union.
    pub fn union(&self, other: &Relation) -> Relation {
        self.zip(other, |a, b| a | b)
    }

    /// Intersection (`&` in Herd).
    pub fn intersect(&self, other: &Relation) -> Relation {
        self.zip(other, |a, b| a & b)
    }

    /// Set difference (`\` in Herd).
    pub fn minus(&self, other: &Relation) -> Relation {
        self.zip(other, |a, b| a & !b)
    }

    fn zip(&self, other: &Relation, f: impl Fn(bool, bool) -> bool) -> Relation {
        assert_eq!(self.n, other.n, "relations over different carriers");
        Relation {
            n: self.n,
            bits: self.bits.iter().zip(&other.bits).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Sequential composition (`;` in Herd): `(a, c)` iff there is `b`
    /// with `self(a, b)` and `other(b, c)`.
    pub fn seq(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "relations over different carriers");
        let n = self.n;
        let mut out = Relation::empty(n);
        for a in 0..n {
            for b in 0..n {
                if self.contains(a, b) {
                    for c in 0..n {
                        if other.contains(b, c) {
                            out.insert(a, c);
                        }
                    }
                }
            }
        }
        out
    }

    /// Inverse (`^-1` in Herd).
    pub fn inverse(&self) -> Relation {
        let mut out = Relation::empty(self.n);
        for (a, b) in self.iter() {
            out.insert(b, a);
        }
        out
    }

    /// Complement (`~` in Herd).
    pub fn complement(&self) -> Relation {
        Relation { n: self.n, bits: self.bits.iter().map(|&b| !b).collect() }
    }

    /// Irreflexive transitive closure (`+` in Herd), via Floyd–Warshall.
    pub fn transitive_closure(&self) -> Relation {
        let n = self.n;
        let mut r = self.clone();
        for k in 0..n {
            for i in 0..n {
                if r.contains(i, k) {
                    for j in 0..n {
                        if r.contains(k, j) {
                            r.insert(i, j);
                        }
                    }
                }
            }
        }
        r
    }

    /// Keep only pairs `(a, b)` where `pred(a, b)`.
    pub fn filter(&self, pred: impl Fn(usize, usize) -> bool) -> Relation {
        let mut out = Relation::empty(self.n);
        for (a, b) in self.iter() {
            if pred(a, b) {
                out.insert(a, b);
            }
        }
        out
    }

    /// Is the relation acyclic (no event reaches itself through 1+ edges)?
    pub fn is_acyclic(&self) -> bool {
        let c = self.transitive_closure();
        (0..self.n).all(|i| !c.contains(i, i))
    }

    /// Remove reflexive pairs.
    pub fn irreflexive(&self) -> Relation {
        self.filter(|a, b| a != b)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation{{n={}, pairs={:?}}}", self.n, self.pairs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: usize, pairs: &[(usize, usize)]) -> Relation {
        Relation::from_pairs(n, pairs.iter().copied())
    }

    #[test]
    fn union_intersect_minus() {
        let a = r(3, &[(0, 1), (1, 2)]);
        let b = r(3, &[(1, 2), (2, 0)]);
        assert_eq!(a.union(&b).pairs(), vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(a.intersect(&b).pairs(), vec![(1, 2)]);
        assert_eq!(a.minus(&b).pairs(), vec![(0, 1)]);
    }

    #[test]
    fn composition() {
        let a = r(4, &[(0, 1), (2, 3)]);
        let b = r(4, &[(1, 2), (3, 0)]);
        assert_eq!(a.seq(&b).pairs(), vec![(0, 2), (2, 0)]);
    }

    #[test]
    fn closure_is_transitive_and_minimal_superset() {
        let a = r(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = a.transitive_closure();
        for (x, y) in c.pairs() {
            for (y2, z) in c.pairs() {
                if y == y2 {
                    assert!(c.contains(x, z), "closure not transitive at ({x},{y},{z})");
                }
            }
        }
        assert!(c.contains(0, 3));
        assert!(!c.contains(3, 0));
        assert!(!c.contains(0, 0));
    }

    #[test]
    fn acyclicity() {
        assert!(r(3, &[(0, 1), (1, 2)]).is_acyclic());
        assert!(!r(3, &[(0, 1), (1, 2), (2, 0)]).is_acyclic());
        // Self-loop is a cycle.
        assert!(!r(2, &[(0, 0)]).is_acyclic());
    }

    #[test]
    fn inverse_and_complement() {
        let a = r(2, &[(0, 1)]);
        assert_eq!(a.inverse().pairs(), vec![(1, 0)]);
        let comp = a.complement();
        assert!(comp.contains(1, 0) && comp.contains(0, 0) && !comp.contains(0, 1));
    }

    #[test]
    fn product_of_sets() {
        let writes = vec![true, false, true];
        let reads = vec![false, true, false];
        let p = Relation::product(3, &writes, &reads);
        assert_eq!(p.pairs(), vec![(0, 1), (2, 1)]);
    }

    #[test]
    fn identity_and_irreflexive() {
        let id = Relation::identity(3);
        assert_eq!(id.len(), 3);
        assert!(id.irreflexive().is_empty());
    }

    #[test]
    fn demorgan_like_laws() {
        // (A ∪ B) \ B ⊆ A ; (A ∩ B) ⊆ A ; closure idempotent.
        let a = r(4, &[(0, 1), (1, 3), (3, 2)]);
        let b = r(4, &[(1, 3), (2, 2)]);
        for (x, y) in a.union(&b).minus(&b).pairs() {
            assert!(a.contains(x, y));
        }
        for (x, y) in a.intersect(&b).pairs() {
            assert!(a.contains(x, y) && b.contains(x, y));
        }
        let c = a.transitive_closure();
        assert_eq!(c.transitive_closure(), c);
    }
}
