//! Emit a [`Program`] back to the textual litmus format of
//! [`crate::parse`]. Round-tripping is exact for everything the text
//! format can express (which is everything [`Program`] can hold), and
//! is property-tested in the workspace test suite.

use crate::classes::OpClass;
use crate::program::{BinOp, Expr, Instr, Program, Reg, RmwOp};
use std::fmt::Write as _;

fn class_name(c: OpClass) -> &'static str {
    match c {
        OpClass::Data => "data",
        OpClass::Paired => "paired",
        OpClass::Unpaired => "unpaired",
        OpClass::Commutative => "commutative",
        OpClass::NonOrdering => "nonordering",
        OpClass::Quantum => "quantum",
        OpClass::Speculative => "speculative",
        OpClass::Acquire => "acquire",
        OpClass::Release => "release",
    }
}

fn reg_name(r: Reg) -> String {
    format!("r{}", r.0)
}

fn emit_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Const(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Reg(r) => out.push_str(&reg_name(*r)),
        Expr::Bin(op, a, b) => match op {
            BinOp::Min | BinOp::Max => {
                out.push_str(if *op == BinOp::Min { "min(" } else { "max(" });
                emit_expr(a, out);
                out.push(' ');
                emit_expr(b, out);
                out.push(')');
            }
            _ => {
                out.push('(');
                emit_expr(a, out);
                out.push_str(match op {
                    BinOp::Add => " + ",
                    BinOp::Sub => " - ",
                    BinOp::And => " & ",
                    BinOp::Or => " | ",
                    BinOp::Xor => " ^ ",
                    BinOp::Eq => " == ",
                    BinOp::Ne => " != ",
                    BinOp::Lt => " < ",
                    BinOp::Min | BinOp::Max => unreachable!("handled above"),
                });
                emit_expr(b, out);
                out.push(')');
            }
        },
    }
}

fn rmw_name(op: RmwOp) -> &'static str {
    match op {
        RmwOp::FetchAdd => "fadd",
        RmwOp::FetchSub => "fsub",
        RmwOp::FetchAnd => "fand",
        RmwOp::FetchOr => "for",
        RmwOp::FetchXor => "fxor",
        RmwOp::FetchMin => "fmin",
        RmwOp::FetchMax => "fmax",
        RmwOp::Exchange => "xchg",
        RmwOp::Cas => "cas",
    }
}

/// Render `p` in the textual litmus format.
///
/// `parse(&emit(p))` yields a program with identical threads, classes
/// and initial values (names are regenerated as `r<N>` / `t<N>`).
pub fn emit(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "litmus {}", sanitize(p.name()));
    let inits: Vec<(String, i64)> = (0..p.num_locs() as u32)
        .map(crate::program::Loc)
        .filter(|&l| p.init_value(l) != 0)
        .map(|l| (p.loc_name(l).to_string(), p.init_value(l)))
        .collect();
    if !inits.is_empty() {
        let body: Vec<String> = inits.iter().map(|(n, v)| format!("{n} = {v}")).collect();
        let _ = writeln!(out, "init {{ {} }}", body.join("; "));
    }
    for (tid, thread) in p.threads().iter().enumerate() {
        let _ = writeln!(out, "\nthread t{tid} {{");
        emit_instrs(p, &thread.instrs, 1, &mut out);
        out.push_str("}\n");
    }
    out
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("    ");
    }
}

fn emit_instrs(p: &Program, instrs: &[Instr], depth: usize, out: &mut String) {
    let mut i = 0;
    while i < instrs.len() {
        match &instrs[i] {
            Instr::Load { class, loc, dst } => {
                indent(depth, out);
                let _ = writeln!(
                    out,
                    "{} = load.{} {};",
                    reg_name(*dst),
                    class_name(*class),
                    p.loc_name(*loc)
                );
            }
            Instr::Store { class, loc, val } => {
                indent(depth, out);
                let mut v = String::new();
                emit_expr(val, &mut v);
                let _ = writeln!(out, "store.{} {} {v};", class_name(*class), p.loc_name(*loc));
            }
            Instr::Rmw { class, loc, op, operand, operand2, dst } => {
                indent(depth, out);
                let mut a = String::new();
                emit_expr(operand, &mut a);
                if *op == RmwOp::Cas {
                    let mut e = String::new();
                    emit_expr(operand2, &mut e);
                    let _ = writeln!(
                        out,
                        "{} = cas.{} {} {e} {a};",
                        reg_name(*dst),
                        class_name(*class),
                        p.loc_name(*loc)
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "{} = {}.{} {} {a};",
                        reg_name(*dst),
                        rmw_name(*op),
                        class_name(*class),
                        p.loc_name(*loc)
                    );
                }
            }
            Instr::Assign { dst, expr } => {
                indent(depth, out);
                let mut e = String::new();
                emit_expr(expr, &mut e);
                let _ = writeln!(out, "{} = {e};", reg_name(*dst));
            }
            Instr::BranchOn { cond } => {
                indent(depth, out);
                let mut e = String::new();
                emit_expr(cond, &mut e);
                let _ = writeln!(out, "branch {e};");
            }
            Instr::Observe { expr } => {
                indent(depth, out);
                let mut e = String::new();
                emit_expr(expr, &mut e);
                let _ = writeln!(out, "observe {e};");
            }
            Instr::JumpIfZero { cond, skip } => {
                indent(depth, out);
                let mut e = String::new();
                emit_expr(cond, &mut e);
                let _ = writeln!(out, "if {e} {{");
                emit_instrs(p, &instrs[i + 1..=i + skip], depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
                i += skip;
            }
            Instr::Think { cycles } => {
                indent(depth, out);
                let _ = writeln!(out, "think {cycles};");
            }
            Instr::Barrier => {
                indent(depth, out);
                out.push_str("barrier;\n");
            }
            Instr::ScratchLoad { addr, dst } => {
                indent(depth, out);
                let mut a = String::new();
                emit_expr(addr, &mut a);
                let _ = writeln!(out, "{} = sload {a};", reg_name(*dst));
            }
            Instr::ScratchStore { addr, val } => {
                indent(depth, out);
                let mut a = String::new();
                emit_expr(addr, &mut a);
                let mut v = String::new();
                emit_expr(val, &mut v);
                let _ = writeln!(out, "sstore {a} {v};");
            }
        }
        i += 1;
    }
}

fn sanitize(name: &str) -> String {
    let mut s: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if s.is_empty() || s.starts_with(|c: char| c.is_ascii_digit()) {
        s.insert(0, 'p');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_program;
    use crate::classes::MemoryModel;
    use crate::exec::{enumerate_sc, EnumLimits};
    use crate::parse::parse;
    use crate::program::Program;

    fn roundtrip(p: &Program) -> Program {
        let text = emit(p);
        parse(&text).unwrap_or_else(|e| panic!("emitted text failed to parse: {e}\n{text}"))
    }

    fn same_behavior(a: &Program, b: &Program) {
        let limits = EnumLimits::default();
        let ea = enumerate_sc(a, &limits).unwrap();
        let eb = enumerate_sc(b, &limits).unwrap();
        assert_eq!(ea.len(), eb.len(), "same execution count");
        for model in MemoryModel::ALL {
            assert_eq!(
                check_program(a, model).is_race_free(),
                check_program(b, model).is_race_free(),
                "same verdict under {model}"
            );
        }
    }

    #[test]
    fn seqlock_roundtrips() {
        // Build via the litmus crate's shape inline to avoid a circular
        // dev-dependency: a CAS + conditional + speculative loads.
        let mut p = Program::new("seq_mini");
        {
            let mut t = p.thread();
            let old = t.cas(crate::OpClass::Paired, "seq", 0, 1);
            let ok = crate::program::Expr::bin(crate::program::BinOp::Eq, old.into(), 0.into());
            t.if_nz(ok, |t| {
                t.store(crate::OpClass::Speculative, "d", 10);
                t.store(crate::OpClass::Paired, "seq", 2);
            });
        }
        {
            let mut t = p.thread();
            let s0 = t.load(crate::OpClass::Paired, "seq");
            let r = t.load(crate::OpClass::Speculative, "d");
            t.branch_on(s0);
            t.observe(r);
        }
        let p = p.build();
        same_behavior(&p, &roundtrip(&p));
    }

    #[test]
    fn inits_and_all_rmws_roundtrip() {
        let mut p = Program::new("rmws");
        p.set_init("x", -7);
        {
            let mut t = p.thread();
            for op in [
                crate::program::RmwOp::FetchAdd,
                crate::program::RmwOp::FetchSub,
                crate::program::RmwOp::FetchAnd,
                crate::program::RmwOp::FetchOr,
                crate::program::RmwOp::FetchXor,
                crate::program::RmwOp::FetchMin,
                crate::program::RmwOp::FetchMax,
                crate::program::RmwOp::Exchange,
            ] {
                t.rmw(crate::OpClass::Unpaired, "x", op, 3);
            }
        }
        let p = p.build();
        let q = roundtrip(&p);
        let limits = EnumLimits::default();
        let ea = &enumerate_sc(&p, &limits).unwrap()[0];
        let eb = &enumerate_sc(&q, &limits).unwrap()[0];
        assert_eq!(
            ea.result.memory.values().collect::<Vec<_>>(),
            eb.result.memory.values().collect::<Vec<_>>()
        );
    }

    #[test]
    fn weird_names_are_sanitized() {
        let mut p = Program::new("has spaces & symbols!");
        p.thread().store(crate::OpClass::Data, "x", 1);
        let text = emit(&p.build());
        assert!(text.starts_with("litmus has_spaces___symbols_"));
        parse(&text).unwrap();
    }

    #[test]
    fn nested_conditionals_roundtrip() {
        let mut p = Program::new("nested");
        {
            let mut t = p.thread();
            let a = t.load(crate::OpClass::Paired, "a");
            t.if_nz(a, |t| {
                let b = t.load(crate::OpClass::Paired, "b");
                t.if_z(b, |t| {
                    t.store(crate::OpClass::Data, "c", 5);
                });
                t.store(crate::OpClass::Data, "d", 6);
            });
            t.store(crate::OpClass::Data, "e", 7);
        }
        p.thread().store(crate::OpClass::Paired, "a", 1);
        let p = p.build();
        same_behavior(&p, &roundtrip(&p));
    }
}
