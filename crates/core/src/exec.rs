//! SC-execution enumeration.
//!
//! [`enumerate_sc`] produces **every** sequentially consistent execution
//! of a litmus program: every interleaving of the threads' memory
//! operations, with each load returning the value of the last store to
//! the same location in the interleaving (paper §2.3.1). The resulting
//! [`Execution`]s carry the relations Herd models are phrased over
//! (`po`, `rf`, `co`, `fr`, dependency relations), ready for the race
//! detectors in [`crate::races`].
//!
//! When a *quantum domain* is supplied (the quantum transformation of
//! §3.4.3), quantum loads do not read memory: they are replaced by a
//! conceptual `random()` that is enumerated over the domain, and quantum
//! RMWs degrade to quantum stores. This produces executions of the
//! *quantum-equivalent program* P<sub>q</sub>.

use crate::classes::OpClass;
use crate::program::{Expr, Instr, Loc, Program, Reg, Value};
use crate::relation::Relation;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Kind of dynamic memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An atomic read-modify-write (reads and writes in one event,
    /// per the paper's footnote 1).
    Rmw,
}

impl Access {
    /// Does the event read memory?
    pub fn reads(self) -> bool {
        matches!(self, Access::Read | Access::Rmw)
    }

    /// Does the event write memory?
    pub fn writes(self) -> bool {
        matches!(self, Access::Write | Access::Rmw)
    }
}

/// The write function an event applies to its location, used to decide
/// pairwise commutativity (paper §3.2.3: two writes commute iff
/// performing them in either order yields the same final value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFn {
    /// Overwrite with a constant (plain store / exchange).
    Set(Value),
    /// `old + k` (fetch_add / fetch_sub with negated operand).
    Add(Value),
    /// `old & k`.
    And(Value),
    /// `old | k`.
    Or(Value),
    /// `old ^ k`.
    Xor(Value),
    /// `min(old, k)`.
    Min(Value),
    /// `max(old, k)`.
    Max(Value),
    /// Compare-and-swap — order-sensitive in general.
    Cas,
}

impl WriteFn {
    /// Exact pairwise commutativity for the function families litmus
    /// programs use. `f.commutes_with(g)` iff `f∘g == g∘f` on all
    /// values.
    pub fn commutes_with(self, other: WriteFn) -> bool {
        use WriteFn::*;
        match (self, other) {
            (Add(_), Add(_)) => true,
            (And(_), And(_)) => true,
            (Or(_), Or(_)) => true,
            (Xor(_), Xor(_)) => true,
            (Min(_), Min(_)) => true,
            (Max(_), Max(_)) => true,
            // Two overwrites commute only when they write the same value.
            (Set(a), Set(b)) => a == b,
            // Idempotent-compatible mixed cases are deliberately not
            // special-cased; CAS is order-sensitive.
            _ => false,
        }
    }
}

/// A dynamic memory event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Dense event id, indexing the execution's relations.
    pub id: usize,
    /// Issuing thread.
    pub tid: usize,
    /// Index of the instruction within the thread.
    pub iid: usize,
    /// Annotated class.
    pub class: OpClass,
    /// Accessed location.
    pub loc: Loc,
    /// Read/write/RMW.
    pub access: Access,
    /// Value read (reads and RMWs).
    pub rval: Option<Value>,
    /// Value written (writes and RMWs).
    pub wval: Option<Value>,
    /// Write function for commutativity analysis (writes and RMWs).
    pub write_fn: Option<WriteFn>,
}

/// The "result" of an execution (paper §3.2.2: the memory state at the
/// end of the execution; register files are kept as well for
/// litmus-style assertions and for comparing against the relaxed
/// machine).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExecResult {
    /// Final value of every location.
    pub memory: BTreeMap<Loc, Value>,
    /// Final register file of every thread.
    pub regs: Vec<BTreeMap<Reg, Value>>,
}

/// One SC execution with its relations.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Dynamic events, indexed by id.
    pub events: Vec<Event>,
    /// Event ids in SC total order `T`.
    pub order: Vec<usize>,
    /// Final memory + registers.
    pub result: ExecResult,
    /// Program order (transitive).
    pub po: Relation,
    /// Reads-from: source write → read.
    pub rf: Relation,
    /// Coherence order: earlier write → later write, same location
    /// (transitive).
    pub co: Relation,
    /// From-read: read → write co-after the read's source.
    pub fr: Relation,
    /// Data dependency: load/RMW → event using its value.
    pub data_dep: Relation,
    /// Address dependency (always empty for static-address litmus
    /// programs; present for Herd parity).
    pub addr_dep: Relation,
    /// Control dependency: load/RMW → memory event after a dependent
    /// branch.
    pub ctrl_dep: Relation,
    /// Events whose loaded value is observed via [`Instr::Observe`].
    pub observed: Vec<bool>,
}

impl Execution {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the execution has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Herd's `(addr | data | ctrl)` observability relation, extended
    /// with [`Instr::Observe`] sinks encoded as self-loops removed; use
    /// [`Execution::value_observed`] for the flag.
    pub fn obs_dep(&self) -> Relation {
        self.addr_dep.union(&self.data_dep).union(&self.ctrl_dep)
    }

    /// Is the value loaded by event `e` used by another instruction in
    /// its thread (dependency into a later access, or an explicit
    /// observe marker)?
    pub fn value_observed(&self, e: usize) -> bool {
        if self.observed[e] {
            return true;
        }
        let n = self.events.len();
        (0..n).any(|j| self.data_dep.contains(e, j) || self.addr_dep.contains(e, j))
    }

    /// The communication relation `rf | fr | co`.
    pub fn com(&self) -> Relation {
        self.rf.union(&self.fr).union(&self.co)
    }

    /// Events of a class, as a membership vector (for
    /// [`Relation::product`]).
    pub fn class_set(&self, pred: impl Fn(&Event) -> bool) -> Vec<bool> {
        self.events.iter().map(pred).collect()
    }
}

/// Limits and options for enumeration.
#[derive(Debug, Clone)]
pub struct EnumLimits {
    /// Abort after this many complete executions.
    pub max_executions: usize,
    /// Values a quantum `random()` may take, when enumerating the
    /// quantum-equivalent program. Ignored by [`enumerate_sc`]; used by
    /// [`enumerate_sc_quantum`].
    pub quantum_domain: Vec<Value>,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits { max_executions: 4_000_000, quantum_domain: vec![0, 1, JUNK] }
    }
}

/// A recognizable "could be anything" value for quantum randomness.
pub const JUNK: Value = 0x0BAD_F00D;

/// Enumeration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumError {
    /// The execution count exceeded [`EnumLimits::max_executions`].
    TooManyExecutions {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::TooManyExecutions { limit } => {
                write!(f, "more than {limit} SC executions; raise EnumLimits::max_executions")
            }
        }
    }
}

impl std::error::Error for EnumError {}

/// Enumerate all SC executions of `p`.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] if the interleaving count
/// exceeds the limit.
pub fn enumerate_sc(p: &Program, limits: &EnumLimits) -> Result<Vec<Execution>, EnumError> {
    enumerate_inner(p, limits, false)
}

/// Enumerate all SC executions of the *quantum-equivalent program*
/// P<sub>q</sub> of `p` (paper §3.4.3): quantum loads return every value
/// in [`EnumLimits::quantum_domain`], quantum stores/RMWs write their
/// computed value but quantum RMW loads are likewise randomized.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] if the execution count
/// exceeds the limit.
pub fn enumerate_sc_quantum(p: &Program, limits: &EnumLimits) -> Result<Vec<Execution>, EnumError> {
    enumerate_inner(p, limits, true)
}

#[derive(Clone)]
struct ThreadState {
    pc: usize,
    regs: BTreeMap<Reg, Value>,
    /// For each register, the set of load events whose values flow in.
    taint: BTreeMap<Reg, BTreeSet<usize>>,
    /// Loads feeding branch conditions seen so far (ctrl sources).
    ctrl: BTreeSet<usize>,
}

#[derive(Clone)]
struct SearchState {
    threads: Vec<ThreadState>,
    memory: BTreeMap<Loc, Value>,
    events: Vec<Event>,
    order: Vec<usize>,
    /// Per location: write event ids in coherence (SC) order.
    writes: BTreeMap<Loc, Vec<usize>>,
    /// Per read event: index into its location's write list of its
    /// source (`None` = initial value).
    read_src: Vec<Option<usize>>,
    data_src: Vec<BTreeSet<usize>>,
    ctrl_src: Vec<BTreeSet<usize>>,
    observed: BTreeSet<usize>,
}

fn expr_taint(e: &Expr, t: &ThreadState) -> BTreeSet<usize> {
    let mut regs = Vec::new();
    e.regs_read(&mut regs);
    let mut out = BTreeSet::new();
    for r in regs {
        if let Some(s) = t.taint.get(&r) {
            out.extend(s.iter().copied());
        }
    }
    out
}

fn enumerate_inner(
    p: &Program,
    limits: &EnumLimits,
    quantum: bool,
) -> Result<Vec<Execution>, EnumError> {
    let init = SearchState {
        threads: p
            .threads()
            .iter()
            .map(|_| ThreadState {
                pc: 0,
                regs: BTreeMap::new(),
                taint: BTreeMap::new(),
                ctrl: BTreeSet::new(),
            })
            .collect(),
        memory: (0..p.num_locs() as u32).map(|l| (Loc(l), p.init_value(Loc(l)))).collect(),
        events: Vec::new(),
        order: Vec::new(),
        writes: BTreeMap::new(),
        read_src: Vec::new(),
        data_src: Vec::new(),
        ctrl_src: Vec::new(),
        observed: BTreeSet::new(),
    };
    let mut out = Vec::new();
    explore(p, limits, quantum, init, &mut out)?;
    Ok(out)
}

fn explore(
    p: &Program,
    limits: &EnumLimits,
    quantum: bool,
    mut st: SearchState,
    out: &mut Vec<Execution>,
) -> Result<(), EnumError> {
    // Phase 1: drain local-deterministic instructions of every thread;
    // they commute with everything, so running them eagerly prunes
    // redundant interleavings. Quantum loads are local *choice* points:
    // branch over the domain and recurse.
    loop {
        let mut progressed = false;
        for tid in 0..st.threads.len() {
            loop {
                let pc = st.threads[tid].pc;
                let Some(instr) = p.threads()[tid].instrs.get(pc) else { break };
                match instr {
                    Instr::Assign { dst, expr } => {
                        let v = expr.eval(&st.threads[tid].regs);
                        let taint = expr_taint(expr, &st.threads[tid]);
                        let t = &mut st.threads[tid];
                        t.regs.insert(*dst, v);
                        t.taint.insert(*dst, taint);
                        t.pc += 1;
                        progressed = true;
                    }
                    Instr::BranchOn { cond } => {
                        let taint = expr_taint(cond, &st.threads[tid]);
                        let t = &mut st.threads[tid];
                        t.ctrl.extend(taint);
                        t.pc += 1;
                        progressed = true;
                    }
                    Instr::Observe { expr } => {
                        let taint = expr_taint(expr, &st.threads[tid]);
                        st.observed.extend(taint);
                        st.threads[tid].pc += 1;
                        progressed = true;
                    }
                    Instr::JumpIfZero { cond, skip } => {
                        let v = cond.eval(&st.threads[tid].regs);
                        let taint = expr_taint(cond, &st.threads[tid]);
                        let t = &mut st.threads[tid];
                        t.ctrl.extend(taint);
                        t.pc += if v == 0 { skip + 1 } else { 1 };
                        progressed = true;
                    }
                    Instr::Load { class: OpClass::Quantum, dst, .. } if quantum => {
                        // Quantum transformation: ri = random(). No
                        // memory event; the load is gone in Pq.
                        for &v in &limits.quantum_domain {
                            let mut next = st.clone();
                            let t = &mut next.threads[tid];
                            t.regs.insert(*dst, v);
                            t.taint.insert(*dst, BTreeSet::new());
                            t.pc += 1;
                            explore(p, limits, quantum, next, out)?;
                        }
                        return Ok(());
                    }
                    _ => break,
                }
            }
        }
        if !progressed {
            break;
        }
    }

    // Terminal: all threads done.
    if st.threads.iter().enumerate().all(|(tid, t)| t.pc >= p.threads()[tid].instrs.len()) {
        if out.len() >= limits.max_executions {
            return Err(EnumError::TooManyExecutions { limit: limits.max_executions });
        }
        out.push(finish(st));
        return Ok(());
    }

    // Phase 2: branch over which thread performs its next memory event.
    for tid in 0..st.threads.len() {
        let pc = st.threads[tid].pc;
        let Some(instr) = p.threads()[tid].instrs.get(pc) else { continue };
        if !instr.is_memory() {
            continue;
        }
        if quantum && instr.class() == Some(OpClass::Quantum) {
            // Quantum transformation (§3.4.3): quantum stores write
            // random(); a quantum RMW's load returns random() and its
            // store writes random().
            match instr {
                Instr::Rmw { .. } => {
                    perform_quantum_rmw(p, limits, tid, &st, out)?;
                    continue;
                }
                Instr::Store { .. } => {
                    perform_quantum_store(p, limits, tid, &st, out)?;
                    continue;
                }
                _ => {}
            }
        }
        let mut next = st.clone();
        perform(p, tid, &mut next);
        explore(p, limits, quantum, next, out)?;
    }
    Ok(())
}

/// Perform thread `tid`'s next memory instruction on `st`.
fn perform(p: &Program, tid: usize, st: &mut SearchState) {
    let pc = st.threads[tid].pc;
    let instr = &p.threads()[tid].instrs[pc];
    let id = st.events.len();
    let ctrl = st.threads[tid].ctrl.clone();
    match instr {
        Instr::Load { class, loc, dst } => {
            let v = *st.memory.get(loc).unwrap_or(&0);
            st.events.push(Event {
                id,
                tid,
                iid: pc,
                class: *class,
                loc: *loc,
                access: Access::Read,
                rval: Some(v),
                wval: None,
                write_fn: None,
            });
            st.read_src.push(st.writes.get(loc).and_then(|w| {
                if w.is_empty() {
                    None
                } else {
                    Some(w.len() - 1)
                }
            }));
            st.data_src.push(BTreeSet::new());
            st.ctrl_src.push(ctrl);
            let t = &mut st.threads[tid];
            t.regs.insert(*dst, v);
            t.taint.insert(*dst, BTreeSet::from([id]));
        }
        Instr::Store { class, loc, val } => {
            let v = val.eval(&st.threads[tid].regs);
            let data = expr_taint(val, &st.threads[tid]);
            st.events.push(Event {
                id,
                tid,
                iid: pc,
                class: *class,
                loc: *loc,
                access: Access::Write,
                rval: None,
                wval: Some(v),
                write_fn: Some(WriteFn::Set(v)),
            });
            st.read_src.push(None);
            st.data_src.push(data);
            st.ctrl_src.push(ctrl);
            st.memory.insert(*loc, v);
            st.writes.entry(*loc).or_default().push(id);
        }
        Instr::Rmw { class, loc, op, operand, operand2, dst } => {
            let old = *st.memory.get(loc).unwrap_or(&0);
            let k = operand.eval(&st.threads[tid].regs);
            let k2 = operand2.eval(&st.threads[tid].regs);
            let new = op.apply(old, k, k2);
            let mut data = expr_taint(operand, &st.threads[tid]);
            data.extend(expr_taint(operand2, &st.threads[tid]));
            let wf = match op {
                crate::program::RmwOp::FetchAdd => WriteFn::Add(k),
                crate::program::RmwOp::FetchSub => WriteFn::Add(k.wrapping_neg()),
                crate::program::RmwOp::FetchAnd => WriteFn::And(k),
                crate::program::RmwOp::FetchOr => WriteFn::Or(k),
                crate::program::RmwOp::FetchXor => WriteFn::Xor(k),
                crate::program::RmwOp::FetchMin => WriteFn::Min(k),
                crate::program::RmwOp::FetchMax => WriteFn::Max(k),
                crate::program::RmwOp::Exchange => WriteFn::Set(k),
                crate::program::RmwOp::Cas => WriteFn::Cas,
            };
            st.events.push(Event {
                id,
                tid,
                iid: pc,
                class: *class,
                loc: *loc,
                access: Access::Rmw,
                rval: Some(old),
                wval: Some(new),
                write_fn: Some(wf),
            });
            st.read_src.push(st.writes.get(loc).and_then(|w| {
                if w.is_empty() {
                    None
                } else {
                    Some(w.len() - 1)
                }
            }));
            st.data_src.push(data);
            st.ctrl_src.push(ctrl);
            st.memory.insert(*loc, new);
            st.writes.entry(*loc).or_default().push(id);
            let t = &mut st.threads[tid];
            t.regs.insert(*dst, old);
            t.taint.insert(*dst, BTreeSet::from([id]));
        }
        _ => unreachable!("perform called on non-memory instruction"),
    }
    st.order.push(id);
    st.threads[tid].pc += 1;
}

/// Emit a quantum store event writing `wval` and continue exploration.
#[allow(clippy::too_many_arguments)]
fn quantum_store_event(
    p: &Program,
    limits: &EnumLimits,
    tid: usize,
    st: &SearchState,
    class: OpClass,
    loc: Loc,
    wval: Value,
    dst: Option<(Reg, Value)>,
    out: &mut Vec<Execution>,
) -> Result<(), EnumError> {
    let mut next = st.clone();
    let pc = next.threads[tid].pc;
    let id = next.events.len();
    let ctrl = next.threads[tid].ctrl.clone();
    next.events.push(Event {
        id,
        tid,
        iid: pc,
        class,
        loc,
        access: Access::Write,
        rval: None,
        wval: Some(wval),
        write_fn: Some(WriteFn::Set(wval)),
    });
    next.read_src.push(None);
    next.data_src.push(BTreeSet::new());
    next.ctrl_src.push(ctrl);
    next.memory.insert(loc, wval);
    next.writes.entry(loc).or_default().push(id);
    next.order.push(id);
    if let Some((r, v)) = dst {
        let t = &mut next.threads[tid];
        t.regs.insert(r, v);
        t.taint.insert(r, BTreeSet::new());
    }
    next.threads[tid].pc += 1;
    explore(p, limits, true, next, out)
}

/// Quantum store under the quantum transformation: `Y = random()` —
/// branch over the domain of written values.
fn perform_quantum_store(
    p: &Program,
    limits: &EnumLimits,
    tid: usize,
    st: &SearchState,
    out: &mut Vec<Execution>,
) -> Result<(), EnumError> {
    let pc = st.threads[tid].pc;
    let Instr::Store { class, loc, .. } = &p.threads()[tid].instrs[pc] else { unreachable!() };
    for &v in &limits.quantum_domain {
        quantum_store_event(p, limits, tid, st, *class, *loc, v, None, out)?;
    }
    Ok(())
}

/// Quantum RMW under the quantum transformation: the load half returns
/// `random()` (branch over the domain into `dst`), the store half
/// writes `random()` (an independent branch over the domain).
fn perform_quantum_rmw(
    p: &Program,
    limits: &EnumLimits,
    tid: usize,
    st: &SearchState,
    out: &mut Vec<Execution>,
) -> Result<(), EnumError> {
    let pc = st.threads[tid].pc;
    let Instr::Rmw { class, loc, dst, .. } = &p.threads()[tid].instrs[pc] else { unreachable!() };
    for &old in &limits.quantum_domain {
        for &new in &limits.quantum_domain {
            quantum_store_event(p, limits, tid, st, *class, *loc, new, Some((*dst, old)), out)?;
        }
    }
    Ok(())
}

fn finish(st: SearchState) -> Execution {
    let n = st.events.len();
    let mut po = Relation::empty(n);
    for a in 0..n {
        for b in 0..n {
            if st.events[a].tid == st.events[b].tid && a != b {
                // Events are created in program order per thread, so id
                // order within a thread is program order.
                let (ea, eb) = (&st.events[a], &st.events[b]);
                if ea.iid < eb.iid {
                    po.insert(a, b);
                }
            }
        }
    }
    let mut rf = Relation::empty(n);
    let mut fr = Relation::empty(n);
    let mut co = Relation::empty(n);
    for (loc, ws) in &st.writes {
        for i in 0..ws.len() {
            for j in (i + 1)..ws.len() {
                co.insert(ws[i], ws[j]);
            }
        }
        for e in 0..n {
            if !st.events[e].access.reads() || st.events[e].loc != *loc {
                continue;
            }
            match st.read_src[e] {
                Some(src) => {
                    rf.insert(ws[src], e);
                    for w in &ws[src + 1..] {
                        if *w != e {
                            fr.insert(e, *w);
                        }
                    }
                }
                None => {
                    for w in ws {
                        if *w != e {
                            fr.insert(e, *w);
                        }
                    }
                }
            }
        }
    }
    let mut data_dep = Relation::empty(n);
    let mut ctrl_dep = Relation::empty(n);
    for e in 0..n {
        for &src in &st.data_src[e] {
            data_dep.insert(src, e);
        }
        for &src in &st.ctrl_src[e] {
            ctrl_dep.insert(src, e);
        }
    }
    let mut observed = vec![false; n];
    for &e in &st.observed {
        observed[e] = true;
    }
    Execution {
        result: ExecResult {
            memory: st.memory,
            regs: st.threads.into_iter().map(|t| t.regs).collect(),
        },
        events: st.events,
        order: st.order,
        po,
        rf,
        co,
        fr,
        data_dep,
        addr_dep: Relation::empty(n),
        ctrl_dep,
        observed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RmwOp;

    fn limits() -> EnumLimits {
        EnumLimits::default()
    }

    /// Store buffering: two threads, each stores then loads the other
    /// location. 4 memory ops → C(4,2) = 6 interleavings.
    fn sb(class: OpClass) -> Program {
        let mut p = Program::new("sb");
        {
            let mut t = p.thread();
            t.store(class, "x", 1);
            let r = t.load(class, "y");
            t.observe(r);
        }
        {
            let mut t = p.thread();
            t.store(class, "y", 1);
            let r = t.load(class, "x");
            t.observe(r);
        }
        p.build()
    }

    #[test]
    fn sb_has_six_interleavings() {
        let execs = enumerate_sc(&sb(OpClass::Paired), &limits()).unwrap();
        assert_eq!(execs.len(), 6);
    }

    #[test]
    fn sb_never_observes_both_zero_under_sc() {
        let execs = enumerate_sc(&sb(OpClass::Paired), &limits()).unwrap();
        for e in &execs {
            let r0 = *e.result.regs[0].get(&Reg(0)).unwrap();
            let r1 = *e.result.regs[1].get(&Reg(0)).unwrap();
            assert!(!(r0 == 0 && r1 == 0), "SC forbids the store-buffering outcome");
        }
        // But the three other outcomes all appear.
        let outcomes: BTreeSet<(Value, Value)> = execs
            .iter()
            .map(|e| {
                (*e.result.regs[0].get(&Reg(0)).unwrap(), *e.result.regs[1].get(&Reg(0)).unwrap())
            })
            .collect();
        assert_eq!(outcomes, BTreeSet::from([(0, 1), (1, 0), (1, 1)]));
    }

    #[test]
    fn rf_points_reads_at_their_writes() {
        let mut p = Program::new("wr");
        p.thread().store(OpClass::Data, "x", 7);
        {
            let mut t = p.thread();
            t.load(OpClass::Data, "x");
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert_eq!(execs.len(), 2);
        for e in &execs {
            let read = e.events.iter().find(|ev| ev.access == Access::Read).unwrap();
            let write = e.events.iter().find(|ev| ev.access == Access::Write).unwrap();
            if read.rval == Some(7) {
                assert!(e.rf.contains(write.id, read.id));
                assert!(!e.fr.contains(read.id, write.id));
            } else {
                assert_eq!(read.rval, Some(0), "reads init");
                assert!(e.rf.is_empty());
                assert!(e.fr.contains(read.id, write.id));
            }
        }
    }

    #[test]
    fn co_orders_same_location_writes() {
        let mut p = Program::new("ww");
        p.thread().store(OpClass::Data, "x", 1);
        p.thread().store(OpClass::Data, "x", 2);
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert_eq!(execs.len(), 2);
        for e in &execs {
            assert_eq!(e.co.len(), 1);
            let (first, last) = e.co.iter_pairs().next().unwrap();
            assert_eq!(e.result.memory.values().next().copied(), e.events[last].wval);
            assert!(
                e.order.iter().position(|&x| x == first).unwrap()
                    < e.order.iter().position(|&x| x == last).unwrap()
            );
        }
    }

    #[test]
    fn rmw_is_atomic_in_sc_enumeration() {
        // Two fetch-adds never lose an update under SC.
        let mut p = Program::new("inc");
        p.thread().rmw(OpClass::Paired, "c", RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Paired, "c", RmwOp::FetchAdd, 1);
        let p = p.build();
        let c = p.find_loc("c").unwrap();
        let execs = enumerate_sc(&p, &limits()).unwrap();
        assert_eq!(execs.len(), 2);
        for e in &execs {
            assert_eq!(e.result.memory[&c], 2);
        }
    }

    #[test]
    fn data_deps_flow_through_assigns() {
        let mut p = Program::new("dep");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Data, "x");
            let r2 = t.assign(Expr::bin(crate::program::BinOp::Add, r.into(), 1.into()));
            t.store(OpClass::Data, "y", r2);
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert_eq!(execs.len(), 1);
        let e = &execs[0];
        assert!(e.data_dep.contains(0, 1), "load -> store data dep");
        assert!(e.value_observed(0));
    }

    #[test]
    fn ctrl_deps_mark_later_accesses() {
        let mut p = Program::new("ctrl");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Data, "x");
            t.branch_on(r);
            t.store(OpClass::Data, "y", 1);
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        let e = &execs[0];
        assert!(e.ctrl_dep.contains(0, 1));
        assert!(!e.data_dep.contains(0, 1));
        // ctrl alone does not make the value "observed" in Herd's
        // value-observability sense, but obs_dep includes it.
        assert!(e.obs_dep().contains(0, 1));
    }

    #[test]
    fn observe_marks_loads() {
        let mut p = Program::new("obs");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Commutative, "x");
            t.observe(r);
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert!(execs[0].value_observed(0));
    }

    #[test]
    fn unobserved_load_is_unobserved() {
        let mut p = Program::new("noobs");
        {
            let mut t = p.thread();
            let _ = t.load(OpClass::Commutative, "x");
            t.store(OpClass::Data, "y", 1);
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert!(!execs[0].value_observed(0));
    }

    #[test]
    fn quantum_transformation_randomizes_loads() {
        let mut p = Program::new("q");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Quantum, "x");
            t.observe(r);
        }
        let p = p.build();
        // Plain SC: single execution reading 0.
        let sc = enumerate_sc(&p, &limits()).unwrap();
        assert_eq!(sc.len(), 1);
        assert_eq!(sc[0].events.len(), 1);
        // Quantum-equivalent: the load vanishes, one execution per
        // domain value, register takes each.
        let q = enumerate_sc_quantum(&p, &limits()).unwrap();
        assert_eq!(q.len(), 3);
        for e in &q {
            assert!(e.events.is_empty(), "quantum load is not a memory event in Pq");
        }
        let vals: BTreeSet<Value> =
            q.iter().map(|e| *e.result.regs[0].get(&Reg(0)).unwrap()).collect();
        assert_eq!(vals, BTreeSet::from([0, 1, JUNK]));
    }

    #[test]
    fn quantum_rmw_becomes_randomized_store() {
        let mut p = Program::new("qrmw");
        p.thread().rmw(OpClass::Quantum, "c", RmwOp::FetchAdd, 1);
        let p = p.build();
        let c = p.find_loc("c").unwrap();
        let q = enumerate_sc_quantum(&p, &limits()).unwrap();
        // 3 random loaded values × 3 random written values.
        assert_eq!(q.len(), 9);
        for e in &q {
            assert_eq!(e.events.len(), 1);
            assert_eq!(e.events[0].access, Access::Write);
            assert_eq!(e.events[0].class, OpClass::Quantum);
        }
        let finals: BTreeSet<Value> = q.iter().map(|e| e.result.memory[&c]).collect();
        assert_eq!(finals, BTreeSet::from([0, 1, JUNK]));
    }

    #[test]
    fn execution_limit_enforced() {
        let mut p = Program::new("big");
        for _ in 0..3 {
            let mut t = p.thread();
            for _ in 0..4 {
                t.store(OpClass::Data, "x", 1);
            }
        }
        let err =
            enumerate_sc(&p.build(), &EnumLimits { max_executions: 10, ..EnumLimits::default() })
                .unwrap_err();
        assert_eq!(err, EnumError::TooManyExecutions { limit: 10 });
    }

    #[test]
    fn conditional_body_skipped_when_zero() {
        let mut p = Program::new("cond");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Paired, "flag");
            t.if_nz(r, |t| {
                t.store(OpClass::Data, "x", 1);
            });
            t.store(OpClass::Data, "y", 2);
        }
        let p = p.build();
        let execs = enumerate_sc(&p, &limits()).unwrap();
        assert_eq!(execs.len(), 1);
        let e = &execs[0];
        // flag reads 0 → the x store is skipped, the y store executes.
        assert_eq!(e.events.len(), 2);
        assert!(e.events.iter().all(|ev| p.loc_name(ev.loc) != "x"));
        // Control dependency from the flag load onto the y store.
        assert!(e.ctrl_dep.contains(0, 1));
    }

    #[test]
    fn conditional_body_runs_when_nonzero() {
        let mut p = Program::new("cond2");
        p.set_init("flag", 1);
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Paired, "flag");
            t.if_nz(r, |t| {
                t.store(OpClass::Data, "x", 1);
            });
        }
        let p = p.build();
        let e = &enumerate_sc(&p, &limits()).unwrap()[0];
        assert_eq!(e.events.len(), 2);
        let x = p.find_loc("x").unwrap();
        assert_eq!(e.result.memory[&x], 1);
    }

    #[test]
    fn conditional_mp_is_race_free() {
        // With real control flow, the classic message-passing idiom has
        // no data race in any SC execution: the data read only occurs
        // after the paired flag read returns 1, which orders it.
        let mut p = Program::new("mp_cond");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 42);
            t.store(OpClass::Paired, "flag", 1);
        }
        {
            let mut t = p.thread();
            let f = t.load(OpClass::Paired, "flag");
            t.if_nz(f, |t| {
                let d = t.load(OpClass::Data, "x");
                t.observe(d);
            });
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        for e in &execs {
            assert!(
                crate::races::analyze(e).is_race_free(),
                "conditional MP must be race-free in every SC execution"
            );
        }
    }

    #[test]
    fn po_is_transitive_and_intra_thread() {
        let mut p = Program::new("po");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "a", 1);
            t.store(OpClass::Data, "b", 1);
            t.store(OpClass::Data, "c", 1);
        }
        let e = &enumerate_sc(&p.build(), &limits()).unwrap()[0];
        assert!(e.po.contains(0, 1) && e.po.contains(1, 2) && e.po.contains(0, 2));
        assert!(!e.po.contains(2, 0));
        assert!(e.po.is_acyclic());
    }
}
